//! Columnar (struct-of-arrays) micro-batches for the stateless data plane.
//!
//! The row-oriented wire format (`Vec<Tuple>` of `Arc<Vec<Event>>`) pays an
//! enum dispatch and a refcount per record even for primitive sensor events,
//! which is the measured hot-path ceiling of the filter/map tier. A
//! [`ColumnarBatch`] stores the same records as typed columns so that
//!
//! * sources build batches by pushing column values — **no heap allocation
//!   per primitive event**;
//! * stateless operators (σ, Π, ∪) run tight per-column loops driven by a
//!   *selection vector* instead of materializing tuples;
//! * routing reads the `key` column directly for hash partitioning.
//!
//! ## Layout
//!
//! Per-row tuple metadata (`key`, `ts`, `wall`) and the fields of the
//! *head constituent* (`events[0]`: `etype`, `id`, event-`ts`, `value`,
//! `lat`, `lon`) are always dense columns. Because the head-event columns
//! are filled for every row — composite rows included — single-event
//! predicates (the σ tier) vectorize uniformly over the batch.
//!
//! Two rarely-used groups are lazily allocated:
//!
//! * **optional attributes** (`ats`, `agg`) — allocated the first time a
//!   row actually carries one;
//! * **composite payloads** — rows with ≠ 1 constituent keep their
//!   `Arc<Vec<Event>>` in a side table referenced by row index
//!   (the crate-private `PRIMITIVE` sentinel marks rows fully described
//!   by the head columns).
//!
//! ## Selection vectors
//!
//! `sel: Option<Vec<u32>>` lists the live physical row indices in order
//! (`None` ⇒ all rows live). Filters *narrow* the selection; downstream
//! vectorized operators visit only selected indices;
//! [`compact`](ColumnarBatch::compact) gathers survivors into a dense
//! batch. The
//! runtime compacts at route flush, so **batches on the wire are always
//! dense** — receivers never see a selection vector.
//!
//! ## Row shim
//!
//! Stateful operators (joins, aggregation, NFA/dedup) keep their per-tuple
//! logic; the runtime materializes rows via
//! [`tuple_at`](ColumnarBatch::tuple_at) at their input boundary and
//! re-batches their emissions. Materializing a primitive row is the only
//! point where an `Arc` is allocated; composite rows just bump the side
//! table's refcount.

use std::sync::Arc;

use crate::error::OpError;
use crate::event::{Attr, Event, EventType};
use crate::time::Timestamp;
use crate::tuple::{Key, Tuple};

/// Sentinel in the composite index column: the row is a primitive event
/// fully described by the head-event columns.
pub(crate) const PRIMITIVE: u32 = u32::MAX;

/// Checked narrowing for composite side-table indices: `len` is the slot a
/// new entry would occupy. Near `u32::MAX` a bare `as u32` cast would wrap
/// — and at exactly [`PRIMITIVE`] it would *alias the sentinel*, silently
/// re-labelling a composite row as primitive. Surfaced as the G016
/// payload-mismatch error rather than a corrupted batch.
#[inline]
pub(crate) fn comp_slot(len: usize) -> Result<u32, OpError> {
    if len >= PRIMITIVE as usize {
        return Err(OpError::ColumnarUnsupported {
            operator: "columnar-batch".to_string(),
            detail: format!(
                "composite side table overflow: {len} entries exhaust the u32 \
                 index space (the next index would alias the PRIMITIVE sentinel)"
            ),
        });
    }
    Ok(len as u32)
}

/// Lazily-allocated optional per-row attributes (`ats`, `agg`).
#[derive(Debug, Clone, Default)]
struct OptCols {
    ats: Vec<Option<Timestamp>>,
    agg: Vec<Option<f64>>,
}

/// Lazily-allocated composite-payload side table.
#[derive(Debug, Clone, Default)]
struct CompCols {
    /// Per-row index into `table`; [`PRIMITIVE`] for primitive rows.
    idx: Vec<u32>,
    /// Constituent lists of composite rows, in first-reference order.
    table: Vec<Arc<Vec<Event>>>,
}

/// A struct-of-arrays micro-batch of [`Tuple`]s (see module docs).
#[derive(Debug, Clone, Default)]
pub struct ColumnarBatch {
    /// Partition key column ([`Tuple::key`]).
    pub(crate) key: Vec<Key>,
    /// Working event-time column ([`Tuple::ts`]).
    pub(crate) ts: Vec<Timestamp>,
    /// Wall-clock creation stamp column ([`Tuple::wall`]).
    pub(crate) wall: Vec<u64>,
    /// Head-constituent event type.
    pub(crate) etype: Vec<EventType>,
    /// Head-constituent sensor id.
    pub(crate) id: Vec<u32>,
    /// Head-constituent event timestamp (distinct from the tuple's working
    /// `ts`, which maps may redefine).
    pub(crate) ets: Vec<Timestamp>,
    /// Head-constituent measurement value.
    pub(crate) value: Vec<f64>,
    /// Head-constituent latitude.
    pub(crate) lat: Vec<f32>,
    /// Head-constituent longitude.
    pub(crate) lon: Vec<f32>,
    opt: Option<Box<OptCols>>,
    comp: Option<Box<CompCols>>,
    /// Selection vector: live physical row indices in order; `None` ⇒ dense.
    pub(crate) sel: Option<Vec<u32>>,
}

impl ColumnarBatch {
    /// An empty batch with room for `cap` rows in the dense columns.
    pub fn with_capacity(cap: usize) -> Self {
        ColumnarBatch {
            key: Vec::with_capacity(cap),
            ts: Vec::with_capacity(cap),
            wall: Vec::with_capacity(cap),
            etype: Vec::with_capacity(cap),
            id: Vec::with_capacity(cap),
            ets: Vec::with_capacity(cap),
            value: Vec::with_capacity(cap),
            lat: Vec::with_capacity(cap),
            lon: Vec::with_capacity(cap),
            opt: None,
            comp: None,
            sel: None,
        }
    }

    /// Physical row count (selected or not).
    #[inline]
    pub fn len(&self) -> usize {
        self.key.len()
    }

    /// Whether the batch holds no physical rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.key.is_empty()
    }

    /// Number of *selected* rows (= [`len`](Self::len) when dense).
    #[inline]
    pub fn selected_len(&self) -> usize {
        match &self.sel {
            None => self.len(),
            Some(s) => s.len(),
        }
    }

    /// Whether every physical row is selected (no selection vector).
    #[inline]
    pub fn is_dense(&self) -> bool {
        self.sel.is_none()
    }

    /// Append a primitive event (key = sensor id, ts = event ts). Pure
    /// column pushes: never touches the heap beyond column growth.
    #[inline]
    pub fn push_event(&mut self, e: Event, wall: u64) {
        self.key.push(e.id as Key);
        self.ts.push(e.ts);
        self.wall.push(wall);
        self.etype.push(e.etype);
        self.id.push(e.id);
        self.ets.push(e.ts);
        self.value.push(e.value);
        self.lat.push(e.lat);
        self.lon.push(e.lon);
        if let Some(o) = &mut self.opt {
            o.ats.push(None);
            o.agg.push(None);
        }
        if let Some(c) = &mut self.comp {
            c.idx.push(PRIMITIVE);
        }
    }

    /// Append a row-format tuple, decomposing primitives into columns and
    /// side-tabling composite constituent lists. Fails (G016 class) only if
    /// the composite side table would exhaust its u32 index space.
    pub fn push_tuple(&mut self, t: Tuple) -> Result<(), OpError> {
        let head = t
            .head()
            .copied()
            .unwrap_or_else(|| Event::new(EventType(0), 0, t.ts, 0.0));
        self.key.push(t.key);
        self.ts.push(t.ts);
        self.wall.push(t.wall);
        self.etype.push(head.etype);
        self.id.push(head.id);
        self.ets.push(head.ts);
        self.value.push(head.value);
        self.lat.push(head.lat);
        self.lon.push(head.lon);
        self.push_opt(t.ats, t.agg);
        let comp = if t.is_composite() {
            Some(Arc::clone(&t.events))
        } else {
            None
        };
        self.push_comp(comp)
    }

    /// Append row `i` of `src` (physical index) by copying columns; the
    /// composite side table transfers by refcount bump.
    pub(crate) fn push_row_from(&mut self, src: &ColumnarBatch, i: usize) -> Result<(), OpError> {
        self.key.push(src.key[i]);
        self.ts.push(src.ts[i]);
        self.wall.push(src.wall[i]);
        self.etype.push(src.etype[i]);
        self.id.push(src.id[i]);
        self.ets.push(src.ets[i]);
        self.value.push(src.value[i]);
        self.lat.push(src.lat[i]);
        self.lon.push(src.lon[i]);
        self.push_opt(src.ats_at(i), src.agg_at(i));
        self.push_comp(src.comp_at(i).cloned())
    }

    /// Push the optional attributes of the row just added to the dense
    /// columns (callers push base columns first).
    #[inline]
    fn push_opt(&mut self, ats: Option<Timestamp>, agg: Option<f64>) {
        if ats.is_some() || agg.is_some() {
            let o = self.ensure_opt();
            o.ats.push(ats);
            o.agg.push(agg);
        } else if let Some(o) = &mut self.opt {
            o.ats.push(None);
            o.agg.push(None);
        }
    }

    /// Push the composite payload of the row just added (None = primitive).
    #[inline]
    fn push_comp(&mut self, events: Option<Arc<Vec<Event>>>) -> Result<(), OpError> {
        match events {
            Some(ev) => {
                let c = self.ensure_comp();
                let slot = comp_slot(c.table.len())?;
                c.idx.push(slot);
                c.table.push(ev);
            }
            None => {
                if let Some(c) = &mut self.comp {
                    c.idx.push(PRIMITIVE);
                }
            }
        }
        Ok(())
    }

    /// Allocate the optional-attribute columns, back-filling `None` for the
    /// rows pushed before the first carrier. The base columns must already
    /// include the row being pushed, hence `len() - 1`.
    fn ensure_opt(&mut self) -> &mut OptCols {
        let rows = self.len() - 1;
        self.opt.get_or_insert_with(|| {
            Box::new(OptCols {
                ats: vec![None; rows],
                agg: vec![None; rows],
            })
        })
    }

    /// Allocate the composite side table, back-filling [`PRIMITIVE`] for
    /// the rows pushed before the first composite.
    fn ensure_comp(&mut self) -> &mut CompCols {
        let rows = self.len() - 1;
        self.comp.get_or_insert_with(|| {
            Box::new(CompCols {
                idx: vec![PRIMITIVE; rows],
                table: Vec::new(),
            })
        })
    }

    /// The `ats` attribute of physical row `i`.
    #[inline]
    pub(crate) fn ats_at(&self, i: usize) -> Option<Timestamp> {
        self.opt.as_ref().and_then(|o| o.ats[i])
    }

    /// The `agg` attribute of physical row `i`.
    #[inline]
    pub(crate) fn agg_at(&self, i: usize) -> Option<f64> {
        self.opt.as_ref().and_then(|o| o.agg[i])
    }

    /// The composite constituent list of physical row `i`, if any.
    #[inline]
    pub(crate) fn comp_at(&self, i: usize) -> Option<&Arc<Vec<Event>>> {
        let c = self.comp.as_ref()?;
        match c.idx[i] {
            PRIMITIVE => None,
            k => Some(&c.table[k as usize]),
        }
    }

    /// Reconstruct the head constituent of physical row `i` from columns.
    #[inline]
    pub(crate) fn head_event_at(&self, i: usize) -> Event {
        Event {
            etype: self.etype[i],
            id: self.id[i],
            ts: self.ets[i],
            value: self.value[i],
            lat: self.lat[i],
            lon: self.lon[i],
        }
    }

    /// A head-constituent attribute of physical row `i` (the currency of
    /// vectorized σ evaluation; equals `tuple.events[0].attr(a)`).
    #[inline]
    pub(crate) fn attr_at(&self, i: usize, a: Attr) -> f64 {
        match a {
            Attr::Value => self.value[i],
            Attr::Ts => self.ets[i].millis() as f64,
            Attr::Id => self.id[i] as f64,
            Attr::Lat => self.lat[i] as f64,
            Attr::Lon => self.lon[i] as f64,
        }
    }

    /// Materialize physical row `i` as a row-format [`Tuple`] (the shim at
    /// stateful-operator and collecting-sink boundaries).
    pub fn tuple_at(&self, i: usize) -> Tuple {
        let events = match self.comp_at(i) {
            Some(ev) => Arc::clone(ev),
            None => Arc::new(vec![self.head_event_at(i)]),
        };
        Tuple {
            key: self.key[i],
            ts: self.ts[i],
            wall: self.wall[i],
            events,
            ats: self.ats_at(i),
            agg: self.agg_at(i),
        }
    }

    /// Narrow the selection to rows where `pred` holds. Returns
    /// `(kept, dropped)` over the previously selected rows.
    pub(crate) fn narrow(&mut self, pred: impl Fn(&Self, usize) -> bool) -> (u64, u64) {
        let old = self.sel.take();
        let mut kept: Vec<u32> = Vec::with_capacity(match &old {
            None => self.len(),
            Some(s) => s.len(),
        });
        let mut dropped = 0u64;
        match &old {
            None => {
                for i in 0..self.len() {
                    if pred(self, i) {
                        kept.push(i as u32);
                    } else {
                        dropped += 1;
                    }
                }
            }
            Some(s) => {
                for &i in s {
                    if pred(self, i as usize) {
                        kept.push(i);
                    } else {
                        dropped += 1;
                    }
                }
            }
        }
        let kept_n = kept.len() as u64;
        self.sel = Some(kept);
        (kept_n, dropped)
    }

    /// Drop selected rows with `ts < wm` (late under `drop_late`); returns
    /// the number dropped.
    pub(crate) fn drop_late(&mut self, wm: Timestamp) -> u64 {
        let (_, dropped) = self.narrow(|b, i| b.ts[i] >= wm);
        if dropped == 0 {
            // Nothing was late: un-narrow so the dense fast paths survive.
            if self.sel.as_ref().is_some_and(|s| s.len() == self.len()) {
                self.sel = None;
            }
        }
        dropped
    }

    /// Maximum working timestamp over selected rows.
    pub(crate) fn max_ts(&self) -> Option<Timestamp> {
        match &self.sel {
            None => self.ts.iter().max().copied(),
            Some(s) => s.iter().map(|&i| self.ts[i as usize]).max(),
        }
    }

    /// Minimum working timestamp over selected rows (emission-floor checks).
    #[cfg(feature = "invariant-checks")]
    pub(crate) fn min_ts(&self) -> Option<Timestamp> {
        match &self.sel {
            None => self.ts.iter().min().copied(),
            Some(s) => s.iter().map(|&i| self.ts[i as usize]).min(),
        }
    }

    /// Gather selected rows into a dense batch (in place, order-preserving)
    /// and drop the selection vector. Unreferenced side-table entries are
    /// released. No-op when already dense. Fails (G016 class) only if the
    /// rebuilt composite side table would exhaust its u32 index space —
    /// impossible when the batch was built through the checked push paths,
    /// but kept checked so compaction can never mint a sentinel alias.
    pub fn compact(&mut self) -> Result<(), OpError> {
        let Some(sel) = self.sel.take() else {
            return Ok(());
        };
        if sel.len() == self.len() {
            return Ok(()); // every row selected: already dense in order
        }
        fn gather<T: Copy>(v: &mut Vec<T>, sel: &[u32]) {
            for (dst, &src) in sel.iter().enumerate() {
                v[dst] = v[src as usize];
            }
            v.truncate(sel.len());
        }
        gather(&mut self.key, &sel);
        gather(&mut self.ts, &sel);
        gather(&mut self.wall, &sel);
        gather(&mut self.etype, &sel);
        gather(&mut self.id, &sel);
        gather(&mut self.ets, &sel);
        gather(&mut self.value, &sel);
        gather(&mut self.lat, &sel);
        gather(&mut self.lon, &sel);
        if let Some(o) = &mut self.opt {
            gather(&mut o.ats, &sel);
            gather(&mut o.agg, &sel);
            if o.ats.iter().all(Option::is_none) && o.agg.iter().all(Option::is_none) {
                self.opt = None;
            }
        }
        if let Some(c) = &mut self.comp {
            // Rebuild the side table with only surviving composites.
            let mut table = Vec::new();
            for (dst, &src) in sel.iter().enumerate() {
                c.idx[dst] = match c.idx[src as usize] {
                    PRIMITIVE => PRIMITIVE,
                    k => {
                        let slot = comp_slot(table.len())?;
                        table.push(Arc::clone(&c.table[k as usize]));
                        slot
                    }
                };
            }
            c.idx.truncate(sel.len());
            if table.is_empty() {
                self.comp = None;
            } else {
                c.table = table;
            }
        }
        Ok(())
    }

    /// Materialize every selected row as a [`Tuple`], in selection order.
    pub fn to_tuples(&self) -> Vec<Tuple> {
        let mut out = Vec::with_capacity(self.selected_len());
        match &self.sel {
            None => {
                for i in 0..self.len() {
                    out.push(self.tuple_at(i));
                }
            }
            Some(s) => {
                for &i in s {
                    out.push(self.tuple_at(i as usize));
                }
            }
        }
        out
    }

    /// Build a dense batch from row-format tuples (test/shim convenience).
    /// Infallible in practice: the side table cannot overflow below
    /// `u32::MAX` rows.
    pub fn from_tuples(tuples: Vec<Tuple>) -> Self {
        let mut b = ColumnarBatch::with_capacity(tuples.len());
        for t in tuples {
            b.push_tuple(t)
                .expect("side-table overflow requires > u32::MAX composite rows");
        }
        b
    }

    /// Split off the first `n` physical rows as their own dense batch,
    /// leaving the remainder in place. Requires a dense batch (the runtime
    /// only splits route buffers, which are built dense) — this is how a
    /// positionally-owed watermark is emitted *between* the rows that
    /// preceded it and the rows that followed it, independent of when a
    /// wall-clock flush happens to run.
    pub(crate) fn take_prefix(&mut self, n: usize) -> ColumnarBatch {
        debug_assert!(self.is_dense(), "take_prefix on a narrowed batch");
        let n = n.min(self.len());
        fn split<T>(v: &mut Vec<T>, n: usize) -> Vec<T> {
            let tail = v.split_off(n);
            std::mem::replace(v, tail)
        }
        let mut out = ColumnarBatch {
            key: split(&mut self.key, n),
            ts: split(&mut self.ts, n),
            wall: split(&mut self.wall, n),
            etype: split(&mut self.etype, n),
            id: split(&mut self.id, n),
            ets: split(&mut self.ets, n),
            value: split(&mut self.value, n),
            lat: split(&mut self.lat, n),
            lon: split(&mut self.lon, n),
            ..ColumnarBatch::default()
        };
        if let Some(o) = &mut self.opt {
            out.opt = Some(Box::new(OptCols {
                ats: split(&mut o.ats, n),
                agg: split(&mut o.agg, n),
            }));
        }
        if let Some(c) = &mut self.comp {
            // Side-table entries are appended in row order, so the prefix
            // references exactly the first `k` entries and the tail's
            // indices rebase by `k`.
            let idx_pre = split(&mut c.idx, n);
            let k = idx_pre.iter().filter(|&&x| x != PRIMITIVE).count();
            let table_pre = split(&mut c.table, k);
            for x in c.idx.iter_mut() {
                if *x != PRIMITIVE {
                    *x -= k as u32;
                }
            }
            out.comp = Some(Box::new(CompCols {
                idx: idx_pre,
                table: table_pre,
            }));
            if c.table.is_empty() {
                self.comp = None;
            }
        }
        out
    }

    /// Append the physical rows listed in `sel` (in order) from `src` —
    /// a column-wise gather, so splitting one inbound batch across many
    /// shard destinations walks each column contiguously instead of
    /// materializing row objects.
    pub(crate) fn extend_gather(
        &mut self,
        src: &ColumnarBatch,
        sel: &[u32],
    ) -> Result<(), OpError> {
        let before = self.len();
        macro_rules! gather {
            ($f:ident) => {
                self.$f.reserve(sel.len());
                for &i in sel {
                    self.$f.push(src.$f[i as usize]);
                }
            };
        }
        gather!(key);
        gather!(ts);
        gather!(wall);
        gather!(etype);
        gather!(id);
        gather!(ets);
        gather!(value);
        gather!(lat);
        gather!(lon);
        if self.opt.is_some() || src.opt.is_some() {
            let o = self.opt.get_or_insert_with(|| {
                Box::new(OptCols {
                    ats: vec![None; before],
                    agg: vec![None; before],
                })
            });
            match &src.opt {
                Some(so) => {
                    for &i in sel {
                        o.ats.push(so.ats[i as usize]);
                        o.agg.push(so.agg[i as usize]);
                    }
                }
                None => {
                    o.ats.resize(before + sel.len(), None);
                    o.agg.resize(before + sel.len(), None);
                }
            }
        }
        if self.comp.is_some() || src.comp.is_some() {
            let c = self.comp.get_or_insert_with(|| {
                Box::new(CompCols {
                    idx: vec![PRIMITIVE; before],
                    table: Vec::new(),
                })
            });
            match &src.comp {
                Some(sc) => {
                    for &i in sel {
                        match sc.idx[i as usize] {
                            PRIMITIVE => c.idx.push(PRIMITIVE),
                            k => {
                                let slot = comp_slot(c.table.len())?;
                                c.idx.push(slot);
                                c.table.push(Arc::clone(&sc.table[k as usize]));
                            }
                        }
                    }
                }
                None => c.idx.resize(before + sel.len(), PRIMITIVE),
            }
        }
        Ok(())
    }

    /// Approximate heap footprint of the dense columns, for accounting.
    pub fn mem_bytes(&self) -> usize {
        // Per-row column footprint; composite lists are charged to holders
        // elsewhere, consistent with `Tuple::mem_bytes`.
        self.len() * (8 + 8 + 8 + 2 + 4 + 8 + 8 + 4 + 4)
            + self
                .comp
                .as_ref()
                .map_or(0, |c| c.table.iter().map(|e| e.len() * 32).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::TsRule;

    fn ev(t: u16, id: u32, m: i64, v: f64) -> Event {
        Event::new(EventType(t), id, Timestamp::from_minutes(m), v)
    }

    #[test]
    fn push_event_round_trips_through_tuple_at() {
        let mut b = ColumnarBatch::with_capacity(4);
        let e = ev(3, 7, 5, 42.5);
        b.push_event(e, 99);
        assert_eq!(b.len(), 1);
        let t = b.tuple_at(0);
        assert_eq!(t, {
            let mut x = Tuple::from_event(e);
            x.wall = 99;
            x
        });
    }

    #[test]
    fn push_tuple_preserves_composites_and_options() {
        let a = Tuple::from_event(ev(0, 1, 2, 1.0));
        let c = Tuple::from_event(ev(1, 1, 7, 2.0));
        let mut joined = a.join(&c, TsRule::Max);
        joined.ats = Some(Timestamp::from_minutes(9));
        joined.agg = Some(3.0);
        let mut b = ColumnarBatch::default();
        b.push_tuple(a.clone()).unwrap();
        b.push_tuple(joined.clone()).unwrap();
        assert_eq!(b.tuple_at(0), a);
        assert_eq!(b.tuple_at(1), joined);
        // Head-event columns describe events[0] even for composites.
        assert_eq!(b.attr_at(1, Attr::Value), 1.0);
    }

    #[test]
    fn narrow_then_compact_gathers_survivors() {
        let mut b = ColumnarBatch::default();
        for i in 0..6 {
            b.push_event(ev(0, i, i as i64, i as f64), 0);
        }
        let (kept, dropped) = b.narrow(|b, i| b.value[i] >= 2.0);
        assert_eq!((kept, dropped), (4, 2));
        assert_eq!(b.selected_len(), 4);
        // Second narrowing composes over the first.
        b.narrow(|b, i| b.value[i] < 5.0);
        assert_eq!(b.selected_len(), 3);
        b.compact().unwrap();
        assert!(b.is_dense());
        let vals: Vec<f64> = b.to_tuples().iter().map(|t| t.events[0].value).collect();
        assert_eq!(vals, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn compact_rebuilds_composite_side_table() {
        let a = Tuple::from_event(ev(0, 1, 1, 1.0));
        let c1 = a.join(&Tuple::from_event(ev(1, 1, 2, 2.0)), TsRule::Max);
        let c2 = a.join(&Tuple::from_event(ev(1, 1, 3, 3.0)), TsRule::Max);
        let mut b = ColumnarBatch::default();
        b.push_tuple(c1).unwrap();
        b.push_tuple(a.clone()).unwrap();
        b.push_tuple(c2.clone()).unwrap();
        b.narrow(|b, i| b.ts[i] >= Timestamp::from_minutes(3));
        b.compact().unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!(b.tuple_at(0), c2);
    }

    #[test]
    fn drop_late_counts_and_keeps_dense_when_clean() {
        let mut b = ColumnarBatch::default();
        for m in [1, 5, 3, 8] {
            b.push_event(ev(0, 1, m, 0.0), 0);
        }
        assert_eq!(b.drop_late(Timestamp::from_minutes(0)), 0);
        assert!(b.is_dense(), "no drops → stays dense");
        assert_eq!(b.drop_late(Timestamp::from_minutes(4)), 2);
        assert_eq!(b.selected_len(), 2);
        assert_eq!(b.max_ts(), Some(Timestamp::from_minutes(8)));
    }

    #[test]
    fn comp_slot_rejects_sentinel_alias_at_the_boundary() {
        // Largest legal slot: one below the PRIMITIVE sentinel.
        assert_eq!(
            comp_slot(PRIMITIVE as usize - 1).expect("last non-sentinel slot"),
            PRIMITIVE - 1
        );
        // A table of PRIMITIVE entries would hand out the sentinel itself —
        // the silent `as u32` alias the checked path exists to refuse.
        assert!(matches!(
            comp_slot(PRIMITIVE as usize),
            Err(OpError::ColumnarUnsupported { .. })
        ));
        // And anything past it would wrap under a bare cast.
        assert!(comp_slot(u32::MAX as usize + 1).is_err());
    }

    #[test]
    fn take_prefix_splits_rows_options_and_side_table() {
        let a = Tuple::from_event(ev(0, 1, 1, 1.0));
        let c1 = a.join(&Tuple::from_event(ev(1, 1, 2, 2.0)), TsRule::Max);
        let mut withats = Tuple::from_event(ev(2, 3, 4, 5.0));
        withats.ats = Some(Timestamp::from_minutes(6));
        let c2 = a.join(&Tuple::from_event(ev(1, 1, 3, 3.0)), TsRule::Max);
        let rows = vec![c1, a, withats, c2];
        let mut b = ColumnarBatch::from_tuples(rows.clone());
        let pre = b.take_prefix(2);
        assert_eq!(pre.to_tuples(), rows[..2]);
        assert_eq!(b.to_tuples(), rows[2..]);
        // Taking everything leaves an empty batch behind.
        let rest = b.take_prefix(10);
        assert_eq!(rest.to_tuples(), rows[2..]);
        assert!(b.is_empty());
    }

    #[test]
    fn extend_gather_matches_row_at_a_time_pushes() {
        let a = Tuple::from_event(ev(0, 1, 1, 1.0));
        let comp = a.join(&Tuple::from_event(ev(1, 2, 2, 2.0)), TsRule::Max);
        let mut withagg = Tuple::from_event(ev(2, 3, 4, 5.0));
        withagg.agg = Some(7.5);
        let src = ColumnarBatch::from_tuples(vec![a.clone(), comp.clone(), withagg.clone()]);
        let mut out = ColumnarBatch::default();
        out.push_tuple(comp.clone()).expect("push");
        out.extend_gather(&src, &[2, 0]).expect("gather");
        assert_eq!(out.to_tuples(), vec![comp, withagg, a]);
    }

    #[test]
    fn round_trip_multiset_equivalence() {
        let a = Tuple::from_event(ev(0, 1, 1, 1.0));
        let mut withats = Tuple::from_event(ev(2, 3, 4, 5.0));
        withats.ats = Some(Timestamp::from_minutes(6));
        let j = a.join(&withats, TsRule::Min);
        let rows = vec![a, withats, j];
        let b = ColumnarBatch::from_tuples(rows.clone());
        assert_eq!(b.to_tuples(), rows);
    }
}
