//! Error types for pipeline construction and execution.

use std::fmt;

/// An error raised by an operator during processing. The runtime treats any
/// operator error as fatal for the whole pipeline (mirroring the execution
/// failures the paper observes for FlinkCEP under memory exhaustion,
/// Section 5.2.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpError {
    /// The operator's state exceeded its configured memory budget.
    MemoryExhausted {
        /// Name of the operator whose state grew past the budget.
        operator: String,
        /// Observed state size when the budget check fired.
        state_bytes: usize,
        /// The configured per-operator budget.
        limit_bytes: usize,
    },
    /// Any other operator-defined failure.
    Failed {
        /// Name of the failing operator.
        operator: String,
        /// Operator-supplied description of what went wrong.
        reason: String,
    },
    /// The operator declared columnar batch support
    /// ([`crate::operator::BatchSupport::Columnar`]) but rejected the
    /// payload it was handed at runtime. The executor surfaces this as the
    /// `G016` diagnostic rather than a plain operator failure, since it
    /// indicates a contract violation between the operator's declaration
    /// and its implementation.
    ColumnarUnsupported {
        /// Name of the operator that rejected the columnar payload.
        operator: String,
        /// What the operator could not handle about the payload.
        detail: String,
    },
}

impl fmt::Display for OpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpError::MemoryExhausted { operator, state_bytes, limit_bytes } => write!(
                f,
                "operator `{operator}` exhausted memory: state {state_bytes}B > limit {limit_bytes}B"
            ),
            OpError::Failed { operator, reason } => {
                write!(f, "operator `{operator}` failed: {reason}")
            }
            OpError::ColumnarUnsupported { operator, detail } => write!(
                f,
                "operator `{operator}` declared columnar support but rejected its payload: {detail}"
            ),
        }
    }
}

impl std::error::Error for OpError {}

/// Errors surfaced by [`crate::runtime::Executor::run`].
#[derive(Debug)]
pub enum PipelineError {
    /// Static validation refused the graph; every structural defect found
    /// is listed (see [`crate::validate`] for the code catalogue).
    Validation(Vec<crate::validate::Diagnostic>),
    /// An operator aborted the run.
    Operator(OpError),
    /// A worker thread panicked.
    WorkerPanic(String),
    /// A runtime bookkeeping invariant failed during teardown (e.g. a sink
    /// result was still shared after every worker joined). Indicates a
    /// runtime bug, not a user error — but reported as an error rather
    /// than a panic so embedding applications can recover.
    Internal(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Validation(diags) => {
                let errors = diags
                    .iter()
                    .filter(|d| d.severity == crate::validate::Severity::Error)
                    .count();
                write!(f, "invalid graph ({errors} error(s)):")?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            PipelineError::Operator(e) => write!(f, "pipeline aborted: {e}"),
            PipelineError::WorkerPanic(m) => write!(f, "worker panicked: {m}"),
            PipelineError::Internal(m) => write!(f, "internal runtime error: {m}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<OpError> for PipelineError {
    fn from(e: OpError) -> Self {
        PipelineError::Operator(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = OpError::MemoryExhausted {
            operator: "nfa".into(),
            state_bytes: 2048,
            limit_bytes: 1024,
        };
        let s = e.to_string();
        assert!(s.contains("nfa") && s.contains("2048") && s.contains("1024"));
        let p: PipelineError = e.into();
        assert!(p.to_string().contains("aborted"));
    }
}
