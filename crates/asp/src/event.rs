//! The unified data model (paper Section 2, model 1).
//!
//! Both paradigms operate on the same representation: a CEP *event* is an
//! ASP *tuple* with a mandatory timestamp attribute and an inferable *event
//! type*. This module defines the primitive [`Event`] with the evaluation
//! schema used throughout the paper's workloads — `(id, lat, lon, ts, value)`
//! — plus the [`EventType`] universe and the attribute accessors the
//! predicate layer builds on.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::Timestamp;

/// An event type `T_i` from the universe ε = {T1, …, Tn}.
///
/// Types are small integers assigned by a [`TypeRegistry`]; the payload is a
/// dense index so type dispatch in hot operator paths is a single compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EventType(pub u16);

impl fmt::Display for EventType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Maps human-readable event-type names ("Q", "V", "PM10", …) to dense
/// [`EventType`] indices and back. Shared by workload generators, the
/// pattern language, and plan printers.
///
/// Lookups are O(1): a hash index backs [`intern`](Self::intern) and
/// [`get`](Self::get), while the dense `names` vec keeps id → name
/// resolution and registration-order iteration allocation-free.
#[derive(Debug, Default, Clone)]
pub struct TypeRegistry {
    names: Vec<String>,
    index: std::collections::HashMap<String, EventType>,
}

impl TypeRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or look up) a type by name, returning its id.
    pub fn intern(&mut self, name: &str) -> EventType {
        if let Some(t) = self.index.get(name) {
            return *t;
        }
        assert!(
            self.names.len() < u16::MAX as usize,
            "type universe exhausted"
        );
        let t = EventType(self.names.len() as u16);
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), t);
        t
    }

    /// Resolve a registered name without interning.
    pub fn get(&self, name: &str) -> Option<EventType> {
        self.index.get(name).copied()
    }

    /// Resolve a type id back to its name.
    pub fn name(&self, t: EventType) -> Option<&str> {
        self.names.get(t.0 as usize).map(String::as_str)
    }

    /// Number of registered types.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no types have been registered yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate `(EventType, name)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (EventType, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (EventType(i as u16), n.as_str()))
    }
}

/// A primitive sensor event with the paper's common schema
/// `(id, lat, lon, ts, value)` plus its event type.
///
/// The struct is `Copy` and 32 bytes so join buffers stay allocation-free
/// per element and state-size accounting is exact. On the columnar plane
/// each field becomes its own dense array ([`crate::columnar::
/// ColumnarBatch`]), so a primitive event flows source→sink without ever
/// being boxed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Event type `T_i ∈ ε`.
    pub etype: EventType,
    /// Producer/sensor identifier — the partition key in keyed workloads.
    pub id: u32,
    /// Creation timestamp `e.ts` (event time).
    pub ts: Timestamp,
    /// The measurement (quantity, velocity, PM10, …).
    pub value: f64,
    /// Sensor latitude.
    pub lat: f32,
    /// Sensor longitude.
    pub lon: f32,
}

impl Event {
    /// Construct an event with zeroed coordinates (most tests don't care).
    pub fn new(etype: EventType, id: u32, ts: Timestamp, value: f64) -> Self {
        Event {
            etype,
            id,
            ts,
            value,
            lat: 0.0,
            lon: 0.0,
        }
    }

    /// Read a named attribute, the common currency of the predicate layer.
    #[inline]
    pub fn attr(&self, a: Attr) -> f64 {
        match a {
            Attr::Value => self.value,
            Attr::Ts => self.ts.millis() as f64,
            Attr::Id => self.id as f64,
            Attr::Lat => self.lat as f64,
            Attr::Lon => self.lon as f64,
        }
    }
}

impl Eq for Event {}

impl std::hash::Hash for Event {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.etype.hash(state);
        self.id.hash(state);
        self.ts.hash(state);
        self.value.to_bits().hash(state);
        self.lat.to_bits().hash(state);
        self.lon.to_bits().hash(state);
    }
}

/// Named attributes of the common schema, used by predicates and the
/// pattern language (`e1.value`, `e2.id`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Attr {
    /// The measurement payload (`value`).
    Value,
    /// The event timestamp (`ts`).
    Ts,
    /// The sensor/entity id (`id`).
    Id,
    /// Latitude (`lat`), for spatial workloads.
    Lat,
    /// Longitude (`lon`), for spatial workloads.
    Lon,
}

impl Attr {
    /// Every attribute, in declaration order — the column set of the
    /// head-event block in [`crate::columnar::ColumnarBatch`] (plus the
    /// type column). Lets tests and generators enumerate the schema.
    pub const ALL: [Attr; 5] = [Attr::Value, Attr::Ts, Attr::Id, Attr::Lat, Attr::Lon];

    /// Parse an attribute name as written in the pattern language.
    pub fn parse(s: &str) -> Option<Attr> {
        match s {
            "value" => Some(Attr::Value),
            "ts" => Some(Attr::Ts),
            "id" => Some(Attr::Id),
            "lat" => Some(Attr::Lat),
            "lon" => Some(Attr::Lon),
            _ => None,
        }
    }

    /// The attribute's name as written in the pattern language.
    pub fn name(self) -> &'static str {
        match self {
            Attr::Value => "value",
            Attr::Ts => "ts",
            Attr::Id => "id",
            Attr::Lat => "lat",
            Attr::Lon => "lon",
        }
    }
}

impl fmt::Display for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_interns_and_resolves() {
        let mut reg = TypeRegistry::new();
        let q = reg.intern("Q");
        let v = reg.intern("V");
        assert_ne!(q, v);
        assert_eq!(reg.intern("Q"), q, "intern is idempotent");
        assert_eq!(reg.get("V"), Some(v));
        assert_eq!(reg.get("PM10"), None);
        assert_eq!(reg.name(q), Some("Q"));
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn registry_iteration_order_is_registration_order() {
        let mut reg = TypeRegistry::new();
        for n in ["Q", "V", "PM10"] {
            reg.intern(n);
        }
        let names: Vec<_> = reg.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["Q", "V", "PM10"]);
    }

    #[test]
    fn event_is_32_bytes() {
        // Join buffers hold millions of these; keep the layout compact.
        assert_eq!(std::mem::size_of::<Event>(), 32);
    }

    #[test]
    fn attr_accessors() {
        let mut e = Event::new(EventType(3), 7, Timestamp::from_minutes(2), 42.5);
        e.lat = 50.1;
        e.lon = 8.7;
        assert_eq!(e.attr(Attr::Value), 42.5);
        assert_eq!(e.attr(Attr::Id), 7.0);
        assert_eq!(e.attr(Attr::Ts), (2 * crate::time::MINUTE_MS) as f64);
        assert!((e.attr(Attr::Lat) - 50.1).abs() < 1e-5);
        assert!((e.attr(Attr::Lon) - 8.7).abs() < 1e-5);
    }

    #[test]
    fn attr_parse_round_trips() {
        for a in [Attr::Value, Attr::Ts, Attr::Id, Attr::Lat, Attr::Lon] {
            assert_eq!(Attr::parse(a.name()), Some(a));
        }
        assert_eq!(Attr::parse("speed"), None);
    }
}
