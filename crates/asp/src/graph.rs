//! Dataflow graph construction (the processing model of Section 2,
//! model 3): sources, operators, and sinks connected by directed edges with
//! an exchange strategy per edge.
//!
//! A [`GraphBuilder`] assembles the logical graph; [`crate::runtime::Executor`]
//! turns every node into `parallelism` independently-threaded instances
//! ("task slots") and every edge into per-instance-pair channels.

use std::sync::Arc;

use crate::event::Event;
use crate::operator::Operator;

/// How tuples travel across an edge.
///
/// At runtime an edge carries micro-batched envelopes: the sender
/// accumulates up to [`crate::runtime::ExecutorConfig::batch_size`] tuples
/// per destination instance and ships them as one channel message, so the
/// exchange pattern decides *where* a tuple goes while batching amortizes
/// *how often* the channel is touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exchange {
    /// Direct 1:1 wiring; requires equal parallelism on both ends.
    Forward,
    /// Partition by `tuple.key` — the shuffling step that re-partitions
    /// sub-operation outputs (and the vehicle of the O3 optimization).
    Hash,
    /// Round-robin redistribution for stateless load balancing.
    Rebalance,
}

/// Identifies a node in the graph under construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) usize);

/// Identifies a sink; used to retrieve collected output from a
/// [`crate::runtime::RunReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SinkId(pub(crate) usize);

/// What a sink retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SinkMode {
    /// Keep every tuple (tests, examples).
    #[default]
    Collect,
    /// Keep only counts + sampled latencies (benchmarks producing millions
    /// of matches).
    CountOnly,
}

/// Creates one operator instance per task slot. The argument is the
/// instance index `0..parallelism`.
pub type OperatorFactory = Box<dyn Fn(usize) -> Box<dyn Operator> + Send>;

/// Source behaviour knobs.
#[derive(Clone)]
pub struct SourceConfig {
    /// Pre-generated events in *arrival* order. With parallelism > 1 the
    /// events are dealt round-robin. Arrival order may deviate from
    /// timestamp order by at most [`SourceConfig::watermark_lag`].
    pub events: Arc<Vec<Event>>,
    /// Emit a watermark every `watermark_every` events (punctuated
    /// watermarking). This is also the source's output-flush cadence:
    /// pending micro-batches are released with each punctuation so the
    /// watermark never overtakes the tuples it covers.
    pub watermark_every: usize,
    /// Optional pacing in events/second *per instance*; `None` = as fast
    /// as backpressure allows (how sustainable throughput is probed).
    pub rate: Option<f64>,
    /// Bounded out-of-orderness: watermarks assert `max seen ts − lag`,
    /// tolerating arrivals up to `lag` behind the newest event (Flink's
    /// bounded-out-of-orderness strategy). Zero for in-order producers.
    pub watermark_lag: crate::time::Duration,
    /// Set when a negative lag was clamped to zero; surfaced by
    /// [`crate::validate::check`] as a `G014` warning.
    pub(crate) lag_clamped: bool,
}

impl SourceConfig {
    /// A source replaying `events` as fast as possible, with a watermark
    /// every 256 events and no out-of-orderness allowance.
    pub fn new(events: Vec<Event>) -> Self {
        SourceConfig {
            events: Arc::new(events),
            watermark_every: 256,
            rate: None,
            watermark_lag: crate::time::Duration::ZERO,
            lag_clamped: false,
        }
    }

    /// A source replaying an already-`Arc`ed event array — the multi-
    /// pattern path, where many scans over the same stream must not copy
    /// it once per scan. Same defaults as [`SourceConfig::new`].
    pub fn from_shared(events: Arc<Vec<Event>>) -> Self {
        SourceConfig {
            events,
            watermark_every: 256,
            rate: None,
            watermark_lag: crate::time::Duration::ZERO,
            lag_clamped: false,
        }
    }

    /// Pace the replay at `events_per_sec` (wall-clock throttling).
    pub fn with_rate(mut self, events_per_sec: f64) -> Self {
        self.rate = Some(events_per_sec);
        self
    }

    /// Emit a watermark after every `n` events (clamped to ≥ 1).
    pub fn with_watermark_every(mut self, n: usize) -> Self {
        self.watermark_every = n.max(1);
        self
    }

    /// Tolerate arrivals up to `lag` behind the newest seen timestamp.
    ///
    /// A negative lag is meaningless (it would assert watermarks *ahead* of
    /// observed time); it is clamped to zero and reported as a `G014`
    /// warning by [`crate::validate::check`].
    pub fn with_watermark_lag(mut self, lag: crate::time::Duration) -> Self {
        if lag.millis() < 0 {
            self.watermark_lag = crate::time::Duration::ZERO;
            self.lag_clamped = true;
        } else {
            self.watermark_lag = lag;
        }
        self
    }
}

pub(crate) enum NodeKind {
    Source {
        cfg: SourceConfig,
        /// Operators fused into the source task by chaining.
        chain: Vec<OperatorFactory>,
    },
    Operator(OperatorFactory),
    Sink(SinkId),
}

pub(crate) struct Node {
    pub name: String,
    pub parallelism: usize,
    pub kind: NodeKind,
    /// Marked by [`GraphBuilder::shard_node`]: this node's instances form a
    /// shared-nothing keyed shard group routed through a
    /// `runtime::shard::ShardPlan` slot table instead of plain
    /// hash-mod routing, making its keys eligible for adaptive migration.
    pub sharded: bool,
}

pub(crate) struct Edge {
    pub src: NodeId,
    pub dst: NodeId,
    /// Logical input port on `dst` (0 = left/only, 1 = right, …).
    pub port: usize,
    pub exchange: Exchange,
}

/// Builder for dataflow graphs.
///
/// The builder itself accepts anything — structural problems (dangling
/// inputs, zero parallelism, missing sinks…) are reported as typed
/// [`crate::validate::Diagnostic`]s by [`crate::validate::validate`], which
/// [`crate::runtime::Executor::run`] invokes before spawning any thread.
#[derive(Default)]
pub struct GraphBuilder {
    pub(crate) nodes: Vec<Node>,
    pub(crate) edges: Vec<Edge>,
    pub(crate) sink_count: usize,
    pub(crate) sink_modes: Vec<SinkMode>,
    /// Builder-misuse warnings, surfaced by [`crate::validate::check`].
    pub(crate) warnings: Vec<crate::validate::Diagnostic>,
}

impl GraphBuilder {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, node: Node) -> NodeId {
        self.nodes.push(node);
        NodeId(self.nodes.len() - 1)
    }

    /// Add a source over a pre-generated, ts-sorted event vector.
    pub fn source(
        &mut self,
        name: impl Into<String>,
        events: Vec<Event>,
        parallelism: usize,
    ) -> NodeId {
        self.source_with(name, SourceConfig::new(events), parallelism)
    }

    /// Add a source with explicit configuration.
    pub fn source_with(
        &mut self,
        name: impl Into<String>,
        cfg: SourceConfig,
        parallelism: usize,
    ) -> NodeId {
        // Parallelism 0 is reported as G007 by `validate`, not a panic here.
        self.push(Node {
            name: name.into(),
            parallelism,
            kind: NodeKind::Source {
                cfg,
                chain: Vec::new(),
            },
            sharded: false,
        })
    }

    /// Add a single-input operator.
    pub fn unary(
        &mut self,
        input: NodeId,
        exchange: Exchange,
        parallelism: usize,
        factory: OperatorFactory,
    ) -> NodeId {
        self.nary(&[(input, exchange)], parallelism, factory)
    }

    /// Add a two-input operator (port 0 = left, port 1 = right).
    pub fn binary(
        &mut self,
        left: NodeId,
        right: NodeId,
        exchange: Exchange,
        parallelism: usize,
        factory: OperatorFactory,
    ) -> NodeId {
        self.nary(&[(left, exchange), (right, exchange)], parallelism, factory)
    }

    /// Add an operator with any number of inputs; the i-th entry feeds
    /// logical port i.
    pub fn nary(
        &mut self,
        inputs: &[(NodeId, Exchange)],
        parallelism: usize,
        factory: OperatorFactory,
    ) -> NodeId {
        // Zero parallelism (G007), empty inputs (G011), and forward
        // references (G001/G006) are all reported by `validate` instead of
        // panicking during construction.
        let name = format!("op{}", self.nodes.len());
        let id = self.push(Node {
            name,
            parallelism,
            kind: NodeKind::Operator(factory),
            sharded: false,
        });
        for (port, (src, exchange)) in inputs.iter().enumerate() {
            self.edges.push(Edge {
                src: *src,
                dst: id,
                port,
                exchange: *exchange,
            });
        }
        id
    }

    /// Add a collecting sink (always parallelism 1 so output order metrics
    /// and latency sampling live in one place).
    pub fn sink(&mut self, input: NodeId, exchange: Exchange) -> SinkId {
        self.sink_with_mode(input, exchange, SinkMode::Collect)
    }

    /// Add a count-only sink for benchmark runs with huge match volumes.
    pub fn counting_sink(&mut self, input: NodeId, exchange: Exchange) -> SinkId {
        self.sink_with_mode(input, exchange, SinkMode::CountOnly)
    }

    /// Add a sink with an explicit retention mode.
    pub fn sink_with_mode(&mut self, input: NodeId, exchange: Exchange, mode: SinkMode) -> SinkId {
        let sid = SinkId(self.sink_count);
        self.sink_count += 1;
        self.sink_modes.push(mode);
        let id = self.push(Node {
            name: format!("sink{}", sid.0),
            parallelism: 1,
            kind: NodeKind::Sink(sid),
            sharded: false,
        });
        self.edges.push(Edge {
            src: input,
            dst: id,
            port: 0,
            exchange,
        });
        sid
    }

    /// Name the most recently added node (for plans and metrics).
    ///
    /// Calling this on an empty builder used to be a silent no-op; it is now
    /// recorded as a `G013` warning so the lost name is visible in
    /// [`crate::validate::check`] output.
    pub fn name_last(&mut self, name: impl Into<String>) {
        let name = name.into();
        if let Some(n) = self.nodes.last_mut() {
            n.name = name;
        } else {
            self.warnings.push(crate::validate::Diagnostic::warning(
                crate::validate::Code::BuilderMisuse,
                None,
                format!("name_last(\"{name}\") called on an empty builder; the name is dropped"),
            ));
        }
    }

    /// Mark `node` as a shared-nothing keyed shard group: its instances are
    /// routed through a mutable slot table (`runtime::shard`)
    /// instead of static hash-mod partitioning, which lets the adaptive
    /// rebalancer migrate hot key slots between instances at runtime.
    ///
    /// Every input edge of a sharded node must be [`Exchange::Hash`]
    /// (checked as `G018` by [`crate::validate::check`]): shard routing owns
    /// key placement, and any other exchange would scatter a key's tuples
    /// across shards. Marking a node that does not exist is recorded as a
    /// `G013` builder-misuse warning.
    pub fn shard_node(&mut self, node: NodeId) {
        if let Some(n) = self.nodes.get_mut(node.0) {
            n.sharded = true;
        } else {
            self.warnings.push(crate::validate::Diagnostic::warning(
                crate::validate::Code::BuilderMisuse,
                None,
                format!("shard_node({}) references a node outside the graph", node.0),
            ));
        }
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Append another graph's nodes and edges to this one (multi-job
    /// composition with shared executor slots). Returns the re-mapped
    /// [`SinkId`]s of `other`'s sinks, in their original order.
    pub fn splice(&mut self, other: GraphBuilder) -> Vec<SinkId> {
        let node_offset = self.nodes.len();
        let sink_offset = self.sink_count;
        // Out-of-range edges in `other` would be silently remapped into
        // nonsense ids; catch them in debug builds. In release they survive
        // the remap and are reported as G001 by `validate`.
        debug_assert!(
            other
                .edges
                .iter()
                .all(|e| e.src.0 < other.nodes.len() && e.dst.0 < other.nodes.len()),
            "splice: `other` contains edges referencing nodes outside itself"
        );
        let mut mapped = vec![SinkId(usize::MAX); other.sink_count];
        for mut node in other.nodes {
            if let NodeKind::Sink(sid) = &mut node.kind {
                let new = SinkId(sink_offset + sid.0);
                mapped[sid.0] = new;
                *sid = new;
            }
            self.nodes.push(node);
        }
        for e in other.edges {
            self.edges.push(Edge {
                src: NodeId(e.src.0 + node_offset),
                dst: NodeId(e.dst.0 + node_offset),
                port: e.port,
                exchange: e.exchange,
            });
        }
        self.sink_count += other.sink_count;
        self.sink_modes.extend(other.sink_modes);
        self.warnings.extend(other.warnings);
        debug_assert!(mapped.iter().all(|s| s.0 != usize::MAX));
        mapped
    }

    /// Test support: number of edges added so far (edges are stored in
    /// construction order).
    #[doc(hidden)]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Test support: remove the edge at `index` (construction order),
    /// simulating a builder that forgot to wire an input. The damage is
    /// reported by [`crate::validate::check`], not here.
    #[doc(hidden)]
    pub fn drop_edge(&mut self, index: usize) {
        self.edges.remove(index);
    }

    /// Test support: duplicate the edge at `index` verbatim, producing a
    /// duplicated destination port (`G004`).
    #[doc(hidden)]
    pub fn duplicate_edge(&mut self, index: usize) {
        let Edge {
            src,
            dst,
            port,
            exchange,
        } = self.edges[index];
        self.edges.push(Edge {
            src,
            dst,
            port,
            exchange,
        });
    }

    /// Test support: overwrite a node's parallelism after construction,
    /// e.g. to break a `Forward` exchange (`G005`) or zero it out (`G007`).
    #[doc(hidden)]
    pub fn set_parallelism(&mut self, node: NodeId, parallelism: usize) {
        self.nodes[node.0].parallelism = parallelism;
    }

    /// Per-port upstream parallelism of a node, in port order, plus
    /// whether the upstream task is a source. Source tasks (with any
    /// operators fused into them) are exempt from the emission-floor
    /// contract — an under-estimated `watermark_lag` makes them emit
    /// tuples behind their own watermark, and `drop_late` at the next
    /// *operator* task is the documented degradation path — so consumers
    /// fed straight by a source channel must tolerate late tuples.
    pub(crate) fn input_channels(&self, node: NodeId) -> Vec<(usize, usize, bool)> {
        let mut ports: Vec<(usize, usize, bool)> = self
            .edges
            .iter()
            .filter(|e| e.dst == node)
            .map(|e| {
                let src = &self.nodes[e.src.0];
                (
                    e.port,
                    src.parallelism,
                    matches!(src.kind, NodeKind::Source { .. }),
                )
            })
            .collect();
        ports.sort_unstable();
        ports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventType;
    use crate::operator::FilterOp;
    use crate::time::Timestamp;

    fn some_events(n: i64) -> Vec<Event> {
        (0..n)
            .map(|i| Event::new(EventType(0), 0, Timestamp::from_minutes(i), i as f64))
            .collect()
    }

    #[test]
    fn builder_assigns_sequential_ids_and_ports() {
        let mut g = GraphBuilder::new();
        let a = g.source("a", some_events(3), 1);
        let b = g.source("b", some_events(3), 2);
        let j = g.binary(
            a,
            b,
            Exchange::Hash,
            2,
            Box::new(|_| Box::new(FilterOp::new("f", crate::operator::always_true()))),
        );
        let _s = g.sink(j, Exchange::Forward);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.input_channels(j), vec![(0, 1, true), (1, 2, true)]);
    }

    #[test]
    fn forward_references_are_rejected() {
        let mut g = GraphBuilder::new();
        let a = g.source("a", some_events(1), 1);
        // Fabricate a dangling id beyond the current node count. The builder
        // accepts it; validation flags the edge as G001.
        let bogus = NodeId(5);
        let f = g.binary(
            a,
            bogus,
            Exchange::Forward,
            1,
            Box::new(|_| Box::new(FilterOp::new("f", crate::operator::always_true()))),
        );
        let _ = g.sink(f, Exchange::Forward);
        let errs = crate::validate::validate(&g).unwrap_err();
        assert!(
            errs.iter()
                .any(|d| d.code == crate::validate::Code::DanglingEdge),
            "expected G001, got {errs:?}"
        );
    }

    #[test]
    fn negative_watermark_lag_is_clamped() {
        use crate::time::Duration;
        let cfg = SourceConfig::new(some_events(1)).with_watermark_lag(Duration::from_millis(-250));
        assert_eq!(cfg.watermark_lag, Duration::ZERO);
        assert!(cfg.lag_clamped);
        // Non-negative lags pass through untouched.
        let cfg = SourceConfig::new(some_events(1)).with_watermark_lag(Duration::from_millis(250));
        assert_eq!(cfg.watermark_lag, Duration::from_millis(250));
        assert!(!cfg.lag_clamped);
    }

    #[test]
    fn source_config_defaults() {
        let cfg = SourceConfig::new(some_events(2));
        assert_eq!(cfg.watermark_every, 256);
        assert!(cfg.rate.is_none());
        let cfg = cfg.with_rate(1000.0).with_watermark_every(0);
        assert_eq!(cfg.rate, Some(1000.0));
        assert_eq!(cfg.watermark_every, 1, "clamped to at least 1");
    }
}
