//! # asp — an analytical stream processing substrate
//!
//! A from-scratch, multi-threaded, push-based dataflow engine in the style
//! of Apache Flink's DataStream runtime, built as the execution substrate
//! for the CEP-to-ASP operator mapping of *Bridging the Gap: Complex Event
//! Processing on Stream Processing Systems* (Ziehn et al., EDBT 2024).
//!
//! The engine provides exactly the ingredients the paper's mapping needs:
//!
//! * **Event-time processing** with per-channel watermark merging
//!   ([`runtime`]): operators observe one monotone event-time clock.
//! * **Explicit windowing** ([`window::SlidingWindows`]): sliding and
//!   tumbling window assignment with the paper's `[ts_b, ts_e)` intra-window
//!   semantic.
//! * **The operator library** ([`operator`]): filter (σ), map (Π), union
//!   (∪), sliding-window join (⋈ — cross, theta, equi), interval join (O1),
//!   window aggregation (O2), UDF window functions, and the NSEQ
//!   next-occurrence rewrite.
//! * **A columnar data plane** ([`columnar::ColumnarBatch`]): the stateless
//!   tier (σ, Π, ∪) runs as vectorized per-column loops over
//!   struct-of-arrays micro-batches with selection vectors; stateful
//!   operators keep per-tuple logic behind a row-conversion shim.
//! * **Keyed data parallelism**: hash exchanges split stateful operators
//!   into independently-progressing instances across "task slots"
//!   (threads), and bounded channels deliver genuine backpressure so
//!   sustainable throughput is a measurable quantity.
//! * **State accounting**: every stateful operator reports its buffered
//!   footprint; the runtime samples it for resource studies and can enforce
//!   per-operator memory budgets.
//!
//! ## Quick example
//!
//! ```
//! use std::sync::Arc;
//! use asp::event::{Event, EventType};
//! use asp::graph::{Exchange, GraphBuilder};
//! use asp::operator::FilterOp;
//! use asp::runtime::{Executor, ExecutorConfig};
//! use asp::time::Timestamp;
//! use asp::tuple::Tuple;
//!
//! // A tiny pipeline: source → filter(value > 5) → sink.
//! let events: Vec<Event> = (0..10)
//!     .map(|i| Event::new(EventType(0), 1, Timestamp::from_minutes(i), i as f64))
//!     .collect();
//! let mut g = GraphBuilder::new();
//! let src = g.source("numbers", events, 1);
//! let filt = g.unary(
//!     src,
//!     Exchange::Forward,
//!     1,
//!     Box::new(|_| Box::new(FilterOp::new("σ", Arc::new(|t: &Tuple| t.events[0].value > 5.0)))),
//! );
//! let sink = g.sink(filt, Exchange::Forward);
//! let report = Executor::new(ExecutorConfig::default()).run(g).unwrap();
//! assert_eq!(report.sink(sink).len(), 4);
//! ```

// Unit tests may unwrap freely; production code must not (workspace lint).
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod columnar;
pub mod error;
pub mod event;
pub mod graph;
pub mod obs;
pub mod operator;
pub mod runtime;
pub mod sim;
pub mod time;
pub mod tuple;
pub mod validate;
pub mod window;

pub use columnar::ColumnarBatch;
pub use error::{OpError, PipelineError};
pub use event::{Attr, Event, EventType, TypeRegistry};
pub use obs::{BoundViolation, StaticBounds};
pub use time::{Duration, Timestamp, MINUTE_MS};
pub use tuple::{Key, MatchKey, TsRule, Tuple};
pub use validate::{Diagnostic, Severity};
