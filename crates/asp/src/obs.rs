//! Observability primitives: a ring-buffered structured event log and
//! lock-free fixed-bucket latency histograms.
//!
//! Both facilities are designed for the runtime's hot path:
//!
//! * [`LatencyHistogram`] records one observation with two relaxed atomic
//!   adds into a fixed power-of-two bucket array — no locks, no
//!   allocation, and instances can be read while workers keep writing.
//!   The harness samples one in every
//!   [`ExecutorConfig::proc_latency_every`](crate::runtime::ExecutorConfig::proc_latency_every)
//!   tuples, so the amortized cost per tuple is a fraction of a
//!   nanosecond.
//! * [`EventLog`] is a control-plane facility (task lifecycle, progress
//!   reports, teardown anomalies): bounded memory via a ring, one short
//!   mutex hold per emission, never on the per-tuple path. There is no
//!   network, no I/O, and no external dependency — the ring is exported
//!   as part of [`RunReport`](crate::runtime::RunReport) and rendered by
//!   [`RunReport::to_json`](crate::runtime::RunReport::to_json).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;
use serde::Serialize;

/// Severity of a structured log event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Level {
    /// Fine-grained diagnostics (flush decisions, chain wiring).
    Debug,
    /// Normal lifecycle milestones (task start/finish, progress reports).
    Info,
    /// Unexpected but tolerated conditions (late data, clamped config).
    Warn,
    /// Conditions that abort or corrupt a run.
    Error,
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Level::Debug => "DEBUG",
            Level::Info => "INFO",
            Level::Warn => "WARN",
            Level::Error => "ERROR",
        };
        f.write_str(s)
    }
}

/// One structured event in the ring.
#[derive(Debug, Clone, Serialize)]
pub struct LogEvent {
    /// Monotone sequence number across the whole log (gaps reveal events
    /// displaced from the ring).
    pub seq: u64,
    /// Milliseconds since the log's epoch (run start).
    pub elapsed_ms: u64,
    /// Severity.
    pub level: Level,
    /// Emitting task or subsystem (e.g. `"executor"`, `"progress"`).
    pub task: String,
    /// Human-readable description.
    pub message: String,
}

/// A bounded, ring-buffered structured event log.
///
/// When the ring is full the oldest event is displaced (and counted in
/// [`EventLog::displaced`]); emission therefore never blocks on a reader
/// and memory stays bounded regardless of run length. A capacity of 0
/// disables the log entirely (every emission counts as displaced).
pub struct EventLog {
    epoch: Instant,
    capacity: usize,
    seq: AtomicU64,
    displaced: AtomicU64,
    ring: Mutex<VecDeque<LogEvent>>,
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("capacity", &self.capacity)
            .field("emitted", &self.seq.load(Ordering::Relaxed))
            .field("displaced", &self.displaced.load(Ordering::Relaxed))
            .finish()
    }
}

impl EventLog {
    /// A log retaining at most `capacity` events (0 disables retention).
    pub fn new(capacity: usize) -> Self {
        EventLog {
            epoch: Instant::now(),
            capacity,
            seq: AtomicU64::new(0),
            displaced: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
        }
    }

    /// Append an event, displacing the oldest one if the ring is full.
    pub fn emit(&self, level: Level, task: &str, message: impl Into<String>) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if self.capacity == 0 {
            self.displaced.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let ev = LogEvent {
            seq,
            elapsed_ms: self.epoch.elapsed().as_millis() as u64,
            level,
            task: task.to_string(),
            message: message.into(),
        };
        let mut ring = self.ring.lock();
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.displaced.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(ev);
    }

    /// Copy of the currently retained events, oldest first.
    pub fn snapshot(&self) -> Vec<LogEvent> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Total events emitted over the log's lifetime (including displaced).
    pub fn emitted(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Events pushed out of the ring (or discarded at capacity 0).
    pub fn displaced(&self) -> u64 {
        self.displaced.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two buckets in a [`LatencyHistogram`]: bucket `i`
/// covers `[2^i, 2^(i+1))` nanoseconds (bucket 0 additionally covers 0),
/// so the range spans 1 ns .. ~9.2 minutes — wide enough for any
/// per-tuple or per-watermark processing time.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A fixed-bucket, lock-free latency histogram.
///
/// Writers call [`LatencyHistogram::record`] with relaxed atomics; readers
/// take a [`HistogramSummary`] at any time. Relaxed ordering is sufficient
/// because each counter is independent and the report is only assembled
/// after worker threads are joined (the join is the synchronization edge);
/// mid-run samples tolerate being approximate.
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Bucket index for an observation: `floor(log2(ns))`, clamped to the
    /// last bucket; 0 ns lands in bucket 0.
    #[inline]
    pub fn bucket_of(ns: u64) -> usize {
        if ns <= 1 {
            0
        } else {
            ((63 - ns.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Inclusive upper bound of bucket `i` in nanoseconds.
    #[inline]
    pub fn bucket_upper_ns(i: usize) -> u64 {
        if i + 1 >= 64 {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        }
    }

    /// Record one observation in nanoseconds.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.counts[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Total observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Snapshot the histogram into an owned, mergeable summary.
    pub fn summary(&self) -> HistogramSummary {
        let buckets = self
            .counts
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let count = c.load(Ordering::Relaxed);
                (count > 0).then_some(HistogramBucket {
                    le_ns: Self::bucket_upper_ns(i),
                    count,
                })
            })
            .collect();
        HistogramSummary {
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// One non-empty histogram bucket: `count` observations at most `le_ns`
/// nanoseconds (and above the previous bucket's bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct HistogramBucket {
    /// Inclusive upper bound of the bucket, nanoseconds.
    pub le_ns: u64,
    /// Observations that fell into this bucket.
    pub count: u64,
}

/// An owned snapshot of a [`LatencyHistogram`], mergeable across operator
/// instances and exportable to JSON.
#[derive(Debug, Clone, Default, Serialize)]
pub struct HistogramSummary {
    /// Total observations.
    pub count: u64,
    /// Sum of all observations, nanoseconds.
    pub sum_ns: u64,
    /// Largest observation, nanoseconds.
    pub max_ns: u64,
    /// Non-empty buckets, ascending by bound.
    pub buckets: Vec<HistogramBucket>,
}

impl HistogramSummary {
    /// Arithmetic mean in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64 / 1_000.0
        }
    }

    /// Upper bound (ns) of the bucket holding the `q`-quantile
    /// observation, by ceiling nearest rank over bucket counts. Returns 0
    /// when empty. Resolution is one power of two — adequate for "p99 is
    /// tens of microseconds" statements, not for exact percentiles.
    pub fn quantile_le_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 * q.clamp(0.0, 1.0)).ceil() as u64).max(1);
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen >= rank {
                return b.le_ns;
            }
        }
        self.max_ns
    }

    /// Fold another summary into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &HistogramSummary) {
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        let mut merged: std::collections::BTreeMap<u64, u64> =
            self.buckets.iter().map(|b| (b.le_ns, b.count)).collect();
        for b in &other.buckets {
            *merged.entry(b.le_ns).or_insert(0) += b.count;
        }
        self.buckets = merged
            .into_iter()
            .map(|(le_ns, count)| HistogramBucket { le_ns, count })
            .collect();
    }
}

/// Statically derived hard limits for one pipeline run, produced by a
/// plan-level cost model (e.g. `cep2asp::analyze::runtime_bounds`) and
/// checked against the observed telemetry by
/// [`RunReport::check_bounds`](crate::runtime::RunReport::check_bounds).
///
/// `None` means "no claim" for that quantity. The check makes the cost
/// model *falsifiable*: a bound the run exceeds is a bug in the model (or
/// a leak in the runtime), not an overload condition.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StaticBounds {
    /// Upper bound on the total tuples delivered to all sinks.
    pub max_sink_tuples: Option<u64>,
    /// Upper bound on the summed per-operator peak state, bytes.
    pub max_total_state_bytes: Option<u64>,
    /// Upper bound on the longest per-key run any keyed join side may
    /// buffer (tuples sharing one partition key on one side of one join
    /// instance).
    pub max_keyed_run: Option<u64>,
    /// Where the bounds came from (module path or experiment name),
    /// echoed in violation reports.
    pub origin: String,
}

/// One observed quantity that exceeded its [`StaticBounds`] limit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundViolation {
    /// Which quantity overflowed (`"sink_tuples"`, `"state_bytes"`,
    /// `"keyed_run_len"`).
    pub quantity: &'static str,
    /// The value the run actually reached.
    pub actual: u64,
    /// The static limit it was expected to stay under.
    pub bound: u64,
    /// The `origin` of the violated [`StaticBounds`].
    pub origin: String,
}

impl std::fmt::Display for BoundViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bound violation: {} = {} exceeds static bound {} (from {})",
            self.quantity, self.actual, self.bound, self.origin
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Heavier loops are wasteful under Miri's interpreter; keep the
    /// interleaving coverage, shrink the constants.
    const CONCURRENCY_ITERS: u64 = if cfg!(miri) { 50 } else { 5_000 };

    #[test]
    fn bucket_bounds_are_powers_of_two() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 0);
        assert_eq!(LatencyHistogram::bucket_of(2), 1);
        assert_eq!(LatencyHistogram::bucket_of(3), 1);
        assert_eq!(LatencyHistogram::bucket_of(4), 2);
        assert_eq!(LatencyHistogram::bucket_of(1023), 9);
        assert_eq!(LatencyHistogram::bucket_of(1024), 10);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(LatencyHistogram::bucket_upper_ns(0), 1);
        assert_eq!(LatencyHistogram::bucket_upper_ns(9), 1023);
    }

    #[test]
    fn record_and_summarize() {
        let h = LatencyHistogram::default();
        for ns in [100u64, 200, 300, 90_000] {
            h.record(ns);
        }
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum_ns, 90_600);
        assert_eq!(s.max_ns, 90_000);
        assert!((s.mean_us() - 22.65).abs() < 1e-9);
        // p50 lands in the bucket of the 2nd observation (200 ns → [128, 255]).
        assert_eq!(s.quantile_le_ns(0.50), 255);
        // p99 lands in the top bucket (90 µs → [65536, 131071]).
        assert_eq!(s.quantile_le_ns(0.99), 131_071);
    }

    #[test]
    fn summaries_merge_bucketwise() {
        let a = LatencyHistogram::default();
        let b = LatencyHistogram::default();
        a.record(100);
        a.record(1_000);
        b.record(100);
        b.record(1_000_000);
        let mut s = a.summary();
        s.merge(&b.summary());
        assert_eq!(s.count, 4);
        assert_eq!(s.max_ns, 1_000_000);
        let total: u64 = s.buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, 4);
        // The two 100 ns observations share one bucket after the merge.
        assert!(s.buckets.iter().any(|b| b.le_ns == 127 && b.count == 2));
    }

    #[test]
    fn event_log_displaces_oldest_and_keeps_seq() {
        let log = EventLog::new(2);
        log.emit(Level::Info, "a", "first");
        log.emit(Level::Warn, "b", "second");
        log.emit(Level::Error, "c", "third");
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].seq, 1);
        assert_eq!(snap[1].seq, 2);
        assert_eq!(snap[1].message, "third");
        assert_eq!(log.emitted(), 3);
        assert_eq!(log.displaced(), 1);
    }

    #[test]
    fn zero_capacity_log_retains_nothing() {
        let log = EventLog::new(0);
        log.emit(Level::Info, "a", "dropped");
        assert!(log.snapshot().is_empty());
        assert_eq!(log.emitted(), 1);
        assert_eq!(log.displaced(), 1);
    }

    #[test]
    fn histogram_is_shareable_across_threads() {
        use std::sync::Arc;
        let h = Arc::new(LatencyHistogram::default());
        let per_thread = CONCURRENCY_ITERS / 5;
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for k in 0..per_thread {
                        h.record(i * 1000 + k);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().expect("recorder thread");
        }
        assert_eq!(h.count(), 4 * per_thread);
        assert_eq!(
            h.summary().buckets.iter().map(|b| b.count).sum::<u64>(),
            4 * per_thread
        );
    }

    #[test]
    fn histogram_summary_is_coherent_under_concurrent_writes() {
        // Readers snapshot while writers keep recording: every snapshot
        // must be internally coherent (bucket sum never exceeds count
        // recorded *after* the snapshot completes; totals settle exactly).
        use std::sync::Arc;
        let h = Arc::new(LatencyHistogram::default());
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for k in 0..CONCURRENCY_ITERS {
                        h.record(k % 4096);
                    }
                })
            })
            .collect();
        let reader = {
            let h = h.clone();
            std::thread::spawn(move || {
                let mut last = 0u64;
                for _ in 0..20 {
                    let s = h.summary();
                    let bucketed: u64 = s.buckets.iter().map(|b| b.count).sum();
                    // A snapshot may tear between buckets and counters,
                    // but can never exceed the total writes issued.
                    assert!(bucketed <= 2 * CONCURRENCY_ITERS);
                    assert!(s.count <= 2 * CONCURRENCY_ITERS);
                    assert!(s.count >= last, "count went backwards");
                    last = s.count;
                }
            })
        };
        for t in writers {
            t.join().expect("writer thread");
        }
        reader.join().expect("reader thread");
        let s = h.summary();
        assert_eq!(s.count, 2 * CONCURRENCY_ITERS);
        assert_eq!(
            s.buckets.iter().map(|b| b.count).sum::<u64>(),
            2 * CONCURRENCY_ITERS
        );
    }

    #[test]
    fn event_log_is_coherent_under_concurrent_emitters() {
        use std::sync::Arc;
        let log = Arc::new(EventLog::new(64));
        let per_thread = (CONCURRENCY_ITERS / 10).max(10);
        let emitters: Vec<_> = (0..3)
            .map(|i| {
                let log = log.clone();
                std::thread::spawn(move || {
                    for k in 0..per_thread {
                        log.emit(Level::Info, "worker", format!("t{i} msg {k}"));
                    }
                })
            })
            .collect();
        for t in emitters {
            t.join().expect("emitter thread");
        }
        let total = 3 * per_thread;
        assert_eq!(log.emitted(), total);
        assert_eq!(log.displaced(), total.saturating_sub(64));
        let snap = log.snapshot();
        assert_eq!(snap.len(), 64usize.min(total as usize));
        // Sequence numbers are strictly increasing across the ring.
        for w in snap.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }

    #[test]
    fn bound_violation_renders_origin() {
        let v = BoundViolation {
            quantity: "sink_tuples",
            actual: 12,
            bound: 10,
            origin: "test-model".to_string(),
        };
        let s = v.to_string();
        assert!(s.contains("sink_tuples"), "{s}");
        assert!(s.contains("test-model"), "{s}");
        assert_eq!(StaticBounds::default().max_sink_tuples, None);
    }
}
