//! Windowed aggregation — optimization O2 (paper Section 4.3.2).
//!
//! The iteration operator `ITER_m` (and its Kleene+ extension) can be
//! approximated by a per-window count: if the number `n` of relevant events
//! in the window satisfies `n ≥ m`, the pattern holds under
//! skip-till-any-match. The aggregate emits *one tuple per non-empty
//! window* (windows without events never trigger — hence no Kleene*
//! support), carrying the aggregate in [`crate::tuple::Tuple::agg`] and a
//! representative event so the output keeps the input schema.

use std::collections::{BTreeMap, HashMap};

use crate::error::OpError;
use crate::operator::{Collector, Operator};
use crate::time::{Duration, Timestamp};
use crate::tuple::{Key, Tuple};
use crate::window::{SlidingWindows, WindowId};

/// Built-in aggregate functions over the first constituent's `value`
/// attribute (plus `Count`, which ignores values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// Number of constituents in the pane.
    Count,
    /// Sum of `value`.
    Sum,
    /// Arithmetic mean of `value`.
    Avg,
    /// Minimum `value`.
    Min,
    /// Maximum `value`.
    Max,
}

impl AggFn {
    /// Lower-case name for plan printing (`count`, `sum`, …).
    pub fn name(self) -> &'static str {
        match self {
            AggFn::Count => "count",
            AggFn::Sum => "sum",
            AggFn::Avg => "avg",
            AggFn::Min => "min",
            AggFn::Max => "max",
        }
    }
}

/// Incremental accumulator — aggregation state is O(1) per (window, key),
/// which is why O2 is the lightest-weight ITER mapping.
#[derive(Debug, Clone)]
struct Acc {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    last: Tuple,
}

impl Acc {
    fn new(first: &Tuple) -> Self {
        let v = first.events[0].value;
        Acc {
            count: 1,
            sum: v,
            min: v,
            max: v,
            last: first.clone(),
        }
    }

    fn add(&mut self, t: &Tuple) {
        let v = t.events[0].value;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if t.ts >= self.last.ts {
            self.last = t.clone();
        } else {
            self.last.wall = self.last.wall.max(t.wall);
        }
    }

    fn result(&self, f: AggFn) -> f64 {
        match f {
            AggFn::Count => self.count as f64,
            AggFn::Sum => self.sum,
            AggFn::Avg => self.sum / self.count as f64,
            AggFn::Min => self.min,
            AggFn::Max => self.max,
        }
    }
}

/// Sliding/tumbling window aggregate with an optional post-filter on the
/// aggregate value (e.g. `count ≥ m` for the ITER mapping).
pub struct WindowAggregateOp {
    name: String,
    windows: SlidingWindows,
    f: AggFn,
    /// Emit only windows whose aggregate passes this threshold check.
    emit_if: Option<fn(f64, f64) -> bool>,
    threshold: f64,
    panes: BTreeMap<WindowId, HashMap<Key, Acc>>,
    state_bytes: usize,
    emitted: u64,
}

impl WindowAggregateOp {
    /// An aggregation of `f` over `windows`, emitting one tuple per
    /// (window, key) pane when the watermark closes it.
    pub fn new(name: impl Into<String>, windows: SlidingWindows, f: AggFn) -> Self {
        WindowAggregateOp {
            name: name.into(),
            windows,
            f,
            emit_if: None,
            threshold: 0.0,
            panes: BTreeMap::new(),
            state_bytes: 0,
            emitted: 0,
        }
    }

    /// The ITER_m / Kleene+ mapping: emit a window iff `count ≥ m`.
    pub fn count_at_least(name: impl Into<String>, windows: SlidingWindows, m: u64) -> Self {
        let mut op = WindowAggregateOp::new(name, windows, AggFn::Count);
        op.emit_if = Some(|agg, thr| agg >= thr);
        op.threshold = m as f64;
        op
    }

    /// Number of pane results emitted so far (for tests and metrics).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    const ACC_COST: usize = std::mem::size_of::<Acc>() + std::mem::size_of::<Tuple>();

    fn fire(&mut self, upto: Timestamp, out: &mut dyn Collector) {
        while let Some((&wid, _)) = self.panes.first_key_value() {
            if wid.end > upto {
                break;
            }
            let pane = self.panes.remove(&wid).expect("pane exists");
            self.state_bytes = self.state_bytes.saturating_sub(pane.len() * Self::ACC_COST);
            for (key, acc) in pane {
                let agg = acc.result(self.f);
                if let Some(pred) = self.emit_if {
                    if !pred(agg, self.threshold) {
                        continue;
                    }
                }
                let mut t = acc.last.clone();
                t.key = key;
                // Flink convention: window result timestamp = window max ts.
                t.ts = wid.end - Duration(1);
                t.agg = Some(agg);
                self.emitted += 1;
                out.emit(t);
            }
        }
    }
}

impl Operator for WindowAggregateOp {
    fn process(
        &mut self,
        _input: usize,
        tuple: Tuple,
        _out: &mut dyn Collector,
    ) -> Result<(), OpError> {
        for wid in self.windows.assign(tuple.ts) {
            let pane = self.panes.entry(wid).or_default();
            match pane.get_mut(&tuple.key) {
                Some(acc) => acc.add(&tuple),
                None => {
                    pane.insert(tuple.key, Acc::new(&tuple));
                    self.state_bytes += Self::ACC_COST;
                }
            }
        }
        Ok(())
    }

    fn on_watermark(
        &mut self,
        wm: Timestamp,
        out: &mut dyn Collector,
    ) -> Result<Timestamp, OpError> {
        self.fire(wm, out);
        Ok(wm)
    }

    fn state_bytes(&self) -> usize {
        self.state_bytes
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::testutil::tup;
    use crate::operator::VecCollector;

    fn run(op: &mut WindowAggregateOp, feed: Vec<Tuple>) -> Vec<Tuple> {
        let mut col = VecCollector::default();
        for t in feed {
            let wm = t.ts;
            op.process(0, t, &mut col).unwrap();
            op.on_watermark(wm, &mut col).unwrap();
        }
        op.on_finish(&mut col).unwrap();
        col.out
    }

    #[test]
    fn count_per_tumbling_window() {
        let mut op = WindowAggregateOp::new(
            "γcount",
            SlidingWindows::tumbling(Duration::from_minutes(5)),
            AggFn::Count,
        );
        let out = run(
            &mut op,
            vec![tup(0, 0, 1, 1.0), tup(0, 0, 2, 1.0), tup(0, 0, 7, 1.0)],
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].agg, Some(2.0));
        assert_eq!(out[1].agg, Some(1.0));
    }

    #[test]
    fn empty_windows_never_trigger() {
        // Kleene* is unsupported because an empty window emits nothing.
        let mut op = WindowAggregateOp::new(
            "γcount",
            SlidingWindows::tumbling(Duration::from_minutes(5)),
            AggFn::Count,
        );
        let out = run(&mut op, vec![tup(0, 0, 1, 1.0), tup(0, 0, 22, 1.0)]);
        // Windows [5,10), [10,15), [15,20) are empty → only 2 outputs.
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn count_at_least_models_iter_m() {
        let mut op = WindowAggregateOp::count_at_least(
            "γcount≥3",
            SlidingWindows::tumbling(Duration::from_minutes(10)),
            3,
        );
        let out = run(
            &mut op,
            vec![
                tup(0, 0, 1, 1.0),
                tup(0, 0, 2, 1.0),
                tup(0, 0, 3, 1.0), // window [0,10): 3 events → emit
                tup(0, 0, 11, 1.0),
                tup(0, 0, 12, 1.0), // window [10,20): 2 events → suppressed
            ],
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].agg, Some(3.0));
        assert_eq!(out[0].ts, Timestamp::from_minutes(10) - Duration(1));
    }

    #[test]
    fn numeric_aggregates() {
        for (f, want) in [
            (AggFn::Sum, 9.0),
            (AggFn::Avg, 3.0),
            (AggFn::Min, 2.0),
            (AggFn::Max, 4.0),
        ] {
            let mut op = WindowAggregateOp::new(
                f.name(),
                SlidingWindows::tumbling(Duration::from_minutes(10)),
                f,
            );
            let out = run(
                &mut op,
                vec![tup(0, 0, 1, 2.0), tup(0, 0, 2, 3.0), tup(0, 0, 3, 4.0)],
            );
            assert_eq!(out.len(), 1, "{}", f.name());
            assert_eq!(out[0].agg, Some(want), "{}", f.name());
        }
    }

    #[test]
    fn keyed_aggregation_is_per_key() {
        let mut op = WindowAggregateOp::new(
            "γcount",
            SlidingWindows::tumbling(Duration::from_minutes(10)),
            AggFn::Count,
        );
        let out = run(
            &mut op,
            vec![tup(0, 1, 1, 1.0), tup(0, 2, 2, 1.0), tup(0, 1, 3, 1.0)],
        );
        assert_eq!(out.len(), 2);
        let mut by_key: Vec<_> = out.iter().map(|t| (t.key, t.agg.unwrap())).collect();
        by_key.sort_by_key(|(k, _)| *k);
        assert_eq!(by_key, vec![(1, 2.0), (2, 1.0)]);
    }

    #[test]
    fn state_is_constant_per_window_key() {
        // O(1) accumulator: 1000 events in one window cost the same state
        // as 1 event.
        let mut op = WindowAggregateOp::new(
            "γcount",
            SlidingWindows::tumbling(Duration::from_minutes(1000)),
            AggFn::Count,
        );
        let mut col = VecCollector::default();
        op.process(0, tup(0, 0, 1, 1.0), &mut col).unwrap();
        let one = op.state_bytes();
        for m in 2..100 {
            op.process(0, tup(0, 0, m, 1.0), &mut col).unwrap();
        }
        assert_eq!(op.state_bytes(), one);
    }
}
