//! Event-time bounded duplicate elimination.
//!
//! Overlapping sliding windows emit each join result once per shared pane
//! (W/s copies). For *intermediate* joins of a decomposed pattern those
//! copies are pure re-computation: all carry identical constituents and an
//! identical working timestamp, so downstream operators treat them
//! identically. This operator drops them, keeping the per-stage duplicate
//! factor from compounding multiplicatively across a join chain.
//!
//! Duplicates are identified by [`crate::tuple::Tuple::match_key`] (the
//! ordered constituent list) and forgotten once the watermark passes their
//! working timestamp by the horizon (they can no longer recur, since a
//! sliding join only duplicates within the window overlap).

use std::collections::HashMap;

use crate::error::OpError;
use crate::operator::{Collector, Operator};
use crate::time::{Duration, Timestamp};
use crate::tuple::{MatchKey, Tuple};

/// Emits each distinct tuple (by match key) once per horizon.
pub struct DedupOp {
    name: String,
    horizon: Duration,
    seen: HashMap<MatchKey, Timestamp>,
    state_bytes: usize,
    dropped: u64,
}

impl DedupOp {
    /// Deduplicate by [`MatchKey`], forgetting keys older than `horizon`
    /// behind the watermark.
    pub fn new(name: impl Into<String>, horizon: Duration) -> Self {
        assert!(horizon.millis() >= 0, "horizon must be non-negative");
        DedupOp {
            name: name.into(),
            horizon,
            seen: HashMap::new(),
            state_bytes: 0,
            dropped: 0,
        }
    }

    /// Duplicates suppressed so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn entry_cost(key: &MatchKey) -> usize {
        std::mem::size_of::<(MatchKey, Timestamp)>()
            + key.0.capacity() * std::mem::size_of::<crate::event::Event>()
    }
}

impl Operator for DedupOp {
    fn process(
        &mut self,
        _input: usize,
        tuple: Tuple,
        out: &mut dyn Collector,
    ) -> Result<(), OpError> {
        let key = tuple.match_key();
        match self.seen.get_mut(&key) {
            Some(last) => {
                *last = (*last).max(tuple.ts);
                self.dropped += 1;
            }
            None => {
                self.state_bytes += Self::entry_cost(&key);
                self.seen.insert(key, tuple.ts);
                out.emit(tuple);
            }
        }
        Ok(())
    }

    fn on_watermark(
        &mut self,
        wm: Timestamp,
        out: &mut dyn Collector,
    ) -> Result<Timestamp, OpError> {
        let _ = out;
        let horizon = self.horizon;
        let cutoff = wm.saturating_sub(horizon);
        let mut freed = 0;
        self.seen.retain(|k, ts| {
            let keep = *ts > cutoff;
            if !keep {
                freed += Self::entry_cost(k);
            }
            keep
        });
        self.state_bytes = self.state_bytes.saturating_sub(freed);
        Ok(wm)
    }

    fn on_finish(&mut self, _out: &mut dyn Collector) -> Result<(), OpError> {
        self.seen.clear();
        self.state_bytes = 0;
        Ok(())
    }

    fn state_bytes(&self) -> usize {
        self.state_bytes
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::testutil::tup;
    use crate::operator::VecCollector;

    #[test]
    fn drops_duplicates_within_horizon() {
        let mut op = DedupOp::new("δ", Duration::from_minutes(15));
        let mut col = VecCollector::default();
        let t = tup(0, 1, 5, 1.0);
        op.process(0, t.clone(), &mut col).unwrap();
        op.process(0, t.clone(), &mut col).unwrap();
        op.process(0, t, &mut col).unwrap();
        assert_eq!(col.out.len(), 1);
        assert_eq!(op.dropped(), 2);
    }

    #[test]
    fn distinct_tuples_pass() {
        let mut op = DedupOp::new("δ", Duration::from_minutes(15));
        let mut col = VecCollector::default();
        op.process(0, tup(0, 1, 5, 1.0), &mut col).unwrap();
        op.process(0, tup(0, 1, 5, 2.0), &mut col).unwrap();
        op.process(0, tup(0, 2, 5, 1.0), &mut col).unwrap();
        assert_eq!(col.out.len(), 3);
    }

    #[test]
    fn watermark_expires_memory() {
        let mut op = DedupOp::new("δ", Duration::from_minutes(2));
        let mut col = VecCollector::default();
        op.process(0, tup(0, 1, 5, 1.0), &mut col).unwrap();
        assert!(op.state_bytes() > 0);
        op.on_watermark(Timestamp::from_minutes(8), &mut col)
            .unwrap();
        assert_eq!(op.state_bytes(), 0);
        // After expiry the same tuple passes again (horizon semantics).
        op.process(0, tup(0, 1, 5, 1.0), &mut col).unwrap();
        assert_eq!(col.out.len(), 2);
    }

    #[test]
    fn finish_clears_state() {
        let mut op = DedupOp::new("δ", Duration::from_minutes(2));
        let mut col = VecCollector::default();
        op.process(0, tup(0, 1, 5, 1.0), &mut col).unwrap();
        op.on_finish(&mut col).unwrap();
        assert_eq!(op.state_bytes(), 0);
    }
}
