//! Selection σ_θ (paper Section 2, operator 1): forward a tuple iff the
//! user-defined predicate set holds; stateless.
//!
//! Two construction modes:
//!
//! * [`FilterOp::new`] with an arbitrary closure — runs on the row path
//!   (the runtime materializes tuples at its input boundary);
//! * [`FilterOp::with_spec`] with a declarative [`FilterSpec`] — the same
//!   semantics expressed as data, which lets the operator run vectorized
//!   on the columnar plane: each conjunct is applied as a tight loop over
//!   one column, narrowing the batch's selection vector.

use crate::columnar::ColumnarBatch;
use crate::error::OpError;
use crate::event::{Attr, Event, EventType};
use crate::operator::{BatchSupport, Collector, Operator, UnaryPredicate};
use crate::tuple::Tuple;

/// Comparison operators of vectorizable filter clauses. (The pattern
/// language's `CmpOp` lowers onto this 1:1; `asp` keeps its own copy so the
/// substrate has no dependency on the pattern layer.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cmp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl Cmp {
    /// Apply the comparison.
    #[inline]
    pub fn apply(self, l: f64, r: f64) -> bool {
        match self {
            Cmp::Lt => l < r,
            Cmp::Le => l <= r,
            Cmp::Gt => l > r,
            Cmp::Ge => l >= r,
            Cmp::Eq => l == r,
            Cmp::Ne => l != r,
        }
    }
}

/// A declarative single-event predicate: an optional event-type gate plus a
/// conjunction of `attr cmp constant` clauses, all evaluated against the
/// tuple's head constituent (`events[0]`) — exactly the shape of the
/// pattern-scan filters the physical lowering produces.
#[derive(Debug, Clone, Default)]
pub struct FilterSpec {
    /// Accept only this event type, if set.
    pub etype: Option<EventType>,
    /// Threshold conjuncts over head-constituent attributes.
    pub clauses: Vec<(Attr, Cmp, f64)>,
}

impl FilterSpec {
    /// Accept a single event type with no attribute clauses.
    pub fn for_etype(etype: EventType) -> Self {
        FilterSpec {
            etype: Some(etype),
            clauses: Vec::new(),
        }
    }

    /// Add a threshold conjunct (builder style).
    #[must_use]
    pub fn clause(mut self, attr: Attr, cmp: Cmp, c: f64) -> Self {
        self.clauses.push((attr, cmp, c));
        self
    }

    /// Row-path evaluation against a head constituent. The columnar kernel
    /// evaluates the same clauses over the head-event columns, so the two
    /// paths share semantics by construction.
    #[inline]
    pub fn matches(&self, e: &Event) -> bool {
        if let Some(t) = self.etype {
            if e.etype != t {
                return false;
            }
        }
        self.clauses
            .iter()
            .all(|&(a, op, c)| op.apply(e.attr(a), c))
    }
}

/// The ASP `filter` operator.
pub struct FilterOp {
    name: String,
    predicate: UnaryPredicate,
    spec: Option<FilterSpec>,
    passed: u64,
    dropped: u64,
}

impl FilterOp {
    /// Pass through only tuples satisfying `predicate` (σ). Runs on the
    /// row path; prefer [`FilterOp::with_spec`] when the predicate fits
    /// the declarative shape so it can vectorize.
    pub fn new(name: impl Into<String>, predicate: UnaryPredicate) -> Self {
        FilterOp {
            name: name.into(),
            predicate,
            spec: None,
            passed: 0,
            dropped: 0,
        }
    }

    /// Pass through only tuples whose head constituent satisfies `spec`.
    /// Declares columnar support: on the columnar plane each clause runs
    /// as a per-column loop narrowing the selection vector.
    pub fn with_spec(name: impl Into<String>, spec: FilterSpec) -> Self {
        let row = spec.clone();
        FilterOp {
            name: name.into(),
            predicate: std::sync::Arc::new(move |t: &Tuple| match t.head() {
                Some(e) => row.matches(e),
                None => false,
            }),
            spec: Some(spec),
            passed: 0,
            dropped: 0,
        }
    }

    /// `(passed, dropped)` counters, useful for selectivity calibration.
    pub fn counts(&self) -> (u64, u64) {
        (self.passed, self.dropped)
    }
}

impl Operator for FilterOp {
    fn process(
        &mut self,
        _input: usize,
        tuple: Tuple,
        out: &mut dyn Collector,
    ) -> Result<(), OpError> {
        if (self.predicate)(&tuple) {
            self.passed += 1;
            out.emit(tuple);
        } else {
            self.dropped += 1;
        }
        Ok(())
    }

    fn batch_support(&self) -> BatchSupport {
        if self.spec.is_some() {
            BatchSupport::Columnar
        } else {
            BatchSupport::Row
        }
    }

    fn process_columnar(
        &mut self,
        _input: usize,
        batch: &mut ColumnarBatch,
    ) -> Result<(), OpError> {
        let Some(spec) = &self.spec else {
            return Err(OpError::ColumnarUnsupported {
                operator: self.name.clone(),
                detail: "closure predicate has no columnar form".to_string(),
            });
        };
        // One narrowing pass per conjunct: each reads a single column.
        let mut dropped = 0u64;
        if let Some(t) = spec.etype {
            let (_, d) = batch.narrow(|b, i| b.etype[i] == t);
            dropped += d;
        }
        for &(attr, op, c) in &spec.clauses {
            let (_, d) = batch.narrow(|b, i| op.apply(b.attr_at(i, attr), c));
            dropped += d;
        }
        self.passed += batch.selected_len() as u64;
        self.dropped += dropped;
        Ok(())
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::testutil::{drive, tup};
    use std::sync::Arc;

    #[test]
    fn forwards_only_matching_tuples() {
        let mut op = FilterOp::new(
            "σ(value>10)",
            Arc::new(|t: &Tuple| t.events[0].value > 10.0),
        );
        let out = drive(
            &mut op,
            vec![
                (0, tup(0, 1, 0, 5.0)),
                (0, tup(0, 1, 1, 15.0)),
                (0, tup(0, 1, 2, 10.0)),
            ],
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].events[0].value, 15.0);
        assert_eq!(op.counts(), (1, 2));
    }

    #[test]
    fn is_stateless() {
        let op = FilterOp::new("σ", crate::operator::always_true());
        assert_eq!(op.state_bytes(), 0);
    }

    #[test]
    fn closure_filters_stay_on_the_row_path() {
        let op = FilterOp::new("σ", crate::operator::always_true());
        assert_eq!(op.batch_support(), BatchSupport::Row);
        let spec_op = FilterOp::with_spec("σ", FilterSpec::default());
        assert_eq!(spec_op.batch_support(), BatchSupport::Columnar);
    }

    #[test]
    fn spec_row_and_columnar_paths_agree() {
        let spec = FilterSpec::for_etype(EventType(0))
            .clause(Attr::Value, Cmp::Ge, 10.0)
            .clause(Attr::Id, Cmp::Ne, 3.0);
        let inputs = vec![
            tup(0, 1, 0, 5.0),  // value too small
            tup(0, 2, 1, 15.0), // passes
            tup(1, 2, 2, 20.0), // wrong type
            tup(0, 3, 3, 20.0), // excluded id
            tup(0, 4, 4, 10.0), // boundary: passes (Ge)
        ];
        let mut row_op = FilterOp::with_spec("σ", spec.clone());
        let row_out = drive(
            &mut row_op,
            inputs.iter().cloned().map(|t| (0, t)).collect(),
        );
        let mut col_op = FilterOp::with_spec("σ", spec);
        let mut batch = ColumnarBatch::from_tuples(inputs);
        col_op.process_columnar(0, &mut batch).unwrap();
        assert_eq!(batch.to_tuples(), row_out);
        assert_eq!(col_op.counts(), row_op.counts());
    }
}
