//! Selection σ_θ (paper Section 2, operator 1): forward a tuple iff the
//! user-defined predicate set holds; stateless.

use crate::error::OpError;
use crate::operator::{Collector, Operator, UnaryPredicate};
use crate::tuple::Tuple;

/// The ASP `filter` operator.
pub struct FilterOp {
    name: String,
    predicate: UnaryPredicate,
    passed: u64,
    dropped: u64,
}

impl FilterOp {
    /// Pass through only tuples satisfying `predicate` (σ).
    pub fn new(name: impl Into<String>, predicate: UnaryPredicate) -> Self {
        FilterOp {
            name: name.into(),
            predicate,
            passed: 0,
            dropped: 0,
        }
    }

    /// `(passed, dropped)` counters, useful for selectivity calibration.
    pub fn counts(&self) -> (u64, u64) {
        (self.passed, self.dropped)
    }
}

impl Operator for FilterOp {
    fn process(
        &mut self,
        _input: usize,
        tuple: Tuple,
        out: &mut dyn Collector,
    ) -> Result<(), OpError> {
        if (self.predicate)(&tuple) {
            self.passed += 1;
            out.emit(tuple);
        } else {
            self.dropped += 1;
        }
        Ok(())
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::testutil::{drive, tup};
    use std::sync::Arc;

    #[test]
    fn forwards_only_matching_tuples() {
        let mut op = FilterOp::new(
            "σ(value>10)",
            Arc::new(|t: &Tuple| t.events[0].value > 10.0),
        );
        let out = drive(
            &mut op,
            vec![
                (0, tup(0, 1, 0, 5.0)),
                (0, tup(0, 1, 1, 15.0)),
                (0, tup(0, 1, 2, 10.0)),
            ],
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].events[0].value, 15.0);
        assert_eq!(op.counts(), (1, 2));
    }

    #[test]
    fn is_stateless() {
        let op = FilterOp::new("σ", crate::operator::always_true());
        assert_eq!(op.state_bytes(), 0);
    }
}
