//! Interval join — optimization O1 (paper Section 4.3.1).
//!
//! Instead of apriori sliding windows, each left event `e1` defines a
//! content-based window `(e1.ts + lower, e1.ts + upper)` and joins with
//! every right event whose timestamp falls inside it (bounds are
//! *exclusive*, matching the paper's `e2.ts ∈ (e1.ts+lb, e1.ts+ub)`:
//! the sequence uses `(0, W)` so that `e1.ts < e2.ts < e1.ts + W`; the
//! conjunction uses `(-W, +W)`). Every qualifying pair is produced exactly
//! once — at the arrival of its later element — so the interval join is
//! duplicate-free, needs no slide-size parameter, and creates windows only
//! where `T1` events actually occur.

use crate::error::OpError;
use crate::operator::keyed_side::KeyedSide;
use crate::operator::{Collector, JoinPredicate, KeyedStateStats, Operator};
use crate::time::{Duration, Timestamp};
use crate::tuple::{TsRule, Tuple};

/// The relative time window a left event opens over the right stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalBounds {
    /// Lower bound, exclusive: `e2.ts > e1.ts + lower`.
    pub lower: Duration,
    /// Upper bound, exclusive: `e2.ts < e1.ts + upper`.
    pub upper: Duration,
}

impl IntervalBounds {
    /// The widest distance between a newly arrived event and the buffered
    /// partner it can pair with — how far behind the input watermark an
    /// emitted composite's min-timestamp can lie.
    pub fn span(&self) -> Duration {
        Duration(self.upper.millis().max(-self.lower.millis()).max(0))
    }

    /// Sequence / iteration / negated-sequence bounds `(0, W)`.
    pub fn seq(w: Duration) -> Self {
        IntervalBounds {
            lower: Duration::ZERO,
            upper: w,
        }
    }

    /// Conjunction bounds `(-W, +W)`.
    pub fn conjunction(w: Duration) -> Self {
        IntervalBounds {
            lower: w.neg(),
            upper: w,
        }
    }

    #[inline]
    fn contains(&self, left_ts: Timestamp, right_ts: Timestamp) -> bool {
        // Saturating: timestamps near the i64 extremes must not overflow.
        right_ts > left_ts.saturating_add(self.lower)
            && right_ts < left_ts.saturating_add(self.upper)
    }
}

/// The two-input interval join operator.
///
/// Each side buffers in a key-partitioned `KeyedSide`: an arriving tuple
/// probes only its own key's ts-ordered run on the opposite side, and the
/// side's global arrival index makes watermark eviction a range split —
/// near O(evicted) — instead of a per-tuple `remove` walk over every key.
/// A sweep whose cutoff precedes the earliest buffered tuple is O(1)
/// (watermarks arrive far more often than they advance past data).
pub struct IntervalJoinOp {
    name: String,
    bounds: IntervalBounds,
    theta: JoinPredicate,
    ts_rule: TsRule,
    left: KeyedSide,
    right: KeyedSide,
    seq: u64,
    memory_limit: Option<usize>,
    emitted: u64,
}

impl IntervalJoinOp {
    /// An interval join emitting pairs with `r.ts − l.ts` inside `bounds`
    /// and satisfying `theta`; output timestamps follow `ts_rule`.
    pub fn new(
        name: impl Into<String>,
        bounds: IntervalBounds,
        theta: JoinPredicate,
        ts_rule: TsRule,
    ) -> Self {
        IntervalJoinOp {
            name: name.into(),
            bounds,
            theta,
            ts_rule,
            left: KeyedSide::default(),
            right: KeyedSide::default(),
            seq: 0,
            memory_limit: None,
            emitted: 0,
        }
    }

    /// Install a state budget (bytes).
    pub fn with_memory_limit(mut self, bytes: usize) -> Self {
        self.memory_limit = Some(bytes);
        self
    }

    /// Number of joined tuples emitted so far (for tests and metrics).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    fn check_limit(&self) -> Result<(), OpError> {
        if let Some(limit) = self.memory_limit {
            let used = self.left.bytes() + self.right.bytes();
            if used > limit {
                return Err(OpError::MemoryExhausted {
                    operator: self.name.clone(),
                    state_bytes: used,
                    limit_bytes: limit,
                });
            }
        }
        Ok(())
    }
}

impl Operator for IntervalJoinOp {
    fn process(
        &mut self,
        input: usize,
        tuple: Tuple,
        out: &mut dyn Collector,
    ) -> Result<(), OpError> {
        self.seq += 1;
        if input == 0 {
            // New left e1: probe buffered rights with ts ∈ (e1.ts+lb, e1.ts+ub).
            if let Some(buf) = self.right.run(tuple.key) {
                let lo = (tuple.ts + self.bounds.lower, u64::MAX);
                for ((rts, _), r) in buf.range(lo..) {
                    if *rts >= tuple.ts + self.bounds.upper {
                        break;
                    }
                    if self.bounds.contains(tuple.ts, *rts) && (self.theta)(&tuple, r) {
                        self.emitted += 1;
                        out.emit(tuple.join(r, self.ts_rule));
                    }
                }
            }
            self.left.insert(self.seq, tuple);
        } else {
            // New right e2: probe buffered lefts with e2.ts ∈ (l.ts+lb, l.ts+ub),
            // i.e. l.ts ∈ (e2.ts - ub, e2.ts - lb).
            if let Some(buf) = self.left.run(tuple.key) {
                let lo = (tuple.ts - self.bounds.upper, u64::MAX);
                for ((lts, _), l) in buf.range(lo..) {
                    if *lts >= tuple.ts - self.bounds.lower {
                        break;
                    }
                    if self.bounds.contains(*lts, tuple.ts) && (self.theta)(l, &tuple) {
                        self.emitted += 1;
                        out.emit(l.join(&tuple, self.ts_rule));
                    }
                }
            }
            self.right.insert(self.seq, tuple);
        }
        self.check_limit()
    }

    fn on_watermark(
        &mut self,
        wm: Timestamp,
        out: &mut dyn Collector,
    ) -> Result<Timestamp, OpError> {
        let _ = out;
        // A left l is dead once no future right (ts ≥ wm) can satisfy
        // r.ts < l.ts + upper  ⇔  l.ts ≤ wm - upper.
        self.left.evict_before(
            wm.saturating_sub(self.bounds.upper)
                .saturating_add(Duration(1)),
        );
        // A right r is dead once no future left (ts ≥ wm) can satisfy
        // r.ts > l.ts + lower  ⇔  r.ts ≤ wm + lower.
        self.right.evict_before(
            wm.saturating_add(self.bounds.lower)
                .saturating_add(Duration(1)),
        );
        // Watermark contract: a future arrival at ts ≥ wm may pair with a
        // buffered partner up to `span` older, and the composite can carry
        // that older timestamp — hold the forwarded watermark back.
        Ok(wm
            .saturating_sub(self.bounds.span())
            .saturating_add(Duration(1)))
    }

    fn on_finish(&mut self, _out: &mut dyn Collector) -> Result<(), OpError> {
        // Emission is eager; nothing pends at end of stream.
        self.left.evict_before(Timestamp::MAX);
        self.right.evict_before(Timestamp::MAX);
        Ok(())
    }

    fn state_bytes(&self) -> usize {
        self.left.bytes() + self.right.bytes()
    }

    fn keyed_state(&self) -> Option<KeyedStateStats> {
        Some(KeyedStateStats {
            left_keys: self.left.peak_keys(),
            right_keys: self.right.peak_keys(),
            max_run_len: self.left.peak_run().max(self.right.peak_run()),
        })
    }

    fn shard_handoff_supported(&self) -> bool {
        true
    }

    fn extract_shard(
        &mut self,
        part: &dyn Fn(u64) -> bool,
    ) -> Option<Box<dyn std::any::Any + Send>> {
        Some(Box::new(IntervalJoinHandoff {
            left: self.left.extract_keys(part),
            right: self.right.extract_keys(part),
        }))
    }

    /// Merge a sibling's extracted slot state. The interval join emits
    /// each pair eagerly when its *later* side arrives and keeps no firing
    /// cursor, so — with the runtime aligning the handoff at a common
    /// merged watermark — the buffered runs *are* the whole state: every
    /// pair completed before the marker was emitted by the source, and
    /// every pair completing after it probes the absorbed runs on the
    /// target. Eviction horizons depend only on the shared clock, so both
    /// instances hold the same retention window and the runs compose
    /// verbatim, without loss or duplication.
    fn absorb_shard(&mut self, state: Box<dyn std::any::Any + Send>) -> Result<(), OpError> {
        let h = state
            .downcast::<IntervalJoinHandoff>()
            .map_err(|_| OpError::Failed {
                operator: self.name.clone(),
                reason: "shard handoff payload is not IntervalJoinHandoff state".to_string(),
            })?;
        self.left.absorb(h.left, &mut self.seq);
        self.right.absorb(h.right, &mut self.seq);
        self.check_limit()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A slot's extracted [`IntervalJoinOp`] state in flight between shard
/// instances: both sides' tuples for the migrated keys in arrival order.
/// No cursors travel — emission is eager, so the runs are the whole state.
struct IntervalJoinHandoff {
    left: Vec<Tuple>,
    right: Vec<Tuple>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::testutil::tup;
    use crate::operator::{cross_join, VecCollector};

    fn run(op: &mut IntervalJoinOp, feed: Vec<(usize, Tuple)>) -> Vec<Tuple> {
        let mut col = VecCollector::default();
        let mut wm = Timestamp::MIN;
        for (port, t) in feed {
            wm = wm.max(t.ts);
            op.process(port, t, &mut col).unwrap();
            op.on_watermark(wm, &mut col).unwrap();
        }
        op.on_finish(&mut col).unwrap();
        col.out
    }

    #[test]
    fn seq_bounds_are_strict() {
        let w = Duration::from_minutes(4);
        let b = IntervalBounds::seq(w);
        let t0 = Timestamp::from_minutes(10);
        assert!(!b.contains(t0, t0), "equal ts excluded (strict order)");
        assert!(b.contains(t0, t0 + Duration(1)));
        assert!(b.contains(t0, t0 + Duration(4 * 60_000 - 1)));
        assert!(!b.contains(t0, t0 + w), "exactly W apart excluded");
    }

    #[test]
    fn conjunction_bounds_are_symmetric() {
        let b = IntervalBounds::conjunction(Duration::from_minutes(4));
        let t0 = Timestamp::from_minutes(10);
        assert!(b.contains(t0, t0), "|diff|=0 < W included");
        assert!(b.contains(t0, t0 - Duration::from_minutes(3)));
        assert!(b.contains(t0, t0 + Duration::from_minutes(3)));
        assert!(!b.contains(t0, t0 - Duration::from_minutes(4)));
        assert!(!b.contains(t0, t0 + Duration::from_minutes(4)));
    }

    #[test]
    fn emits_each_pair_exactly_once() {
        // Unlike the sliding-window join, no duplicates regardless of W/s.
        let mut op = IntervalJoinOp::new(
            "i⋈",
            IntervalBounds::seq(Duration::from_minutes(15)),
            cross_join(),
            TsRule::Max,
        );
        let out = run(
            &mut op,
            vec![
                (0, tup(0, 0, 1, 1.0)),
                (1, tup(1, 0, 2, 2.0)),
                (1, tup(1, 0, 3, 3.0)),
            ],
        );
        assert_eq!(out.len(), 2);
        let mut keys: Vec<_> = out.iter().map(|t| t.match_key()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 2, "all matches distinct");
    }

    #[test]
    fn out_of_order_across_ports_still_joins() {
        // Right arrives before left: the pair is found on left arrival.
        let mut op = IntervalJoinOp::new(
            "i⋈",
            IntervalBounds::conjunction(Duration::from_minutes(10)),
            cross_join(),
            TsRule::Max,
        );
        let mut col = VecCollector::default();
        op.process(1, tup(1, 0, 5, 2.0), &mut col).unwrap();
        op.process(0, tup(0, 0, 3, 1.0), &mut col).unwrap();
        assert_eq!(col.out.len(), 1);
    }

    #[test]
    fn keyed_join_respects_partitions() {
        let mut op = IntervalJoinOp::new(
            "i⋈",
            IntervalBounds::seq(Duration::from_minutes(15)),
            cross_join(),
            TsRule::Max,
        );
        let out = run(
            &mut op,
            vec![
                (0, tup(0, 1, 1, 1.0)),
                (0, tup(0, 2, 1, 1.5)),
                (1, tup(1, 1, 2, 2.0)),
            ],
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].events[0].id, 1);
    }

    #[test]
    fn watermark_evicts_expired_state() {
        let w = Duration::from_minutes(4);
        let mut op = IntervalJoinOp::new("i⋈", IntervalBounds::seq(w), cross_join(), TsRule::Max);
        let mut col = VecCollector::default();
        op.process(0, tup(0, 0, 1, 1.0), &mut col).unwrap();
        op.process(1, tup(1, 0, 2, 2.0), &mut col).unwrap();
        assert!(op.state_bytes() > 0);
        // wm = 10min: left@1 dead (1+4 ≤ 10); right@2 dead (2 ≤ 10+0).
        op.on_watermark(Timestamp::from_minutes(10), &mut col)
            .unwrap();
        assert_eq!(op.state_bytes(), 0);
    }

    #[test]
    fn eviction_never_loses_matches() {
        // Feed in ts order with per-tuple watermarks; every in-range pair
        // must still be found despite aggressive eviction.
        let w = Duration::from_minutes(3);
        let mut op = IntervalJoinOp::new("i⋈", IntervalBounds::seq(w), cross_join(), TsRule::Max);
        let mut feed = Vec::new();
        for m in 0..20 {
            feed.push((0usize, tup(0, 0, m, m as f64)));
            feed.push((1usize, tup(1, 0, m, m as f64)));
        }
        let out = run(&mut op, feed);
        // Expected pairs: (l@i, r@j) with i < j < i+3 → j ∈ {i+1, i+2}.
        let expected: usize = (0..20).map(|i| ((i + 1)..20.min(i + 3)).count()).sum();
        assert_eq!(out.len(), expected);
    }

    #[test]
    fn keyed_state_tracks_runs_per_side() {
        let mut op = IntervalJoinOp::new(
            "i⋈",
            IntervalBounds::seq(Duration::from_minutes(15)),
            cross_join(),
            TsRule::Max,
        );
        let mut col = VecCollector::default();
        for (i, key) in [1u32, 2, 2, 2].iter().enumerate() {
            op.process(0, tup(0, *key, i as i64, 1.0), &mut col)
                .unwrap();
        }
        op.process(1, tup(1, 9, 1, 2.0), &mut col).unwrap();
        let ks = op.keyed_state().expect("joins report keyed state");
        assert_eq!(ks.left_keys, 2);
        assert_eq!(ks.right_keys, 1);
        assert_eq!(ks.max_run_len, 3, "key 2 holds three lefts");
        // Peaks are high-water marks: they survive full eviction.
        op.on_finish(&mut col).unwrap();
        assert_eq!(op.state_bytes(), 0);
        assert_eq!(op.keyed_state().expect("keyed").max_run_len, 3);
    }

    #[allow(clippy::type_complexity)]
    fn multiset(out: &[Tuple]) -> Vec<(u64, i64, Vec<(u16, u32, i64)>)> {
        let mut v: Vec<_> = out
            .iter()
            .map(|t| {
                (
                    t.key,
                    t.ts.millis(),
                    t.events
                        .iter()
                        .map(|e| (e.etype.0, e.id, e.ts.millis()))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        v.sort();
        v
    }

    #[test]
    fn mid_stream_migration_matches_single_instance_run() {
        // Emulate the runtime's migration protocol at operator level, the
        // same drill as `window_join::mid_stream_migration_...`: two
        // instances share a keyed stream; at an aligned watermark one
        // key's state is extracted from A and absorbed into B, and the
        // key's remaining tuples are delivered to B. The union of both
        // instances' outputs must equal a single-instance run exactly.
        let bounds = IntervalBounds::conjunction(Duration::from_minutes(4));
        let fresh = || IntervalJoinOp::new("i⋈", bounds, cross_join(), TsRule::Max);
        // Two keys, both sides; the cut at minute 12 lands while key 2
        // still buffers a left (ts 11) whose partner (ts 13) arrives after
        // the handoff — that pair can only come from the absorbed state.
        let feed: Vec<(usize, Tuple)> = vec![
            (0, tup(0, 1, 1, 1.0)),
            (1, tup(1, 1, 3, 2.0)),
            (1, tup(1, 2, 5, 3.0)),
            (0, tup(0, 2, 7, 4.0)),
            (0, tup(0, 1, 9, 5.0)),
            (0, tup(0, 2, 11, 6.0)),
            // ---- migration of key 2 happens at wm = minute 12 ----
            (1, tup(1, 1, 12, 7.0)),
            (1, tup(1, 2, 13, 8.0)),
            (0, tup(0, 2, 15, 9.0)),
            (1, tup(1, 1, 16, 10.0)),
        ];
        let cut = Timestamp::from_minutes(12);

        let mut reference = fresh();
        let mut ref_col = VecCollector::default();
        for (port, t) in &feed {
            let wm = t.ts;
            reference.process(*port, t.clone(), &mut ref_col).unwrap();
            reference.on_watermark(wm, &mut ref_col).unwrap();
        }
        reference.on_finish(&mut ref_col).unwrap();

        let mut a = fresh();
        let mut b = fresh();
        let mut a_col = VecCollector::default();
        let mut b_col = VecCollector::default();
        let mut migrated = false;
        for (port, t) in &feed {
            let wm = t.ts;
            if !migrated && wm >= cut {
                // Both instances sit at the same merged clock (the
                // runtime's marker alignment): hand key 2 across.
                a.on_watermark(cut, &mut a_col).unwrap();
                b.on_watermark(cut, &mut b_col).unwrap();
                let h = a.extract_shard(&|k| k == 2).expect("supported");
                b.absorb_shard(h).unwrap();
                migrated = true;
            }
            let dst = if migrated && t.key == 2 {
                (&mut b, &mut b_col)
            } else {
                (&mut a, &mut a_col)
            };
            dst.0.process(*port, t.clone(), dst.1).unwrap();
            a.on_watermark(wm, &mut a_col).unwrap();
            b.on_watermark(wm, &mut b_col).unwrap();
        }
        a.on_finish(&mut a_col).unwrap();
        b.on_finish(&mut b_col).unwrap();

        let mut combined = a_col.out;
        combined.extend(b_col.out);
        assert_eq!(
            multiset(&combined),
            multiset(&ref_col.out),
            "migrated run must emit exactly the single-instance pairs"
        );
        assert!(
            combined.len() >= 4,
            "scenario must produce pairs before, across, and after the cut"
        );
    }

    #[test]
    fn extract_empty_key_set_is_not_lossy() {
        // Extracting a predicate that matches nothing hands off empty
        // runs and leaves the source's state intact.
        let mut op = IntervalJoinOp::new(
            "i⋈",
            IntervalBounds::seq(Duration::from_minutes(10)),
            cross_join(),
            TsRule::Max,
        );
        let mut col = VecCollector::default();
        op.process(0, tup(0, 1, 1, 1.0), &mut col).unwrap();
        let before = op.state_bytes();
        let h = op.extract_shard(&|_| false).expect("supported");
        assert_eq!(op.state_bytes(), before, "no keys matched: state intact");
        let mut other = IntervalJoinOp::new(
            "i⋈",
            IntervalBounds::seq(Duration::from_minutes(10)),
            cross_join(),
            TsRule::Max,
        );
        other.absorb_shard(h).unwrap();
        assert_eq!(other.state_bytes(), 0);
        op.process(1, tup(1, 1, 2, 2.0), &mut col).unwrap();
        assert_eq!(col.out.len(), 1, "pair still fires on the source");
    }

    #[test]
    fn memory_limit_enforced() {
        let mut op = IntervalJoinOp::new(
            "i⋈",
            IntervalBounds::seq(Duration::from_minutes(100)),
            cross_join(),
            TsRule::Max,
        )
        .with_memory_limit(256);
        let mut col = VecCollector::default();
        let mut failed = false;
        for m in 0..50 {
            if op.process(0, tup(0, 0, m, 1.0), &mut col).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed);
    }
}
