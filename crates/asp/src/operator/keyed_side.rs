//! Shared key-partitioned buffer layout for the binary temporal joins.
//!
//! Both [`WindowJoinOp`](crate::operator::WindowJoinOp) and
//! [`IntervalJoinOp`](crate::operator::IntervalJoinOp) buffer each side as
//! a [`KeyedSide`]: a hash map from partition key to a ts-ordered *run*
//! (`BTreeMap<(ts, seq), Tuple>`), so a probing tuple touches only its own
//! key's run — per-pane work is O(band × matches-per-key) instead of
//! O(band × pane). A second, global `(ts, seq) → key` **arrival index**
//! preserves everything the old single-map layout provided for free:
//!
//! * deterministic cross-key iteration in `(ts, seq)` order (the window
//!   join's band scans emit in exactly the pre-partitioning order),
//! * O(1) earliest-ts lookup for empty-window skipping, and
//! * range eviction: one `split_off` on the index yields the evicted
//!   entries, and only the *touched* keys' runs are then split — near
//!   O(evicted), never a per-tuple `remove` walk over every key.
//!
//! Byte accounting charges [`Tuple::mem_bytes`] per buffered tuple, same
//! as the old layout; the ~24-byte index entry rides inside the static
//! cost model's per-tuple map-entry allowance (see
//! `cep2asp::analyze::tuple_state_bytes`). The side also tracks two
//! high-water marks — peak resident keys and longest run — surfaced
//! through [`Operator::keyed_state`](crate::operator::Operator::keyed_state)
//! and bounded by the analyzer's `max_keyed_run`.

use std::collections::{BTreeMap, HashMap};

use crate::time::Timestamp;
use crate::tuple::{Key, Tuple};

/// One key's ts-ordered run. The `u64` is the operator-local arrival
/// sequence number, which makes entries unique and keeps iteration
/// deterministic for equal timestamps.
pub(crate) type Run = BTreeMap<(Timestamp, u64), Tuple>;

/// One join side, key-partitioned (see module docs).
#[derive(Default)]
pub(crate) struct KeyedSide {
    by_key: HashMap<Key, Run>,
    /// Global `(ts, seq) → key` arrival index over every buffered tuple.
    order: BTreeMap<(Timestamp, u64), Key>,
    bytes: usize,
    peak_keys: usize,
    peak_run: usize,
}

impl KeyedSide {
    /// Buffer a tuple under its partition key.
    pub fn insert(&mut self, seq: u64, t: Tuple) {
        self.bytes += t.mem_bytes();
        let key = t.key;
        self.order.insert((t.ts, seq), key);
        let run = self.by_key.entry(key).or_default();
        run.insert((t.ts, seq), t);
        self.peak_run = self.peak_run.max(run.len());
        self.peak_keys = self.peak_keys.max(self.by_key.len());
    }

    /// Timestamp of the earliest buffered tuple, across all keys.
    pub fn earliest(&self) -> Option<Timestamp> {
        self.order.first_key_value().map(|((ts, _), _)| *ts)
    }

    /// Buffered footprint in bytes ([`Tuple::mem_bytes`] per tuple).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// High-water mark of distinct resident keys.
    pub fn peak_keys(&self) -> usize {
        self.peak_keys
    }

    /// High-water mark of any single key's run length.
    pub fn peak_run(&self) -> usize {
        self.peak_run
    }

    /// The ts-ordered run buffered for `key`, if any.
    pub fn run(&self, key: Key) -> Option<&Run> {
        self.by_key.get(&key)
    }

    /// All tuples with `lo ≤ ts < hi`, in global `(ts, seq)` arrival order
    /// regardless of key — the window join's deterministic band scan.
    pub fn band(&self, lo: Timestamp, hi: Timestamp) -> impl Iterator<Item = &Tuple> + '_ {
        self.order
            .range((lo, 0)..(hi, 0))
            .filter_map(move |(entry, key)| self.by_key.get(key).and_then(|run| run.get(entry)))
    }

    /// Remove and return every buffered tuple whose key satisfies `part`,
    /// in global `(ts, seq)` arrival order — the shard-migration extract
    /// half. Byte and index accounting shrink accordingly; lifetime peaks
    /// are left untouched (they are high-water marks).
    pub fn extract_keys(&mut self, part: &dyn Fn(Key) -> bool) -> Vec<Tuple> {
        let keys: Vec<Key> = self.by_key.keys().copied().filter(|&k| part(k)).collect();
        let mut entries: Vec<((Timestamp, u64), Tuple)> = Vec::new();
        for key in keys {
            let Some(run) = self.by_key.remove(&key) else {
                continue;
            };
            for (entry, t) in run {
                self.bytes = self.bytes.saturating_sub(t.mem_bytes());
                self.order.remove(&entry);
                entries.push((entry, t));
            }
        }
        entries.sort_by_key(|(entry, _)| *entry);
        entries.into_iter().map(|(_, t)| t).collect()
    }

    /// Re-insert tuples extracted from a sibling instance, assigning fresh
    /// local sequence numbers from `seq` (sequence numbers only tie-break
    /// equal timestamps, so renumbering in the given arrival order
    /// preserves deterministic iteration). The absorb half of a shard
    /// migration.
    pub fn absorb(&mut self, tuples: Vec<Tuple>, seq: &mut u64) {
        for t in tuples {
            *seq += 1;
            self.insert(*seq, t);
        }
    }

    /// Evict every tuple with `ts < cutoff`.
    ///
    /// One `split_off` on the arrival index identifies the evicted range;
    /// only the keys that actually lost tuples have their runs split. The
    /// cost is O(evicted + touched-keys × log) — amortized near
    /// O(evicted) — instead of one `BTreeMap::remove` per tuple.
    pub fn evict_before(&mut self, cutoff: Timestamp) {
        match self.order.first_key_value() {
            Some((&(ts, _), _)) if ts < cutoff => {}
            _ => return,
        }
        let keep = self.order.split_off(&(cutoff, 0));
        let dead = std::mem::replace(&mut self.order, keep);
        let mut keys: Vec<Key> = dead.into_values().collect();
        keys.sort_unstable();
        keys.dedup();
        for key in keys {
            let Some(run) = self.by_key.get_mut(&key) else {
                debug_assert!(false, "index entry without a run");
                continue;
            };
            // After split_off, `run` holds the dead prefix (< cutoff) and
            // `kept` the survivors.
            let kept = run.split_off(&(cutoff, 0));
            for t in run.values() {
                self.bytes = self.bytes.saturating_sub(t.mem_bytes());
            }
            if kept.is_empty() {
                self.by_key.remove(&key);
            } else {
                *run = kept;
            }
        }
        // Full eviction must return the byte gauge to exactly 0 — any
        // residue is an accounting leak.
        debug_assert!(
            !self.order.is_empty() || (self.bytes == 0 && self.by_key.is_empty()),
            "eviction leaked accounting: bytes={}, keys={}",
            self.bytes,
            self.by_key.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventType};

    fn tup(key: u64, m: i64) -> Tuple {
        let mut t = Tuple::from_event(Event::new(
            EventType(0),
            key as u32,
            Timestamp::from_minutes(m),
            1.0,
        ));
        t.key = key;
        t
    }

    #[test]
    fn band_preserves_global_arrival_order_across_keys() {
        let mut side = KeyedSide::default();
        for (seq, (key, m)) in [(7u64, 3i64), (1, 1), (7, 2), (2, 1)].iter().enumerate() {
            side.insert(seq as u64, tup(*key, *m));
        }
        let got: Vec<(u64, i64)> = side
            .band(Timestamp::MIN, Timestamp::MAX)
            .map(|t| (t.key, t.ts.millis() / 60_000))
            .collect();
        // (ts, seq) order, interleaving keys exactly as they arrived.
        assert_eq!(got, vec![(1, 1), (2, 1), (7, 2), (7, 3)]);
    }

    #[test]
    fn eviction_drops_runs_and_returns_bytes_to_zero() {
        let mut side = KeyedSide::default();
        for m in 0i64..10 {
            side.insert(m as u64, tup((m % 3) as u64, m));
        }
        assert!(side.bytes() > 0);
        assert_eq!(side.peak_keys(), 3);
        side.evict_before(Timestamp::from_minutes(5));
        assert_eq!(side.earliest(), Some(Timestamp::from_minutes(5)));
        let live: usize = (0..3).map(|k| side.run(k).map_or(0, Run::len)).sum();
        assert_eq!(live, 5);
        side.evict_before(Timestamp::MAX);
        assert_eq!(side.bytes(), 0, "full eviction zeroes the byte gauge");
        assert_eq!(side.earliest(), None);
        assert_eq!(side.peak_run(), 4, "peaks survive eviction");
    }

    #[test]
    fn eviction_is_idempotent_and_skips_clean_sides() {
        let mut side = KeyedSide::default();
        side.insert(0, tup(1, 10));
        side.evict_before(Timestamp::from_minutes(5)); // nothing below
        assert_eq!(side.bytes(), tup(1, 10).mem_bytes());
        side.evict_before(Timestamp::from_minutes(11));
        side.evict_before(Timestamp::from_minutes(11));
        assert_eq!(side.bytes(), 0);
    }
}
