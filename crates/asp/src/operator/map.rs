//! Projection Π_m (paper Section 2, operator 2): transform schema and
//! attribute values per a mapping expression; stateless.
//!
//! The mapping uses `map` in three roles: schema transformation for union
//! compatibility (disjunction), key assignment for the Cartesian-product
//! workaround and for O3 equi-join partitioning (Section 4.2.1), and
//! timestamp redefinition after each window join of a nested pattern
//! (Section 4.2.2).
//!
//! Those recurring roles are first-class [`MapKind`]s: unlike an opaque
//! closure, a named kind has a columnar form — key assignment rewrites the
//! `key` column, timestamp redefinition the `ts` column — so the operator
//! runs vectorized on the columnar plane. [`MapOp::new`] with an arbitrary
//! closure remains available and runs on the row path.

use crate::columnar::ColumnarBatch;
use crate::error::OpError;
use crate::operator::{BatchSupport, Collector, MapFn, Operator};
use crate::tuple::{Key, Tuple};

/// The transformation a [`MapOp`] applies. Every kind except
/// [`MapKind::Custom`] has a vectorized per-column implementation.
#[derive(Clone)]
pub enum MapKind {
    /// An arbitrary user closure; row path only.
    Custom(MapFn),
    /// Pass tuples through unchanged (useful as a chain/bench placeholder).
    Identity,
    /// Assign the same partition key to every tuple (the Cartesian-product
    /// workaround, Section 4.3.3).
    UniformKey(Key),
    /// Key each tuple by constituent `idx`'s sensor id (O3 equi-join
    /// partitioning); tuples without that constituent pass unchanged.
    KeyByEventId(usize),
    /// Redefine the working timestamp to the max constituent timestamp
    /// (complete-match rule, Section 4.2.2).
    TsToMax,
    /// Redefine the working timestamp to the min constituent timestamp
    /// (partial-match rule, Section 4.2.2).
    TsToMin,
}

/// The ASP `map` operator.
pub struct MapOp {
    name: String,
    kind: MapKind,
}

impl MapOp {
    /// Apply `f` to every tuple (Π). Row path; prefer a named constructor
    /// ([`MapOp::identity`], [`MapOp::uniform_key`], [`MapOp::key_by_id`],
    /// [`MapOp::ts_to_max`], [`MapOp::ts_to_min`], [`MapOp::of_kind`])
    /// when the transformation fits one, so it can vectorize.
    pub fn new(name: impl Into<String>, f: MapFn) -> Self {
        MapOp::of_kind(name, MapKind::Custom(f))
    }

    /// Construct from an explicit [`MapKind`].
    pub fn of_kind(name: impl Into<String>, kind: MapKind) -> Self {
        MapOp {
            name: name.into(),
            kind,
        }
    }

    /// The identity map — passes every tuple through unchanged.
    pub fn identity(name: impl Into<String>) -> Self {
        MapOp::of_kind(name, MapKind::Identity)
    }

    /// A map that assigns the same key to every tuple — the paper's
    /// workaround for missing Cartesian-product support: a uniform key
    /// forces all tuples into one partition (no parallelization potential,
    /// Section 4.3.3).
    pub fn uniform_key(name: impl Into<String>, key: Key) -> Self {
        MapOp::of_kind(name, MapKind::UniformKey(key))
    }

    /// A map that keys each tuple by its first constituent's sensor id —
    /// the O3 equi-join partitioning.
    pub fn key_by_id(name: impl Into<String>) -> Self {
        MapOp::of_kind(name, MapKind::KeyByEventId(0))
    }

    /// A map that keys each tuple by constituent `idx`'s sensor id (the
    /// rekey step the physical lowering emits per pattern variable).
    pub fn key_by_event_id(name: impl Into<String>, idx: usize) -> Self {
        MapOp::of_kind(name, MapKind::KeyByEventId(idx))
    }

    /// A map that redefines the working timestamp to the max constituent
    /// timestamp (complete-match rule of Section 4.2.2).
    pub fn ts_to_max(name: impl Into<String>) -> Self {
        MapOp::of_kind(name, MapKind::TsToMax)
    }

    /// A map that redefines the working timestamp to the min constituent
    /// timestamp (partial-match rule of Section 4.2.2).
    pub fn ts_to_min(name: impl Into<String>) -> Self {
        MapOp::of_kind(name, MapKind::TsToMin)
    }

    /// Row-path application of the transformation (shared semantics: the
    /// columnar kernels implement exactly these rewrites column-wise).
    #[inline]
    fn apply_row(&self, mut t: Tuple) -> Tuple {
        match &self.kind {
            MapKind::Custom(f) => f(t),
            MapKind::Identity => t,
            MapKind::UniformKey(k) => {
                t.key = *k;
                t
            }
            MapKind::KeyByEventId(idx) => {
                if let Some(e) = t.events.get(*idx) {
                    t.key = e.id as Key;
                }
                t
            }
            MapKind::TsToMax => {
                t.ts = t.ts_end();
                t
            }
            MapKind::TsToMin => {
                t.ts = t.ts_begin();
                t
            }
        }
    }
}

impl Operator for MapOp {
    fn process(
        &mut self,
        _input: usize,
        tuple: Tuple,
        out: &mut dyn Collector,
    ) -> Result<(), OpError> {
        out.emit(self.apply_row(tuple));
        Ok(())
    }

    fn batch_support(&self) -> BatchSupport {
        match self.kind {
            MapKind::Custom(_) => BatchSupport::Row,
            _ => BatchSupport::Columnar,
        }
    }

    fn process_columnar(
        &mut self,
        _input: usize,
        batch: &mut ColumnarBatch,
    ) -> Result<(), OpError> {
        // Helper applying `f(row)` to every selected physical row index.
        macro_rules! for_selected {
            ($batch:expr, $i:ident, $body:expr) => {
                match &$batch.sel {
                    None => {
                        for $i in 0..$batch.key.len() {
                            $body
                        }
                    }
                    Some(sel) => {
                        for &raw in sel {
                            let $i = raw as usize;
                            $body
                        }
                    }
                }
            };
        }
        match &self.kind {
            MapKind::Custom(_) => {
                return Err(OpError::ColumnarUnsupported {
                    operator: self.name.clone(),
                    detail: "custom map closure has no columnar form".to_string(),
                })
            }
            MapKind::Identity => {}
            MapKind::UniformKey(k) => {
                let k = *k;
                for_selected!(batch, i, batch.key[i] = k);
            }
            MapKind::KeyByEventId(idx) => {
                let idx = *idx;
                for_selected!(batch, i, {
                    let new_key = match batch.comp_at(i) {
                        // Composite rows: look up constituent `idx`.
                        Some(events) => events.get(idx).map(|e| e.id as Key),
                        // Primitive rows have exactly one constituent.
                        None if idx == 0 => Some(batch.id[i] as Key),
                        None => None,
                    };
                    if let Some(k) = new_key {
                        batch.key[i] = k;
                    }
                });
            }
            MapKind::TsToMax => {
                for_selected!(batch, i, {
                    let ts = match batch.comp_at(i) {
                        Some(events) => events.iter().map(|e| e.ts).max().unwrap_or(batch.ts[i]),
                        None => batch.ets[i],
                    };
                    batch.ts[i] = ts;
                });
            }
            MapKind::TsToMin => {
                for_selected!(batch, i, {
                    let ts = match batch.comp_at(i) {
                        Some(events) => events.iter().map(|e| e.ts).min().unwrap_or(batch.ts[i]),
                        None => batch.ets[i],
                    };
                    batch.ts[i] = ts;
                });
            }
        }
        Ok(())
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::testutil::{drive, tup};
    use crate::time::Timestamp;
    use crate::tuple::TsRule;
    use std::sync::Arc;

    #[test]
    fn uniform_key_overrides_partitioning() {
        let mut op = MapOp::uniform_key("key0", 0);
        let out = drive(
            &mut op,
            vec![(0, tup(0, 7, 1, 1.0)), (0, tup(0, 9, 2, 2.0))],
        );
        assert!(out.iter().all(|t| t.key == 0));
    }

    #[test]
    fn key_by_id_restores_sensor_partitioning() {
        let mut op = MapOp::key_by_id("keyById");
        let mut t = tup(0, 42, 1, 1.0);
        t.key = 999;
        let out = drive(&mut op, vec![(0, t)]);
        assert_eq!(out[0].key, 42);
    }

    #[test]
    fn ts_redefinition_rules() {
        let a = tup(0, 1, 2, 1.0);
        let b = tup(1, 1, 8, 2.0);
        let joined = a.join(&b, TsRule::Left); // ts = 2min
        let out = drive(&mut MapOp::ts_to_max("max"), vec![(0, joined.clone())]);
        assert_eq!(out[0].ts, Timestamp::from_minutes(8));
        let out = drive(&mut MapOp::ts_to_min("min"), vec![(0, joined)]);
        assert_eq!(out[0].ts, Timestamp::from_minutes(2));
    }

    #[test]
    fn custom_maps_stay_on_the_row_path() {
        let op = MapOp::new("id", Arc::new(|t| t));
        assert_eq!(op.batch_support(), BatchSupport::Row);
        assert_eq!(
            MapOp::identity("id").batch_support(),
            BatchSupport::Columnar
        );
    }

    #[test]
    fn columnar_kernels_match_row_semantics() {
        let a = tup(0, 7, 2, 1.0);
        let b = tup(1, 9, 8, 2.0);
        let joined = a.join(&b, TsRule::Left);
        let inputs = vec![a.clone(), joined.clone(), b.clone()];
        for mk_op in [
            || MapOp::identity("Π"),
            || MapOp::uniform_key("Π", 5),
            || MapOp::key_by_id("Π"),
            || MapOp::key_by_event_id("Π", 1),
            || MapOp::ts_to_max("Π"),
            || MapOp::ts_to_min("Π"),
        ] {
            let row_out = drive(
                &mut mk_op(),
                inputs.iter().cloned().map(|t| (0, t)).collect(),
            );
            let mut batch = ColumnarBatch::from_tuples(inputs.clone());
            mk_op().process_columnar(0, &mut batch).unwrap();
            assert_eq!(batch.to_tuples(), row_out, "op {}", mk_op().name());
        }
    }
}
