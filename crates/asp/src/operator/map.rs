//! Projection Π_m (paper Section 2, operator 2): transform schema and
//! attribute values per a mapping expression; stateless.
//!
//! The mapping uses `map` in three roles: schema transformation for union
//! compatibility (disjunction), key assignment for the Cartesian-product
//! workaround and for O3 equi-join partitioning (Section 4.2.1), and
//! timestamp redefinition after each window join of a nested pattern
//! (Section 4.2.2).

use std::sync::Arc;

use crate::error::OpError;
use crate::operator::{Collector, MapFn, Operator};
use crate::tuple::{Key, Tuple};

/// The ASP `map` operator.
pub struct MapOp {
    name: String,
    f: MapFn,
}

impl MapOp {
    /// Apply `f` to every tuple (Π).
    pub fn new(name: impl Into<String>, f: MapFn) -> Self {
        MapOp {
            name: name.into(),
            f,
        }
    }

    /// A map that assigns the same key to every tuple — the paper's
    /// workaround for missing Cartesian-product support: a uniform key
    /// forces all tuples into one partition (no parallelization potential,
    /// Section 4.3.3).
    pub fn uniform_key(name: impl Into<String>, key: Key) -> Self {
        MapOp::new(
            name,
            Arc::new(move |mut t: Tuple| {
                t.key = key;
                t
            }),
        )
    }

    /// A map that keys each tuple by its first constituent's sensor id —
    /// the O3 equi-join partitioning.
    pub fn key_by_id(name: impl Into<String>) -> Self {
        MapOp::new(
            name,
            Arc::new(|mut t: Tuple| {
                t.key = t.events[0].id as Key;
                t
            }),
        )
    }

    /// A map that redefines the working timestamp to the max constituent
    /// timestamp (complete-match rule of Section 4.2.2).
    pub fn ts_to_max(name: impl Into<String>) -> Self {
        MapOp::new(
            name,
            Arc::new(|mut t: Tuple| {
                t.ts = t.ts_end();
                t
            }),
        )
    }

    /// A map that redefines the working timestamp to the min constituent
    /// timestamp (partial-match rule of Section 4.2.2).
    pub fn ts_to_min(name: impl Into<String>) -> Self {
        MapOp::new(
            name,
            Arc::new(|mut t: Tuple| {
                t.ts = t.ts_begin();
                t
            }),
        )
    }
}

impl Operator for MapOp {
    fn process(
        &mut self,
        _input: usize,
        tuple: Tuple,
        out: &mut dyn Collector,
    ) -> Result<(), OpError> {
        out.emit((self.f)(tuple));
        Ok(())
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::testutil::{drive, tup};
    use crate::time::Timestamp;
    use crate::tuple::TsRule;

    #[test]
    fn uniform_key_overrides_partitioning() {
        let mut op = MapOp::uniform_key("key0", 0);
        let out = drive(
            &mut op,
            vec![(0, tup(0, 7, 1, 1.0)), (0, tup(0, 9, 2, 2.0))],
        );
        assert!(out.iter().all(|t| t.key == 0));
    }

    #[test]
    fn key_by_id_restores_sensor_partitioning() {
        let mut op = MapOp::key_by_id("keyById");
        let mut t = tup(0, 42, 1, 1.0);
        t.key = 999;
        let out = drive(&mut op, vec![(0, t)]);
        assert_eq!(out[0].key, 42);
    }

    #[test]
    fn ts_redefinition_rules() {
        let a = tup(0, 1, 2, 1.0);
        let b = tup(1, 1, 8, 2.0);
        let joined = a.join(&b, TsRule::Left); // ts = 2min
        let out = drive(&mut MapOp::ts_to_max("max"), vec![(0, joined.clone())]);
        assert_eq!(out[0].ts, Timestamp::from_minutes(8));
        let out = drive(&mut MapOp::ts_to_min("min"), vec![(0, joined)]);
        assert_eq!(out[0].ts, Timestamp::from_minutes(2));
    }
}
