//! The dataflow operator abstraction and the built-in operator library.
//!
//! Operators are single-threaded state machines driven by the runtime
//! harness: tuples arrive via [`Operator::process`], event time advances via
//! [`Operator::on_watermark`] (the harness has already merged watermarks
//! across input channels, so operators see one monotone clock), and
//! [`Operator::on_finish`] flushes remaining state at end of stream.
//!
//! Stateful operators report their buffered footprint through
//! [`Operator::state_bytes`]; the runtime samples it for the resource-usage
//! experiments (paper Figure 5) and enforces optional per-operator memory
//! budgets (the FlinkCEP failure mode of Section 5.2.3).

mod aggregate;
mod dedup;
mod filter;
mod interval_join;
mod keyed_side;
mod map;
mod next_occurrence;
mod union;
mod window_join;
mod window_udf;

pub use aggregate::{AggFn, WindowAggregateOp};
pub use dedup::DedupOp;
pub use filter::{Cmp, FilterOp, FilterSpec};
pub use interval_join::{IntervalBounds, IntervalJoinOp};
pub use map::{MapKind, MapOp};
pub use next_occurrence::NextOccurrenceOp;
pub use union::UnionOp;
pub use window_join::WindowJoinOp;
pub use window_udf::WindowUdfOp;

use std::sync::Arc;

use crate::columnar::ColumnarBatch;
use crate::error::OpError;
use crate::time::Timestamp;
use crate::tuple::Tuple;

/// How an operator participates in the columnar batch path.
///
/// `Row` operators receive materialized [`Tuple`]s one at a time through
/// [`Operator::process`] — the runtime converts columnar batches at their
/// input boundary (the "row shim"). `Columnar` operators additionally
/// implement [`Operator::process_columnar`] and are driven batch-at-a-time
/// on the columnar data plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSupport {
    /// Per-tuple processing only; the harness materializes rows.
    Row,
    /// Vectorized batch-in/batch-out processing over [`ColumnarBatch`]es.
    Columnar,
}

/// Receives an operator's output tuples; the runtime implementation routes
/// them to downstream channels.
pub trait Collector {
    /// Hand one output tuple downstream.
    fn emit(&mut self, tuple: Tuple);
}

/// A `Collector` backed by a plain vector, for unit tests and direct
/// (single-threaded) plan evaluation.
#[derive(Debug, Default)]
pub struct VecCollector {
    /// Everything emitted so far, in emission order.
    pub out: Vec<Tuple>,
}

impl Collector for VecCollector {
    fn emit(&mut self, tuple: Tuple) {
        self.out.push(tuple);
    }
}

/// A dataflow operator instance.
///
/// `input` identifies the logical input port (0 for unary operators; binary
/// joins use 0 = left / 1 = right). Implementations must be `Send` so the
/// runtime can move each instance onto its worker thread.
pub trait Operator: Send {
    /// Process one tuple from input port `input`.
    fn process(
        &mut self,
        input: usize,
        tuple: Tuple,
        out: &mut dyn Collector,
    ) -> Result<(), OpError>;

    /// Whether this operator runs on the columnar data plane. Defaults to
    /// [`BatchSupport::Row`]: the harness materializes tuples at the input
    /// boundary and per-tuple [`Operator::process`] semantics apply.
    fn batch_support(&self) -> BatchSupport {
        BatchSupport::Row
    }

    /// Vectorized batch-in/batch-out processing: mutate `batch` in place —
    /// narrow its selection vector (filters), rewrite selected rows (maps),
    /// or count them (union) — and the harness forwards the surviving
    /// selection downstream. Only invoked when [`Operator::batch_support`]
    /// returns [`BatchSupport::Columnar`]; the default rejects the payload,
    /// which the runtime reports as the `G016` diagnostic
    /// ([`crate::validate::Code::ColumnarPayloadMismatch`]).
    fn process_columnar(&mut self, input: usize, batch: &mut ColumnarBatch) -> Result<(), OpError> {
        let _ = (input, batch);
        Err(OpError::ColumnarUnsupported {
            operator: self.name().to_string(),
            detail: "process_columnar not implemented".to_string(),
        })
    }

    /// Event time advanced to `wm`: fire windows, evict state, emit results.
    /// All tuples with `ts < wm` on every port have been delivered.
    ///
    /// Returns the watermark to forward downstream. Operators that retain
    /// tuples past the watermark (e.g. the NSEQ next-occurrence rewrite,
    /// which holds each trigger event for up to `W`) must hold the forwarded
    /// watermark back accordingly so their late emissions are not late for
    /// downstream windows; everything else returns `wm` unchanged.
    fn on_watermark(
        &mut self,
        wm: Timestamp,
        out: &mut dyn Collector,
    ) -> Result<Timestamp, OpError> {
        let _ = out;
        Ok(wm)
    }

    /// All inputs are exhausted; flush any remaining state.
    fn on_finish(&mut self, out: &mut dyn Collector) -> Result<(), OpError> {
        // Default: a final watermark at +inf fires everything.
        self.on_watermark(Timestamp::MAX, out).map(|_| ())
    }

    /// Current buffered state footprint in bytes (0 for stateless ops).
    fn state_bytes(&self) -> usize {
        0
    }

    /// High-water marks of key-partitioned state, for operators that shard
    /// their buffers by partition key (the binary temporal joins). `None`
    /// for operators without keyed state. The runtime samples this
    /// alongside [`Operator::state_bytes`] and exports it as per-node
    /// gauges; `cep2asp`'s cost model bounds the reported run length.
    fn keyed_state(&self) -> Option<KeyedStateStats> {
        None
    }

    /// Whether this operator can hand keyed state off between shard
    /// instances while the pipeline runs
    /// ([`Operator::extract_shard`]/[`Operator::absorb_shard`]). Defaults
    /// to `false`: a sharded node whose operator cannot hand off still runs
    /// sharded, but its key placement is fixed for the whole run (the
    /// rebalancer never migrates its slots).
    fn shard_handoff_supported(&self) -> bool {
        false
    }

    /// Remove and return all keyed state whose partition key satisfies
    /// `part`, as an opaque payload for the target shard's
    /// [`Operator::absorb_shard`]. Called by the runtime on the *source*
    /// shard of a slot migration once the slot's inputs are drained (so
    /// the extracted state can no longer grow). Returns `None` when the
    /// operator does not support handoff — the runtime never asks unless
    /// [`Operator::shard_handoff_supported`] said yes.
    fn extract_shard(
        &mut self,
        part: &dyn Fn(u64) -> bool,
    ) -> Option<Box<dyn std::any::Any + Send>> {
        let _ = part;
        None
    }

    /// Merge a payload produced by a sibling instance's
    /// [`Operator::extract_shard`] into this instance's state. Both sides
    /// observe the same merged event-time clock at handoff (the runtime's
    /// marker alignment guarantees it), so implementations must compose
    /// window/firing cursors without losing or duplicating results.
    fn absorb_shard(&mut self, state: Box<dyn std::any::Any + Send>) -> Result<(), OpError> {
        let _ = state;
        Err(OpError::Failed {
            operator: self.name().to_string(),
            reason: "operator does not support shard state handoff".to_string(),
        })
    }

    /// Human-readable operator name for plans, metrics, and errors.
    fn name(&self) -> &str;
}

/// High-water marks of a key-partitioned operator's state layout (peaks
/// over the operator's lifetime, not instantaneous gauges — peaks make the
/// numbers deterministic under any sampling cadence).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KeyedStateStats {
    /// Peak distinct partition keys resident on the left side.
    pub left_keys: usize,
    /// Peak distinct partition keys resident on the right side.
    pub right_keys: usize,
    /// Longest per-key ts-ordered run observed on either side.
    pub max_run_len: usize,
}

/// Shared, clonable predicate over a single tuple (σ in the paper).
pub type UnaryPredicate = Arc<dyn Fn(&Tuple) -> bool + Send + Sync>;

/// Shared, clonable predicate over a candidate join pair (θ in the paper).
pub type JoinPredicate = Arc<dyn Fn(&Tuple, &Tuple) -> bool + Send + Sync>;

/// Shared, clonable tuple transformation (Π / map in the paper).
pub type MapFn = Arc<dyn Fn(Tuple) -> Tuple + Send + Sync>;

/// Shared window UDF: receives the full (ts-sorted) window content and may
/// emit any number of output tuples.
pub type WindowFn =
    Arc<dyn Fn(&crate::window::WindowId, &mut Vec<Tuple>, &mut dyn Collector) + Send + Sync>;

/// Convenience: a predicate that accepts everything.
pub fn always_true() -> UnaryPredicate {
    Arc::new(|_| true)
}

/// Convenience: a join predicate that accepts every pair (cross join).
pub fn cross_join() -> JoinPredicate {
    Arc::new(|_, _| true)
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::event::{Event, EventType};

    /// Build a primitive tuple: type `t`, sensor `id`, minute `m`, value `v`.
    pub fn tup(t: u16, id: u32, m: i64, v: f64) -> Tuple {
        Tuple::from_event(Event::new(EventType(t), id, Timestamp::from_minutes(m), v))
    }

    /// Drive an operator over a ts-ordered single-input stream and return
    /// everything it emits (watermark after every tuple + final flush).
    pub fn drive(op: &mut dyn Operator, inputs: Vec<(usize, Tuple)>) -> Vec<Tuple> {
        let mut col = VecCollector::default();
        for (port, t) in inputs {
            let wm = t.ts;
            op.process(port, t, &mut col).expect("process");
            op.on_watermark(wm, &mut col).expect("watermark");
        }
        op.on_finish(&mut col).expect("finish");
        col.out
    }
}
