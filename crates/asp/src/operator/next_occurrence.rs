//! The NSEQ rewrite's UDF (paper Section 4.1, negated-sequence discussion).
//!
//! Input is the union of the trigger stream `T1` and the negated stream
//! `T2`. For each trigger event `e1 ∈ T1` the operator finds the *next*
//! occurrence of an `e2 ∈ T2` strictly after `e1` within the pattern window
//! `W` and annotates `e1` with `ats = e2.ts`; if no such `e2` exists,
//! `ats = e1.ts + W` ("no negation until the window closes"). Downstream,
//! `SEQ(T1', T3)` adds the selection `σ_{ats ≥ e3.ts}`, which guarantees no
//! `e2 ∈ T2` occurred in the *open* interval `(e1.ts, e3.ts)` of
//! Equation 14. (The paper writes `σ_{ats > e3.ts}`; `≥` is the exact
//! rewrite of the open interval when `e2.ts = e3.ts` ties are possible.)
//!
//! Unlike the retrospective NFA evaluation, nothing is re-examined after
//! emission: each trigger is held exactly `W`, annotated once, and
//! released. Because events are retained past the watermark, the operator
//! holds the forwarded watermark back by `W`.

use std::collections::BTreeMap;

use crate::error::OpError;
use crate::operator::{Collector, Operator, UnaryPredicate};
use crate::time::{Duration, Timestamp};
use crate::tuple::Tuple;

/// Annotates trigger tuples with the timestamp of the next marker tuple.
pub struct NextOccurrenceOp {
    name: String,
    /// Selects trigger (`T1`) tuples from the unioned input.
    is_trigger: UnaryPredicate,
    /// Selects marker (`T2`, negated) tuples from the unioned input.
    is_marker: UnaryPredicate,
    w: Duration,
    /// Pending triggers keyed by `(ts, arrival seq)`.
    pending: BTreeMap<(Timestamp, u64), Tuple>,
    /// Marker timestamps, ordered; arrival seq disambiguates duplicates.
    markers: BTreeMap<(Timestamp, u64), ()>,
    seq: u64,
    state_bytes: usize,
}

impl NextOccurrenceOp {
    /// The NSEQ rewrite: emit a trigger tuple iff no marker occurs within
    /// `w` after it (`is_trigger`/`is_marker` classify the unioned input).
    pub fn new(
        name: impl Into<String>,
        is_trigger: UnaryPredicate,
        is_marker: UnaryPredicate,
        w: Duration,
    ) -> Self {
        assert!(w.millis() > 0, "window must be positive");
        NextOccurrenceOp {
            name: name.into(),
            is_trigger,
            is_marker,
            w,
            pending: BTreeMap::new(),
            markers: BTreeMap::new(),
            seq: 0,
            state_bytes: 0,
        }
    }

    /// Release every trigger whose annotation is final, i.e. all markers up
    /// to `e1.ts + W` are known: `wm ≥ e1.ts + W`.
    fn release(&mut self, wm: Timestamp, out: &mut dyn Collector) {
        while let Some((&(ts, seq), _)) = self.pending.first_key_value() {
            if wm < ts.saturating_add(self.w) {
                break;
            }
            let mut trigger = self.pending.remove(&(ts, seq)).expect("entry exists");
            self.state_bytes = self.state_bytes.saturating_sub(trigger.mem_bytes());
            // Next marker strictly after ts, within (ts, ts + W).
            let next = self
                .markers
                .range((ts, u64::MAX)..)
                .map(|(&(mts, _), _)| mts)
                .next();
            trigger.ats = Some(match next {
                Some(mts) if mts < ts.saturating_add(self.w) => mts,
                _ => ts.saturating_add(self.w),
            });
            out.emit(trigger);
        }
        // A marker at mts serves triggers with ts < mts and ts + W > mts;
        // pending & future triggers have ts > wm - W, so markers with
        // mts ≤ wm - W are dead.
        let cutoff = wm.saturating_sub(self.w);
        while let Some((&(mts, mseq), _)) = self.markers.first_key_value() {
            if mts > cutoff {
                break;
            }
            self.markers.remove(&(mts, mseq));
            self.state_bytes = self.state_bytes.saturating_sub(MARKER_COST);
        }
    }
}

const MARKER_COST: usize = std::mem::size_of::<(Timestamp, u64)>() + 16;

impl Operator for NextOccurrenceOp {
    fn process(
        &mut self,
        _input: usize,
        tuple: Tuple,
        _out: &mut dyn Collector,
    ) -> Result<(), OpError> {
        self.seq += 1;
        if (self.is_marker)(&tuple) {
            self.markers.insert((tuple.ts, self.seq), ());
            self.state_bytes += MARKER_COST;
        }
        if (self.is_trigger)(&tuple) {
            self.state_bytes += tuple.mem_bytes();
            self.pending.insert((tuple.ts, self.seq), tuple);
        }
        Ok(())
    }

    fn on_watermark(
        &mut self,
        wm: Timestamp,
        out: &mut dyn Collector,
    ) -> Result<Timestamp, OpError> {
        self.release(wm, out);
        // Held-back watermark: emitted triggers have ts ≤ wm - W.
        Ok(wm.saturating_sub(self.w))
    }

    fn on_finish(&mut self, out: &mut dyn Collector) -> Result<(), OpError> {
        self.release(Timestamp::MAX, out);
        Ok(())
    }

    fn state_bytes(&self) -> usize {
        self.state_bytes
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventType;
    use crate::operator::testutil::tup;
    use crate::operator::VecCollector;
    use std::sync::Arc;

    fn is_type(t: u16) -> UnaryPredicate {
        Arc::new(move |tp: &Tuple| tp.events[0].etype == EventType(t))
    }

    fn run(feed: Vec<Tuple>, w_min: i64) -> Vec<Tuple> {
        let mut op = NextOccurrenceOp::new(
            "nextOcc",
            is_type(0),
            is_type(1),
            Duration::from_minutes(w_min),
        );
        let mut col = VecCollector::default();
        for t in feed {
            let wm = t.ts;
            op.process(0, t, &mut col).unwrap();
            op.on_watermark(wm, &mut col).unwrap();
        }
        op.on_finish(&mut col).unwrap();
        col.out
    }

    #[test]
    fn annotates_with_next_marker_ts() {
        let out = run(
            vec![tup(0, 0, 1, 1.0), tup(1, 0, 3, 2.0), tup(0, 0, 4, 3.0)],
            10,
        );
        assert_eq!(out.len(), 2);
        assert_eq!(
            out[0].ats,
            Some(Timestamp::from_minutes(3)),
            "marker@3 follows trigger@1"
        );
        assert_eq!(
            out[1].ats,
            Some(Timestamp::from_minutes(14)),
            "no marker after trigger@4 → ats = ts + W"
        );
    }

    #[test]
    fn marker_at_same_ts_does_not_count() {
        // Strictly-after semantics: e2.ts must exceed e1.ts.
        let out = run(vec![tup(1, 0, 5, 9.0), tup(0, 0, 5, 1.0)], 10);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ats, Some(Timestamp::from_minutes(15)));
    }

    #[test]
    fn marker_outside_window_is_ignored() {
        let out = run(vec![tup(0, 0, 1, 1.0), tup(1, 0, 20, 2.0)], 10);
        assert_eq!(out[0].ats, Some(Timestamp::from_minutes(11)));
    }

    #[test]
    fn triggers_release_in_ts_order() {
        let out = run(
            vec![tup(0, 0, 1, 1.0), tup(0, 0, 2, 2.0), tup(0, 0, 3, 3.0)],
            5,
        );
        let ts: Vec<_> = out.iter().map(|t| t.ts.millis() / 60_000).collect();
        assert_eq!(ts, vec![1, 2, 3]);
    }

    #[test]
    fn watermark_is_held_back_by_w() {
        let mut op = NextOccurrenceOp::new(
            "nextOcc",
            is_type(0),
            is_type(1),
            Duration::from_minutes(10),
        );
        let mut col = VecCollector::default();
        op.process(0, tup(0, 0, 1, 1.0), &mut col).unwrap();
        let fwd = op
            .on_watermark(Timestamp::from_minutes(30), &mut col)
            .unwrap();
        assert_eq!(fwd, Timestamp::from_minutes(20));
        // The emitted trigger (ts=1min) is not late w.r.t. any previously
        // forwarded watermark (none exceeded 1min before its emission).
        assert_eq!(col.out.len(), 1);
    }

    #[test]
    fn state_is_bounded_by_window() {
        let mut op =
            NextOccurrenceOp::new("nextOcc", is_type(0), is_type(1), Duration::from_minutes(5));
        let mut col = VecCollector::default();
        for m in 0..100 {
            op.process(0, tup(0, 0, m, 1.0), &mut col).unwrap();
            op.process(0, tup(1, 0, m, 1.0), &mut col).unwrap();
            op.on_watermark(Timestamp::from_minutes(m), &mut col)
                .unwrap();
        }
        // At most W+1 minutes of triggers + markers retained.
        let peak = op.state_bytes();
        let per_minute = MARKER_COST + tup(0, 0, 0, 1.0).mem_bytes();
        assert!(
            peak <= 7 * per_minute,
            "state {peak}B exceeds ~6 minutes of retention ({})",
            7 * per_minute
        );
        op.on_finish(&mut col).unwrap();
        assert_eq!(col.out.len(), 100, "every trigger released exactly once");
        assert_eq!(op.state_bytes(), 0);
    }

    #[test]
    fn picks_first_of_multiple_markers() {
        let out = run(
            vec![tup(0, 0, 1, 1.0), tup(1, 0, 4, 2.0), tup(1, 0, 6, 3.0)],
            10,
        );
        assert_eq!(out[0].ats, Some(Timestamp::from_minutes(4)));
    }
}
