//! Set union ∪ (the disjunction mapping, paper Section 4.1): merge any
//! number of input ports into one output stream. Requires union-compatible
//! schemas, which our common `(id, lat, lon, ts, value)` schema guarantees
//! by construction; heterogeneous sources go through a preceding `map`.
//!
//! Watermark alignment across ports is handled by the runtime harness (the
//! operator sees the merged minimum), so the operator itself is a stateless
//! pass-through — which is exactly why `OR` is the cheapest SEA operator
//! under the mapping.

use crate::columnar::ColumnarBatch;
use crate::error::OpError;
use crate::operator::{BatchSupport, Collector, Operator};
use crate::tuple::Tuple;

/// N-ary stream union.
pub struct UnionOp {
    name: String,
    per_port: Vec<u64>,
}

impl UnionOp {
    /// Merge `ports` inputs into one stream (∪), counting per-port arrivals.
    pub fn new(name: impl Into<String>, ports: usize) -> Self {
        UnionOp {
            name: name.into(),
            per_port: vec![0; ports.max(1)],
        }
    }

    /// Tuples seen per input port.
    pub fn port_counts(&self) -> &[u64] {
        &self.per_port
    }
}

impl Operator for UnionOp {
    fn process(
        &mut self,
        input: usize,
        tuple: Tuple,
        out: &mut dyn Collector,
    ) -> Result<(), OpError> {
        if let Some(c) = self.per_port.get_mut(input) {
            *c += 1;
        }
        out.emit(tuple);
        Ok(())
    }

    fn batch_support(&self) -> BatchSupport {
        BatchSupport::Columnar
    }

    fn process_columnar(&mut self, input: usize, batch: &mut ColumnarBatch) -> Result<(), OpError> {
        // Pure pass-through: only the per-port arrival counters change.
        if let Some(c) = self.per_port.get_mut(input) {
            *c += batch.selected_len() as u64;
        }
        Ok(())
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::testutil::{drive, tup};

    #[test]
    fn merges_all_ports() {
        let mut op = UnionOp::new("∪", 3);
        let out = drive(
            &mut op,
            vec![
                (0, tup(0, 1, 0, 1.0)),
                (1, tup(1, 1, 1, 2.0)),
                (2, tup(2, 1, 2, 3.0)),
                (0, tup(0, 1, 3, 4.0)),
            ],
        );
        assert_eq!(out.len(), 4);
        assert_eq!(op.port_counts(), &[2, 1, 1]);
    }

    #[test]
    fn preserves_tuples_verbatim() {
        let mut op = UnionOp::new("∪", 2);
        let t = tup(5, 9, 7, 3.25);
        let out = drive(&mut op, vec![(1, t.clone())]);
        assert_eq!(out, vec![t]);
    }
}
