//! Sliding-window join — the default mapping target for conjunction,
//! sequence, and iteration (paper Table 1).
//!
//! Both inputs are discretized into the same (possibly overlapping)
//! substreams `T_k` (Section 3.1.2); when the watermark passes a window's
//! end, the buffered sides are joined pairwise under the θ predicate and
//! every qualifying pair is emitted as a (partial) match. Overlapping
//! windows produce duplicate matches by design — the semantic equivalence
//! of Section 4 is modulo duplicates.
//!
//! Each tuple is buffered **once** per side in a key-partitioned
//! `KeyedSide`; window evaluation is *incremental* across overlapping
//! panes. When the watermark completes pane `[s, s+W)`, only the
//! slide-delta band `[s+W−slide, s+W)` of each buffer — the tuples no
//! earlier pane has probed — is joined against the other side's pane
//! range; a qualifying pair is found exactly once, in the first pane
//! containing both elements, and is emitted with the multiplicity of all
//! `(min_ts − s)/slide + 1` panes that contain it. The output multiset is
//! identical to rescanning every pane in full, but each tuple is probed
//! O(1) times instead of `W/slide` times (90 for the paper's ITER⁴
//! workload).
//!
//! Pairing is per *key* within the window: with the O3 equi-join
//! optimization the key is the matching attribute (sensor id) and the
//! join parallelizes; without it, a preceding uniform-key map degenerates
//! the operator to one global partition (Section 4.3.3). The key equality
//! is *structural*: a band tuple probes only its own key's ts-ordered run
//! on the opposite side, so per-pane work is O(band × matches-per-key)
//! instead of O(band × pane) — with K distinct keys the old global range
//! scan wasted ~K× of its probe work filtering `l.key == r.key` pair by
//! pair. Band scans iterate the sides' global `(ts, seq)` arrival index,
//! so the emission order is identical to the pre-partitioned layout. The
//! θ predicate (e.g. the sequence's `e1.ts < e2.ts`) is evaluated on top.

use crate::error::OpError;
use crate::operator::keyed_side::KeyedSide;
use crate::operator::{Collector, JoinPredicate, KeyedStateStats, Operator};
use crate::time::{Duration, Timestamp};
use crate::tuple::{TsRule, Tuple};
use crate::window::SlidingWindows;

/// The two-input sliding-window join operator.
pub struct WindowJoinOp {
    name: String,
    windows: SlidingWindows,
    theta: JoinPredicate,
    ts_rule: TsRule,
    left: KeyedSide,
    right: KeyedSide,
    seq: u64,
    /// Start of the next window to evaluate (aligned to the slide).
    next_fire: Timestamp,
    /// Exclusive upper bound of the buffer region already probed by a fired
    /// pane. Tuples below it were matched when *their* first pane fired, so
    /// later overlapping panes only probe the delta band above it.
    probed_hi: Timestamp,
    /// Optional hard cap on buffered state; exceeding it aborts the run.
    memory_limit: Option<usize>,
    emitted: u64,
}

impl WindowJoinOp {
    /// A sliding-window join over `windows`: per window, emit all pairs
    /// satisfying `theta`; output timestamps follow `ts_rule`.
    pub fn new(
        name: impl Into<String>,
        windows: SlidingWindows,
        theta: JoinPredicate,
        ts_rule: TsRule,
    ) -> Self {
        WindowJoinOp {
            name: name.into(),
            windows,
            theta,
            ts_rule,
            left: KeyedSide::default(),
            right: KeyedSide::default(),
            seq: 0,
            next_fire: Timestamp(0),
            probed_hi: Timestamp(0),
            memory_limit: None,
            emitted: 0,
        }
    }

    /// Install a state budget (bytes); the run fails with
    /// [`OpError::MemoryExhausted`] when exceeded.
    pub fn with_memory_limit(mut self, bytes: usize) -> Self {
        self.memory_limit = Some(bytes);
        self
    }

    /// Matches emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    fn fire(&mut self, upto: Timestamp, out: &mut dyn Collector) {
        let w = Duration(self.windows.size.millis());
        let slide = Duration(self.windows.slide.millis());
        loop {
            // Jump over stretches with no buffered data.
            let earliest = match (self.left.earliest(), self.right.earliest()) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => break,
            };
            let min_start = self.windows.first_window_start(earliest);
            if self.next_fire < min_start {
                self.next_fire = min_start;
            }
            let start = self.next_fire;
            // Window [start, start+W) is complete once wm ≥ start+W.
            if start.saturating_add(w) > upto {
                break;
            }
            let end = start.saturating_add(w);
            // Incremental pane evaluation: probe only the band the previous
            // panes have not seen. Every pair whose younger element is below
            // the band was found — with full multiplicity — when the first
            // pane containing both fired, so rescanning it here would only
            // duplicate output.
            let band_lo = self.probed_hi.max(start);
            {
                let theta = &self.theta;
                let ts_rule = self.ts_rule;
                let slide_ms = slide.millis();
                let mut emitted = 0u64;
                // A pair is found exactly once: by its band-resident left
                // against rights at `ts ≤ l.ts` (inclusive), or by its
                // band-resident right against strictly older lefts — the
                // two probes partition the pairs by which side is younger.
                // `start` is the first aligned pane containing the pair, so
                // it lives in `(min_ts − start)/slide + 1` panes total; all
                // copies are emitted here and later panes skip the pair.
                let mut pair = |l: &Tuple, r: &Tuple, emitted: &mut u64| {
                    // Key equality is structural: both tuples come from the
                    // same key's runs.
                    debug_assert_eq!(l.key, r.key);
                    if theta(l, r) {
                        let mn = l.ts.min(r.ts);
                        let copies =
                            ((mn.millis() - start.millis()).div_euclid(slide_ms) + 1) as u64;
                        // One `join` allocates the composite's constituent
                        // list; `Tuple::events` is an `Arc`, so each extra
                        // pane copy is a refcount bump, not a heap copy.
                        let j = l.join(r, ts_rule);
                        for _ in 1..copies {
                            out.emit(j.clone());
                        }
                        out.emit(j);
                        *emitted += copies;
                    }
                };
                for l in self.left.band(band_lo, end) {
                    if let Some(rights) = self.right.run(l.key) {
                        for (_, r) in rights.range((start, 0)..=(l.ts, u64::MAX)) {
                            pair(l, r, &mut emitted);
                        }
                    }
                }
                for r in self.right.band(band_lo, end) {
                    if let Some(lefts) = self.left.run(r.key) {
                        for (_, l) in lefts.range((start, 0)..(r.ts, 0)) {
                            pair(l, r, &mut emitted);
                        }
                    }
                }
                self.emitted += emitted;
            }
            self.probed_hi = self.probed_hi.max(end);
            // Tuples below the next window start can never appear again.
            self.next_fire = start.saturating_add(slide);
            self.left.evict_before(self.next_fire);
            self.right.evict_before(self.next_fire);
        }
    }

    fn check_limit(&mut self) -> Result<(), OpError> {
        let used = self.left.bytes() + self.right.bytes();
        if let Some(limit) = self.memory_limit {
            if used > limit {
                return Err(OpError::MemoryExhausted {
                    operator: self.name.clone(),
                    state_bytes: used,
                    limit_bytes: limit,
                });
            }
        }
        Ok(())
    }
}

impl Operator for WindowJoinOp {
    fn process(
        &mut self,
        input: usize,
        tuple: Tuple,
        _out: &mut dyn Collector,
    ) -> Result<(), OpError> {
        debug_assert!(input < 2, "window join has two ports");
        self.seq += 1;
        if input == 0 {
            self.left.insert(self.seq, tuple);
        } else {
            self.right.insert(self.seq, tuple);
        }
        self.check_limit()
    }

    fn on_watermark(
        &mut self,
        wm: Timestamp,
        out: &mut dyn Collector,
    ) -> Result<Timestamp, OpError> {
        self.fire(wm, out);
        // Watermark contract: all *future* emissions carry ts ≥ the
        // forwarded watermark. A window firing at some later wm' > wm has
        // start > wm − W, and emitted composites carry ts ≥ start under
        // every TsRule, so hold the forwarded watermark back by W.
        Ok(wm
            .saturating_sub(Duration(self.windows.size.millis()))
            .saturating_add(Duration(1)))
    }

    fn state_bytes(&self) -> usize {
        self.left.bytes() + self.right.bytes()
    }

    fn keyed_state(&self) -> Option<KeyedStateStats> {
        Some(KeyedStateStats {
            left_keys: self.left.peak_keys(),
            right_keys: self.right.peak_keys(),
            max_run_len: self.left.peak_run().max(self.right.peak_run()),
        })
    }

    fn shard_handoff_supported(&self) -> bool {
        true
    }

    fn extract_shard(
        &mut self,
        part: &dyn Fn(u64) -> bool,
    ) -> Option<Box<dyn std::any::Any + Send>> {
        Some(Box::new(WindowJoinHandoff {
            left: self.left.extract_keys(part),
            right: self.right.extract_keys(part),
            next_fire: self.next_fire,
            probed_hi: self.probed_hi,
        }))
    }

    /// Merge a sibling's extracted slot state. Both instances have fired
    /// every window ending at or below the same merged watermark `W` when
    /// the runtime aligns the handoff, so the cursors compose:
    ///
    /// * `next_fire` takes the **min** — the source may have advanced
    ///   further only past windows *it* had no data for, and re-walking a
    ///   window is free of duplicates because its band floor (`probed_hi`)
    ///   already covers every pair emitted there;
    /// * `probed_hi` takes the **max** — a row the source holds below the
    ///   target's probe floor cannot exist: every window ending ≤ `W` that
    ///   contains it fired on the source too, which would have pushed the
    ///   source's own floor past the row (and symmetrically for the
    ///   target's rows against the source's floor). So raising the floor
    ///   to the max never skips an unemitted pair.
    fn absorb_shard(&mut self, state: Box<dyn std::any::Any + Send>) -> Result<(), OpError> {
        let h = state
            .downcast::<WindowJoinHandoff>()
            .map_err(|_| OpError::Failed {
                operator: self.name.clone(),
                reason: "shard handoff payload is not WindowJoinHandoff state".to_string(),
            })?;
        self.next_fire = self.next_fire.min(h.next_fire);
        self.probed_hi = self.probed_hi.max(h.probed_hi);
        self.left.absorb(h.left, &mut self.seq);
        self.right.absorb(h.right, &mut self.seq);
        self.check_limit()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A slot's extracted [`WindowJoinOp`] state in flight between shard
/// instances: both sides' tuples for the migrated keys in arrival order,
/// plus the source's firing cursors.
struct WindowJoinHandoff {
    left: Vec<Tuple>,
    right: Vec<Tuple>,
    next_fire: Timestamp,
    probed_hi: Timestamp,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::testutil::tup;
    use crate::operator::{cross_join, VecCollector};
    use crate::time::Duration;
    use std::sync::Arc;

    fn seq_theta() -> JoinPredicate {
        Arc::new(|l: &Tuple, r: &Tuple| l.ts_end() < r.ts_begin())
    }

    fn run(op: &mut WindowJoinOp, feed: Vec<(usize, Tuple)>) -> Vec<Tuple> {
        let mut col = VecCollector::default();
        let mut wm = Timestamp::MIN;
        for (port, t) in feed {
            wm = wm.max(t.ts);
            op.process(port, t, &mut col).unwrap();
            op.on_watermark(wm, &mut col).unwrap();
        }
        op.on_finish(&mut col).unwrap();
        col.out
    }

    #[test]
    fn tumbling_cross_join_pairs_within_window_only() {
        let mut op = WindowJoinOp::new(
            "⋈",
            SlidingWindows::tumbling(Duration::from_minutes(10)),
            cross_join(),
            TsRule::Max,
        );
        // a,b in [0,10); c in [10,20): only (a-left, b-right) pairs.
        let out = run(
            &mut op,
            vec![
                (0, tup(0, 0, 1, 1.0)),
                (1, tup(1, 0, 2, 2.0)),
                (1, tup(1, 0, 12, 3.0)),
                (0, tup(0, 0, 15, 4.0)),
            ],
        );
        // Window 1: 1 left × 1 right = 1. Window 2: 1 × 1 = 1.
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn theta_predicate_enforces_sequence_order() {
        let mut op = WindowJoinOp::new(
            "⋈θ",
            SlidingWindows::tumbling(Duration::from_minutes(10)),
            seq_theta(),
            TsRule::Max,
        );
        let out = run(
            &mut op,
            vec![
                (1, tup(1, 0, 1, 2.0)), // right first: (left@3, right@1) must NOT match
                (0, tup(0, 0, 3, 1.0)),
                (1, tup(1, 0, 5, 3.0)), // (left@3, right@5) matches
            ],
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].events[0].ts, Timestamp::from_minutes(3));
        assert_eq!(out[0].events[1].ts, Timestamp::from_minutes(5));
        assert_eq!(out[0].ts, Timestamp::from_minutes(5), "TsRule::Max");
    }

    #[test]
    fn sliding_windows_emit_duplicates_for_overlap() {
        // W=4, s=2 → a pair 1 minute apart co-occurs in 2 windows → 2 copies.
        let mut op = WindowJoinOp::new(
            "⋈",
            SlidingWindows::new(Duration::from_minutes(4), Duration::from_minutes(2)),
            cross_join(),
            TsRule::Max,
        );
        let out = run(
            &mut op,
            vec![(0, tup(0, 0, 4, 1.0)), (1, tup(1, 0, 5, 2.0))],
        );
        assert_eq!(out.len(), 2, "overlapping windows duplicate the match");
        assert_eq!(out[0].match_key(), out[1].match_key());
    }

    #[test]
    fn duplicate_emissions_share_the_events_allocation() {
        // The pane-multiplicity path must not deep-copy the composite:
        // every copy's constituent list is the same Arc allocation.
        let mut op = WindowJoinOp::new(
            "⋈",
            SlidingWindows::new(Duration::from_minutes(6), Duration::from_minutes(2)),
            cross_join(),
            TsRule::Max,
        );
        let out = run(
            &mut op,
            vec![(0, tup(0, 0, 4, 1.0)), (1, tup(1, 0, 5, 2.0))],
        );
        assert_eq!(out.len(), 3, "pair lives in 3 overlapping panes");
        assert!(
            out.iter().all(|t| Arc::ptr_eq(&t.events, &out[0].events)),
            "pane copies must share one events allocation (refcount bumps)"
        );
    }

    #[test]
    fn equi_join_pairs_only_matching_keys() {
        let mut op = WindowJoinOp::new(
            "⋈=",
            SlidingWindows::tumbling(Duration::from_minutes(10)),
            cross_join(),
            TsRule::Max,
        );
        let out = run(
            &mut op,
            vec![
                (0, tup(0, 1, 1, 1.0)), // key 1
                (0, tup(0, 2, 2, 2.0)), // key 2
                (1, tup(1, 1, 3, 3.0)), // key 1 → joins only the first
            ],
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].events[0].id, 1);
    }

    #[test]
    fn state_is_released_after_firing() {
        let mut op = WindowJoinOp::new(
            "⋈",
            SlidingWindows::tumbling(Duration::from_minutes(5)),
            cross_join(),
            TsRule::Max,
        );
        let mut col = VecCollector::default();
        op.process(0, tup(0, 0, 1, 1.0), &mut col).unwrap();
        op.process(1, tup(1, 0, 2, 2.0), &mut col).unwrap();
        assert!(op.state_bytes() > 0);
        op.on_watermark(Timestamp::from_minutes(5), &mut col)
            .unwrap();
        assert_eq!(op.state_bytes(), 0, "fired windows are evicted");
        assert_eq!(col.out.len(), 1);
    }

    #[test]
    fn keyed_state_reports_high_water_marks() {
        let mut op = WindowJoinOp::new(
            "⋈",
            SlidingWindows::tumbling(Duration::from_minutes(5)),
            cross_join(),
            TsRule::Max,
        );
        let mut col = VecCollector::default();
        for (i, key) in [1u32, 2, 1, 3].iter().enumerate() {
            op.process(0, tup(0, *key, i as i64, 1.0), &mut col)
                .unwrap();
        }
        op.process(1, tup(1, 1, 1, 2.0), &mut col).unwrap();
        let ks = op.keyed_state().expect("joins report keyed state");
        assert_eq!(ks.left_keys, 3);
        assert_eq!(ks.right_keys, 1);
        assert_eq!(ks.max_run_len, 2, "key 1 holds two lefts");
        // Peaks survive eviction.
        op.on_watermark(Timestamp::from_minutes(10), &mut col)
            .unwrap();
        assert_eq!(op.state_bytes(), 0);
        assert_eq!(op.keyed_state().expect("keyed").left_keys, 3);
    }

    #[test]
    fn memory_limit_aborts_run() {
        let mut op = WindowJoinOp::new(
            "⋈",
            SlidingWindows::new(Duration::from_minutes(15), Duration::from_minutes(1)),
            cross_join(),
            TsRule::Max,
        )
        .with_memory_limit(512);
        let mut col = VecCollector::default();
        let mut failed = false;
        for i in 0..100 {
            if op.process(0, tup(0, 0, i, 1.0), &mut col).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "state must exceed a 512-byte budget");
    }

    #[test]
    fn windows_fire_in_order_and_only_once() {
        let mut op = WindowJoinOp::new(
            "⋈",
            SlidingWindows::tumbling(Duration::from_minutes(2)),
            cross_join(),
            TsRule::Max,
        );
        let mut col = VecCollector::default();
        for m in 0..10 {
            op.process(0, tup(0, 0, m, m as f64), &mut col).unwrap();
            op.process(1, tup(1, 0, m, m as f64), &mut col).unwrap();
        }
        op.on_finish(&mut col).unwrap();
        // Each 2-minute window holds 2 lefts × 2 rights = 4 pairs; 5 windows.
        assert_eq!(col.out.len(), 20);
        assert_eq!(op.emitted(), 20);
    }

    #[test]
    fn sparse_streams_skip_empty_windows() {
        // Events 10 000 minutes apart: the fire loop must jump, not crawl.
        let mut op = WindowJoinOp::new(
            "⋈",
            SlidingWindows::new(Duration::from_minutes(5), Duration::from_minutes(1)),
            cross_join(),
            TsRule::Max,
        );
        let mut col = VecCollector::default();
        for m in [0i64, 10_000, 20_000] {
            op.process(0, tup(0, 0, m, 1.0), &mut col).unwrap();
            op.process(1, tup(1, 0, m, 2.0), &mut col).unwrap();
            op.on_watermark(Timestamp::from_minutes(m), &mut col)
                .unwrap();
        }
        op.on_finish(&mut col).unwrap();
        // The pairs at minutes 10 000 and 20 000 appear in 5 overlapping
        // windows each; the pair at minute 0 only in [0, 5) (window starts
        // are clamped at the epoch).
        assert_eq!(col.out.len(), 11);
    }

    #[test]
    fn matches_reference_per_window_semantics() {
        // Cross-check against a brute-force per-window enumeration.
        let windows = SlidingWindows::new(Duration::from_minutes(4), Duration::from_minutes(2));
        let mut op = WindowJoinOp::new("⋈", windows, cross_join(), TsRule::Max);
        let feed: Vec<(usize, Tuple)> = (0..12)
            .map(|m| ((m % 2) as usize, tup((m % 2) as u16, 0, m, m as f64)))
            .collect();
        let got = run(&mut op, feed.clone());
        // Brute force: for every aligned window, pair all lefts × rights.
        let mut want = 0usize;
        for start in (0..24).step_by(2) {
            let in_win = |t: &Tuple| {
                t.ts >= Timestamp::from_minutes(start) && t.ts < Timestamp::from_minutes(start + 4)
            };
            let l = feed.iter().filter(|(p, t)| *p == 0 && in_win(t)).count();
            let r = feed.iter().filter(|(p, t)| *p == 1 && in_win(t)).count();
            want += l * r;
        }
        assert_eq!(got.len(), want);
    }

    #[test]
    fn multi_key_interleaving_matches_reference() {
        // Several keys interleaved on both sides: the key-partitioned
        // layout must reproduce the per-key brute force (key equality +
        // window co-residency), including pane multiplicities.
        let windows = SlidingWindows::new(Duration::from_minutes(6), Duration::from_minutes(2));
        let mut op = WindowJoinOp::new("⋈", windows, cross_join(), TsRule::Max);
        let feed: Vec<(usize, Tuple)> = (0..24)
            .map(|i| {
                let port = (i % 2) as usize;
                let key = (i % 5) as u32;
                // Monotone ts (the operator contract: nothing arrives
                // behind the watermark), keys cycling out of phase with
                // the ports so every key appears on both sides.
                (port, tup(port as u16, key, (i / 2) as i64, i as f64))
            })
            .collect();
        let got = run(&mut op, feed.clone());
        let mut want = 0usize;
        for start in (0..36).step_by(2) {
            let in_win = |t: &Tuple| {
                t.ts >= Timestamp::from_minutes(start) && t.ts < Timestamp::from_minutes(start + 6)
            };
            for (lp, l) in &feed {
                if *lp != 0 || !in_win(l) {
                    continue;
                }
                want += feed
                    .iter()
                    .filter(|(rp, r)| *rp == 1 && in_win(r) && r.key == l.key)
                    .count();
            }
        }
        assert_eq!(got.len(), want);
    }

    /// Canonical row: key, working ts, constituent (etype, id, ts) list.
    type CanonRow = (u64, i64, Vec<(u16, u32, i64)>);

    /// Canonical form for order-insensitive output comparison.
    fn multiset(out: &[Tuple]) -> Vec<CanonRow> {
        let mut v: Vec<_> = out
            .iter()
            .map(|t| {
                (
                    t.key,
                    t.ts.millis(),
                    t.events
                        .iter()
                        .map(|e| (e.etype.0, e.id, e.ts.millis()))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        v.sort();
        v
    }

    #[test]
    fn mid_stream_migration_matches_single_instance_run() {
        // Emulate the runtime's migration protocol at operator level: two
        // instances share a keyed stream; at an aligned watermark one
        // key's state is extracted from A and absorbed into B, and the
        // key's remaining tuples are delivered to B. The union of both
        // instances' outputs must equal a single-instance run exactly —
        // the state handoff may neither lose nor duplicate pairs.
        let windows = SlidingWindows::new(Duration::from_minutes(10), Duration::from_minutes(5));
        let fresh = || WindowJoinOp::new("⋈", windows, cross_join(), TsRule::Max);
        // Two keys, both sides, spanning several overlapping panes; the
        // cut at minute 12 lands mid-pane so open windows cross it.
        let feed: Vec<(usize, Tuple)> = vec![
            (0, tup(0, 1, 1, 1.0)),
            (1, tup(1, 2, 2, 2.0)),
            (1, tup(1, 1, 4, 3.0)),
            (0, tup(0, 2, 6, 4.0)),
            (0, tup(0, 1, 8, 5.0)),
            (1, tup(1, 2, 9, 6.0)),
            (1, tup(1, 1, 11, 7.0)),
            // ---- migration of key 2 happens at wm = minute 12 ----
            (0, tup(0, 2, 13, 8.0)),
            (1, tup(1, 1, 14, 9.0)),
            (1, tup(1, 2, 16, 10.0)),
            (0, tup(0, 1, 18, 11.0)),
            (0, tup(0, 2, 21, 12.0)),
        ];
        let cut = Timestamp::from_minutes(12);

        let mut reference = fresh();
        let mut ref_col = VecCollector::default();
        for (port, t) in &feed {
            let wm = t.ts;
            reference.process(*port, t.clone(), &mut ref_col).unwrap();
            reference.on_watermark(wm, &mut ref_col).unwrap();
        }
        reference.on_finish(&mut ref_col).unwrap();

        let mut a = fresh();
        let mut b = fresh();
        let mut a_col = VecCollector::default();
        let mut b_col = VecCollector::default();
        let mut migrated = false;
        for (port, t) in &feed {
            let wm = t.ts;
            if !migrated && wm >= cut {
                // Both instances sit at the same merged clock (the
                // runtime's marker alignment): hand key 2 across.
                a.on_watermark(cut, &mut a_col).unwrap();
                b.on_watermark(cut, &mut b_col).unwrap();
                let h = a.extract_shard(&|k| k == 2).expect("supported");
                b.absorb_shard(h).unwrap();
                migrated = true;
            }
            let dst = if migrated && t.key == 2 {
                (&mut b, &mut b_col)
            } else {
                (&mut a, &mut a_col)
            };
            dst.0.process(*port, t.clone(), dst.1).unwrap();
            a.on_watermark(wm, &mut a_col).unwrap();
            b.on_watermark(wm, &mut b_col).unwrap();
        }
        a.on_finish(&mut a_col).unwrap();
        b.on_finish(&mut b_col).unwrap();

        let mut combined = a_col.out;
        combined.extend(b_col.out);
        assert_eq!(
            multiset(&combined),
            multiset(&ref_col.out),
            "migrated run must emit exactly the single-instance pairs"
        );
        assert!(!combined.is_empty(), "scenario must actually produce pairs");
    }

    #[test]
    fn extract_unsupported_key_set_is_empty_not_lossy() {
        // Extracting a predicate that matches nothing hands off empty
        // sides and leaves the source's state intact.
        let windows = SlidingWindows::tumbling(Duration::from_minutes(10));
        let mut op = WindowJoinOp::new("⋈", windows, cross_join(), TsRule::Max);
        let mut col = VecCollector::default();
        op.process(0, tup(0, 1, 1, 1.0), &mut col).unwrap();
        op.process(1, tup(1, 1, 2, 2.0), &mut col).unwrap();
        let before = op.state_bytes();
        let h = op.extract_shard(&|_| false).expect("supported");
        assert_eq!(op.state_bytes(), before, "no keys matched: state intact");
        let mut other = WindowJoinOp::new("⋈", windows, cross_join(), TsRule::Max);
        other.absorb_shard(h).unwrap();
        assert_eq!(other.state_bytes(), 0);
        op.on_finish(&mut col).unwrap();
        assert_eq!(col.out.len(), 1, "pair still fires on the source");
    }
}
