//! UDF window function: buffer the window content and hand the sorted
//! tuples to a user function on firing.
//!
//! The paper relies on UDF window functions in two places: the NSEQ
//! rewrite (Section 4.1) and the Kleene+ extension of O2 that needs sorted
//! window content to evaluate conditions between contributing events
//! (Section 4.3.2). UDFs may emit any number of output tuples per window.

use std::collections::{BTreeMap, HashMap};

use crate::error::OpError;
use crate::operator::{Collector, Operator, WindowFn};
use crate::time::Timestamp;
use crate::tuple::{Key, Tuple};
use crate::window::{SlidingWindows, WindowId};

/// Sliding/tumbling window with an arbitrary process function.
pub struct WindowUdfOp {
    name: String,
    windows: SlidingWindows,
    f: WindowFn,
    panes: BTreeMap<WindowId, HashMap<Key, Vec<Tuple>>>,
    state_bytes: usize,
}

impl WindowUdfOp {
    /// Run `f` over each closed (window, key) pane's buffered tuples.
    pub fn new(name: impl Into<String>, windows: SlidingWindows, f: WindowFn) -> Self {
        WindowUdfOp {
            name: name.into(),
            windows,
            f,
            panes: BTreeMap::new(),
            state_bytes: 0,
        }
    }

    fn fire(&mut self, upto: Timestamp, out: &mut dyn Collector) {
        while let Some((&wid, _)) = self.panes.first_key_value() {
            if wid.end > upto {
                break;
            }
            let pane = self.panes.remove(&wid).expect("pane exists");
            for (_key, mut content) in pane {
                let freed: usize = content.iter().map(Tuple::mem_bytes).sum();
                self.state_bytes = self.state_bytes.saturating_sub(freed);
                // Hand the UDF deterministic, ts-ordered content.
                content.sort_by_key(|t| (t.ts, t.events.first().map(|e| e.etype)));
                (self.f)(&wid, &mut content, out);
            }
        }
    }
}

impl Operator for WindowUdfOp {
    fn process(
        &mut self,
        _input: usize,
        tuple: Tuple,
        _out: &mut dyn Collector,
    ) -> Result<(), OpError> {
        let cost = tuple.mem_bytes();
        for wid in self.windows.assign(tuple.ts) {
            self.panes
                .entry(wid)
                .or_default()
                .entry(tuple.key)
                .or_default()
                .push(tuple.clone());
            self.state_bytes += cost;
        }
        Ok(())
    }

    fn on_watermark(
        &mut self,
        wm: Timestamp,
        out: &mut dyn Collector,
    ) -> Result<Timestamp, OpError> {
        self.fire(wm, out);
        // The UDF may emit tuples anywhere inside a fired window, so the
        // forwarded watermark is held back by the window size (see the
        // window-join contract).
        Ok(wm
            .saturating_sub(crate::time::Duration(self.windows.size.millis()))
            .saturating_add(crate::time::Duration(1)))
    }

    fn state_bytes(&self) -> usize {
        self.state_bytes
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::testutil::tup;
    use crate::operator::VecCollector;
    use crate::time::Duration;
    use std::sync::Arc;

    #[test]
    fn udf_sees_sorted_window_content() {
        let f: WindowFn = Arc::new(|_wid, content, out| {
            // Emit one tuple carrying the count; assert sortedness.
            assert!(content.windows(2).all(|w| w[0].ts <= w[1].ts));
            let mut t = content[0].clone();
            t.agg = Some(content.len() as f64);
            out.emit(t);
        });
        let mut op = WindowUdfOp::new(
            "udf",
            SlidingWindows::tumbling(Duration::from_minutes(10)),
            f,
        );
        let mut col = VecCollector::default();
        // Deliberately out of ts order within the window.
        op.process(0, tup(0, 0, 5, 1.0), &mut col).unwrap();
        op.process(0, tup(0, 0, 2, 2.0), &mut col).unwrap();
        op.process(0, tup(0, 0, 8, 3.0), &mut col).unwrap();
        op.on_finish(&mut col).unwrap();
        assert_eq!(col.out.len(), 1);
        assert_eq!(col.out[0].agg, Some(3.0));
    }

    #[test]
    fn udf_may_emit_many_tuples() {
        let f: WindowFn = Arc::new(|_wid, content, out| {
            for t in content.drain(..) {
                out.emit(t.clone());
                out.emit(t);
            }
        });
        let mut op = WindowUdfOp::new(
            "fanout",
            SlidingWindows::tumbling(Duration::from_minutes(10)),
            f,
        );
        let mut col = VecCollector::default();
        op.process(0, tup(0, 0, 1, 1.0), &mut col).unwrap();
        op.on_finish(&mut col).unwrap();
        assert_eq!(col.out.len(), 2);
    }

    #[test]
    fn state_tracks_buffered_content() {
        let f: WindowFn = Arc::new(|_, _, _| {});
        let mut op = WindowUdfOp::new(
            "noop",
            SlidingWindows::tumbling(Duration::from_minutes(10)),
            f,
        );
        let mut col = VecCollector::default();
        op.process(0, tup(0, 0, 1, 1.0), &mut col).unwrap();
        assert!(op.state_bytes() > 0);
        op.on_watermark(Timestamp::from_minutes(10), &mut col)
            .unwrap();
        assert_eq!(op.state_bytes(), 0);
    }
}
