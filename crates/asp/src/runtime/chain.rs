//! Operator chaining (task fusion).
//!
//! Like Flink's operator chaining, linear stretches of the graph whose
//! edges never re-partition data are fused into a single task: the
//! upstream operator calls the downstream one directly instead of routing
//! every record through a channel. For pipelines built by the CEP mapping
//! this removes the per-record messaging cost of the scan → filter →
//! key-assignment prefixes, which otherwise dominates at low selectivities
//! — exactly the "pipeline parallelism + operator fusion" advantage the
//! paper attributes to ASP engines.
//!
//! An edge is fusible when it cannot change the partitioning of data:
//! either a `Forward` edge between equal-parallelism nodes, or any edge
//! between two single-instance nodes; additionally both endpoints must
//! have no other fan-in/fan-out and the downstream node must be an
//! operator (sinks keep their own thread for metrics isolation).

use crate::columnar::ColumnarBatch;
use crate::error::OpError;
use crate::graph::{Edge, Exchange, GraphBuilder, NodeId, NodeKind, OperatorFactory};
use crate::operator::{BatchSupport, Collector, KeyedStateStats, Operator, VecCollector};
use crate::time::Timestamp;
use crate::tuple::Tuple;

/// Several operators executed as one task; records flow between stages by
/// direct function calls with reusable scratch buffers.
pub struct ChainedOperator {
    name: String,
    ops: Vec<Box<dyn Operator>>,
    scratch_a: Vec<Tuple>,
    scratch_b: Vec<Tuple>,
}

impl ChainedOperator {
    /// Fuse `ops` into one operator that runs them back to back on the
    /// same task (no channels in between). Must not be empty.
    pub fn new(ops: Vec<Box<dyn Operator>>) -> Self {
        assert!(!ops.is_empty());
        let name = ops
            .iter()
            .map(|o| o.name().to_string())
            .collect::<Vec<_>>()
            .join(" → ");
        ChainedOperator {
            name,
            ops,
            scratch_a: Vec::new(),
            scratch_b: Vec::new(),
        }
    }

    /// Push tuples resting in `scratch_a` through stages `from..`, leaving
    /// final emissions in the provided collector.
    fn flow(&mut self, from: usize, port: usize, out: &mut dyn Collector) -> Result<(), OpError> {
        let mut stage_port = port;
        for i in from..self.ops.len() {
            if self.scratch_a.is_empty() {
                return Ok(());
            }
            let mut next = VecCollector {
                out: std::mem::take(&mut self.scratch_b),
            };
            for t in self.scratch_a.drain(..) {
                self.ops[i].process(stage_port, t, &mut next)?;
            }
            // Recycle the drained input as the next stage's output buffer —
            // the steady state allocates nothing per record.
            self.scratch_b = std::mem::take(&mut self.scratch_a);
            self.scratch_a = next.out;
            stage_port = 0;
        }
        for t in self.scratch_a.drain(..) {
            out.emit(t);
        }
        Ok(())
    }
}

impl Operator for ChainedOperator {
    fn process(
        &mut self,
        input: usize,
        tuple: Tuple,
        out: &mut dyn Collector,
    ) -> Result<(), OpError> {
        self.scratch_a.clear();
        self.scratch_a.push(tuple);
        self.flow(0, input, out)
    }

    fn on_watermark(
        &mut self,
        wm: Timestamp,
        out: &mut dyn Collector,
    ) -> Result<Timestamp, OpError> {
        // Cascade: stage i's watermark emissions must reach stage i+1
        // before stage i+1 observes the (possibly held-back) watermark.
        let mut carry: Vec<Tuple> = Vec::new();
        let mut cur_wm = wm;
        for i in 0..self.ops.len() {
            let mut buf = VecCollector::default();
            for t in carry.drain(..) {
                self.ops[i].process(0, t, &mut buf)?;
            }
            let fwd = self.ops[i].on_watermark(cur_wm, &mut buf)?;
            cur_wm = fwd.min(cur_wm);
            carry = buf.out;
        }
        for t in carry {
            out.emit(t);
        }
        Ok(cur_wm)
    }

    fn on_finish(&mut self, out: &mut dyn Collector) -> Result<(), OpError> {
        let mut carry: Vec<Tuple> = Vec::new();
        for i in 0..self.ops.len() {
            let mut buf = VecCollector::default();
            for t in carry.drain(..) {
                self.ops[i].process(0, t, &mut buf)?;
            }
            self.ops[i].on_finish(&mut buf)?;
            carry = buf.out;
        }
        for t in carry {
            out.emit(t);
        }
        Ok(())
    }

    fn batch_support(&self) -> BatchSupport {
        // The chain is columnar iff every member is: one row-only stage
        // forces the whole task onto the row shim (the harness cannot
        // switch representations mid-chain without a channel boundary).
        if self
            .ops
            .iter()
            .all(|o| o.batch_support() == BatchSupport::Columnar)
        {
            BatchSupport::Columnar
        } else {
            BatchSupport::Row
        }
    }

    fn process_columnar(&mut self, input: usize, batch: &mut ColumnarBatch) -> Result<(), OpError> {
        // Stateless columnar stages are 1-in/1-out over the same batch, so
        // fusion is literally sequential kernel application.
        let mut stage_port = input;
        for op in &mut self.ops {
            if batch.selected_len() == 0 {
                return Ok(());
            }
            op.process_columnar(stage_port, batch)?;
            stage_port = 0;
        }
        Ok(())
    }

    fn state_bytes(&self) -> usize {
        self.ops.iter().map(|o| o.state_bytes()).sum()
    }

    fn keyed_state(&self) -> Option<KeyedStateStats> {
        // Merge over the fused members: key counts add (distinct operators
        // hold distinct buffers), run lengths take the chain-wide max.
        let mut acc: Option<KeyedStateStats> = None;
        for ks in self.ops.iter().filter_map(|o| o.keyed_state()) {
            let a = acc.get_or_insert_with(KeyedStateStats::default);
            a.left_keys += ks.left_keys;
            a.right_keys += ks.right_keys;
            a.max_run_len = a.max_run_len.max(ks.max_run_len);
        }
        acc
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Rewrite the graph, fusing maximal chains. Returns the fused graph;
/// sink ids are preserved.
pub(crate) fn fuse_chains(graph: GraphBuilder) -> GraphBuilder {
    let n = graph.nodes.len();
    let mut fan_out = vec![0usize; n];
    let mut fan_in = vec![0usize; n];
    for e in &graph.edges {
        fan_out[e.src.0] += 1;
        fan_in[e.dst.0] += 1;
    }

    // succ[i] = node that i fuses into (follows).
    let mut succ: Vec<Option<usize>> = vec![None; n];
    let mut pred: Vec<Option<usize>> = vec![None; n];
    for e in &graph.edges {
        let (s, d) = (e.src.0, e.dst.0);
        if fan_out[s] != 1 || fan_in[d] != 1 {
            continue;
        }
        let ps = graph.nodes[s].parallelism;
        let pd = graph.nodes[d].parallelism;
        let fusible_exchange = match e.exchange {
            Exchange::Forward => ps == pd,
            Exchange::Hash | Exchange::Rebalance => ps == 1 && pd == 1,
        };
        if !fusible_exchange {
            continue;
        }
        // Sharded nodes keep their own task: shard routing and state
        // handoff operate on whole node instances, which fusing into a
        // neighbour's thread would silently undo.
        if graph.nodes[s].sharded || graph.nodes[d].sharded {
            continue;
        }
        if !matches!(graph.nodes[d].kind, NodeKind::Operator(_)) {
            continue; // sinks are not fused
        }
        if !matches!(
            graph.nodes[s].kind,
            NodeKind::Operator(_) | NodeKind::Source { .. }
        ) {
            continue;
        }
        succ[s] = Some(d);
        pred[d] = Some(s);
    }

    // Chain heads: nodes with no fused predecessor; members follow succ.
    let mut new_of_old: Vec<Option<NodeId>> = vec![None; n];
    let mut out = GraphBuilder::new();
    out.sink_count = graph.sink_count;
    out.sink_modes = graph.sink_modes.clone();

    let mut old_nodes: Vec<Option<crate::graph::Node>> =
        graph.nodes.into_iter().map(Some).collect();

    for head in 0..n {
        if pred[head].is_some() {
            continue; // absorbed into an earlier chain
        }
        // Collect the chain members.
        let mut members = vec![head];
        let mut cur = head;
        while let Some(next) = succ[cur] {
            members.push(next);
            cur = next;
        }
        let head_node = old_nodes[head].take().expect("node unused");
        let name = head_node.name.clone();
        let parallelism = head_node.parallelism;
        let sharded = head_node.sharded;
        let new_id = match head_node.kind {
            NodeKind::Source { cfg, mut chain } => {
                for &m in &members[1..] {
                    let node = old_nodes[m].take().expect("member unused");
                    if let NodeKind::Operator(f) = node.kind {
                        chain.push(f);
                    }
                }
                out.nodes.push(crate::graph::Node {
                    name,
                    parallelism,
                    kind: NodeKind::Source { cfg, chain },
                    sharded,
                });
                NodeId(out.nodes.len() - 1)
            }
            NodeKind::Operator(f) => {
                let mut factories = vec![f];
                for &m in &members[1..] {
                    let node = old_nodes[m].take().expect("member unused");
                    if let NodeKind::Operator(ff) = node.kind {
                        factories.push(ff);
                    }
                }
                let kind = if factories.len() == 1 {
                    NodeKind::Operator(factories.pop().expect("one factory"))
                } else {
                    NodeKind::Operator(Box::new(move |i| {
                        Box::new(ChainedOperator::new(
                            factories.iter().map(|f| f(i)).collect(),
                        ))
                    }))
                };
                out.nodes.push(crate::graph::Node {
                    name,
                    parallelism,
                    kind,
                    sharded,
                });
                NodeId(out.nodes.len() - 1)
            }
            NodeKind::Sink(sid) => {
                out.nodes.push(crate::graph::Node {
                    name,
                    parallelism,
                    kind: NodeKind::Sink(sid),
                    sharded,
                });
                NodeId(out.nodes.len() - 1)
            }
        };
        for &m in &members {
            new_of_old[m] = Some(new_id);
        }
    }

    // Rewire surviving edges: internal chain edges disappear; the chain
    // tail's outgoing edge now originates from the fused node.
    for e in &graph.edges {
        let (s, d) = (e.src.0, e.dst.0);
        if succ[s] == Some(d) {
            continue; // fused away
        }
        let src = new_of_old[s].expect("mapped");
        let dst = new_of_old[d].expect("mapped");
        out.edges.push(Edge {
            src,
            dst,
            port: e.port,
            exchange: e.exchange,
        });
    }
    out
}

/// A factory helper used by tests: wrap existing factories into a chain.
pub fn chain_factories(factories: Vec<OperatorFactory>) -> OperatorFactory {
    Box::new(move |i| {
        Box::new(ChainedOperator::new(
            factories.iter().map(|f| f(i)).collect(),
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventType};
    use crate::operator::{FilterOp, MapOp};
    use std::sync::Arc;

    fn tup(m: i64, v: f64) -> Tuple {
        Tuple::from_event(Event::new(EventType(0), 1, Timestamp::from_minutes(m), v))
    }

    #[test]
    fn chained_stages_compose_like_sequential_ops() {
        let mut chain = ChainedOperator::new(vec![
            Box::new(FilterOp::new(
                "σ",
                Arc::new(|t: &Tuple| t.events[0].value > 2.0),
            )),
            Box::new(MapOp::new(
                "Π",
                Arc::new(|mut t: Tuple| {
                    t.key = 42;
                    t
                }),
            )),
        ]);
        let mut out = VecCollector::default();
        for v in [1.0, 3.0, 5.0] {
            chain.process(0, tup(0, v), &mut out).unwrap();
        }
        assert_eq!(out.out.len(), 2);
        assert!(out.out.iter().all(|t| t.key == 42));
        assert_eq!(chain.name(), "σ → Π");
    }

    #[test]
    fn watermark_cascades_through_stateful_stage() {
        use crate::operator::{cross_join, WindowJoinOp};
        use crate::tuple::TsRule;
        use crate::window::SlidingWindows;
        // filter → window-join-as-self-input is nonsensical; instead test
        // join → map: join fires on watermark, map must see the emissions.
        let join = WindowJoinOp::new(
            "⋈",
            SlidingWindows::tumbling(crate::time::Duration::from_minutes(5)),
            cross_join(),
            TsRule::Max,
        );
        let mut chain = ChainedOperator::new(vec![
            Box::new(join),
            Box::new(MapOp::new(
                "Π",
                Arc::new(|mut t: Tuple| {
                    t.key = 7;
                    t
                }),
            )),
        ]);
        let mut out = VecCollector::default();
        chain.process(0, tup(1, 1.0), &mut out).unwrap();
        chain.process(1, tup(2, 2.0), &mut out).unwrap();
        assert!(out.out.is_empty());
        let fwd = chain
            .on_watermark(Timestamp::from_minutes(5), &mut out)
            .unwrap();
        // The join holds its forwarded watermark back by W (= 5 min).
        assert_eq!(fwd, Timestamp(1));
        assert_eq!(out.out.len(), 1, "join fired and map transformed");
        assert_eq!(out.out[0].key, 7);
    }

    #[test]
    fn finish_flushes_every_stage() {
        use crate::operator::{cross_join, WindowJoinOp};
        use crate::tuple::TsRule;
        use crate::window::SlidingWindows;
        let join = WindowJoinOp::new(
            "⋈",
            SlidingWindows::tumbling(crate::time::Duration::from_minutes(5)),
            cross_join(),
            TsRule::Max,
        );
        let mut chain = ChainedOperator::new(vec![Box::new(join)]);
        let mut out = VecCollector::default();
        chain.process(0, tup(1, 1.0), &mut out).unwrap();
        chain.process(1, tup(2, 2.0), &mut out).unwrap();
        chain.on_finish(&mut out).unwrap();
        assert_eq!(out.out.len(), 1);
        assert_eq!(chain.state_bytes(), 0);
    }

    #[test]
    fn fuse_collapses_linear_prefixes() {
        let mut g = GraphBuilder::new();
        let src = g.source("s", vec![Event::new(EventType(0), 1, Timestamp(0), 1.0)], 1);
        let f1 = g.unary(
            src,
            Exchange::Forward,
            1,
            Box::new(|_| Box::new(FilterOp::new("σ1", crate::operator::always_true()))),
        );
        let f2 = g.unary(
            f1,
            Exchange::Forward,
            1,
            Box::new(|_| Box::new(FilterOp::new("σ2", crate::operator::always_true()))),
        );
        let _sink = g.sink(f2, Exchange::Forward);
        let fused = fuse_chains(g);
        // source(+2 chained ops) and the sink remain.
        assert_eq!(fused.nodes.len(), 2);
        assert_eq!(fused.edges.len(), 1);
        match &fused.nodes[0].kind {
            NodeKind::Source { chain, .. } => assert_eq!(chain.len(), 2),
            other => panic!(
                "expected fused source, got {:?}",
                std::mem::discriminant(other)
            ),
        }
    }

    #[test]
    fn fan_out_prevents_fusion() {
        let mut g = GraphBuilder::new();
        let src = g.source("s", vec![Event::new(EventType(0), 1, Timestamp(0), 1.0)], 1);
        // Two consumers of the same source → no fusion of either edge.
        let f1 = g.unary(
            src,
            Exchange::Forward,
            1,
            Box::new(|_| Box::new(FilterOp::new("σ1", crate::operator::always_true()))),
        );
        let f2 = g.unary(
            src,
            Exchange::Forward,
            1,
            Box::new(|_| Box::new(FilterOp::new("σ2", crate::operator::always_true()))),
        );
        let _s1 = g.sink(f1, Exchange::Forward);
        let _s2 = g.sink(f2, Exchange::Forward);
        let fused = fuse_chains(g);
        assert_eq!(fused.nodes.len(), 5, "nothing fused across the fan-out");
    }

    #[test]
    fn keyed_exchange_with_parallelism_is_not_fused() {
        let mut g = GraphBuilder::new();
        let src = g.source("s", vec![Event::new(EventType(0), 1, Timestamp(0), 1.0)], 1);
        let f1 = g.unary(
            src,
            Exchange::Hash,
            4,
            Box::new(|_| Box::new(FilterOp::new("σ", crate::operator::always_true()))),
        );
        let _sink = g.sink(f1, Exchange::Rebalance);
        let fused = fuse_chains(g);
        assert_eq!(fused.nodes.len(), 3, "hash repartitioning blocks fusion");
    }
}
