//! Run statistics: node counters, resource sampling, latency summaries.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

/// Aggregated counters for one graph node across its instances.
#[derive(Debug, Clone)]
pub struct NodeStats {
    /// Node name as set in the graph builder.
    pub name: String,
    /// Number of instances the node ran with.
    pub parallelism: usize,
    /// Tuples received, summed over instances.
    pub records_in: u64,
    /// Tuples emitted, summed over instances.
    pub records_out: u64,
    /// Tuple-carrying channel messages sent, summed over instances. A
    /// micro-batch counts once, so `records_out / batches_out` is the mean
    /// realized batch size on this node's outgoing edges.
    pub batches_out: u64,
    /// Tuples dropped for arriving behind the watermark (late data).
    pub late_dropped: u64,
    /// Sum of per-instance peak state footprints.
    pub peak_state_bytes: usize,
}

impl NodeStats {
    /// Mean number of tuples per sent channel message (0 when nothing was
    /// sent) — how well micro-batching amortized channel synchronization.
    pub fn avg_batch(&self) -> f64 {
        if self.batches_out == 0 {
            0.0
        } else {
            self.records_out as f64 / self.batches_out as f64
        }
    }
}

/// One resource observation (the Figure 5 time series).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceSample {
    /// Milliseconds since run start.
    pub elapsed_ms: u64,
    /// Total buffered operator state across all instances.
    pub state_bytes: usize,
    /// Process CPU utilization in percent of one core-second per second,
    /// normalized by available cores (0–100).
    pub cpu_pct: f64,
}

/// Detection latency summary at a sink.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyStats {
    /// Number of sampled observations.
    pub samples: usize,
    /// Arithmetic mean, milliseconds.
    pub mean_ms: f64,
    /// Median, milliseconds.
    pub p50_ms: f64,
    /// 95th percentile, milliseconds.
    pub p95_ms: f64,
    /// 99th percentile, milliseconds.
    pub p99_ms: f64,
    /// Largest observation, milliseconds.
    pub max_ms: f64,
}

impl LatencyStats {
    /// Summarize raw nanosecond observations.
    pub fn from_ns(obs: &[u64]) -> Self {
        if obs.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted: Vec<u64> = obs.to_vec();
        sorted.sort_unstable();
        let ns_to_ms = 1e-6;
        let pct = |p: f64| -> f64 {
            let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
            sorted[idx] as f64 * ns_to_ms
        };
        let sum: u128 = sorted.iter().map(|&v| v as u128).sum();
        LatencyStats {
            samples: sorted.len(),
            mean_ms: (sum as f64 / sorted.len() as f64) * ns_to_ms,
            p50_ms: pct(0.50),
            p95_ms: pct(0.95),
            p99_ms: pct(0.99),
            max_ms: sorted.last().copied().unwrap_or_default() as f64 * ns_to_ms,
        }
    }
}

/// Read `(utime + stime)` of this process in clock ticks from
/// `/proc/self/stat`; returns `None` off Linux or on parse failure.
fn process_cpu_ticks() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Field 2 (comm) may contain spaces; skip past the closing paren.
    let rest = stat.rsplit_once(')')?.1;
    let fields: Vec<&str> = rest.split_whitespace().collect();
    // After the paren: field 3 is state, so utime = index 11, stime = 12.
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    Some(utime + stime)
}

/// Background sampling loop run by the executor.
pub(crate) fn sample_loop(
    interval: StdDuration,
    stats: Vec<Arc<super::InstanceStats>>,
    done: Arc<AtomicBool>,
) -> Vec<ResourceSample> {
    let start = Instant::now();
    let ticks_per_sec = 100.0; // Linux default (USER_HZ)
    let ncpu = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1) as f64;
    let mut samples = Vec::new();
    let mut last_ticks = process_cpu_ticks();
    let mut last_t = Instant::now();
    while !done.load(Ordering::Relaxed) {
        std::thread::sleep(interval);
        let state_bytes: usize = stats
            .iter()
            .map(|s| s.state_bytes.load(Ordering::Relaxed))
            .sum();
        let now = Instant::now();
        let cpu_pct = match (process_cpu_ticks(), last_ticks) {
            (Some(cur), Some(prev)) => {
                let dt = now.duration_since(last_t).as_secs_f64().max(1e-9);
                let used = (cur.saturating_sub(prev)) as f64 / ticks_per_sec;
                last_ticks = Some(cur);
                (used / dt / ncpu * 100.0).min(100.0)
            }
            (cur, _) => {
                last_ticks = cur;
                0.0
            }
        };
        last_t = now;
        samples.push(ResourceSample {
            elapsed_ms: start.elapsed().as_millis() as u64,
            state_bytes,
            cpu_pct,
        });
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_from_empty_is_zero() {
        let s = LatencyStats::from_ns(&[]);
        assert_eq!(s.samples, 0);
        assert_eq!(s.mean_ms, 0.0);
    }

    #[test]
    fn latency_percentiles_are_ordered() {
        let obs: Vec<u64> = (1..=1000).map(|i| i * 1_000_000).collect(); // 1..1000 ms
        let s = LatencyStats::from_ns(&obs);
        assert_eq!(s.samples, 1000);
        assert!(
            (s.p50_ms - 500.0).abs() < 2.0,
            "p50 ≈ 500ms, got {}",
            s.p50_ms
        );
        assert!(s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms && s.p99_ms <= s.max_ms);
        assert!((s.max_ms - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn cpu_ticks_readable_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(process_cpu_ticks().is_some());
        }
    }
}
