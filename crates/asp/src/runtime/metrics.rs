//! Run statistics: node counters, resource sampling, latency summaries,
//! and the per-operator telemetry exported by
//! [`RunReport::to_json`](super::RunReport::to_json).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration as StdDuration, Instant};

use serde::Serialize;

use crate::obs::{EventLog, HistogramSummary, Level};

/// Aggregated counters for one graph node across its instances.
#[derive(Debug, Clone, Serialize)]
pub struct NodeStats {
    /// Node name as set in the graph builder.
    pub name: String,
    /// Number of instances the node ran with.
    pub parallelism: usize,
    /// Tuples received, summed over instances.
    pub records_in: u64,
    /// Tuples emitted, summed over instances.
    pub records_out: u64,
    /// Tuple-carrying channel messages sent, summed over instances. A
    /// micro-batch counts once, so `records_out / batches_out` is the mean
    /// realized batch size on this node's outgoing edges.
    pub batches_out: u64,
    /// Tuples dropped for arriving behind the watermark (late data).
    pub late_dropped: u64,
    /// Sum of per-instance peak state footprints.
    pub peak_state_bytes: usize,
    /// Peak resident left-side keys in this node's keyed join state,
    /// summed over instances (key ranges are disjoint across instances
    /// under hash partitioning). 0 for nodes without keyed join state.
    pub keyed_left_keys: usize,
    /// Peak resident right-side keys, summed over instances.
    pub keyed_right_keys: usize,
    /// Longest single-key run (tuples buffered under one key on one side)
    /// observed by any instance over the run — the quantity bounded by the
    /// analyzer's `max_keyed_run`.
    pub keyed_max_run: usize,
    /// Completed hot-key slot migrations on this node's shard plan (0 for
    /// unsharded nodes and statically-placed sharded nodes).
    pub shard_migrations: u64,
    /// Per-instance processing-latency observations (strided sampling of
    /// `Operator::process` wall time), merged across instances. Empty when
    /// [`super::ExecutorConfig::proc_latency_every`] is 0 or the node does
    /// no processing (plain sources, sinks).
    pub proc_latency: HistogramSummary,
    /// Last observed watermark lag — how far the instance's merged
    /// event-time clock trailed the newest event timestamp it had seen —
    /// in milliseconds, maxed over instances. 0 for nodes without an
    /// event-time clock (sources, sinks).
    pub watermark_lag_ms: i64,
    /// Largest watermark lag observed during the run, maxed over instances.
    pub watermark_lag_peak_ms: i64,
    /// Last sampled inbox depth (queued channel messages), summed over
    /// instances. 0 for sources (no inbox).
    pub queue_depth: usize,
    /// Largest sampled inbox depth of any single instance.
    pub queue_depth_peak: usize,
    /// Nanoseconds instances spent blocked sending into full downstream
    /// inboxes (backpressure), summed over instances and routes.
    pub backpressure_ns: u64,
}

impl NodeStats {
    /// Mean number of tuples per sent channel message (0 when nothing was
    /// sent) — how well micro-batching amortized channel synchronization.
    pub fn avg_batch(&self) -> f64 {
        if self.batches_out == 0 {
            0.0
        } else {
            self.records_out as f64 / self.batches_out as f64
        }
    }
}

/// One resource observation (the Figure 5 time series).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ResourceSample {
    /// Milliseconds since run start.
    pub elapsed_ms: u64,
    /// Total buffered operator state across all instances.
    pub state_bytes: usize,
    /// Process CPU utilization in percent of one core-second per second,
    /// normalized by available cores (0–100).
    pub cpu_pct: f64,
    /// Queued channel messages across all instance inboxes at sample time.
    pub queue_depth: usize,
    /// Largest per-instance watermark lag gauge at sample time (ms).
    pub watermark_lag_ms: i64,
}

/// Detection latency summary at a sink.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct LatencyStats {
    /// Number of sampled observations.
    pub samples: usize,
    /// Arithmetic mean, milliseconds.
    pub mean_ms: f64,
    /// Median, milliseconds.
    pub p50_ms: f64,
    /// 95th percentile, milliseconds.
    pub p95_ms: f64,
    /// 99th percentile, milliseconds.
    pub p99_ms: f64,
    /// Largest observation, milliseconds.
    pub max_ms: f64,
}

impl LatencyStats {
    /// Summarize raw nanosecond observations.
    ///
    /// Percentiles use the ceiling nearest-rank method: the `p`-percentile
    /// is the smallest observation with at least `⌈p·n⌉` observations at
    /// or below it. (A rounded interpolation index understates high
    /// percentiles for small `n` — e.g. p99 of 52 samples picked the 51st
    /// value — and overstates the median.)
    pub fn from_ns(obs: &[u64]) -> Self {
        if obs.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted: Vec<u64> = obs.to_vec();
        sorted.sort_unstable();
        let ns_to_ms = 1e-6;
        let pct = |p: f64| -> f64 {
            let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1] as f64 * ns_to_ms
        };
        let sum: u128 = sorted.iter().map(|&v| v as u128).sum();
        LatencyStats {
            samples: sorted.len(),
            mean_ms: (sum as f64 / sorted.len() as f64) * ns_to_ms,
            p50_ms: pct(0.50),
            p95_ms: pct(0.95),
            p99_ms: pct(0.99),
            max_ms: sorted.last().copied().unwrap_or_default() as f64 * ns_to_ms,
        }
    }
}

/// Read `(utime + stime)` of this process in clock ticks from
/// `/proc/self/stat`; returns `None` off Linux or on parse failure.
fn process_cpu_ticks() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Field 2 (comm) may contain spaces; skip past the closing paren.
    let rest = stat.rsplit_once(')')?.1;
    let fields: Vec<&str> = rest.split_whitespace().collect();
    // After the paren: field 3 is state, so utime = index 11, stime = 12.
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    Some(utime + stime)
}

/// The clock-tick unit of `/proc` CPU times, detected once per process;
/// falls back to the Linux default of 100 when detection fails.
fn user_hz() -> f64 {
    static HZ: OnceLock<f64> = OnceLock::new();
    *HZ.get_or_init(|| detect_user_hz().unwrap_or(100.0))
}

/// Best-effort USER_HZ detection without `libc::sysconf`.
///
/// `/proc/self/stat` field 22 (`starttime`) is the process start instant in
/// clock ticks since boot, and `/proc/stat`'s `btime` line gives the boot
/// instant in epoch seconds, so `starttime / (now − btime)` equals USER_HZ
/// scaled by `t_start / t_now` (times since boot) — which is ≈ 1 for a
/// recently started process like a benchmark or test run. The raw estimate
/// is snapped to the nearest conventional tick rate and accepted only when
/// within 15%; a long-lived process (biased-low estimate) falls back to
/// the documented Linux default of 100.
fn detect_user_hz() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    let rest = stat.rsplit_once(')')?.1;
    let fields: Vec<&str> = rest.split_whitespace().collect();
    // After the comm paren: field 3 (state) = index 0 → field 22 = index 19.
    let starttime: f64 = fields.get(19)?.parse().ok()?;
    let pstat = std::fs::read_to_string("/proc/stat").ok()?;
    let btime: f64 = pstat
        .lines()
        .find_map(|l| l.strip_prefix("btime "))?
        .trim()
        .parse()
        .ok()?;
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .ok()?
        .as_secs_f64();
    let boot_age = now - btime;
    if boot_age <= 1.0 {
        return None;
    }
    let raw = starttime / boot_age;
    const CONVENTIONAL: [f64; 8] = [24.0, 32.0, 48.0, 64.0, 100.0, 250.0, 300.0, 1000.0];
    CONVENTIONAL
        .into_iter()
        .min_by(|a, b| {
            let (da, db) = ((raw - a).abs() / a, (raw - b).abs() / b);
            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
        })
        .filter(|c| (raw - c).abs() / c <= 0.15)
}

/// Background sampling loop run by the executor.
///
/// Takes one sample immediately (t ≈ 0) so even runs shorter than the
/// sampling interval yield a non-empty Figure-5 series, sleeps in short
/// slices so shutdown is observed promptly, and takes a final sample when
/// `done` flips so the series always covers the end of the run.
pub(crate) fn sample_loop(
    interval: StdDuration,
    stats: Vec<Arc<super::InstanceStats>>,
    done: Arc<AtomicBool>,
) -> Vec<ResourceSample> {
    let start = Instant::now();
    let ticks_per_sec = user_hz();
    let ncpu = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1) as f64;
    let mut samples = Vec::new();
    let mut last_ticks = process_cpu_ticks();
    let mut last_t = Instant::now();
    let observe = |last_ticks: &mut Option<u64>, last_t: &mut Instant| {
        let state_bytes: usize = stats
            .iter()
            .map(|s| s.state_bytes.load(Ordering::Relaxed))
            .sum();
        let queue_depth: usize = stats
            .iter()
            .map(|s| s.queue_depth.load(Ordering::Relaxed))
            .sum();
        let watermark_lag_ms: i64 = stats
            .iter()
            .map(|s| s.watermark_lag_ms.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0);
        let now = Instant::now();
        let cpu_pct = match (process_cpu_ticks(), *last_ticks) {
            (Some(cur), Some(prev)) => {
                let dt = now.duration_since(*last_t).as_secs_f64().max(1e-9);
                let used = (cur.saturating_sub(prev)) as f64 / ticks_per_sec;
                *last_ticks = Some(cur);
                (used / dt / ncpu * 100.0).min(100.0)
            }
            (cur, _) => {
                *last_ticks = cur;
                0.0
            }
        };
        *last_t = now;
        ResourceSample {
            elapsed_ms: start.elapsed().as_millis() as u64,
            state_bytes,
            cpu_pct,
            queue_depth,
            watermark_lag_ms,
        }
    };
    samples.push(observe(&mut last_ticks, &mut last_t));
    while !done.load(Ordering::Relaxed) {
        // Sleep the interval in ≤ 20 ms slices: a run finishing mid-sleep
        // still gets its shutdown sample within one slice.
        let mut slept = StdDuration::ZERO;
        while slept < interval && !done.load(Ordering::Relaxed) {
            let slice = (interval - slept).min(StdDuration::from_millis(20));
            std::thread::sleep(slice);
            slept += slice;
        }
        samples.push(observe(&mut last_ticks, &mut last_t));
    }
    samples
}

/// Background progress reporter run by the executor when
/// [`ExecutorConfig::progress_interval`](super::ExecutorConfig::progress_interval)
/// is set: one aggregate `INFO progress` event per interval into the run's
/// [`EventLog`], plus a final one when the run ends mid-interval. Reads
/// only relaxed atomics — never touches the data plane.
pub(crate) fn progress_loop(
    interval: StdDuration,
    stats: Vec<Arc<super::InstanceStats>>,
    sources: Arc<AtomicU64>,
    log: Arc<EventLog>,
    done: Arc<AtomicBool>,
) {
    while !done.load(Ordering::Relaxed) {
        let mut slept = StdDuration::ZERO;
        while slept < interval && !done.load(Ordering::Relaxed) {
            let slice = (interval - slept).min(StdDuration::from_millis(20));
            std::thread::sleep(slice);
            slept += slice;
        }
        let (mut rin, mut rout, mut state, mut depth) = (0u64, 0u64, 0usize, 0usize);
        for s in &stats {
            rin += s.records_in.load(Ordering::Relaxed);
            rout += s.records_out.load(Ordering::Relaxed);
            state += s.state_bytes.load(Ordering::Relaxed);
            depth += s.queue_depth.load(Ordering::Relaxed);
        }
        log.emit(
            Level::Info,
            "progress",
            format!(
                "src={} in={rin} out={rout} state={state}B inbox={depth}",
                sources.load(Ordering::Relaxed)
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_from_empty_is_zero() {
        let s = LatencyStats::from_ns(&[]);
        assert_eq!(s.samples, 0);
        assert_eq!(s.mean_ms, 0.0);
    }

    #[test]
    fn latency_percentiles_are_ordered() {
        let obs: Vec<u64> = (1..=1000).map(|i| i * 1_000_000).collect(); // 1..1000 ms
        let s = LatencyStats::from_ns(&obs);
        assert_eq!(s.samples, 1000);
        assert!(
            (s.p50_ms - 500.0).abs() < 2.0,
            "p50 ≈ 500ms, got {}",
            s.p50_ms
        );
        assert!(s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms && s.p99_ms <= s.max_ms);
        assert!((s.max_ms - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_use_ceiling_nearest_rank_for_small_n() {
        // n = 10, values 1..=10 ms: the median is the 5th value (5 ms) —
        // the old rounded interpolation index returned the 6th.
        let obs: Vec<u64> = (1..=10).map(|i| i * 1_000_000).collect();
        let s = LatencyStats::from_ns(&obs);
        assert_eq!(s.p50_ms, 5.0);
        // p95: ⌈0.95·10⌉ = 10th value.
        assert_eq!(s.p95_ms, 10.0);
        // n = 52: p99 rank is ⌈0.99·52⌉ = 52 — the maximum. The rounded
        // index picked the 51st value, understating the tail.
        let obs: Vec<u64> = (1..=52).map(|i| i * 1_000_000).collect();
        let s = LatencyStats::from_ns(&obs);
        assert_eq!(s.p99_ms, 52.0);
        // A single observation is every percentile.
        let s = LatencyStats::from_ns(&[7_000_000]);
        assert_eq!((s.p50_ms, s.p99_ms, s.max_ms), (7.0, 7.0, 7.0));
    }

    #[test]
    fn cpu_ticks_readable_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(process_cpu_ticks().is_some());
        }
    }

    #[test]
    fn user_hz_detection_yields_conventional_rate() {
        let hz = user_hz();
        assert!(
            (24.0..=1000.0).contains(&hz),
            "USER_HZ should be a conventional tick rate, got {hz}"
        );
    }
}
