//! The threaded dataflow runtime.
//!
//! Every graph node becomes `parallelism` *instances* ("task slots"), each
//! running on its own OS thread; every edge becomes one bounded channel per
//! destination instance. Bounded channels give genuine backpressure: when a
//! stateful operator cannot keep up, its senders block, the stall cascades
//! to the sources, and measured throughput is the *maximum sustainable
//! throughput* in the sense of Karimov et al. — the paper's primary metric.
//!
//! ## Watermark protocol
//!
//! Sources emit punctuated watermarks (their streams are in ts order).
//! Each instance harness tracks the last watermark per (input port,
//! upstream channel) and advances its operator's event-time clock to the
//! minimum across all channels — so operators downstream of a union or a
//! join see one monotone clock regardless of thread interleaving, which is
//! what makes results run-to-run deterministic (modulo output order).
//! Operator emissions triggered by a watermark are sent *before* the
//! watermark itself is forwarded, preserving the "no late data" invariant
//! down the pipeline.
//!
//! Watermarks are released by a *soft flush*: destinations whose batch
//! buffer is empty receive the watermark immediately, while a destination
//! with a partially filled buffer has the watermark recorded as *owed at
//! the current buffered position*; the buffer is later flushed in segments
//! split at every owed position, so each deferred watermark is delivered
//! exactly between the rows emitted before and after it. Deferring a
//! watermark is always safe (it is a lower-bound promise), and the deferral
//! keeps punctuation from truncating per-destination micro-batches — under
//! hash fan-out, batches stay near `batch_size` instead of being sliced at
//! every punctuation. Because owed watermarks are positional, a channel's
//! tuple/watermark interleaving is a pure function of emission order:
//! wall-clock flush timing changes message granularity, never relative
//! order, so per-channel late-drop decisions are run-to-run deterministic.
//! A *hard flush* (idle timeout, end of stream, or the `idle_flush`
//! deadline under sustained load) sends every partial buffer and settles
//! all owed watermarks, bounding how long either can sit.
//!
//! ## Data planes
//!
//! With [`ExecutorConfig::columnar`] (the default), tuple data travels as
//! struct-of-arrays [`ColumnarBatch`]es: sources push events straight into
//! typed columns (no per-event heap allocation), operators declaring
//! [`BatchSupport::Columnar`] are driven batch-at-a-time through
//! [`Operator::process_columnar`], and row-format [`Tuple`]s are
//! materialized only at the input boundary of row-only (stateful)
//! operators and collecting sinks. Batches on the wire are always dense —
//! selection vectors produced by vectorized filters are compacted at route
//! flush.

mod chain;
mod metrics;
pub(crate) mod shard;

pub use crate::graph::SinkMode;
pub use crate::obs::{BoundViolation, EventLog, Level, LogEvent, StaticBounds};
pub use chain::{chain_factories, ChainedOperator};
pub use metrics::{LatencyStats, NodeStats, ResourceSample};

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use serde::{Serialize, Value};

use crate::columnar::ColumnarBatch;
use crate::error::{OpError, PipelineError};
use crate::event::Event;
use crate::graph::{Exchange, GraphBuilder, NodeId, NodeKind, SinkId, SourceConfig};
use crate::obs::LatencyHistogram;
use crate::operator::{BatchSupport, Collector, Operator};
use crate::time::Timestamp;
use crate::tuple::Tuple;

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Per-inbox channel capacity (backpressure buffer).
    pub channel_capacity: usize,
    /// If set, sample aggregate operator state + process CPU at this
    /// interval (drives the Figure 5 resource series).
    pub sample_interval: Option<StdDuration>,
    /// Keep only every `latency_stride`-th latency observation.
    pub latency_stride: usize,
    /// Fuse linear non-repartitioning stretches of the graph into single
    /// tasks (Flink-style operator chaining). On by default; disable to
    /// measure the unfused pipeline.
    pub operator_chaining: bool,
    /// Drop tuples that arrive behind their input channel's watermark
    /// (late data). With correctly configured source watermark lag nothing
    /// is ever late; this is the Flink-style safety net that keeps
    /// event-time operators from observing time regressions. The decision
    /// is per arriving channel rather than against the merged minimum, so
    /// it is deterministic under union/join thread interleaving (a channel
    /// watermark is always ≥ the merged one, so nothing the merged clock
    /// would drop survives). Dropped tuples are counted in
    /// [`NodeStats::late_dropped`].
    pub drop_late: bool,
    /// Maximum tuples accumulated per (edge, destination instance) before
    /// the pending micro-batch is sent as one channel message. `1` restores
    /// per-tuple messaging; larger values amortize channel synchronization
    /// over `batch_size` tuples on every hop. Must be ≥ 1 (0 is rejected as
    /// diagnostic `G015` before any thread is spawned).
    pub batch_size: usize,
    /// Upper bound on how long a partially filled batch may sit in a task's
    /// output buffer while the task is idle. Idle operators flush on this
    /// cadence, and rate-limited sources flush at least this often, so
    /// low-rate streams keep low latency regardless of `batch_size`.
    pub idle_flush: StdDuration,
    /// Record the wall time of every `proc_latency_every`-th
    /// `Operator::process` call into the node's lock-free latency
    /// histogram ([`NodeStats::proc_latency`]). `0` disables processing-
    /// latency sampling entirely (no clock reads on the tuple path).
    pub proc_latency_every: usize,
    /// If set, a background reporter thread emits an aggregate progress
    /// event (records in/out, state bytes, inbox depth) into the run's
    /// [`EventLog`] at this interval. `None` (the default) disables the
    /// reporter.
    pub progress_interval: Option<StdDuration>,
    /// Ring capacity of the structured [`EventLog`] exported in
    /// [`RunReport::events`]. When full, the oldest events are displaced;
    /// `0` disables event retention.
    pub event_log_capacity: usize,
    /// Run tuple data on the columnar (struct-of-arrays) plane: sources
    /// build [`ColumnarBatch`]es without materializing row tuples,
    /// operators declaring [`BatchSupport::Columnar`] run vectorized, and
    /// rows are materialized only at stateful-operator and collecting-sink
    /// boundaries. Defaults to `true`; setting the `ASP_DATA_PLANE=row`
    /// environment variable flips the default to the row plane (the CI
    /// matrix exercises both; any other value is refused as diagnostic
    /// `G017`). With `batch_size == 1` the columnar plane degenerates to
    /// per-tuple batch bookkeeping — a measured regression — so the
    /// executor falls back to the row plane for that configuration.
    pub columnar: bool,
    /// Shard count for keyed operators marked [`GraphBuilder::shard_node`]:
    /// each such node fans out into this many shared-nothing workers, each
    /// owning a hash range of keys. `None` (the default) keeps sharded
    /// nodes single-instance. Settable via the `ASP_SHARDS` environment
    /// variable (an integer ≥ 1; anything else is refused as `G017`).
    pub shards: Option<usize>,
    /// Adaptive shard rebalancing cadence: a background thread samples the
    /// per-slot traffic gauges of every sharded node at this interval and
    /// migrates the hottest slot off any shard carrying more than 1.5× the
    /// mean load (drain → handoff → redirect, preserving per-key order and
    /// watermark correctness — see the `shard` module docs). `None`
    /// disables migration entirely: sharded nodes keep their initial
    /// round-robin slot placement for the whole run (static sharding).
    /// Operators without live-handoff support are never migrated
    /// regardless.
    pub rebalance_interval: Option<StdDuration>,
    /// Parse failures from environment overrides (`ASP_DATA_PLANE`,
    /// `ASP_SHARDS`) captured at [`Default::default`] time — `Default`
    /// cannot return `Result`, so [`Executor::run`] refuses the run with
    /// diagnostic `G017` if any are present rather than silently running
    /// with a misread knob. Always empty for explicitly built configs.
    pub env_errors: Vec<String>,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        // Environment overrides parse strictly: a typo like
        // `ASP_DATA_PLANE=rows` used to silently select the columnar plane
        // (`v != "row"`); now every unrecognized value is captured here and
        // surfaced as diagnostic `G017` when the executor runs.
        let mut env_errors = Vec::new();
        let columnar = match std::env::var("ASP_DATA_PLANE") {
            Err(_) => true,
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "row" => false,
                "columnar" => true,
                _ => {
                    env_errors.push(format!(
                        "ASP_DATA_PLANE=`{v}` is not a data plane; expected `row` or `columnar`"
                    ));
                    true
                }
            },
        };
        let shards = match std::env::var("ASP_SHARDS") {
            Err(_) => None,
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n >= 1 => Some(n),
                _ => {
                    env_errors.push(format!(
                        "ASP_SHARDS=`{v}` is not a shard count; expected an integer ≥ 1"
                    ));
                    None
                }
            },
        };
        ExecutorConfig {
            channel_capacity: 1024,
            sample_interval: None,
            latency_stride: 16,
            operator_chaining: true,
            drop_late: true,
            batch_size: 64,
            idle_flush: StdDuration::from_millis(5),
            proc_latency_every: 32,
            progress_interval: None,
            event_log_capacity: 256,
            columnar,
            shards,
            rebalance_interval: Some(StdDuration::from_millis(50)),
            env_errors,
        }
    }
}

enum Message {
    Tuple(Tuple),
    /// A micro-batch: consecutive tuples for one destination, sent as one
    /// channel message. Order within the batch is emission order.
    Batch(Vec<Tuple>),
    /// A columnar micro-batch (always dense on the wire; receivers never
    /// see a selection vector). Used exclusively on the columnar plane.
    Columnar(ColumnarBatch),
    /// A dense columnar micro-batch broadcast to several destinations at
    /// once without per-route payload copies — the fan-out path under
    /// shared subplans, where one operator's output feeds many consumer
    /// pipelines. Operators take ownership on receipt (`Arc::try_unwrap`,
    /// cloning only while the batch is still referenced elsewhere); sinks
    /// read it in place.
    Shared(Arc<ColumnarBatch>),
    Watermark(Timestamp),
    /// Shard-migration cut-over marker: everything before it on this
    /// channel was routed under the previous slot table, everything after
    /// under the new one. Broadcast by each sender to *every* destination
    /// instance of the sharded node when it observes a new plan version.
    ShardMarker {
        /// The plan version the sender cut over to.
        version: u64,
    },
    /// A migrated slot's extracted operator state, sent from the source
    /// shard instance directly to the target instance's inbox.
    ShardHandoff(Box<shard::HandoffPayload>),
    End,
}

/// Envelopes drained from the inbox per blocking receive before the
/// collector is flushed — bounds how long a coalesced watermark can be
/// deferred under sustained load.
const DRAIN_LIMIT: usize = 128;

struct Envelope {
    port: u16,
    chan: u16,
    msg: Message,
}

/// Deterministic key → instance mapping shared by every hash exchange
/// (co-partitioning guarantee).
#[inline]
pub fn key_partition(key: u64, parallelism: usize) -> usize {
    if parallelism <= 1 {
        return 0;
    }
    let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 17) % parallelism as u64) as usize
}

/// One outgoing edge of one instance, with a pending micro-batch per
/// destination instance.
struct Route {
    exchange: Exchange,
    port: u16,
    chan: u16,
    senders: Vec<Sender<Envelope>>,
    rr: usize,
    /// Pre-resolved destination for exchanges whose target never varies
    /// (`Forward`, or any exchange with a single destination instance) —
    /// the dispatch match is decided once at wiring time, not per tuple.
    fixed: Option<usize>,
    /// Pending tuples per destination instance, flushed at `batch_size`
    /// (row plane; unused on the columnar plane).
    bufs: Vec<Vec<Tuple>>,
    /// Pending columnar rows per destination instance (columnar plane;
    /// unused on the row plane). Built by column pushes, so always dense.
    cbufs: Vec<ColumnarBatch>,
    /// Watermarks promised to a destination but deferred because its batch
    /// buffer was non-empty at soft-flush time, queued with the number of
    /// buffered rows each must ride *behind*. Flushing emits the buffer in
    /// segments split at every owed position — `rows[..p0], wm0,
    /// rows[p0..p1], wm1, …`, remainder last (see [`Route::flush_buf`]) —
    /// so the channel-relative order of tuples and watermarks is a pure
    /// function of emission order, never of wall-clock flush timing.
    /// Positions are strictly increasing within the queue; watermarks
    /// landing at the same position coalesce to their maximum.
    wm_owed: Vec<VecDeque<(usize, Timestamp)>>,
    /// First operator-grade failure hit while building a pending columnar
    /// batch (composite side-table overflow from a checked `u32` index
    /// conversion). The harness harvests it via
    /// [`ChannelCollector::take_op_error`] and reports it as `G016` instead
    /// of silently truncating indices.
    op_error: Option<OpError>,
    /// Sharded destination: routing goes through the cached slot table
    /// instead of [`key_partition`]. `None` for ordinary routes.
    shard: Option<RouteShard>,
    /// Channel messages sent (batches count once), for [`NodeStats`].
    batches: u64,
}

/// Sender-side state of a route into a sharded node.
struct RouteShard {
    plan: Arc<shard::ShardPlan>,
    /// Local copy of the slot → shard table, refreshed only when a new
    /// plan version is observed — the steady-state tuple path reads a
    /// plain array, never a shared atomic.
    cached_slots: Vec<u32>,
    /// Plan version `cached_slots` corresponds to.
    seen_version: u64,
    /// While a migration this sender has cut over to is still in flight,
    /// watermark emission on this route is frozen (stashed here, released
    /// on completion) so source and target shard observe identical
    /// per-channel clocks when they align on the markers.
    frozen_wm: Option<Timestamp>,
    frozen: bool,
    /// Tuples routed per slot since the last publish to the plan's shared
    /// traffic gauges (published on hard flush).
    traffic: Box<[u64; shard::SHARD_SLOTS]>,
}

impl Route {
    fn new(
        exchange: Exchange,
        port: u16,
        chan: u16,
        instance: usize,
        senders: Vec<Sender<Envelope>>,
        plan: Option<Arc<shard::ShardPlan>>,
    ) -> Self {
        let fixed = match exchange {
            Exchange::Forward => Some(instance % senders.len()),
            Exchange::Hash | Exchange::Rebalance if senders.len() == 1 => Some(0),
            Exchange::Hash | Exchange::Rebalance => None,
        };
        // A single-instance "sharded" node routes like any other
        // single-destination edge; the plan only matters with ≥ 2 shards.
        let shard = match plan {
            Some(plan) if senders.len() > 1 => Some(RouteShard {
                cached_slots: plan.snapshot_slots(),
                seen_version: plan.version(),
                plan,
                frozen_wm: None,
                frozen: false,
                traffic: Box::new([0; shard::SHARD_SLOTS]),
            }),
            _ => None,
        };
        let bufs = senders.iter().map(|_| Vec::new()).collect();
        let cbufs = senders.iter().map(|_| ColumnarBatch::default()).collect();
        let wm_owed = senders.iter().map(|_| VecDeque::new()).collect();
        Route {
            exchange,
            port,
            chan,
            senders,
            rr: instance,
            fixed,
            bufs,
            cbufs,
            wm_owed,
            op_error: None,
            shard,
            batches: 0,
        }
    }

    /// Resolve the destination instance for a record with partition `key`.
    #[inline]
    fn pick_dest(&mut self, key: u64) -> usize {
        if let Some(rs) = &mut self.shard {
            let slot = shard::slot_of(key);
            rs.traffic[slot] += 1;
            return rs.cached_slots[slot] as usize;
        }
        match self.fixed {
            Some(i) => i,
            None => match self.exchange {
                Exchange::Hash => key_partition(key, self.senders.len()),
                Exchange::Rebalance => {
                    self.rr = (self.rr + 1) % self.senders.len();
                    self.rr
                }
                // Forward always resolves to `fixed`.
                Exchange::Forward => unreachable!("forward routes are pre-resolved"),
            },
        }
    }

    /// Sharded-route version check, called on every buffering/flush entry
    /// point. On observing a new plan version: flush everything routed
    /// under the old table, broadcast the cut-over marker to every
    /// destination, refresh the cached table, and freeze watermark
    /// emission until the migration completes (channel FIFO then gives
    /// every receiver the identical pre-marker watermark prefix). Also
    /// thaws: once the plan reports the observed version completed, the
    /// stashed watermark is released through the normal soft path.
    #[inline]
    fn observe_shard(
        &mut self,
        batch_size: usize,
        abort: &AtomicBool,
        blocked_ns: &AtomicU64,
    ) -> Result<(), ()> {
        let Some(rs) = &self.shard else {
            return Ok(());
        };
        let (frozen, seen, version) = (rs.frozen, rs.seen_version, rs.plan.version());
        if !frozen && version == seen {
            return Ok(());
        }
        self.observe_shard_cold(batch_size, abort, blocked_ns)
    }

    #[cold]
    fn observe_shard_cold(
        &mut self,
        batch_size: usize,
        abort: &AtomicBool,
        blocked_ns: &AtomicU64,
    ) -> Result<(), ()> {
        // Thaw first: a completed migration releases the stashed watermark
        // before any new version is cut over to.
        let thawed = {
            let rs = self.shard.as_mut().expect("cold path requires shard");
            if rs.frozen && rs.plan.completed() >= rs.seen_version {
                rs.frozen = false;
                rs.frozen_wm.take()
            } else {
                None
            }
        };
        if let Some(wm) = thawed {
            self.soft_watermark_raw(wm, abort, blocked_ns)?;
        }
        let rs = self.shard.as_ref().expect("cold path requires shard");
        let version = rs.plan.version();
        if version == rs.seen_version || rs.frozen {
            // Nothing new, or still frozen on the in-flight version (a new
            // version cannot be published until the current completes).
            return Ok(());
        }
        // Everything buffered so far was routed under the old table: it
        // must precede the marker on every channel.
        self.flush_all(batch_size, abort, blocked_ns)?;
        for idx in 0..self.senders.len() {
            self.send(idx, Message::ShardMarker { version }, abort, blocked_ns)?;
        }
        let rs = self.shard.as_mut().expect("cold path requires shard");
        rs.cached_slots = rs.plan.snapshot_slots();
        rs.seen_version = version;
        rs.frozen = true;
        Ok(())
    }

    /// Publish locally accumulated per-slot traffic to the shared plan
    /// gauges (piggybacks on the hard-flush cadence).
    fn publish_traffic(&mut self) {
        if let Some(rs) = &mut self.shard {
            if rs.traffic.iter().any(|&n| n > 0) {
                rs.plan.add_traffic(&rs.traffic);
                *rs.traffic = [0; shard::SHARD_SLOTS];
            }
        }
    }

    fn send(
        &self,
        idx: usize,
        msg: Message,
        abort: &AtomicBool,
        blocked_ns: &AtomicU64,
    ) -> Result<(), ()> {
        let mut env = Envelope {
            port: self.port,
            chan: self.chan,
            msg,
        };
        // Fast path: an uncontended send pays no clock read. Only a full
        // inbox (genuine backpressure) falls through to the timed loop.
        match self.senders[idx].send_timeout(env, StdDuration::ZERO) {
            Ok(()) => return Ok(()),
            Err(crossbeam::channel::SendTimeoutError::Disconnected(_)) => return Err(()),
            Err(crossbeam::channel::SendTimeoutError::Timeout(e)) => env = e,
        }
        let blocked_since = Instant::now();
        let result = loop {
            match self.senders[idx].send_timeout(env, StdDuration::from_millis(20)) {
                Ok(()) => break Ok(()),
                Err(crossbeam::channel::SendTimeoutError::Timeout(e)) => {
                    if abort.load(Ordering::Relaxed) {
                        break Err(());
                    }
                    env = e;
                }
                Err(crossbeam::channel::SendTimeoutError::Disconnected(_)) => break Err(()),
            }
        };
        blocked_ns.fetch_add(blocked_since.elapsed().as_nanos() as u64, Ordering::Relaxed);
        result
    }

    /// Append `t` to the destination's pending row batch, flushing it when
    /// it reaches `batch_size`.
    fn buffer_tuple(
        &mut self,
        t: Tuple,
        batch_size: usize,
        abort: &AtomicBool,
        blocked_ns: &AtomicU64,
    ) -> Result<(), ()> {
        self.observe_shard(batch_size, abort, blocked_ns)?;
        let idx = self.pick_dest(t.key);
        let buf = &mut self.bufs[idx];
        if buf.capacity() == 0 {
            buf.reserve_exact(batch_size);
        }
        buf.push(t);
        if buf.len() >= batch_size {
            self.flush_buf(idx, batch_size, abort, blocked_ns)
        } else {
            Ok(())
        }
    }

    /// Decompose `t` into the destination's pending columnar batch,
    /// flushing it when it reaches `batch_size` (columnar plane).
    fn buffer_tuple_columnar(
        &mut self,
        t: Tuple,
        batch_size: usize,
        abort: &AtomicBool,
        blocked_ns: &AtomicU64,
    ) -> Result<(), ()> {
        self.observe_shard(batch_size, abort, blocked_ns)?;
        let idx = self.pick_dest(t.key);
        if let Err(e) = self.cbufs[idx].push_tuple(t) {
            self.op_error.get_or_insert(e);
            return Err(());
        }
        if self.cbufs[idx].len() >= batch_size {
            self.flush_buf(idx, batch_size, abort, blocked_ns)
        } else {
            Ok(())
        }
    }

    /// Append a primitive event straight into the destination's pending
    /// columnar batch — the zero-allocation source fast path.
    fn buffer_event(
        &mut self,
        e: Event,
        wall: u64,
        batch_size: usize,
        abort: &AtomicBool,
        blocked_ns: &AtomicU64,
    ) -> Result<(), ()> {
        self.observe_shard(batch_size, abort, blocked_ns)?;
        // Primitive events partition by sensor id (`Tuple::from_event`
        // assigns `key = id`), so routing agrees with the row plane.
        let idx = self.pick_dest(e.id as u64);
        self.cbufs[idx].push_event(e, wall);
        if self.cbufs[idx].len() >= batch_size {
            self.flush_buf(idx, batch_size, abort, blocked_ns)
        } else {
            Ok(())
        }
    }

    /// Gather-append every selected row of `src` into the destinations'
    /// pending columnar batches (reads `src` by reference: multi-route
    /// fan-out needs no clone; composites transfer by refcount bump).
    fn append_batch(
        &mut self,
        src: &ColumnarBatch,
        batch_size: usize,
        abort: &AtomicBool,
        blocked_ns: &AtomicU64,
    ) -> Result<(), ()> {
        self.observe_shard(batch_size, abort, blocked_ns)?;
        if self.shard.is_some() {
            return self.append_batch_sharded(src, batch_size, abort, blocked_ns);
        }
        let one = |this: &mut Self, i: usize| -> Result<(), ()> {
            let idx = this.pick_dest(src.key[i]);
            if let Err(e) = this.cbufs[idx].push_row_from(src, i) {
                this.op_error.get_or_insert(e);
                return Err(());
            }
            if this.cbufs[idx].len() >= batch_size {
                this.flush_buf(idx, batch_size, abort, blocked_ns)
            } else {
                Ok(())
            }
        };
        match &src.sel {
            None => {
                for i in 0..src.len() {
                    one(self, i)?;
                }
            }
            Some(sel) => {
                for &i in sel {
                    one(self, i as usize)?;
                }
            }
        }
        Ok(())
    }

    /// Columnar fan-out into a sharded node: split the batch into one
    /// selection vector per destination shard (slot-table routing) and
    /// gather-append each column-wise — the batch is never re-materialized
    /// row by row.
    fn append_batch_sharded(
        &mut self,
        src: &ColumnarBatch,
        batch_size: usize,
        abort: &AtomicBool,
        blocked_ns: &AtomicU64,
    ) -> Result<(), ()> {
        let mut sels: Vec<Vec<u32>> = vec![Vec::new(); self.senders.len()];
        {
            let rs = self.shard.as_mut().expect("sharded append requires shard");
            let mut route_one = |i: usize| {
                let slot = shard::slot_of(src.key[i]);
                rs.traffic[slot] += 1;
                sels[rs.cached_slots[slot] as usize].push(i as u32);
            };
            match &src.sel {
                None => {
                    for i in 0..src.len() {
                        route_one(i);
                    }
                }
                Some(sel) => {
                    for &i in sel {
                        route_one(i as usize);
                    }
                }
            }
        }
        for (idx, sel) in sels.iter().enumerate() {
            if sel.is_empty() {
                continue;
            }
            if let Err(e) = self.cbufs[idx].extend_gather(src, sel) {
                self.op_error.get_or_insert(e);
                return Err(());
            }
            if self.cbufs[idx].len() >= batch_size {
                self.flush_buf(idx, batch_size, abort, blocked_ns)?;
            }
        }
        Ok(())
    }

    /// Soft-deliver a watermark: destinations with an empty batch buffer
    /// get it immediately; the rest record it as owed *at the current
    /// buffered position* so it rides out exactly between the rows emitted
    /// before and after it, instead of truncating the batch. Either way
    /// the watermark lands at the same point of the channel's
    /// tuple/watermark sequence — wall-clock flush timing can change
    /// message granularity, never relative order.
    fn soft_watermark(
        &mut self,
        wm: Timestamp,
        batch_size: usize,
        abort: &AtomicBool,
        blocked_ns: &AtomicU64,
    ) -> Result<(), ()> {
        self.observe_shard(batch_size, abort, blocked_ns)?;
        if self.stash_if_frozen(wm) {
            return Ok(());
        }
        self.soft_watermark_raw(wm, abort, blocked_ns)
    }

    /// While a shard migration this route has cut over to is in flight,
    /// watermarks are stashed (coalescing to their max) instead of sent —
    /// released by [`Route::observe_shard`] once the migration completes.
    /// Returns whether the watermark was stashed.
    fn stash_if_frozen(&mut self, wm: Timestamp) -> bool {
        match &mut self.shard {
            Some(rs) if rs.frozen => {
                rs.frozen_wm = Some(rs.frozen_wm.map_or(wm, |p| p.max(wm)));
                true
            }
            _ => false,
        }
    }

    fn soft_watermark_raw(
        &mut self,
        wm: Timestamp,
        abort: &AtomicBool,
        blocked_ns: &AtomicU64,
    ) -> Result<(), ()> {
        let mut ok = Ok(());
        for idx in 0..self.senders.len() {
            let pos = self.bufs[idx].len() + self.cbufs[idx].len();
            if pos == 0 {
                if self
                    .send(idx, Message::Watermark(wm), abort, blocked_ns)
                    .is_err()
                {
                    ok = Err(());
                }
            } else {
                // Watermarks owed at the same position coalesce to their
                // max (they are monotone per task, so this keeps the last).
                match self.wm_owed[idx].back_mut() {
                    Some((p, w)) if *p == pos => *w = (*w).max(wm),
                    _ => self.wm_owed[idx].push_back((pos, wm)),
                }
            }
        }
        ok
    }

    /// Send the destination's pending rows in segments split at every owed
    /// watermark position — `rows[..p0], wm0, rows[p0..p1], wm1, …`,
    /// remainder last — so a flush reproduces the emission-order
    /// interleaving of tuples and watermarks exactly.
    fn flush_buf(
        &mut self,
        idx: usize,
        batch_size: usize,
        abort: &AtomicBool,
        blocked_ns: &AtomicU64,
    ) -> Result<(), ()> {
        while let Some((pos, wm)) = self.wm_owed[idx].pop_front() {
            self.send_rows(idx, pos, batch_size, abort, blocked_ns)?;
            for later in self.wm_owed[idx].iter_mut() {
                later.0 -= pos;
            }
            self.send(idx, Message::Watermark(wm), abort, blocked_ns)?;
        }
        self.send_rows(idx, usize::MAX, batch_size, abort, blocked_ns)
    }

    /// Send up to `take` of the destination's pending rows (row or
    /// columnar plane) as one message, keeping the rest buffered.
    fn send_rows(
        &mut self,
        idx: usize,
        take: usize,
        batch_size: usize,
        abort: &AtomicBool,
        blocked_ns: &AtomicU64,
    ) -> Result<(), ()> {
        let msg = if !self.bufs[idx].is_empty() {
            let buf = &mut self.bufs[idx];
            let head = if take >= buf.len() {
                std::mem::replace(buf, Vec::with_capacity(batch_size))
            } else {
                let tail = buf.split_off(take);
                std::mem::replace(buf, tail)
            };
            match head.len() {
                0 => None,
                1 => Some(Message::Tuple(
                    head.into_iter().next().expect("len checked"),
                )),
                _ => Some(Message::Batch(head)),
            }
        } else {
            let cbuf = &mut self.cbufs[idx];
            if cbuf.is_empty() || take == 0 {
                None
            } else {
                debug_assert!(cbuf.is_dense(), "route buffers are built dense");
                let head = if take >= cbuf.len() {
                    std::mem::replace(cbuf, ColumnarBatch::with_capacity(batch_size))
                } else {
                    cbuf.take_prefix(take)
                };
                Some(Message::Columnar(head))
            }
        };
        if let Some(msg) = msg {
            self.batches += 1;
            self.send(idx, msg, abort, blocked_ns)?;
        }
        Ok(())
    }

    fn flush_all(
        &mut self,
        batch_size: usize,
        abort: &AtomicBool,
        blocked_ns: &AtomicU64,
    ) -> Result<(), ()> {
        let mut ok = Ok(());
        for idx in 0..self.bufs.len() {
            if self.flush_buf(idx, batch_size, abort, blocked_ns).is_err() {
                ok = Err(());
            }
        }
        ok
    }

    fn broadcast(
        &self,
        msg_of: impl Fn() -> Message,
        abort: &AtomicBool,
        blocked_ns: &AtomicU64,
    ) -> Result<(), ()> {
        for idx in 0..self.senders.len() {
            self.send(idx, msg_of(), abort, blocked_ns)?;
        }
        Ok(())
    }
}

/// Routes an operator's emissions to all outgoing edges, micro-batching
/// tuples per destination and coalescing watermarks between flushes.
struct ChannelCollector {
    routes: Vec<Route>,
    batch_size: usize,
    /// Which data plane this task's emissions travel on. On the columnar
    /// plane every tuple-carrying message is [`Message::Columnar`]; on the
    /// row plane, [`Message::Tuple`]/[`Message::Batch`]. Never mixed.
    columnar: bool,
    abort: Arc<AtomicBool>,
    /// The owning instance's shared counters; the collector charges
    /// blocked-on-send time (backpressure) to
    /// [`InstanceStats::backpressure_ns`].
    istats: Arc<InstanceStats>,
    out_count: u64,
    failed: bool,
    /// Highest watermark accepted for broadcast but not yet sent. Deferring
    /// a watermark is always safe — it is a *lower bound* promise, and
    /// delaying it only delays downstream firing — whereas sending it ahead
    /// of buffered tuples would not be. [`ChannelCollector::flush`] sends
    /// every pending batch first, then this coalesced watermark, so the
    /// tuples a watermark covers always precede it on every channel.
    pending_wm: Option<Timestamp>,
    /// The watermark contract floor: the highest watermark this task has
    /// broadcast downstream. Every later emission must carry `ts ≥ floor`.
    #[cfg(feature = "invariant-checks")]
    wm_floor: Timestamp,
    /// Sources are exempt from the emission-floor check: with an
    /// under-estimated `watermark_lag` they legitimately emit late tuples,
    /// and downstream `drop_late` is the documented degradation path.
    #[cfg(feature = "invariant-checks")]
    enforce_emit_floor: bool,
}

impl ChannelCollector {
    /// Record `wm` for broadcast at the next [`flush`](Self::flush). Repeated
    /// calls between flushes coalesce into one watermark message per channel.
    fn broadcast_watermark(&mut self, wm: Timestamp) {
        #[cfg(feature = "invariant-checks")]
        {
            assert!(
                wm >= self.wm_floor,
                "invariant violation: task broadcast watermark {wm:?} behind its own previous watermark {:?}",
                self.wm_floor
            );
            self.wm_floor = wm;
        }
        self.pending_wm = Some(self.pending_wm.map_or(wm, |p| p.max(wm)));
    }

    /// Soft flush: release the coalesced pending watermark without
    /// truncating partially filled batch buffers. Destinations with an
    /// empty buffer get the watermark immediately; for the rest it is
    /// recorded as *owed* and sent right behind that destination's next
    /// batch, so micro-batches keep forming across punctuation (the
    /// hash-fan-out batch-efficiency fix). Owed watermarks are bounded by
    /// the callers' periodic [`flush_hard`](Self::flush_hard).
    fn flush(&mut self) {
        let Self {
            routes,
            batch_size,
            abort,
            istats,
            failed,
            pending_wm,
            ..
        } = self;
        let abort: &AtomicBool = abort;
        let blocked_ns = &istats.backpressure_ns;
        if let Some(wm) = pending_wm.take() {
            for r in routes.iter_mut() {
                if r.soft_watermark(wm, *batch_size, abort, blocked_ns)
                    .is_err()
                {
                    *failed = true;
                }
            }
        }
    }

    /// Hard flush: send every pending batch (settling owed watermarks
    /// behind each), then broadcast the coalesced pending watermark.
    fn flush_hard(&mut self) {
        let Self {
            routes,
            batch_size,
            abort,
            istats,
            failed,
            pending_wm,
            ..
        } = self;
        let abort: &AtomicBool = abort;
        let blocked_ns = &istats.backpressure_ns;
        for r in routes.iter_mut() {
            // The hard flush doubles as the idle-path shard observation
            // point: even a task with nothing to send cuts over to a new
            // slot table (and broadcasts its marker) within `idle_flush`.
            if r.observe_shard(*batch_size, abort, blocked_ns).is_err() {
                *failed = true;
            }
            if r.flush_all(*batch_size, abort, blocked_ns).is_err() {
                *failed = true;
            }
            r.publish_traffic();
        }
        if let Some(wm) = pending_wm.take() {
            for r in routes.iter_mut() {
                // Watermarks stay frozen on routes with an in-flight
                // migration (released at completion); everywhere else the
                // hard flush broadcasts them directly.
                if r.stash_if_frozen(wm) {
                    continue;
                }
                if r.broadcast(|| Message::Watermark(wm), abort, blocked_ns)
                    .is_err()
                {
                    *failed = true;
                }
            }
        }
    }

    /// Flush everything, then tell every downstream channel the stream is
    /// over.
    fn broadcast_end(&mut self) {
        self.flush_hard();
        for r in &self.routes {
            if r.broadcast(|| Message::End, &self.abort, &self.istats.backpressure_ns)
                .is_err()
            {
                self.failed = true;
            }
        }
    }

    /// Source fast path: append a primitive event to every route's pending
    /// columnar batch without materializing a row tuple (no heap traffic).
    /// Falls back to [`Collector::emit`] on the row plane.
    fn emit_event(&mut self, e: Event, wall: u64) {
        if !self.columnar {
            self.emit(Tuple::from_event_wall(e, wall));
            return;
        }
        self.out_count += 1;
        let Self {
            routes,
            batch_size,
            abort,
            istats,
            failed,
            ..
        } = self;
        let abort: &AtomicBool = abort;
        let blocked_ns = &istats.backpressure_ns;
        for r in routes.iter_mut() {
            if r.buffer_event(e, wall, *batch_size, abort, blocked_ns)
                .is_err()
            {
                *failed = true;
            }
        }
    }

    /// Route a processed columnar batch downstream (columnar plane). A
    /// dense, full batch bound for a single pre-resolved destination with
    /// an empty pending buffer moves onto the wire without copying a row;
    /// everything else gather-appends the selected rows into the
    /// destinations' pending batches.
    fn forward_batch(&mut self, mut batch: ColumnarBatch) {
        #[cfg(feature = "invariant-checks")]
        if self.enforce_emit_floor {
            if let Some(min) = batch.min_ts() {
                assert!(
                    min >= self.wm_floor,
                    "invariant violation: task emitted batch with min ts {min:?} behind its own broadcast watermark {:?}",
                    self.wm_floor
                );
            }
        }
        let selected = batch.selected_len();
        if selected == 0 {
            return;
        }
        self.out_count += selected as u64;
        let Self {
            routes,
            batch_size,
            abort,
            istats,
            failed,
            ..
        } = self;
        let abort: &AtomicBool = abort;
        let blocked_ns = &istats.backpressure_ns;
        let n = routes.len();
        if n == 0 {
            return;
        }
        // Shared fan-out: a full batch bound for ≥ 2 pre-resolved,
        // unsharded destinations goes out once as an `Arc` instead of
        // being gather-copied into every route's pending buffer — the
        // multi-consumer analogue of the single-route zero-copy path
        // below. Each route first settles its pending rows and owed
        // watermarks via `flush_buf`, so the channel-relative order of
        // tuples and watermarks stays a pure function of emission order.
        if n >= 2
            && selected >= *batch_size
            && routes
                .iter()
                .all(|r| r.fixed.is_some() && r.shard.is_none())
        {
            if let Err(e) = batch.compact() {
                routes[0].op_error.get_or_insert(e);
                *failed = true;
                return;
            }
            let shared = Arc::new(batch);
            for r in routes.iter_mut() {
                let idx = r.fixed.expect("eligibility checked above");
                if r.flush_buf(idx, *batch_size, abort, blocked_ns).is_err() {
                    *failed = true;
                    continue;
                }
                r.batches += 1;
                if r.send(idx, Message::Shared(shared.clone()), abort, blocked_ns)
                    .is_err()
                {
                    *failed = true;
                }
            }
            return;
        }
        for r in routes.iter_mut().take(n - 1) {
            if r.append_batch(&batch, *batch_size, abort, blocked_ns)
                .is_err()
            {
                *failed = true;
            }
        }
        let last = &mut routes[n - 1];
        if let Some(idx) = last.fixed {
            // The zero-copy path requires an empty owed-watermark queue:
            // owed watermarks are positional, and rows sent around them
            // must go through the segment-splitting `flush_buf`.
            if last.cbufs[idx].is_empty() && last.wm_owed[idx].is_empty() {
                if let Err(e) = batch.compact() {
                    last.op_error.get_or_insert(e);
                    *failed = true;
                    return;
                }
                if batch.len() >= *batch_size {
                    last.batches += 1;
                    if last
                        .send(idx, Message::Columnar(batch), abort, blocked_ns)
                        .is_err()
                    {
                        *failed = true;
                    }
                } else {
                    // Short batch: it *becomes* the pending buffer.
                    last.cbufs[idx] = batch;
                }
                return;
            }
        }
        if last
            .append_batch(&batch, *batch_size, abort, blocked_ns)
            .is_err()
        {
            *failed = true;
        }
    }

    /// Channel messages carrying tuples sent so far (a batch counts once).
    fn messages_sent(&self) -> u64 {
        self.routes.iter().map(|r| r.batches).sum()
    }

    /// First operator-grade failure recorded by any route (composite
    /// side-table overflow); the harness reports it via `record_op_error`.
    fn take_op_error(&mut self) -> Option<OpError> {
        self.routes.iter_mut().find_map(|r| r.op_error.take())
    }
}

impl Collector for ChannelCollector {
    fn emit(&mut self, tuple: Tuple) {
        // Watermark contract: once a task has told downstream "no tuples
        // below W", it must never emit one (operators hold watermarks back
        // by their window size to guarantee this — see WindowJoinOp).
        #[cfg(feature = "invariant-checks")]
        assert!(
            !self.enforce_emit_floor || tuple.ts >= self.wm_floor,
            "invariant violation: task emitted tuple at {:?} behind its own broadcast watermark {:?}",
            tuple.ts,
            self.wm_floor
        );
        self.out_count += 1;
        // Borrow-split so the per-tuple path touches no `Arc` refcount.
        let Self {
            routes,
            batch_size,
            columnar,
            abort,
            istats,
            failed,
            ..
        } = self;
        let abort: &AtomicBool = abort;
        let blocked_ns = &istats.backpressure_ns;
        let n = routes.len();
        if n == 0 {
            return;
        }
        // Clone for all but the last route; move into the last. On the
        // columnar plane the tuple is decomposed into the routes' pending
        // column batches instead of buffered as a row.
        if *columnar {
            for r in routes.iter_mut().take(n - 1) {
                if r.buffer_tuple_columnar(tuple.clone(), *batch_size, abort, blocked_ns)
                    .is_err()
                {
                    *failed = true;
                }
            }
            if routes[n - 1]
                .buffer_tuple_columnar(tuple, *batch_size, abort, blocked_ns)
                .is_err()
            {
                *failed = true;
            }
            return;
        }
        for r in routes.iter_mut().take(n - 1) {
            if r.buffer_tuple(tuple.clone(), *batch_size, abort, blocked_ns)
                .is_err()
            {
                *failed = true;
            }
        }
        if routes[n - 1]
            .buffer_tuple(tuple, *batch_size, abort, blocked_ns)
            .is_err()
        {
            *failed = true;
        }
    }
}

/// Per-instance shared counters and gauges the report (and the sampler /
/// progress threads) aggregate. All fields use relaxed atomics: counters
/// are independent and the final report is assembled only after the worker
/// threads are joined, which is the synchronization edge; mid-run samples
/// tolerate approximation.
struct InstanceStats {
    records_in: AtomicU64,
    records_out: AtomicU64,
    batches_out: AtomicU64,
    late_dropped: AtomicU64,
    state_bytes: AtomicUsize,
    peak_state: AtomicUsize,
    /// Keyed-state high-water marks reported by the instance's operator
    /// ([`Operator::keyed_state`]): peak resident keys per side and the
    /// longest per-key run. 0 for operators without keyed state.
    keyed_left_keys: AtomicUsize,
    keyed_right_keys: AtomicUsize,
    keyed_max_run: AtomicUsize,
    /// Nanoseconds spent blocked sending into full downstream inboxes.
    backpressure_ns: AtomicU64,
    /// Last sampled inbox depth (queued channel messages), and its peak.
    queue_depth: AtomicUsize,
    queue_depth_peak: AtomicUsize,
    /// Gauge: newest event ts seen minus merged watermark, ms, and peak.
    watermark_lag_ms: AtomicI64,
    watermark_lag_peak_ms: AtomicI64,
    /// Strided `Operator::process` wall-time observations.
    proc_hist: LatencyHistogram,
}

impl InstanceStats {
    fn new() -> Arc<Self> {
        Arc::new(InstanceStats {
            records_in: AtomicU64::new(0),
            records_out: AtomicU64::new(0),
            batches_out: AtomicU64::new(0),
            late_dropped: AtomicU64::new(0),
            state_bytes: AtomicUsize::new(0),
            peak_state: AtomicUsize::new(0),
            keyed_left_keys: AtomicUsize::new(0),
            keyed_right_keys: AtomicUsize::new(0),
            keyed_max_run: AtomicUsize::new(0),
            backpressure_ns: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            queue_depth_peak: AtomicUsize::new(0),
            watermark_lag_ms: AtomicI64::new(0),
            watermark_lag_peak_ms: AtomicI64::new(0),
            proc_hist: LatencyHistogram::default(),
        })
    }

    fn set_state(&self, bytes: usize) {
        self.state_bytes.store(bytes, Ordering::Relaxed);
        self.peak_state.fetch_max(bytes, Ordering::Relaxed);
    }

    /// Record an operator's keyed-state high-water marks. The values are
    /// lifetime peaks, so a single observation at teardown is exact;
    /// `fetch_max` keeps earlier observations monotone regardless.
    fn set_keyed(&self, keyed: Option<crate::operator::KeyedStateStats>) {
        if let Some(ks) = keyed {
            self.keyed_left_keys
                .fetch_max(ks.left_keys, Ordering::Relaxed);
            self.keyed_right_keys
                .fetch_max(ks.right_keys, Ordering::Relaxed);
            self.keyed_max_run
                .fetch_max(ks.max_run_len, Ordering::Relaxed);
        }
    }

    /// Record the inbox depth gauge (and its peak).
    fn note_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.queue_depth_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Record how far the merged event-time clock trails the newest event
    /// timestamp this instance has seen. Skipped until both ends of the
    /// interval are meaningful (at least one tuple, a finite watermark).
    fn note_watermark_lag(&self, max_ts_seen: Timestamp, wm: Timestamp) {
        if max_ts_seen > Timestamp::MIN && wm < Timestamp::MAX {
            let lag = max_ts_seen.millis().saturating_sub(wm.millis()).max(0);
            self.watermark_lag_ms.store(lag, Ordering::Relaxed);
            self.watermark_lag_peak_ms.fetch_max(lag, Ordering::Relaxed);
        }
    }
}

struct SinkShared {
    mode: SinkMode,
    tuples: Mutex<Vec<Tuple>>,
    count: AtomicU64,
    latencies_ns: Mutex<Vec<u64>>,
    stride: usize,
}

/// Collected results of one pipeline run.
#[derive(Debug)]
pub struct RunReport {
    /// Wall-clock duration of the whole run.
    pub duration: StdDuration,
    /// Total events emitted by all sources.
    pub source_events: u64,
    /// Per-node statistics in graph order.
    pub nodes: Vec<NodeStats>,
    /// Resource samples (if sampling was enabled).
    pub samples: Vec<ResourceSample>,
    /// Structured events retained by the run's [`EventLog`], oldest first.
    pub events: Vec<LogEvent>,
    /// Events displaced from the ring (emitted but not retained).
    pub events_displaced: u64,
    sinks: Vec<SinkResult>,
}

#[derive(Debug)]
struct SinkResult {
    tuples: Vec<Tuple>,
    count: u64,
    latencies_ns: Vec<u64>,
}

impl RunReport {
    /// Tuples collected by a sink (empty in [`SinkMode::CountOnly`]).
    pub fn sink(&self, id: SinkId) -> &[Tuple] {
        &self.sinks[id.0].tuples
    }

    /// Move a sink's tuples out of the report.
    pub fn take_sink(&mut self, id: SinkId) -> Vec<Tuple> {
        std::mem::take(&mut self.sinks[id.0].tuples)
    }

    /// Number of tuples that reached the sink (works in both modes).
    pub fn sink_count(&self, id: SinkId) -> u64 {
        self.sinks[id.0].count
    }

    /// Source-side throughput in events/second — the sustainable-throughput
    /// metric (sources are backpressured by the pipeline).
    pub fn throughput(&self) -> f64 {
        self.source_events as f64 / self.duration.as_secs_f64().max(1e-9)
    }

    /// Detection latency statistics at a sink.
    pub fn latency(&self, id: SinkId) -> LatencyStats {
        LatencyStats::from_ns(&self.sinks[id.0].latencies_ns)
    }

    /// Peak total operator state across the run (max over samples, or max
    /// of per-node peaks when sampling is off).
    pub fn peak_state_bytes(&self) -> usize {
        let from_samples = self
            .samples
            .iter()
            .map(|s| s.state_bytes)
            .max()
            .unwrap_or(0);
        let from_nodes: usize = self.nodes.iter().map(|n| n.peak_state_bytes).sum();
        from_samples.max(from_nodes)
    }

    /// Check the run's observed telemetry against statically derived
    /// [`StaticBounds`] and return every violated limit.
    ///
    /// Sink tuples are the summed delivered counts across all sinks; state
    /// is the summed per-node peak (each node's peak is individually below
    /// its static bound, so the sums compare soundly without mapping plan
    /// nodes to physical operators). An empty result means the cost model
    /// survived contact with this run.
    pub fn check_bounds(&self, bounds: &StaticBounds) -> Vec<BoundViolation> {
        let mut violations = Vec::new();
        if let Some(limit) = bounds.max_sink_tuples {
            let actual: u64 = self.sinks.iter().map(|s| s.count).sum();
            if actual > limit {
                violations.push(BoundViolation {
                    quantity: "sink_tuples",
                    actual,
                    bound: limit,
                    origin: bounds.origin.clone(),
                });
            }
        }
        if let Some(limit) = bounds.max_total_state_bytes {
            let actual: u64 = self.nodes.iter().map(|n| n.peak_state_bytes as u64).sum();
            if actual > limit {
                violations.push(BoundViolation {
                    quantity: "state_bytes",
                    actual,
                    bound: limit,
                    origin: bounds.origin.clone(),
                });
            }
        }
        if let Some(limit) = bounds.max_keyed_run {
            // Runs are per key per instance, so the max over nodes is the
            // right observable (never summed).
            let actual: u64 = self
                .nodes
                .iter()
                .map(|n| n.keyed_max_run as u64)
                .max()
                .unwrap_or(0);
            if actual > limit {
                violations.push(BoundViolation {
                    quantity: "keyed_run_len",
                    actual,
                    bound: limit,
                    origin: bounds.origin.clone(),
                });
            }
        }
        violations
    }

    /// Export the full telemetry of the run as a pretty-printed JSON
    /// document: per-node counters and latency histograms, watermark-lag /
    /// queue-depth / backpressure gauges, the resource-sample series, sink
    /// latency summaries, and the structured event log.
    ///
    /// Per-node derived quantities (`avg_batch`, histogram quantile bucket
    /// bounds) are materialized alongside the raw fields so consumers need
    /// no histogram arithmetic.
    pub fn to_json(&self) -> String {
        let nodes: Vec<Value> = self
            .nodes
            .iter()
            .map(|n| {
                let mut v = n.to_value();
                if let Value::Object(pairs) = &mut v {
                    pairs.push(("avg_batch".into(), Value::Float(n.avg_batch())));
                    pairs.push((
                        "proc_latency_mean_us".into(),
                        Value::Float(n.proc_latency.mean_us()),
                    ));
                    for (name, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
                        pairs.push((
                            format!("proc_latency_{name}_le_ns"),
                            Value::UInt(n.proc_latency.quantile_le_ns(q)),
                        ));
                    }
                }
                v
            })
            .collect();
        let sinks: Vec<Value> = self
            .sinks
            .iter()
            .map(|s| {
                Value::Object(vec![
                    ("count".into(), Value::UInt(s.count)),
                    (
                        "latency".into(),
                        LatencyStats::from_ns(&s.latencies_ns).to_value(),
                    ),
                ])
            })
            .collect();
        let root = Value::Object(vec![
            ("schema_version".into(), Value::UInt(1)),
            (
                "duration_ms".into(),
                Value::Float(self.duration.as_secs_f64() * 1e3),
            ),
            ("source_events".into(), Value::UInt(self.source_events)),
            ("throughput_eps".into(), Value::Float(self.throughput())),
            (
                "peak_state_bytes".into(),
                Value::UInt(self.peak_state_bytes() as u64),
            ),
            ("nodes".into(), Value::Array(nodes)),
            ("samples".into(), self.samples.to_value()),
            ("sinks".into(), Value::Array(sinks)),
            ("events".into(), self.events.to_value()),
            (
                "events_displaced".into(),
                Value::UInt(self.events_displaced),
            ),
        ]);
        // The vendored writer is infallible for trees built from finite
        // numbers; fall back to an empty document rather than unwrap.
        serde_json::to_string_pretty(&root).unwrap_or_else(|_| String::from("{}"))
    }
}

/// Executes a [`GraphBuilder`] graph to completion.
pub struct Executor {
    cfg: ExecutorConfig,
}

impl Executor {
    /// An executor with the given runtime knobs.
    pub fn new(cfg: ExecutorConfig) -> Self {
        Executor { cfg }
    }

    /// Run the graph to end-of-stream and aggregate a [`RunReport`].
    ///
    /// The graph is statically validated first ([`crate::validate`]); a
    /// malformed graph is refused with [`PipelineError::Validation`] listing
    /// every defect before any thread is spawned.
    pub fn run(&self, graph: GraphBuilder) -> Result<RunReport, PipelineError> {
        if !self.cfg.env_errors.is_empty() {
            return Err(PipelineError::Validation(
                self.cfg
                    .env_errors
                    .iter()
                    .map(|msg| {
                        crate::validate::Diagnostic::error(
                            crate::validate::Code::InvalidEnvConfig,
                            None,
                            msg.clone(),
                        )
                    })
                    .collect(),
            ));
        }
        // Apply the shard-count override to sharded nodes *before* static
        // validation, so a mismatch introduced by the override (e.g. a
        // Forward edge into a re-parallelized node, G005) is refused with
        // the same diagnostics as a hand-built graph.
        let mut graph = graph;
        if let Some(shards) = self.cfg.shards {
            for node in graph.nodes.iter_mut() {
                if node.sharded {
                    node.parallelism = shards;
                }
            }
        }
        crate::validate::validate(&graph).map_err(PipelineError::Validation)?;
        if self.cfg.batch_size == 0 {
            return Err(PipelineError::Validation(vec![
                crate::validate::Diagnostic::error(
                    crate::validate::Code::InvalidBatchSize,
                    None,
                    "ExecutorConfig::batch_size must be ≥ 1 (a zero-sized batch would never flush)",
                ),
            ]));
        }
        let graph = if self.cfg.operator_chaining {
            chain::fuse_chains(graph)
        } else {
            graph
        };
        let n_nodes = graph.nodes.len();
        let n_instances: usize = graph.nodes.iter().map(|n| n.parallelism).sum();
        // With `batch_size == 1` every columnar message carries one row and
        // pays full batch bookkeeping — a documented regression against the
        // row plane — so single-tuple batching runs on the row plane.
        let columnar = self.cfg.columnar && self.cfg.batch_size > 1;
        let abort = Arc::new(AtomicBool::new(false));
        let first_error: Arc<Mutex<Option<PipelineError>>> = Arc::new(Mutex::new(None));
        let epoch = Instant::now();
        let log = Arc::new(EventLog::new(self.cfg.event_log_capacity));
        log.emit(
            Level::Info,
            "executor",
            format!(
                "run started: {n_nodes} nodes, {n_instances} instances, batch_size={}, chaining={}, plane={}",
                self.cfg.batch_size,
                self.cfg.operator_chaining,
                if columnar { "columnar" } else { "row" }
            ),
        );

        // Inboxes: one bounded channel per instance.
        let mut inbox_tx: Vec<Vec<Sender<Envelope>>> = Vec::with_capacity(n_nodes);
        let mut inbox_rx: Vec<Vec<Option<Receiver<Envelope>>>> = Vec::with_capacity(n_nodes);
        for node in &graph.nodes {
            let mut txs = Vec::with_capacity(node.parallelism);
            let mut rxs = Vec::with_capacity(node.parallelism);
            for _ in 0..node.parallelism {
                let (tx, rx) = bounded(self.cfg.channel_capacity);
                txs.push(tx);
                rxs.push(Some(rx));
            }
            inbox_tx.push(txs);
            inbox_rx.push(rxs);
        }

        // Routes: per node, the template of its outgoing edges.
        // route_templates[n] = Vec<(dst, port, exchange)>.
        let mut route_templates: Vec<Vec<(NodeId, usize, Exchange)>> = vec![Vec::new(); n_nodes];
        for e in &graph.edges {
            route_templates[e.src.0].push((e.dst, e.port, e.exchange));
        }

        // Input channel layout per node: (port, upstream parallelism).
        let input_layout: Vec<Vec<(usize, usize, bool)>> = (0..n_nodes)
            .map(|i| graph.input_channels(NodeId(i)))
            .collect();

        // One shard plan per sharded node with ≥ 2 instances: the shared
        // slot table its upstream routes consult and the rebalancer flips.
        let shard_plans: Vec<Option<Arc<shard::ShardPlan>>> = graph
            .nodes
            .iter()
            .map(|n| (n.sharded && n.parallelism > 1).then(|| shard::ShardPlan::new(n.parallelism)))
            .collect();

        // Shared stats + sinks.
        let stats: Vec<Vec<Arc<InstanceStats>>> = graph
            .nodes
            .iter()
            .map(|n| (0..n.parallelism).map(|_| InstanceStats::new()).collect())
            .collect();
        let mut sink_shared: Vec<Arc<SinkShared>> = Vec::new();
        for node in &graph.nodes {
            if let NodeKind::Sink(sid) = node.kind {
                sink_shared.push(Arc::new(SinkShared {
                    mode: graph.sink_modes[sid.0],
                    tuples: Mutex::new(Vec::new()),
                    count: AtomicU64::new(0),
                    latencies_ns: Mutex::new(Vec::new()),
                    stride: self.cfg.latency_stride.max(1),
                }));
            }
        }

        let source_events = Arc::new(AtomicU64::new(0));
        let done = Arc::new(AtomicBool::new(false));

        // Sampler thread.
        let sampler_handle = self.cfg.sample_interval.map(|interval| {
            let flat_stats: Vec<Arc<InstanceStats>> = stats.iter().flatten().cloned().collect();
            let done = done.clone();
            std::thread::spawn(move || metrics::sample_loop(interval, flat_stats, done))
        });

        // Progress reporter thread (emits into the event log).
        let progress_handle = self.cfg.progress_interval.map(|interval| {
            let flat_stats: Vec<Arc<InstanceStats>> = stats.iter().flatten().cloned().collect();
            let done = done.clone();
            let log = log.clone();
            let sources = source_events.clone();
            std::thread::spawn(move || {
                metrics::progress_loop(interval, flat_stats, sources, log, done)
            })
        });

        // Adaptive rebalancer: one thread watching every shard plan's
        // traffic histogram, publishing at most one migration per plan at
        // a time. `rebalance_interval: None` keeps placement static.
        let active_plans: Vec<Arc<shard::ShardPlan>> =
            shard_plans.iter().flatten().cloned().collect();
        let rebalancer_handle = match (self.cfg.rebalance_interval, active_plans.is_empty()) {
            (Some(interval), false) => {
                let done = done.clone();
                let log = log.clone();
                Some(std::thread::spawn(move || {
                    shard::rebalance_loop(active_plans, interval, done, log)
                }))
            }
            _ => None,
        };

        let mut handles = Vec::new();
        let mut graph = graph;
        for (nid, node) in graph.nodes.iter_mut().enumerate() {
            let parallelism = node.parallelism;
            for instance in 0..parallelism {
                // Build this instance's routes.
                let routes: Vec<Route> = route_templates[nid]
                    .iter()
                    .map(|(dst, port, exchange)| {
                        Route::new(
                            *exchange,
                            *port as u16,
                            instance as u16,
                            instance,
                            inbox_tx[dst.0].clone(),
                            shard_plans[dst.0].clone(),
                        )
                    })
                    .collect();
                let istats = stats[nid][instance].clone();
                let collector = ChannelCollector {
                    routes,
                    batch_size: self.cfg.batch_size,
                    columnar,
                    abort: abort.clone(),
                    istats: istats.clone(),
                    out_count: 0,
                    failed: false,
                    pending_wm: None,
                    #[cfg(feature = "invariant-checks")]
                    wm_floor: Timestamp::MIN,
                    #[cfg(feature = "invariant-checks")]
                    enforce_emit_floor: !matches!(node.kind, NodeKind::Source { .. }),
                };
                let abort = abort.clone();
                let first_error = first_error.clone();
                let log = log.clone();
                let proc_every = self.cfg.proc_latency_every as u64;
                let name = node.name.clone();

                let handle = match &mut node.kind {
                    NodeKind::Source { cfg, chain } => {
                        let cfg = cfg.clone();
                        let chained: Option<Box<dyn Operator>> = if chain.is_empty() {
                            None
                        } else {
                            Some(Box::new(chain::ChainedOperator::new(
                                chain.iter().map(|f| f(instance)).collect(),
                            )))
                        };
                        let counter = source_events.clone();
                        let first_error = first_error.clone();
                        let idle_flush = self.cfg.idle_flush;
                        std::thread::Builder::new()
                            .name(format!("{name}#{instance}"))
                            .spawn(move || {
                                run_source(
                                    cfg,
                                    chained,
                                    instance,
                                    parallelism,
                                    collector,
                                    counter,
                                    istats,
                                    abort,
                                    first_error,
                                    epoch,
                                    idle_flush,
                                    proc_every,
                                    log,
                                )
                            })
                            .expect("spawn source")
                    }
                    NodeKind::Operator(factory) => {
                        let op = factory(instance);
                        let rx = inbox_rx[nid][instance].take().expect("rx unused");
                        let layout = input_layout[nid].clone();
                        let drop_late = self.cfg.drop_late;
                        let idle_flush = self.cfg.idle_flush;
                        let shard_ctx = shard_plans[nid].as_ref().map(|plan| {
                            if instance == 0 {
                                // Migrations move row-plane keyed state; an
                                // operator on the vectorized path never sees
                                // the per-tuple stash hook, so keep its
                                // placement static.
                                plan.set_migratable(
                                    op.shard_handoff_supported()
                                        && op.batch_support() == BatchSupport::Row,
                                );
                            }
                            ShardCtx::new(plan.clone(), instance, inbox_tx[nid].clone())
                        });
                        std::thread::Builder::new()
                            .name(format!("{name}#{instance}"))
                            .spawn(move || {
                                run_operator(
                                    op,
                                    rx,
                                    layout,
                                    collector,
                                    istats,
                                    abort,
                                    first_error,
                                    drop_late,
                                    idle_flush,
                                    proc_every,
                                    shard_ctx,
                                    log,
                                )
                            })
                            .expect("spawn operator")
                    }
                    NodeKind::Sink(sid) => {
                        let shared = sink_shared[sid.0].clone();
                        let rx = inbox_rx[nid][instance].take().expect("rx unused");
                        let layout = input_layout[nid].clone();
                        std::thread::Builder::new()
                            .name(format!("{name}#{instance}"))
                            .spawn(move || run_sink(shared, rx, layout, istats, abort, epoch))
                            .expect("spawn sink")
                    }
                };
                handles.push(handle);
            }
        }

        // Drop our copies of the senders so disconnects propagate.
        drop(inbox_tx);

        let mut panic_msg = None;
        for h in handles {
            if let Err(p) = h.join() {
                abort.store(true, Ordering::Relaxed);
                let msg = p
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| p.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".to_string());
                panic_msg.get_or_insert(msg);
            }
        }
        done.store(true, Ordering::Relaxed);
        if let Some(h) = rebalancer_handle {
            let _ = h.join();
        }
        let samples = sampler_handle
            .map(|h| h.join().unwrap_or_default())
            .unwrap_or_default();
        if let Some(h) = progress_handle {
            let _ = h.join();
        }
        let duration = epoch.elapsed();

        if let Some(err) = first_error.lock().take() {
            log.emit(Level::Error, "executor", format!("run aborted: {err}"));
            return Err(err);
        }
        if let Some(msg) = panic_msg {
            log.emit(Level::Error, "executor", format!("worker panicked: {msg}"));
            return Err(PipelineError::WorkerPanic(msg));
        }
        log.emit(
            Level::Info,
            "executor",
            format!(
                "run finished: {} source events in {:.1} ms",
                source_events.load(Ordering::Relaxed),
                duration.as_secs_f64() * 1e3
            ),
        );

        // Aggregate per-node stats.
        let nodes = graph
            .nodes
            .iter()
            .enumerate()
            .map(|(nid, node)| NodeStats {
                name: node.name.clone(),
                parallelism: node.parallelism,
                records_in: stats[nid]
                    .iter()
                    .map(|s| s.records_in.load(Ordering::Relaxed))
                    .sum(),
                records_out: stats[nid]
                    .iter()
                    .map(|s| s.records_out.load(Ordering::Relaxed))
                    .sum(),
                batches_out: stats[nid]
                    .iter()
                    .map(|s| s.batches_out.load(Ordering::Relaxed))
                    .sum(),
                late_dropped: stats[nid]
                    .iter()
                    .map(|s| s.late_dropped.load(Ordering::Relaxed))
                    .sum(),
                peak_state_bytes: stats[nid]
                    .iter()
                    .map(|s| s.peak_state.load(Ordering::Relaxed))
                    .sum(),
                keyed_left_keys: stats[nid]
                    .iter()
                    .map(|s| s.keyed_left_keys.load(Ordering::Relaxed))
                    .sum(),
                keyed_right_keys: stats[nid]
                    .iter()
                    .map(|s| s.keyed_right_keys.load(Ordering::Relaxed))
                    .sum(),
                keyed_max_run: stats[nid]
                    .iter()
                    .map(|s| s.keyed_max_run.load(Ordering::Relaxed))
                    .max()
                    .unwrap_or(0),
                shard_migrations: shard_plans[nid].as_ref().map_or(0, |p| p.migrations_done()),
                proc_latency: stats[nid].iter().fold(
                    crate::obs::HistogramSummary::default(),
                    |mut acc, s| {
                        acc.merge(&s.proc_hist.summary());
                        acc
                    },
                ),
                watermark_lag_ms: stats[nid]
                    .iter()
                    .map(|s| s.watermark_lag_ms.load(Ordering::Relaxed))
                    .max()
                    .unwrap_or(0),
                watermark_lag_peak_ms: stats[nid]
                    .iter()
                    .map(|s| s.watermark_lag_peak_ms.load(Ordering::Relaxed))
                    .max()
                    .unwrap_or(0),
                queue_depth: stats[nid]
                    .iter()
                    .map(|s| s.queue_depth.load(Ordering::Relaxed))
                    .sum(),
                queue_depth_peak: stats[nid]
                    .iter()
                    .map(|s| s.queue_depth_peak.load(Ordering::Relaxed))
                    .max()
                    .unwrap_or(0),
                backpressure_ns: stats[nid]
                    .iter()
                    .map(|s| s.backpressure_ns.load(Ordering::Relaxed))
                    .sum(),
            })
            .collect();

        // All workers are joined, so each sink's Arc should be uniquely
        // held here. If one is not, the run's bookkeeping is broken —
        // report it as an error instead of panicking out of the embedder.
        let mut sinks = Vec::with_capacity(sink_shared.len());
        for (i, s) in sink_shared.into_iter().enumerate() {
            let count = s.count.load(Ordering::Relaxed);
            match Arc::try_unwrap(s) {
                Ok(s) => sinks.push(SinkResult {
                    tuples: s.tuples.into_inner(),
                    count,
                    latencies_ns: s.latencies_ns.into_inner(),
                }),
                Err(_) => {
                    let msg = format!("sink {i} result still shared after all workers joined");
                    log.emit(Level::Error, "executor", &msg);
                    return Err(PipelineError::Internal(msg));
                }
            }
        }

        Ok(RunReport {
            duration,
            source_events: source_events.load(Ordering::Relaxed),
            nodes,
            samples,
            events: log.snapshot(),
            events_displaced: log.displaced(),
            sinks,
        })
    }
}

#[allow(clippy::too_many_arguments)]
fn run_source(
    cfg: SourceConfig,
    mut chained: Option<Box<dyn Operator>>,
    instance: usize,
    parallelism: usize,
    mut collector: ChannelCollector,
    counter: Arc<AtomicU64>,
    istats: Arc<InstanceStats>,
    abort: Arc<AtomicBool>,
    first_error: Arc<Mutex<Option<PipelineError>>>,
    epoch: Instant,
    idle_flush: StdDuration,
    proc_every: u64,
    log: Arc<EventLog>,
) {
    let mut last_ts = Timestamp::MIN;
    let mut forwarded_wm = Timestamp::MIN;
    let mut emitted: u64 = 0;
    let lag = cfg.watermark_lag;
    let pace = cfg
        .rate
        .map(|r| StdDuration::from_secs_f64(1.0 / r.max(1e-9)));
    let start = Instant::now();
    // Rate-limited sources check the idle-flush deadline per event so a
    // partial batch never outlives `idle_flush`; saturating sources fill
    // batches in microseconds and flush at every punctuation instead.
    let mut last_flush = start;
    // Columnar plane: events stream straight into column batches. With a
    // columnar-capable chained operator they are staged per `batch_size`
    // and driven through `process_columnar`; without a chain they go
    // directly into the routes' pending batches (`emit_event`). A row-only
    // chain keeps the per-tuple path (its emissions are still re-batched
    // columnar by the collector).
    let columnar = collector.columnar;
    let columnar_chain = chained
        .as_ref()
        .is_some_and(|op| op.batch_support() == BatchSupport::Columnar);
    let bs = collector.batch_size;
    let mut staging = if columnar && columnar_chain {
        ColumnarBatch::with_capacity(bs)
    } else {
        ColumnarBatch::default()
    };
    'ingest: for (i, ev) in cfg.events.iter().enumerate() {
        if parallelism > 1 && i % parallelism != instance {
            continue;
        }
        if abort.load(Ordering::Relaxed) {
            break;
        }
        if let Some(p) = pace {
            let target = start + p.mul_f64(emitted as f64);
            let now = Instant::now();
            if target > now {
                std::thread::sleep(target - now);
            }
        }
        let wall = epoch.elapsed().as_nanos() as u64;
        last_ts = last_ts.max(ev.ts);
        match &mut chained {
            Some(op) if columnar && columnar_chain => {
                staging.push_event(*ev, wall);
                if staging.len() >= bs {
                    // One strided observation per batch call: the cost of
                    // two clock reads amortizes over `bs` events.
                    let t0 = (proc_every != 0).then(Instant::now);
                    if let Err(e) = op.process_columnar(0, &mut staging) {
                        record_op_error(op.name(), e, &abort, &first_error, &log);
                        break 'ingest;
                    }
                    if let Some(t0) = t0 {
                        istats.proc_hist.record(t0.elapsed().as_nanos() as u64);
                    }
                    collector.forward_batch(std::mem::replace(
                        &mut staging,
                        ColumnarBatch::with_capacity(bs),
                    ));
                }
            }
            // Chained operators run inline on the source task; their
            // processing latency is attributed to the source node.
            Some(op) => {
                let t = Tuple::from_event_wall(*ev, wall);
                let t0 = (proc_every != 0 && emitted % proc_every == 0).then(Instant::now);
                if let Err(e) = op.process(0, t, &mut collector) {
                    record_op_error(op.name(), e, &abort, &first_error, &log);
                    break 'ingest;
                }
                if let Some(t0) = t0 {
                    istats.proc_hist.record(t0.elapsed().as_nanos() as u64);
                }
            }
            None if columnar => collector.emit_event(*ev, wall),
            None => collector.emit(Tuple::from_event_wall(*ev, wall)),
        }
        emitted += 1;
        if emitted as usize % cfg.watermark_every == 0 {
            // Stage boundary: rows covered by the upcoming watermark must
            // reach the routes' buffers before the watermark is recorded.
            if !staging.is_empty() {
                if let Some(op) = &mut chained {
                    if let Err(e) = op.process_columnar(0, &mut staging) {
                        record_op_error(op.name(), e, &abort, &first_error, &log);
                        break 'ingest;
                    }
                }
                collector.forward_batch(std::mem::replace(
                    &mut staging,
                    ColumnarBatch::with_capacity(bs),
                ));
            }
            let wm = last_ts.saturating_sub(lag);
            match &mut chained {
                Some(op) => match op.on_watermark(wm, &mut collector) {
                    Ok(fwd) => {
                        let fwd = fwd.min(wm);
                        if fwd > forwarded_wm {
                            forwarded_wm = fwd;
                            collector.broadcast_watermark(fwd);
                        }
                    }
                    Err(e) => {
                        record_op_error(op.name(), e, &abort, &first_error, &log);
                        break 'ingest;
                    }
                },
                None => {
                    if wm > forwarded_wm {
                        forwarded_wm = wm;
                        collector.broadcast_watermark(wm);
                    }
                }
            }
            // Punctuation releases the watermark softly (it rides behind
            // full batches); the idle_flush deadline bounds how long an
            // owed watermark or partial batch can sit under sustained load.
            collector.flush();
            if last_flush.elapsed() >= idle_flush {
                collector.flush_hard();
                last_flush = Instant::now();
            }
            istats.set_state(chained.as_ref().map_or(0, |op| op.state_bytes()));
        } else if pace.is_some() && last_flush.elapsed() >= idle_flush {
            collector.flush_hard();
            last_flush = Instant::now();
        }
        if collector.failed {
            break;
        }
    }
    // Drain staged rows through the chain before the final watermark.
    if !staging.is_empty() && !abort.load(Ordering::Relaxed) {
        if let Some(op) = &mut chained {
            match op.process_columnar(0, &mut staging) {
                Ok(()) => collector.forward_batch(staging),
                Err(e) => record_op_error(op.name(), e, &abort, &first_error, &log),
            }
        }
    }
    match &mut chained {
        Some(op) => {
            if last_ts > Timestamp::MIN {
                if let Ok(fwd) = op.on_watermark(last_ts, &mut collector) {
                    let fwd = fwd.min(last_ts);
                    if fwd > forwarded_wm {
                        collector.broadcast_watermark(fwd);
                    }
                }
            }
            if let Err(e) = op.on_finish(&mut collector) {
                record_op_error(op.name(), e, &abort, &first_error, &log);
            }
            istats.set_state(op.state_bytes());
            istats.set_keyed(op.keyed_state());
        }
        None => {
            if last_ts > Timestamp::MIN {
                collector.broadcast_watermark(last_ts);
            }
        }
    }
    if let Some(e) = collector.take_op_error() {
        let name = chained.as_ref().map_or("source", |op| op.name());
        record_op_error(name, e, &abort, &first_error, &log);
    }
    collector.broadcast_end();
    counter.fetch_add(emitted, Ordering::Relaxed);
    istats.records_out.fetch_add(emitted, Ordering::Relaxed);
    istats
        .batches_out
        .fetch_add(collector.messages_sent(), Ordering::Relaxed);
    log.emit(
        Level::Debug,
        std::thread::current().name().unwrap_or("source"),
        format!("end of stream: {emitted} events ingested"),
    );
}

/// Per-(port, channel) watermark table used to merge watermarks.
struct WatermarkTable {
    /// wm[port][chan]
    wm: Vec<Vec<Timestamp>>,
    ended: Vec<Vec<bool>>,
    live: usize,
}

impl WatermarkTable {
    fn new(layout: &[(usize, usize, bool)]) -> Self {
        let mut wm = Vec::new();
        let mut ended = Vec::new();
        let mut live = 0;
        for (_port, chans, _exempt) in layout {
            wm.push(vec![Timestamp::MIN; *chans]);
            ended.push(vec![false; *chans]);
            live += *chans;
        }
        WatermarkTable { wm, ended, live }
    }

    fn update(&mut self, port: usize, chan: usize, ts: Timestamp) {
        // Punctuated watermarks are strictly increasing per sender, and
        // each (port, chan) cell has exactly one sender instance — so a
        // regression or a post-End watermark means a runtime bug upstream.
        #[cfg(feature = "invariant-checks")]
        {
            assert!(
                !self.ended[port][chan],
                "invariant violation: watermark {ts:?} on (port {port}, chan {chan}) after End"
            );
            assert!(
                ts >= self.wm[port][chan],
                "invariant violation: watermark regressed on (port {port}, chan {chan}): {ts:?} < {:?}",
                self.wm[port][chan]
            );
        }
        let cell = &mut self.wm[port][chan];
        if ts > *cell {
            *cell = ts;
        }
    }

    fn end(&mut self, port: usize, chan: usize) {
        if !self.ended[port][chan] {
            self.ended[port][chan] = true;
            self.wm[port][chan] = Timestamp::MAX;
            self.live -= 1;
        }
    }

    fn all_ended(&self) -> bool {
        self.live == 0
    }

    /// Last watermark seen on one specific input channel (used for the
    /// deterministic per-channel late-drop decision).
    fn channel_wm(&self, port: usize, chan: usize) -> Timestamp {
        self.wm[port][chan]
    }

    fn min(&self) -> Timestamp {
        self.wm
            .iter()
            .flat_map(|v| v.iter())
            .copied()
            .min()
            .unwrap_or(Timestamp::MAX)
    }
}

/// Receiver-side shard-migration state of one sharded-node instance.
///
/// Tracks the in-flight migration's cut-over markers across input
/// channels, stashes post-marker tuples for a slot migrating *to* this
/// instance, parks an early-arriving handoff, and defers End-driven clock
/// promotions while a migration is tracked (see [`shard`] module docs for
/// why the deferral keeps the extract/absorb clocks identical).
struct ShardCtx {
    plan: Arc<shard::ShardPlan>,
    /// This instance's shard index.
    me: usize,
    /// Sibling instances' inboxes, for sending the handoff payload.
    siblings: Vec<Sender<Envelope>>,
    /// The migration being tracked, with the input channels whose marker
    /// (or End) is still outstanding.
    pending: Option<PendingMigration>,
    /// Post-marker tuples for the inbound slot, in arrival order (their
    /// late-drop verdicts were already decided at arrival).
    stash: Vec<(usize, Tuple)>,
    /// Handoff that arrived before this instance's markers completed.
    parked: Option<Box<shard::HandoffPayload>>,
    /// `End`s received while tracking; their watermark-table promotion is
    /// applied when the migration resolves, so the merged clock at
    /// extract/absorb is the same pure function of pre-marker watermarks
    /// on every instance.
    deferred_ends: Vec<(usize, usize)>,
}

struct PendingMigration {
    mig: shard::Migration,
    need: std::collections::HashSet<(usize, usize)>,
}

impl ShardCtx {
    fn new(plan: Arc<shard::ShardPlan>, me: usize, siblings: Vec<Sender<Envelope>>) -> Self {
        ShardCtx {
            plan,
            me,
            siblings,
            pending: None,
            stash: Vec::new(),
            parked: None,
            deferred_ends: Vec::new(),
        }
    }

    /// Start tracking migration `version` at its first evidence (marker or
    /// handoff). The need-set is every input channel still live — each
    /// must deliver the marker (or its `End`) before the migration can
    /// act on this instance.
    fn begin_tracking(&mut self, version: u64, table: &WatermarkTable) {
        if self.pending.is_some() || version <= self.plan.completed() {
            return;
        }
        let Some(mig) = self.plan.migration() else {
            return;
        };
        if mig.version != version {
            return;
        }
        let mut need = std::collections::HashSet::new();
        for (port, chans) in table.ended.iter().enumerate() {
            for (chan, ended) in chans.iter().enumerate() {
                if !ended {
                    need.insert((port, chan));
                }
            }
        }
        self.pending = Some(PendingMigration { mig, need });
    }

    /// A marker (version `Some`) or `End` (version `None`) arrived on
    /// (port, chan): the channel can contribute nothing more to the
    /// pre-cut-over prefix.
    fn note_channel(&mut self, version: Option<u64>, port: usize, chan: usize) {
        if let Some(p) = &mut self.pending {
            if version.map_or(true, |v| v == p.mig.version) {
                p.need.remove(&(port, chan));
            }
        }
    }

    fn markers_complete(&self) -> bool {
        self.pending.as_ref().is_some_and(|p| p.need.is_empty())
    }

    /// Whether a post-cut-over tuple with this key belongs to a slot still
    /// in flight *to* this instance (stash until the handoff is absorbed).
    fn should_stash(&self, key: u64) -> bool {
        self.pending
            .as_ref()
            .is_some_and(|p| p.mig.to == self.me && shard::slot_of(key) == p.mig.slot)
    }
}

/// Blocking send of a shard handoff to a sibling instance's inbox, with
/// the same abort-aware backpressure loop as [`Route::send`].
fn send_handoff(tx: &Sender<Envelope>, mut env: Envelope, abort: &AtomicBool) -> Result<(), ()> {
    loop {
        match tx.send_timeout(env, StdDuration::from_millis(20)) {
            Ok(()) => return Ok(()),
            Err(crossbeam::channel::SendTimeoutError::Timeout(e)) => {
                if abort.load(Ordering::Relaxed) {
                    return Err(());
                }
                env = e;
            }
            Err(crossbeam::channel::SendTimeoutError::Disconnected(_)) => return Err(()),
        }
    }
}

/// Drive the tracked migration forward after a marker/`End`/handoff event.
///
/// When this instance's markers are complete: the migration *source*
/// extracts the slot's operator state and sends it to the target's inbox;
/// the *target* absorbs a parked handoff (or keeps waiting for it),
/// replays its stash in arrival order, and acknowledges completion;
/// bystanders just stop tracking. On resolution the deferred `End`s are
/// promoted and the operator fires at the recomputed merged clock.
#[allow(clippy::too_many_arguments)]
fn shard_progress(
    ctx: &mut ShardCtx,
    op: &mut dyn Operator,
    table: &mut WatermarkTable,
    collector: &mut ChannelCollector,
    current_wm: &mut Timestamp,
    forwarded: &mut Timestamp,
    istats: &InstanceStats,
    max_ts: Timestamp,
    abort: &AtomicBool,
    first_error: &Mutex<Option<PipelineError>>,
    log: &EventLog,
) -> Step {
    if !ctx.markers_complete() {
        return Step::Continue;
    }
    let Some(p) = ctx.pending.take() else {
        return Step::Continue;
    };
    let mig = p.mig;
    if mig.from == ctx.me {
        let slot = mig.slot;
        let Some(state) = op.extract_shard(&move |key| shard::slot_of(key) == slot) else {
            // Unreachable when `set_migratable` gating is correct: the
            // rebalancer only migrates operators that declared support.
            let e = OpError::Failed {
                operator: op.name().to_string(),
                reason: "operator was migrated but does not implement extract_shard".to_string(),
            };
            record_op_error(op.name(), e, abort, first_error, log);
            return Step::Error;
        };
        let payload = Box::new(shard::HandoffPayload {
            version: mig.version,
            slot,
            state,
        });
        let env = Envelope {
            port: 0,
            chan: 0,
            msg: Message::ShardHandoff(payload),
        };
        if send_handoff(&ctx.siblings[mig.to], env, abort).is_err() {
            return Step::Error;
        }
        log.emit(
            Level::Debug,
            std::thread::current().name().unwrap_or("operator"),
            format!("handed slot {} off to shard {}", mig.slot, mig.to),
        );
    } else if mig.to == ctx.me {
        let Some(h) = ctx.parked.take() else {
            // Markers are complete but the state is still in flight: keep
            // draining (and keep deferring Ends) until it arrives.
            ctx.pending = Some(p);
            return Step::Continue;
        };
        debug_assert_eq!(h.version, mig.version, "handoff/migration version mismatch");
        debug_assert_eq!(h.slot, mig.slot, "handoff/migration slot mismatch");
        if let Err(e) = op.absorb_shard(h.state) {
            record_op_error(op.name(), e, abort, first_error, log);
            return Step::Error;
        }
        let stash = std::mem::take(&mut ctx.stash);
        for (port, t) in stash {
            if let Err(e) = op.process(port, t, collector) {
                record_op_error(op.name(), e, abort, first_error, log);
                return Step::Error;
            }
        }
        ctx.plan.complete(mig.version);
        log.emit(
            Level::Debug,
            std::thread::current().name().unwrap_or("operator"),
            format!("absorbed slot {} from shard {}", mig.slot, mig.from),
        );
    }
    // Resolution (all roles): promote the Ends deferred during tracking,
    // then fire at whatever the merged clock becomes.
    for (port, chan) in ctx.deferred_ends.drain(..) {
        table.end(port, chan);
    }
    let m = table.min();
    if !table.all_ended() && m > *current_wm && m < Timestamp::MAX {
        *current_wm = m;
        istats.note_watermark_lag(max_ts, m);
        match op.on_watermark(m, collector) {
            Ok(f) => {
                let f = f.min(m);
                if f > *forwarded {
                    *forwarded = f;
                    collector.broadcast_watermark(f);
                }
            }
            Err(e) => {
                record_op_error(op.name(), e, abort, first_error, log);
                return Step::Error;
            }
        }
    }
    if table.all_ended() {
        if let Err(e) = op.on_finish(collector) {
            record_op_error(op.name(), e, abort, first_error, log);
        }
        return Step::Finished;
    }
    Step::Continue
}

fn record_op_error(
    name: &str,
    e: OpError,
    abort: &AtomicBool,
    first_error: &Mutex<Option<PipelineError>>,
    log: &EventLog,
) {
    log.emit(Level::Error, name, format!("operator error: {e}"));
    abort.store(true, Ordering::Relaxed);
    // An operator that declared columnar support but rejected its payload
    // is a contract violation, not a data error: surface it as diagnostic
    // G016 so it reads like the other plan/config defects.
    let err = match e {
        OpError::ColumnarUnsupported { .. } => {
            PipelineError::Validation(vec![crate::validate::Diagnostic::error(
                crate::validate::Code::ColumnarPayloadMismatch,
                None,
                format!("{e}"),
            )])
        }
        e => PipelineError::Operator(e),
    };
    first_error.lock().get_or_insert(err);
}

/// Outcome of handling one envelope in an instance harness.
enum Step {
    /// Keep draining the inbox.
    Continue,
    /// Every input channel ended and `on_finish` ran — exit cleanly.
    Finished,
    /// The operator errored (already recorded) — abort the run.
    Error,
}

#[allow(clippy::too_many_arguments)]
fn run_operator(
    mut op: Box<dyn Operator>,
    rx: Receiver<Envelope>,
    layout: Vec<(usize, usize, bool)>,
    mut collector: ChannelCollector,
    istats: Arc<InstanceStats>,
    abort: Arc<AtomicBool>,
    first_error: Arc<Mutex<Option<PipelineError>>>,
    drop_late: bool,
    idle_flush: StdDuration,
    proc_every: u64,
    shard: Option<ShardCtx>,
    log: Arc<EventLog>,
) {
    let mut shard = shard;
    let mut table = WatermarkTable::new(&layout);
    let mut current_wm = Timestamp::MIN;
    let mut forwarded = Timestamp::MIN;
    let mut records_in: u64 = 0;
    let mut late: u64 = 0;
    // Newest event timestamp this instance has seen; the distance to the
    // merged watermark is the watermark-lag gauge.
    let mut max_ts = Timestamp::MIN;
    // Handle one envelope; tuple batches are processed back-to-back
    // without touching the channel again.
    let mut handle = |env: Envelope, collector: &mut ChannelCollector| -> Step {
        // A shared fan-out batch becomes an owned columnar batch at the
        // operator boundary: free when this consumer holds the last
        // reference, one clone while sibling consumers still read it.
        let env = match env {
            Envelope {
                port,
                chan,
                msg: Message::Shared(b),
            } => Envelope {
                port,
                chan,
                msg: Message::Columnar(Arc::try_unwrap(b).unwrap_or_else(|b| (*b).clone())),
            },
            env => env,
        };
        let port = env.port as usize;
        // Late tuples are judged against the *arriving channel's* watermark,
        // not the merged minimum: the merged clock's momentary value depends
        // on cross-channel thread interleaving at unions/joins, while the
        // per-channel clock is a pure function of that channel's contents —
        // so which tuples drop is run-to-run deterministic. The channel
        // watermark is ≥ the merged watermark, so everything the merged
        // clock would have dropped still drops, and survivors still satisfy
        // the emission-floor contract (they are ≥ channel wm ≥ merged wm).
        let wm_now = table.channel_wm(port, env.chan as usize);
        let one_tuple = |t: Tuple,
                         op: &mut dyn Operator,
                         collector: &mut ChannelCollector,
                         shard: &mut Option<ShardCtx>,
                         records_in: &mut u64,
                         late: &mut u64,
                         max_ts: &mut Timestamp|
         -> Step {
            *records_in += 1;
            if t.ts > *max_ts {
                *max_ts = t.ts;
            }
            if drop_late && t.ts < wm_now {
                *late += 1;
                return Step::Continue;
            }
            // A post-cut-over tuple for a slot whose state is still in
            // flight to this instance: hold it (in arrival order) until
            // the handoff is absorbed. The late-drop verdict above was
            // final — stashed tuples are replayed without re-judging.
            if let Some(ctx) = shard.as_mut() {
                if ctx.should_stash(t.key) {
                    ctx.stash.push((port, t));
                    return Step::Continue;
                }
            }
            // Strided processing-latency sampling: every `proc_every`-th
            // tuple pays two clock reads; the rest pay nothing.
            let t0 = (proc_every != 0 && *records_in % proc_every == 0).then(Instant::now);
            if let Err(e) = op.process(port, t, collector) {
                record_op_error(op.name(), e, &abort, &first_error, &log);
                return Step::Error;
            }
            if let Some(t0) = t0 {
                istats.proc_hist.record(t0.elapsed().as_nanos() as u64);
            }
            if *records_in % 64 == 0 {
                istats.set_state(op.state_bytes());
            }
            Step::Continue
        };
        match env.msg {
            Message::Tuple(t) => {
                return one_tuple(
                    t,
                    &mut *op,
                    collector,
                    &mut shard,
                    &mut records_in,
                    &mut late,
                    &mut max_ts,
                );
            }
            Message::Batch(ts) => {
                for t in ts {
                    if let Step::Error = one_tuple(
                        t,
                        &mut *op,
                        collector,
                        &mut shard,
                        &mut records_in,
                        &mut late,
                        &mut max_ts,
                    ) {
                        return Step::Error;
                    }
                }
            }
            Message::Columnar(mut b) => {
                debug_assert!(b.is_dense(), "wire batches are dense");
                if op.batch_support() == BatchSupport::Columnar {
                    // Vectorized path: account, late-drop, and process the
                    // whole batch without materializing a row.
                    records_in += b.len() as u64;
                    if let Some(m) = b.max_ts() {
                        if m > max_ts {
                            max_ts = m;
                        }
                    }
                    if drop_late {
                        late += b.drop_late(wm_now);
                    }
                    if b.selected_len() > 0 {
                        // One strided observation per batch call; the two
                        // clock reads amortize over the batch.
                        let t0 = (proc_every != 0).then(Instant::now);
                        if let Err(e) = op.process_columnar(port, &mut b) {
                            record_op_error(op.name(), e, &abort, &first_error, &log);
                            return Step::Error;
                        }
                        if let Some(t0) = t0 {
                            istats.proc_hist.record(t0.elapsed().as_nanos() as u64);
                        }
                        collector.forward_batch(b);
                    }
                    istats.set_state(op.state_bytes());
                } else {
                    // Row shim: materialize each row at the input boundary
                    // of a row-only (stateful) operator.
                    for i in 0..b.len() {
                        if let Step::Error = one_tuple(
                            b.tuple_at(i),
                            &mut *op,
                            collector,
                            &mut shard,
                            &mut records_in,
                            &mut late,
                            &mut max_ts,
                        ) {
                            return Step::Error;
                        }
                    }
                }
            }
            // Rewritten to `Columnar` at the top of `handle`.
            Message::Shared(_) => unreachable!("shared batches are unwrapped on entry"),
            Message::Watermark(ts) => {
                table.update(env.port as usize, env.chan as usize, ts);
                let m = table.min();
                if m > current_wm {
                    current_wm = m;
                    istats.note_watermark_lag(max_ts, m);
                    match op.on_watermark(m, collector) {
                        Ok(f) => {
                            let f = f.min(m);
                            if f > forwarded {
                                forwarded = f;
                                collector.broadcast_watermark(f);
                            }
                        }
                        Err(e) => {
                            record_op_error(op.name(), e, &abort, &first_error, &log);
                            return Step::Error;
                        }
                    }
                    istats.set_state(op.state_bytes());
                }
            }
            Message::ShardMarker { version } => {
                if let Some(ctx) = shard.as_mut() {
                    ctx.begin_tracking(version, &table);
                    ctx.note_channel(Some(version), port, env.chan as usize);
                    return shard_progress(
                        ctx,
                        &mut *op,
                        &mut table,
                        collector,
                        &mut current_wm,
                        &mut forwarded,
                        &istats,
                        max_ts,
                        &abort,
                        &first_error,
                        &log,
                    );
                }
                debug_assert!(false, "shard marker delivered to an unsharded node");
            }
            Message::ShardHandoff(payload) => {
                if let Some(ctx) = shard.as_mut() {
                    ctx.begin_tracking(payload.version, &table);
                    ctx.parked = Some(payload);
                    return shard_progress(
                        ctx,
                        &mut *op,
                        &mut table,
                        collector,
                        &mut current_wm,
                        &mut forwarded,
                        &istats,
                        max_ts,
                        &abort,
                        &first_error,
                        &log,
                    );
                }
                debug_assert!(false, "shard handoff delivered to an unsharded node");
            }
            Message::End => {
                if let Some(ctx) = shard.as_mut() {
                    if ctx.pending.is_some() {
                        // Defer the clock promotion while a migration is
                        // tracked (it still satisfies an outstanding
                        // marker); the table is promoted at resolution so
                        // the extract/absorb clocks stay aligned.
                        ctx.deferred_ends.push((port, env.chan as usize));
                        ctx.note_channel(None, port, env.chan as usize);
                        return shard_progress(
                            ctx,
                            &mut *op,
                            &mut table,
                            collector,
                            &mut current_wm,
                            &mut forwarded,
                            &istats,
                            max_ts,
                            &abort,
                            &first_error,
                            &log,
                        );
                    }
                }
                table.end(env.port as usize, env.chan as usize);
                // An ended channel no longer holds the clock back.
                let m = table.min();
                if !table.all_ended() && m > current_wm && m < Timestamp::MAX {
                    current_wm = m;
                    istats.note_watermark_lag(max_ts, m);
                    match op.on_watermark(m, collector) {
                        Ok(f) => {
                            let f = f.min(m);
                            if f > forwarded {
                                forwarded = f;
                                collector.broadcast_watermark(f);
                            }
                        }
                        Err(e) => {
                            record_op_error(op.name(), e, &abort, &first_error, &log);
                            return Step::Error;
                        }
                    }
                }
                if table.all_ended() {
                    if let Err(e) = op.on_finish(collector) {
                        record_op_error(op.name(), e, &abort, &first_error, &log);
                    }
                    return Step::Finished;
                }
            }
        }
        Step::Continue
    };
    let mut last_hard = Instant::now();
    loop {
        if abort.load(Ordering::Relaxed) {
            break;
        }
        let env = match rx.recv_timeout(idle_flush) {
            Ok(env) => env,
            Err(RecvTimeoutError::Timeout) => {
                // Idle: release any partial batches + pending/owed
                // watermarks so low-rate streams keep low latency.
                collector.flush_hard();
                last_hard = Instant::now();
                if collector.failed {
                    break;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => break,
        };
        let mut step = handle(env, &mut collector);
        // Drain whatever else is already queued (bounded, so a coalesced
        // watermark is never deferred for long under sustained load), then
        // flush once for the whole round.
        let mut drained = 1usize;
        while matches!(step, Step::Continue) && drained < DRAIN_LIMIT {
            match rx.try_recv() {
                Ok(env) => {
                    drained += 1;
                    step = handle(env, &mut collector);
                }
                Err(_) => break,
            }
        }
        // Soft flush per round keeps watermarks moving on empty channels;
        // the idle_flush deadline bounds owed watermarks and partial
        // batches when the task is busy but its output trickles.
        collector.flush();
        if last_hard.elapsed() >= idle_flush {
            collector.flush_hard();
            last_hard = Instant::now();
        }
        // One inbox-depth observation per scheduling round (up to
        // DRAIN_LIMIT envelopes), so the gauge costs one channel-lock
        // acquisition per round, not per message.
        istats.note_queue_depth(rx.len());
        if !matches!(step, Step::Continue) || collector.failed {
            break;
        }
    }
    if let Some(e) = collector.take_op_error() {
        record_op_error(op.name(), e, &abort, &first_error, &log);
    }
    collector.broadcast_end();
    istats.note_queue_depth(rx.len());
    istats.records_in.fetch_add(records_in, Ordering::Relaxed);
    istats.late_dropped.fetch_add(late, Ordering::Relaxed);
    istats
        .records_out
        .fetch_add(collector.out_count, Ordering::Relaxed);
    istats
        .batches_out
        .fetch_add(collector.messages_sent(), Ordering::Relaxed);
    istats.set_state(op.state_bytes());
    istats.set_keyed(op.keyed_state());
    log.emit(
        Level::Debug,
        std::thread::current().name().unwrap_or("operator"),
        format!(
            "finished: {records_in} in, {} out, {late} late-dropped",
            collector.out_count
        ),
    );
}

fn run_sink(
    shared: Arc<SinkShared>,
    rx: Receiver<Envelope>,
    layout: Vec<(usize, usize, bool)>,
    istats: Arc<InstanceStats>,
    abort: Arc<AtomicBool>,
    epoch: Instant,
) {
    let mut table = WatermarkTable::new(&layout);
    let mut sink_wm = Timestamp::MIN;
    let mut n: u64 = 0;
    let sink_one = |t: Tuple, n: &mut u64, sink_wm: Timestamp, enforce_floor: bool| {
        *n += 1;
        // Sink-side event-time monotonicity: a tuple behind the merged
        // watermark means some upstream task emitted late data the
        // watermark protocol had already sealed off. Ports fed straight
        // by a source task are exempt (`enforce_floor == false`): sources
        // — including chains fused into them — legitimately emit behind
        // their own watermark when `watermark_lag` under-estimates
        // disorder, and only the next *operator* task applies
        // `drop_late`; a sink wired directly after one has no such
        // shield by design.
        #[cfg(feature = "invariant-checks")]
        assert!(
            !enforce_floor || t.ts >= sink_wm,
            "invariant violation: sink received tuple at {:?} behind merged watermark {sink_wm:?}",
            t.ts
        );
        #[cfg(not(feature = "invariant-checks"))]
        let _ = (sink_wm, enforce_floor);
        shared.count.fetch_add(1, Ordering::Relaxed);
        if t.wall > 0 && *n % shared.stride as u64 == 0 {
            let now = epoch.elapsed().as_nanos() as u64;
            shared.latencies_ns.lock().push(now.saturating_sub(t.wall));
        }
        if shared.mode == SinkMode::Collect {
            shared.tuples.lock().push(t);
        }
    };
    // Column-path delivery: one atomic add per batch; rows are
    // materialized only in Collect mode. Reads the batch by reference so
    // shared fan-out batches are consumed without a clone.
    let sink_batch = |b: &ColumnarBatch, n: &mut u64, sink_wm: Timestamp, enforce_floor: bool| {
        #[cfg(not(feature = "invariant-checks"))]
        let _ = (sink_wm, enforce_floor);
        shared.count.fetch_add(b.len() as u64, Ordering::Relaxed);
        for i in 0..b.len() {
            *n += 1;
            #[cfg(feature = "invariant-checks")]
            assert!(
                !enforce_floor || b.ts[i] >= sink_wm,
                "invariant violation: sink received tuple at {:?} behind merged watermark {sink_wm:?}",
                b.ts[i]
            );
            if b.wall[i] > 0 && *n % shared.stride as u64 == 0 {
                let now = epoch.elapsed().as_nanos() as u64;
                shared
                    .latencies_ns
                    .lock()
                    .push(now.saturating_sub(b.wall[i]));
            }
            if shared.mode == SinkMode::Collect {
                shared.tuples.lock().push(b.tuple_at(i));
            }
        }
    };
    let mut rounds: u64 = 0;
    loop {
        if abort.load(Ordering::Relaxed) {
            break;
        }
        let env = match rx.recv_timeout(StdDuration::from_millis(20)) {
            Ok(env) => env,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        // Strided inbox-depth observation: one channel-lock acquisition
        // per 64 envelopes keeps the gauge off the per-message path.
        rounds += 1;
        if rounds % 64 == 0 {
            istats.note_queue_depth(rx.len());
        }
        // The emission-floor contract only binds operator tasks; a port
        // whose upstream is a source task may carry late tuples (see
        // `sink_one`).
        let enforce_floor = !layout[env.port as usize].2;
        match env.msg {
            Message::Tuple(t) => sink_one(t, &mut n, sink_wm, enforce_floor),
            Message::Batch(ts) => {
                for t in ts {
                    sink_one(t, &mut n, sink_wm, enforce_floor);
                }
            }
            Message::Columnar(b) => sink_batch(&b, &mut n, sink_wm, enforce_floor),
            Message::Shared(b) => sink_batch(&b, &mut n, sink_wm, enforce_floor),
            Message::Watermark(ts) => {
                table.update(env.port as usize, env.chan as usize, ts);
                let m = table.min();
                if m > sink_wm {
                    sink_wm = m;
                }
            }
            // Shard protocol traffic never reaches sinks (sinks are not
            // sharded); tolerate it rather than crash a teardown race.
            Message::ShardMarker { .. } | Message::ShardHandoff(_) => {}
            Message::End => {
                table.end(env.port as usize, env.chan as usize);
                if table.all_ended() {
                    break;
                }
            }
        }
    }
    istats.note_queue_depth(rx.len());
    istats.records_in.fetch_add(n, Ordering::Relaxed);
}
