//! The threaded dataflow runtime.
//!
//! Every graph node becomes `parallelism` *instances* ("task slots"), each
//! running on its own OS thread; every edge becomes one bounded channel per
//! destination instance. Bounded channels give genuine backpressure: when a
//! stateful operator cannot keep up, its senders block, the stall cascades
//! to the sources, and measured throughput is the *maximum sustainable
//! throughput* in the sense of Karimov et al. — the paper's primary metric.
//!
//! ## Watermark protocol
//!
//! Sources emit punctuated watermarks (their streams are in ts order).
//! Each instance harness tracks the last watermark per (input port,
//! upstream channel) and advances its operator's event-time clock to the
//! minimum across all channels — so operators downstream of a union or a
//! join see one monotone clock regardless of thread interleaving, which is
//! what makes results run-to-run deterministic (modulo output order).
//! Operator emissions triggered by a watermark are sent *before* the
//! watermark itself is forwarded, preserving the "no late data" invariant
//! down the pipeline.

mod chain;
mod metrics;

pub use crate::graph::SinkMode;
pub use chain::{chain_factories, ChainedOperator};
pub use metrics::{LatencyStats, NodeStats, ResourceSample};

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::error::{OpError, PipelineError};
use crate::graph::{Exchange, GraphBuilder, NodeId, NodeKind, SinkId, SourceConfig};
use crate::operator::{Collector, Operator};
use crate::time::Timestamp;
use crate::tuple::Tuple;

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Per-inbox channel capacity (backpressure buffer).
    pub channel_capacity: usize,
    /// If set, sample aggregate operator state + process CPU at this
    /// interval (drives the Figure 5 resource series).
    pub sample_interval: Option<StdDuration>,
    /// Keep only every `latency_stride`-th latency observation.
    pub latency_stride: usize,
    /// Fuse linear non-repartitioning stretches of the graph into single
    /// tasks (Flink-style operator chaining). On by default; disable to
    /// measure the unfused pipeline.
    pub operator_chaining: bool,
    /// Drop tuples that arrive behind the merged watermark (late data).
    /// With correctly configured source watermark lag nothing is ever
    /// late; this is the Flink-style safety net that keeps event-time
    /// operators from observing time regressions. Dropped tuples are
    /// counted in [`NodeStats::late_dropped`].
    pub drop_late: bool,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            channel_capacity: 1024,
            sample_interval: None,
            latency_stride: 16,
            operator_chaining: true,
            drop_late: true,
        }
    }
}

enum Message {
    Tuple(Tuple),
    Watermark(Timestamp),
    End,
}

struct Envelope {
    port: u16,
    chan: u16,
    msg: Message,
}

/// Deterministic key → instance mapping shared by every hash exchange
/// (co-partitioning guarantee).
#[inline]
pub fn key_partition(key: u64, parallelism: usize) -> usize {
    if parallelism <= 1 {
        return 0;
    }
    let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 17) % parallelism as u64) as usize
}

/// One outgoing edge of one instance.
struct Route {
    exchange: Exchange,
    port: u16,
    chan: u16,
    senders: Vec<Sender<Envelope>>,
    rr: usize,
}

impl Route {
    fn send(&self, idx: usize, msg: Message, abort: &AtomicBool) -> Result<(), ()> {
        let mut env = Envelope {
            port: self.port,
            chan: self.chan,
            msg,
        };
        loop {
            match self.senders[idx].send_timeout(env, StdDuration::from_millis(20)) {
                Ok(()) => return Ok(()),
                Err(crossbeam::channel::SendTimeoutError::Timeout(e)) => {
                    if abort.load(Ordering::Relaxed) {
                        return Err(());
                    }
                    env = e;
                }
                Err(crossbeam::channel::SendTimeoutError::Disconnected(_)) => return Err(()),
            }
        }
    }

    fn send_tuple(&mut self, self_instance: usize, t: Tuple, abort: &AtomicBool) -> Result<(), ()> {
        let idx = match self.exchange {
            Exchange::Forward => self_instance % self.senders.len(),
            Exchange::Hash => key_partition(t.key, self.senders.len()),
            Exchange::Rebalance => {
                self.rr = (self.rr + 1) % self.senders.len();
                self.rr
            }
        };
        self.send(idx, Message::Tuple(t), abort)
    }

    fn broadcast(&self, msg_of: impl Fn() -> Message, abort: &AtomicBool) -> Result<(), ()> {
        for idx in 0..self.senders.len() {
            self.send(idx, msg_of(), abort)?;
        }
        Ok(())
    }
}

/// Routes an operator's emissions to all outgoing edges.
struct ChannelCollector {
    routes: Vec<Route>,
    self_instance: usize,
    abort: Arc<AtomicBool>,
    out_count: u64,
    failed: bool,
    /// The watermark contract floor: the highest watermark this task has
    /// broadcast downstream. Every later emission must carry `ts ≥ floor`.
    #[cfg(feature = "invariant-checks")]
    wm_floor: Timestamp,
    /// Sources are exempt from the emission-floor check: with an
    /// under-estimated `watermark_lag` they legitimately emit late tuples,
    /// and downstream `drop_late` is the documented degradation path.
    #[cfg(feature = "invariant-checks")]
    enforce_emit_floor: bool,
}

impl ChannelCollector {
    fn broadcast_watermark(&mut self, wm: Timestamp) {
        #[cfg(feature = "invariant-checks")]
        {
            assert!(
                wm >= self.wm_floor,
                "invariant violation: task broadcast watermark {wm:?} behind its own previous watermark {:?}",
                self.wm_floor
            );
            self.wm_floor = wm;
        }
        for r in &self.routes {
            if r.broadcast(|| Message::Watermark(wm), &self.abort).is_err() {
                self.failed = true;
            }
        }
    }

    fn broadcast_end(&mut self) {
        for r in &self.routes {
            if r.broadcast(|| Message::End, &self.abort).is_err() {
                self.failed = true;
            }
        }
    }
}

impl Collector for ChannelCollector {
    fn emit(&mut self, tuple: Tuple) {
        // Watermark contract: once a task has told downstream "no tuples
        // below W", it must never emit one (operators hold watermarks back
        // by their window size to guarantee this — see WindowJoinOp).
        #[cfg(feature = "invariant-checks")]
        assert!(
            !self.enforce_emit_floor || tuple.ts >= self.wm_floor,
            "invariant violation: task emitted tuple at {:?} behind its own broadcast watermark {:?}",
            tuple.ts,
            self.wm_floor
        );
        self.out_count += 1;
        let n = self.routes.len();
        if n == 0 {
            return;
        }
        // Clone for all but the last route.
        for i in 0..n - 1 {
            let t = tuple.clone();
            let (inst, abort) = (self.self_instance, self.abort.clone());
            if self.routes[i].send_tuple(inst, t, &abort).is_err() {
                self.failed = true;
            }
        }
        let (inst, abort) = (self.self_instance, self.abort.clone());
        if self.routes[n - 1].send_tuple(inst, tuple, &abort).is_err() {
            self.failed = true;
        }
    }
}

/// Per-instance shared counters the report aggregates.
struct InstanceStats {
    records_in: AtomicU64,
    records_out: AtomicU64,
    late_dropped: AtomicU64,
    state_bytes: AtomicUsize,
    peak_state: AtomicUsize,
}

impl InstanceStats {
    fn new() -> Arc<Self> {
        Arc::new(InstanceStats {
            records_in: AtomicU64::new(0),
            records_out: AtomicU64::new(0),
            late_dropped: AtomicU64::new(0),
            state_bytes: AtomicUsize::new(0),
            peak_state: AtomicUsize::new(0),
        })
    }

    fn set_state(&self, bytes: usize) {
        self.state_bytes.store(bytes, Ordering::Relaxed);
        self.peak_state.fetch_max(bytes, Ordering::Relaxed);
    }
}

struct SinkShared {
    mode: SinkMode,
    tuples: Mutex<Vec<Tuple>>,
    count: AtomicU64,
    latencies_ns: Mutex<Vec<u64>>,
    stride: usize,
}

/// Collected results of one pipeline run.
#[derive(Debug)]
pub struct RunReport {
    /// Wall-clock duration of the whole run.
    pub duration: StdDuration,
    /// Total events emitted by all sources.
    pub source_events: u64,
    /// Per-node statistics in graph order.
    pub nodes: Vec<NodeStats>,
    /// Resource samples (if sampling was enabled).
    pub samples: Vec<ResourceSample>,
    sinks: Vec<SinkResult>,
}

#[derive(Debug)]
struct SinkResult {
    tuples: Vec<Tuple>,
    count: u64,
    latencies_ns: Vec<u64>,
}

impl RunReport {
    /// Tuples collected by a sink (empty in [`SinkMode::CountOnly`]).
    pub fn sink(&self, id: SinkId) -> &[Tuple] {
        &self.sinks[id.0].tuples
    }

    /// Move a sink's tuples out of the report.
    pub fn take_sink(&mut self, id: SinkId) -> Vec<Tuple> {
        std::mem::take(&mut self.sinks[id.0].tuples)
    }

    /// Number of tuples that reached the sink (works in both modes).
    pub fn sink_count(&self, id: SinkId) -> u64 {
        self.sinks[id.0].count
    }

    /// Source-side throughput in events/second — the sustainable-throughput
    /// metric (sources are backpressured by the pipeline).
    pub fn throughput(&self) -> f64 {
        self.source_events as f64 / self.duration.as_secs_f64().max(1e-9)
    }

    /// Detection latency statistics at a sink.
    pub fn latency(&self, id: SinkId) -> LatencyStats {
        LatencyStats::from_ns(&self.sinks[id.0].latencies_ns)
    }

    /// Peak total operator state across the run (max over samples, or max
    /// of per-node peaks when sampling is off).
    pub fn peak_state_bytes(&self) -> usize {
        let from_samples = self
            .samples
            .iter()
            .map(|s| s.state_bytes)
            .max()
            .unwrap_or(0);
        let from_nodes: usize = self.nodes.iter().map(|n| n.peak_state_bytes).sum();
        from_samples.max(from_nodes)
    }
}

/// Executes a [`GraphBuilder`] graph to completion.
pub struct Executor {
    cfg: ExecutorConfig,
}

impl Executor {
    /// An executor with the given runtime knobs.
    pub fn new(cfg: ExecutorConfig) -> Self {
        Executor { cfg }
    }

    /// Run the graph to end-of-stream and aggregate a [`RunReport`].
    ///
    /// The graph is statically validated first ([`crate::validate`]); a
    /// malformed graph is refused with [`PipelineError::Validation`] listing
    /// every defect before any thread is spawned.
    pub fn run(&self, graph: GraphBuilder) -> Result<RunReport, PipelineError> {
        crate::validate::validate(&graph).map_err(PipelineError::Validation)?;
        let graph = if self.cfg.operator_chaining {
            chain::fuse_chains(graph)
        } else {
            graph
        };
        let n_nodes = graph.nodes.len();
        let abort = Arc::new(AtomicBool::new(false));
        let first_error: Arc<Mutex<Option<PipelineError>>> = Arc::new(Mutex::new(None));
        let epoch = Instant::now();

        // Inboxes: one bounded channel per instance.
        let mut inbox_tx: Vec<Vec<Sender<Envelope>>> = Vec::with_capacity(n_nodes);
        let mut inbox_rx: Vec<Vec<Option<Receiver<Envelope>>>> = Vec::with_capacity(n_nodes);
        for node in &graph.nodes {
            let mut txs = Vec::with_capacity(node.parallelism);
            let mut rxs = Vec::with_capacity(node.parallelism);
            for _ in 0..node.parallelism {
                let (tx, rx) = bounded(self.cfg.channel_capacity);
                txs.push(tx);
                rxs.push(Some(rx));
            }
            inbox_tx.push(txs);
            inbox_rx.push(rxs);
        }

        // Routes: per node, the template of its outgoing edges.
        // route_templates[n] = Vec<(dst, port, exchange)>.
        let mut route_templates: Vec<Vec<(NodeId, usize, Exchange)>> = vec![Vec::new(); n_nodes];
        for e in &graph.edges {
            route_templates[e.src.0].push((e.dst, e.port, e.exchange));
        }

        // Input channel layout per node: (port, upstream parallelism).
        let input_layout: Vec<Vec<(usize, usize)>> = (0..n_nodes)
            .map(|i| graph.input_channels(NodeId(i)))
            .collect();

        // Shared stats + sinks.
        let stats: Vec<Vec<Arc<InstanceStats>>> = graph
            .nodes
            .iter()
            .map(|n| (0..n.parallelism).map(|_| InstanceStats::new()).collect())
            .collect();
        let mut sink_shared: Vec<Arc<SinkShared>> = Vec::new();
        for node in &graph.nodes {
            if let NodeKind::Sink(sid) = node.kind {
                sink_shared.push(Arc::new(SinkShared {
                    mode: graph.sink_modes[sid.0],
                    tuples: Mutex::new(Vec::new()),
                    count: AtomicU64::new(0),
                    latencies_ns: Mutex::new(Vec::new()),
                    stride: self.cfg.latency_stride.max(1),
                }));
            }
        }

        let source_events = Arc::new(AtomicU64::new(0));
        let done = Arc::new(AtomicBool::new(false));

        // Sampler thread.
        let sampler_handle = self.cfg.sample_interval.map(|interval| {
            let flat_stats: Vec<Arc<InstanceStats>> = stats.iter().flatten().cloned().collect();
            let done = done.clone();
            std::thread::spawn(move || metrics::sample_loop(interval, flat_stats, done))
        });

        let mut handles = Vec::new();
        let mut graph = graph;
        for (nid, node) in graph.nodes.iter_mut().enumerate() {
            let parallelism = node.parallelism;
            for instance in 0..parallelism {
                // Build this instance's routes.
                let routes: Vec<Route> = route_templates[nid]
                    .iter()
                    .map(|(dst, port, exchange)| Route {
                        exchange: *exchange,
                        port: *port as u16,
                        chan: instance as u16,
                        senders: inbox_tx[dst.0].clone(),
                        rr: instance,
                    })
                    .collect();
                let collector = ChannelCollector {
                    routes,
                    self_instance: instance,
                    abort: abort.clone(),
                    out_count: 0,
                    failed: false,
                    #[cfg(feature = "invariant-checks")]
                    wm_floor: Timestamp::MIN,
                    #[cfg(feature = "invariant-checks")]
                    enforce_emit_floor: !matches!(node.kind, NodeKind::Source { .. }),
                };
                let istats = stats[nid][instance].clone();
                let abort = abort.clone();
                let first_error = first_error.clone();
                let name = node.name.clone();

                let handle = match &mut node.kind {
                    NodeKind::Source { cfg, chain } => {
                        let cfg = cfg.clone();
                        let chained: Option<Box<dyn Operator>> = if chain.is_empty() {
                            None
                        } else {
                            Some(Box::new(chain::ChainedOperator::new(
                                chain.iter().map(|f| f(instance)).collect(),
                            )))
                        };
                        let counter = source_events.clone();
                        let first_error = first_error.clone();
                        std::thread::Builder::new()
                            .name(format!("{name}#{instance}"))
                            .spawn(move || {
                                run_source(
                                    cfg,
                                    chained,
                                    instance,
                                    parallelism,
                                    collector,
                                    counter,
                                    istats,
                                    abort,
                                    first_error,
                                    epoch,
                                )
                            })
                            .expect("spawn source")
                    }
                    NodeKind::Operator(factory) => {
                        let op = factory(instance);
                        let rx = inbox_rx[nid][instance].take().expect("rx unused");
                        let layout = input_layout[nid].clone();
                        let drop_late = self.cfg.drop_late;
                        std::thread::Builder::new()
                            .name(format!("{name}#{instance}"))
                            .spawn(move || {
                                run_operator(
                                    op,
                                    rx,
                                    layout,
                                    collector,
                                    istats,
                                    abort,
                                    first_error,
                                    drop_late,
                                )
                            })
                            .expect("spawn operator")
                    }
                    NodeKind::Sink(sid) => {
                        let shared = sink_shared[sid.0].clone();
                        let rx = inbox_rx[nid][instance].take().expect("rx unused");
                        let layout = input_layout[nid].clone();
                        std::thread::Builder::new()
                            .name(format!("{name}#{instance}"))
                            .spawn(move || run_sink(shared, rx, layout, istats, abort, epoch))
                            .expect("spawn sink")
                    }
                };
                handles.push(handle);
            }
        }

        // Drop our copies of the senders so disconnects propagate.
        drop(inbox_tx);

        let mut panic_msg = None;
        for h in handles {
            if let Err(p) = h.join() {
                abort.store(true, Ordering::Relaxed);
                let msg = p
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| p.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".to_string());
                panic_msg.get_or_insert(msg);
            }
        }
        done.store(true, Ordering::Relaxed);
        let samples = sampler_handle
            .map(|h| h.join().unwrap_or_default())
            .unwrap_or_default();
        let duration = epoch.elapsed();

        if let Some(err) = first_error.lock().take() {
            return Err(err);
        }
        if let Some(msg) = panic_msg {
            return Err(PipelineError::WorkerPanic(msg));
        }

        // Aggregate per-node stats.
        let nodes = graph
            .nodes
            .iter()
            .enumerate()
            .map(|(nid, node)| NodeStats {
                name: node.name.clone(),
                parallelism: node.parallelism,
                records_in: stats[nid]
                    .iter()
                    .map(|s| s.records_in.load(Ordering::Relaxed))
                    .sum(),
                records_out: stats[nid]
                    .iter()
                    .map(|s| s.records_out.load(Ordering::Relaxed))
                    .sum(),
                late_dropped: stats[nid]
                    .iter()
                    .map(|s| s.late_dropped.load(Ordering::Relaxed))
                    .sum(),
                peak_state_bytes: stats[nid]
                    .iter()
                    .map(|s| s.peak_state.load(Ordering::Relaxed))
                    .sum(),
            })
            .collect();

        let sinks = sink_shared
            .into_iter()
            .map(|s| {
                let count = s.count.load(Ordering::Relaxed);
                let s = Arc::try_unwrap(s).unwrap_or_else(|_| panic!("sink still shared"));
                SinkResult {
                    tuples: s.tuples.into_inner(),
                    count,
                    latencies_ns: s.latencies_ns.into_inner(),
                }
            })
            .collect();

        Ok(RunReport {
            duration,
            source_events: source_events.load(Ordering::Relaxed),
            nodes,
            samples,
            sinks,
        })
    }
}

#[allow(clippy::too_many_arguments)]
fn run_source(
    cfg: SourceConfig,
    mut chained: Option<Box<dyn Operator>>,
    instance: usize,
    parallelism: usize,
    mut collector: ChannelCollector,
    counter: Arc<AtomicU64>,
    istats: Arc<InstanceStats>,
    abort: Arc<AtomicBool>,
    first_error: Arc<Mutex<Option<PipelineError>>>,
    epoch: Instant,
) {
    let mut last_ts = Timestamp::MIN;
    let mut forwarded_wm = Timestamp::MIN;
    let mut emitted: u64 = 0;
    let lag = cfg.watermark_lag;
    let pace = cfg
        .rate
        .map(|r| StdDuration::from_secs_f64(1.0 / r.max(1e-9)));
    let start = Instant::now();
    'ingest: for (i, ev) in cfg.events.iter().enumerate() {
        if parallelism > 1 && i % parallelism != instance {
            continue;
        }
        if abort.load(Ordering::Relaxed) {
            break;
        }
        if let Some(p) = pace {
            let target = start + p.mul_f64(emitted as f64);
            let now = Instant::now();
            if target > now {
                std::thread::sleep(target - now);
            }
        }
        let wall = epoch.elapsed().as_nanos() as u64;
        let t = Tuple::from_event_wall(*ev, wall);
        last_ts = last_ts.max(t.ts);
        match &mut chained {
            // Chained operators run inline on the source task.
            Some(op) => {
                if let Err(e) = op.process(0, t, &mut collector) {
                    record_op_error(op.name(), e, &abort, &first_error);
                    break 'ingest;
                }
            }
            None => collector.emit(t),
        }
        emitted += 1;
        if emitted as usize % cfg.watermark_every == 0 {
            let wm = last_ts.saturating_sub(lag);
            match &mut chained {
                Some(op) => match op.on_watermark(wm, &mut collector) {
                    Ok(fwd) => {
                        let fwd = fwd.min(wm);
                        if fwd > forwarded_wm {
                            forwarded_wm = fwd;
                            collector.broadcast_watermark(fwd);
                        }
                    }
                    Err(e) => {
                        record_op_error(op.name(), e, &abort, &first_error);
                        break 'ingest;
                    }
                },
                None => {
                    if wm > forwarded_wm {
                        forwarded_wm = wm;
                        collector.broadcast_watermark(wm);
                    }
                }
            }
            istats.set_state(chained.as_ref().map_or(0, |op| op.state_bytes()));
        }
        if collector.failed {
            break;
        }
    }
    match &mut chained {
        Some(op) => {
            if last_ts > Timestamp::MIN {
                if let Ok(fwd) = op.on_watermark(last_ts, &mut collector) {
                    let fwd = fwd.min(last_ts);
                    if fwd > forwarded_wm {
                        collector.broadcast_watermark(fwd);
                    }
                }
            }
            if let Err(e) = op.on_finish(&mut collector) {
                record_op_error(op.name(), e, &abort, &first_error);
            }
            istats.set_state(op.state_bytes());
        }
        None => {
            if last_ts > Timestamp::MIN {
                collector.broadcast_watermark(last_ts);
            }
        }
    }
    collector.broadcast_end();
    counter.fetch_add(emitted, Ordering::Relaxed);
    istats.records_out.fetch_add(emitted, Ordering::Relaxed);
}

/// Per-(port, channel) watermark table used to merge watermarks.
struct WatermarkTable {
    /// wm[port][chan]
    wm: Vec<Vec<Timestamp>>,
    ended: Vec<Vec<bool>>,
    live: usize,
}

impl WatermarkTable {
    fn new(layout: &[(usize, usize)]) -> Self {
        let mut wm = Vec::new();
        let mut ended = Vec::new();
        let mut live = 0;
        for (_port, chans) in layout {
            wm.push(vec![Timestamp::MIN; *chans]);
            ended.push(vec![false; *chans]);
            live += *chans;
        }
        WatermarkTable { wm, ended, live }
    }

    fn update(&mut self, port: usize, chan: usize, ts: Timestamp) {
        // Punctuated watermarks are strictly increasing per sender, and
        // each (port, chan) cell has exactly one sender instance — so a
        // regression or a post-End watermark means a runtime bug upstream.
        #[cfg(feature = "invariant-checks")]
        {
            assert!(
                !self.ended[port][chan],
                "invariant violation: watermark {ts:?} on (port {port}, chan {chan}) after End"
            );
            assert!(
                ts >= self.wm[port][chan],
                "invariant violation: watermark regressed on (port {port}, chan {chan}): {ts:?} < {:?}",
                self.wm[port][chan]
            );
        }
        let cell = &mut self.wm[port][chan];
        if ts > *cell {
            *cell = ts;
        }
    }

    fn end(&mut self, port: usize, chan: usize) {
        if !self.ended[port][chan] {
            self.ended[port][chan] = true;
            self.wm[port][chan] = Timestamp::MAX;
            self.live -= 1;
        }
    }

    fn all_ended(&self) -> bool {
        self.live == 0
    }

    fn min(&self) -> Timestamp {
        self.wm
            .iter()
            .flat_map(|v| v.iter())
            .copied()
            .min()
            .unwrap_or(Timestamp::MAX)
    }
}

fn record_op_error(
    name: &str,
    e: OpError,
    abort: &AtomicBool,
    first_error: &Mutex<Option<PipelineError>>,
) {
    let _ = name;
    abort.store(true, Ordering::Relaxed);
    first_error.lock().get_or_insert(PipelineError::Operator(e));
}

#[allow(clippy::too_many_arguments)]
fn run_operator(
    mut op: Box<dyn Operator>,
    rx: Receiver<Envelope>,
    layout: Vec<(usize, usize)>,
    mut collector: ChannelCollector,
    istats: Arc<InstanceStats>,
    abort: Arc<AtomicBool>,
    first_error: Arc<Mutex<Option<PipelineError>>>,
    drop_late: bool,
) {
    let mut table = WatermarkTable::new(&layout);
    let mut current_wm = Timestamp::MIN;
    let mut forwarded = Timestamp::MIN;
    let mut records_in: u64 = 0;
    let mut late: u64 = 0;
    loop {
        if abort.load(Ordering::Relaxed) {
            break;
        }
        let env = match rx.recv_timeout(StdDuration::from_millis(20)) {
            Ok(env) => env,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        match env.msg {
            Message::Tuple(t) => {
                records_in += 1;
                if drop_late && t.ts < current_wm {
                    late += 1;
                    continue;
                }
                if let Err(e) = op.process(env.port as usize, t, &mut collector) {
                    record_op_error(op.name(), e, &abort, &first_error);
                    break;
                }
                if records_in % 64 == 0 {
                    istats.set_state(op.state_bytes());
                }
            }
            Message::Watermark(ts) => {
                table.update(env.port as usize, env.chan as usize, ts);
                let m = table.min();
                if m > current_wm {
                    current_wm = m;
                    match op.on_watermark(m, &mut collector) {
                        Ok(f) => {
                            let f = f.min(m);
                            if f > forwarded {
                                forwarded = f;
                                collector.broadcast_watermark(f);
                            }
                        }
                        Err(e) => {
                            record_op_error(op.name(), e, &abort, &first_error);
                            break;
                        }
                    }
                    istats.set_state(op.state_bytes());
                }
            }
            Message::End => {
                table.end(env.port as usize, env.chan as usize);
                // An ended channel no longer holds the clock back.
                let m = table.min();
                if !table.all_ended() && m > current_wm && m < Timestamp::MAX {
                    current_wm = m;
                    match op.on_watermark(m, &mut collector) {
                        Ok(f) => {
                            let f = f.min(m);
                            if f > forwarded {
                                forwarded = f;
                                collector.broadcast_watermark(f);
                            }
                        }
                        Err(e) => {
                            record_op_error(op.name(), e, &abort, &first_error);
                            break;
                        }
                    }
                }
                if table.all_ended() {
                    if let Err(e) = op.on_finish(&mut collector) {
                        record_op_error(op.name(), e, &abort, &first_error);
                    }
                    break;
                }
            }
        }
        if collector.failed {
            break;
        }
    }
    collector.broadcast_end();
    istats.records_in.fetch_add(records_in, Ordering::Relaxed);
    istats.late_dropped.fetch_add(late, Ordering::Relaxed);
    istats
        .records_out
        .fetch_add(collector.out_count, Ordering::Relaxed);
    istats.set_state(op.state_bytes());
}

fn run_sink(
    shared: Arc<SinkShared>,
    rx: Receiver<Envelope>,
    layout: Vec<(usize, usize)>,
    istats: Arc<InstanceStats>,
    abort: Arc<AtomicBool>,
    epoch: Instant,
) {
    let mut table = WatermarkTable::new(&layout);
    #[cfg(feature = "invariant-checks")]
    let mut sink_wm = Timestamp::MIN;
    let mut n: u64 = 0;
    loop {
        if abort.load(Ordering::Relaxed) {
            break;
        }
        let env = match rx.recv_timeout(StdDuration::from_millis(20)) {
            Ok(env) => env,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        match env.msg {
            Message::Tuple(t) => {
                n += 1;
                // Sink-side event-time monotonicity: a tuple behind the
                // merged watermark means some upstream task emitted late
                // data the watermark protocol had already sealed off.
                #[cfg(feature = "invariant-checks")]
                assert!(
                    t.ts >= sink_wm,
                    "invariant violation: sink received tuple at {:?} behind merged watermark {sink_wm:?}",
                    t.ts
                );
                shared.count.fetch_add(1, Ordering::Relaxed);
                if t.wall > 0 && n % shared.stride as u64 == 0 {
                    let now = epoch.elapsed().as_nanos() as u64;
                    shared.latencies_ns.lock().push(now.saturating_sub(t.wall));
                }
                if shared.mode == SinkMode::Collect {
                    shared.tuples.lock().push(t);
                }
            }
            #[cfg(feature = "invariant-checks")]
            Message::Watermark(ts) => {
                table.update(env.port as usize, env.chan as usize, ts);
                let m = table.min();
                if m > sink_wm {
                    sink_wm = m;
                }
            }
            #[cfg(not(feature = "invariant-checks"))]
            Message::Watermark(_) => {}
            Message::End => {
                table.end(env.port as usize, env.chan as usize);
                if table.all_ended() {
                    break;
                }
            }
        }
    }
    istats.records_in.fetch_add(n, Ordering::Relaxed);
}
