//! The threaded dataflow runtime.
//!
//! Every graph node becomes `parallelism` *instances* ("task slots"), each
//! running on its own OS thread; every edge becomes one bounded channel per
//! destination instance. Bounded channels give genuine backpressure: when a
//! stateful operator cannot keep up, its senders block, the stall cascades
//! to the sources, and measured throughput is the *maximum sustainable
//! throughput* in the sense of Karimov et al. — the paper's primary metric.
//!
//! ## Watermark protocol
//!
//! Sources emit punctuated watermarks (their streams are in ts order).
//! Each instance harness tracks the last watermark per (input port,
//! upstream channel) and advances its operator's event-time clock to the
//! minimum across all channels — so operators downstream of a union or a
//! join see one monotone clock regardless of thread interleaving, which is
//! what makes results run-to-run deterministic (modulo output order).
//! Operator emissions triggered by a watermark are sent *before* the
//! watermark itself is forwarded, preserving the "no late data" invariant
//! down the pipeline.
//!
//! Watermarks are released by a *soft flush*: destinations whose batch
//! buffer is empty receive the watermark immediately, while a destination
//! with a partially filled buffer has the watermark recorded as *owed* and
//! delivered right after that buffer's next batch send. Deferring a
//! watermark is always safe (it is a lower-bound promise), and the deferral
//! keeps punctuation from truncating per-destination micro-batches — under
//! hash fan-out, batches stay near `batch_size` instead of being sliced at
//! every punctuation. A *hard flush* (idle timeout, end of stream, or the
//! `idle_flush` deadline under sustained load) sends every partial buffer
//! and settles all owed watermarks, bounding how long either can sit.
//!
//! ## Data planes
//!
//! With [`ExecutorConfig::columnar`] (the default), tuple data travels as
//! struct-of-arrays [`ColumnarBatch`]es: sources push events straight into
//! typed columns (no per-event heap allocation), operators declaring
//! [`BatchSupport::Columnar`] are driven batch-at-a-time through
//! [`Operator::process_columnar`], and row-format [`Tuple`]s are
//! materialized only at the input boundary of row-only (stateful)
//! operators and collecting sinks. Batches on the wire are always dense —
//! selection vectors produced by vectorized filters are compacted at route
//! flush.

mod chain;
mod metrics;

pub use crate::graph::SinkMode;
pub use crate::obs::{BoundViolation, EventLog, Level, LogEvent, StaticBounds};
pub use chain::{chain_factories, ChainedOperator};
pub use metrics::{LatencyStats, NodeStats, ResourceSample};

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use serde::{Serialize, Value};

use crate::columnar::ColumnarBatch;
use crate::error::{OpError, PipelineError};
use crate::event::Event;
use crate::graph::{Exchange, GraphBuilder, NodeId, NodeKind, SinkId, SourceConfig};
use crate::obs::LatencyHistogram;
use crate::operator::{BatchSupport, Collector, Operator};
use crate::time::Timestamp;
use crate::tuple::Tuple;

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Per-inbox channel capacity (backpressure buffer).
    pub channel_capacity: usize,
    /// If set, sample aggregate operator state + process CPU at this
    /// interval (drives the Figure 5 resource series).
    pub sample_interval: Option<StdDuration>,
    /// Keep only every `latency_stride`-th latency observation.
    pub latency_stride: usize,
    /// Fuse linear non-repartitioning stretches of the graph into single
    /// tasks (Flink-style operator chaining). On by default; disable to
    /// measure the unfused pipeline.
    pub operator_chaining: bool,
    /// Drop tuples that arrive behind the merged watermark (late data).
    /// With correctly configured source watermark lag nothing is ever
    /// late; this is the Flink-style safety net that keeps event-time
    /// operators from observing time regressions. Dropped tuples are
    /// counted in [`NodeStats::late_dropped`].
    pub drop_late: bool,
    /// Maximum tuples accumulated per (edge, destination instance) before
    /// the pending micro-batch is sent as one channel message. `1` restores
    /// per-tuple messaging; larger values amortize channel synchronization
    /// over `batch_size` tuples on every hop. Must be ≥ 1 (0 is rejected as
    /// diagnostic `G015` before any thread is spawned).
    pub batch_size: usize,
    /// Upper bound on how long a partially filled batch may sit in a task's
    /// output buffer while the task is idle. Idle operators flush on this
    /// cadence, and rate-limited sources flush at least this often, so
    /// low-rate streams keep low latency regardless of `batch_size`.
    pub idle_flush: StdDuration,
    /// Record the wall time of every `proc_latency_every`-th
    /// `Operator::process` call into the node's lock-free latency
    /// histogram ([`NodeStats::proc_latency`]). `0` disables processing-
    /// latency sampling entirely (no clock reads on the tuple path).
    pub proc_latency_every: usize,
    /// If set, a background reporter thread emits an aggregate progress
    /// event (records in/out, state bytes, inbox depth) into the run's
    /// [`EventLog`] at this interval. `None` (the default) disables the
    /// reporter.
    pub progress_interval: Option<StdDuration>,
    /// Ring capacity of the structured [`EventLog`] exported in
    /// [`RunReport::events`]. When full, the oldest events are displaced;
    /// `0` disables event retention.
    pub event_log_capacity: usize,
    /// Run tuple data on the columnar (struct-of-arrays) plane: sources
    /// build [`ColumnarBatch`]es without materializing row tuples,
    /// operators declaring [`BatchSupport::Columnar`] run vectorized, and
    /// rows are materialized only at stateful-operator and collecting-sink
    /// boundaries. Defaults to `true`; setting the `ASP_DATA_PLANE=row`
    /// environment variable flips the default to the row plane (the CI
    /// matrix exercises both).
    pub columnar: bool,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            channel_capacity: 1024,
            sample_interval: None,
            latency_stride: 16,
            operator_chaining: true,
            drop_late: true,
            batch_size: 64,
            idle_flush: StdDuration::from_millis(5),
            proc_latency_every: 32,
            progress_interval: None,
            event_log_capacity: 256,
            columnar: std::env::var("ASP_DATA_PLANE").map_or(true, |v| v != "row"),
        }
    }
}

enum Message {
    Tuple(Tuple),
    /// A micro-batch: consecutive tuples for one destination, sent as one
    /// channel message. Order within the batch is emission order.
    Batch(Vec<Tuple>),
    /// A columnar micro-batch (always dense on the wire; receivers never
    /// see a selection vector). Used exclusively on the columnar plane.
    Columnar(ColumnarBatch),
    Watermark(Timestamp),
    End,
}

/// Envelopes drained from the inbox per blocking receive before the
/// collector is flushed — bounds how long a coalesced watermark can be
/// deferred under sustained load.
const DRAIN_LIMIT: usize = 128;

struct Envelope {
    port: u16,
    chan: u16,
    msg: Message,
}

/// Deterministic key → instance mapping shared by every hash exchange
/// (co-partitioning guarantee).
#[inline]
pub fn key_partition(key: u64, parallelism: usize) -> usize {
    if parallelism <= 1 {
        return 0;
    }
    let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 17) % parallelism as u64) as usize
}

/// One outgoing edge of one instance, with a pending micro-batch per
/// destination instance.
struct Route {
    exchange: Exchange,
    port: u16,
    chan: u16,
    senders: Vec<Sender<Envelope>>,
    rr: usize,
    /// Pre-resolved destination for exchanges whose target never varies
    /// (`Forward`, or any exchange with a single destination instance) —
    /// the dispatch match is decided once at wiring time, not per tuple.
    fixed: Option<usize>,
    /// Pending tuples per destination instance, flushed at `batch_size`
    /// (row plane; unused on the columnar plane).
    bufs: Vec<Vec<Tuple>>,
    /// Pending columnar rows per destination instance (columnar plane;
    /// unused on the row plane). Built by column pushes, so always dense.
    cbufs: Vec<ColumnarBatch>,
    /// Watermark promised to a destination but deferred because its batch
    /// buffer was non-empty at soft-flush time; settled immediately after
    /// that destination's next batch send (see [`Route::flush_buf`]).
    wm_owed: Vec<Option<Timestamp>>,
    /// Channel messages sent (batches count once), for [`NodeStats`].
    batches: u64,
}

impl Route {
    fn new(
        exchange: Exchange,
        port: u16,
        chan: u16,
        instance: usize,
        senders: Vec<Sender<Envelope>>,
    ) -> Self {
        let fixed = match exchange {
            Exchange::Forward => Some(instance % senders.len()),
            Exchange::Hash | Exchange::Rebalance if senders.len() == 1 => Some(0),
            Exchange::Hash | Exchange::Rebalance => None,
        };
        let bufs = senders.iter().map(|_| Vec::new()).collect();
        let cbufs = senders.iter().map(|_| ColumnarBatch::default()).collect();
        let wm_owed = senders.iter().map(|_| None).collect();
        Route {
            exchange,
            port,
            chan,
            senders,
            rr: instance,
            fixed,
            bufs,
            cbufs,
            wm_owed,
            batches: 0,
        }
    }

    /// Resolve the destination instance for a record with partition `key`.
    #[inline]
    fn pick_dest(&mut self, key: u64) -> usize {
        match self.fixed {
            Some(i) => i,
            None => match self.exchange {
                Exchange::Hash => key_partition(key, self.senders.len()),
                Exchange::Rebalance => {
                    self.rr = (self.rr + 1) % self.senders.len();
                    self.rr
                }
                // Forward always resolves to `fixed`.
                Exchange::Forward => unreachable!("forward routes are pre-resolved"),
            },
        }
    }

    fn send(
        &self,
        idx: usize,
        msg: Message,
        abort: &AtomicBool,
        blocked_ns: &AtomicU64,
    ) -> Result<(), ()> {
        let mut env = Envelope {
            port: self.port,
            chan: self.chan,
            msg,
        };
        // Fast path: an uncontended send pays no clock read. Only a full
        // inbox (genuine backpressure) falls through to the timed loop.
        match self.senders[idx].send_timeout(env, StdDuration::ZERO) {
            Ok(()) => return Ok(()),
            Err(crossbeam::channel::SendTimeoutError::Disconnected(_)) => return Err(()),
            Err(crossbeam::channel::SendTimeoutError::Timeout(e)) => env = e,
        }
        let blocked_since = Instant::now();
        let result = loop {
            match self.senders[idx].send_timeout(env, StdDuration::from_millis(20)) {
                Ok(()) => break Ok(()),
                Err(crossbeam::channel::SendTimeoutError::Timeout(e)) => {
                    if abort.load(Ordering::Relaxed) {
                        break Err(());
                    }
                    env = e;
                }
                Err(crossbeam::channel::SendTimeoutError::Disconnected(_)) => break Err(()),
            }
        };
        blocked_ns.fetch_add(blocked_since.elapsed().as_nanos() as u64, Ordering::Relaxed);
        result
    }

    /// Append `t` to the destination's pending row batch, flushing it when
    /// it reaches `batch_size`.
    fn buffer_tuple(
        &mut self,
        t: Tuple,
        batch_size: usize,
        abort: &AtomicBool,
        blocked_ns: &AtomicU64,
    ) -> Result<(), ()> {
        let idx = self.pick_dest(t.key);
        let buf = &mut self.bufs[idx];
        if buf.capacity() == 0 {
            buf.reserve_exact(batch_size);
        }
        buf.push(t);
        if buf.len() >= batch_size {
            self.flush_buf(idx, batch_size, abort, blocked_ns)
        } else {
            Ok(())
        }
    }

    /// Decompose `t` into the destination's pending columnar batch,
    /// flushing it when it reaches `batch_size` (columnar plane).
    fn buffer_tuple_columnar(
        &mut self,
        t: Tuple,
        batch_size: usize,
        abort: &AtomicBool,
        blocked_ns: &AtomicU64,
    ) -> Result<(), ()> {
        let idx = self.pick_dest(t.key);
        self.cbufs[idx].push_tuple(t);
        if self.cbufs[idx].len() >= batch_size {
            self.flush_buf(idx, batch_size, abort, blocked_ns)
        } else {
            Ok(())
        }
    }

    /// Append a primitive event straight into the destination's pending
    /// columnar batch — the zero-allocation source fast path.
    fn buffer_event(
        &mut self,
        e: Event,
        wall: u64,
        batch_size: usize,
        abort: &AtomicBool,
        blocked_ns: &AtomicU64,
    ) -> Result<(), ()> {
        // Primitive events partition by sensor id (`Tuple::from_event`
        // assigns `key = id`), so routing agrees with the row plane.
        let idx = self.pick_dest(e.id as u64);
        self.cbufs[idx].push_event(e, wall);
        if self.cbufs[idx].len() >= batch_size {
            self.flush_buf(idx, batch_size, abort, blocked_ns)
        } else {
            Ok(())
        }
    }

    /// Gather-append every selected row of `src` into the destinations'
    /// pending columnar batches (reads `src` by reference: multi-route
    /// fan-out needs no clone; composites transfer by refcount bump).
    fn append_batch(
        &mut self,
        src: &ColumnarBatch,
        batch_size: usize,
        abort: &AtomicBool,
        blocked_ns: &AtomicU64,
    ) -> Result<(), ()> {
        let one = |this: &mut Self, i: usize| -> Result<(), ()> {
            let idx = this.pick_dest(src.key[i]);
            this.cbufs[idx].push_row_from(src, i);
            if this.cbufs[idx].len() >= batch_size {
                this.flush_buf(idx, batch_size, abort, blocked_ns)
            } else {
                Ok(())
            }
        };
        match &src.sel {
            None => {
                for i in 0..src.len() {
                    one(self, i)?;
                }
            }
            Some(sel) => {
                for &i in sel {
                    one(self, i as usize)?;
                }
            }
        }
        Ok(())
    }

    /// Soft-deliver a watermark: destinations with an empty batch buffer
    /// get it immediately; the rest record it as owed so it rides out
    /// right behind their next (full) batch instead of truncating it.
    fn soft_watermark(
        &mut self,
        wm: Timestamp,
        abort: &AtomicBool,
        blocked_ns: &AtomicU64,
    ) -> Result<(), ()> {
        let mut ok = Ok(());
        for idx in 0..self.senders.len() {
            if self.bufs[idx].is_empty() && self.cbufs[idx].is_empty() {
                if self
                    .send(idx, Message::Watermark(wm), abort, blocked_ns)
                    .is_err()
                {
                    ok = Err(());
                }
            } else {
                let owed = self.wm_owed[idx].get_or_insert(wm);
                *owed = (*owed).max(wm);
            }
        }
        ok
    }

    /// Send the destination's pending batch (row or columnar), if any, as
    /// one message, then settle any owed watermark behind it.
    fn flush_buf(
        &mut self,
        idx: usize,
        batch_size: usize,
        abort: &AtomicBool,
        blocked_ns: &AtomicU64,
    ) -> Result<(), ()> {
        let buf = &mut self.bufs[idx];
        let msg = match buf.len() {
            0 => {
                let cbuf = &mut self.cbufs[idx];
                if cbuf.is_empty() {
                    None
                } else {
                    debug_assert!(cbuf.is_dense(), "route buffers are built dense");
                    Some(Message::Columnar(std::mem::replace(
                        cbuf,
                        ColumnarBatch::with_capacity(batch_size),
                    )))
                }
            }
            1 => Some(Message::Tuple(buf.pop().expect("len checked"))),
            _ => Some(Message::Batch(std::mem::replace(
                buf,
                Vec::with_capacity(batch_size),
            ))),
        };
        if let Some(msg) = msg {
            self.batches += 1;
            self.send(idx, msg, abort, blocked_ns)?;
        }
        if let Some(wm) = self.wm_owed[idx].take() {
            self.send(idx, Message::Watermark(wm), abort, blocked_ns)?;
        }
        Ok(())
    }

    fn flush_all(
        &mut self,
        batch_size: usize,
        abort: &AtomicBool,
        blocked_ns: &AtomicU64,
    ) -> Result<(), ()> {
        let mut ok = Ok(());
        for idx in 0..self.bufs.len() {
            if self.flush_buf(idx, batch_size, abort, blocked_ns).is_err() {
                ok = Err(());
            }
        }
        ok
    }

    fn broadcast(
        &self,
        msg_of: impl Fn() -> Message,
        abort: &AtomicBool,
        blocked_ns: &AtomicU64,
    ) -> Result<(), ()> {
        for idx in 0..self.senders.len() {
            self.send(idx, msg_of(), abort, blocked_ns)?;
        }
        Ok(())
    }
}

/// Routes an operator's emissions to all outgoing edges, micro-batching
/// tuples per destination and coalescing watermarks between flushes.
struct ChannelCollector {
    routes: Vec<Route>,
    batch_size: usize,
    /// Which data plane this task's emissions travel on. On the columnar
    /// plane every tuple-carrying message is [`Message::Columnar`]; on the
    /// row plane, [`Message::Tuple`]/[`Message::Batch`]. Never mixed.
    columnar: bool,
    abort: Arc<AtomicBool>,
    /// The owning instance's shared counters; the collector charges
    /// blocked-on-send time (backpressure) to
    /// [`InstanceStats::backpressure_ns`].
    istats: Arc<InstanceStats>,
    out_count: u64,
    failed: bool,
    /// Highest watermark accepted for broadcast but not yet sent. Deferring
    /// a watermark is always safe — it is a *lower bound* promise, and
    /// delaying it only delays downstream firing — whereas sending it ahead
    /// of buffered tuples would not be. [`ChannelCollector::flush`] sends
    /// every pending batch first, then this coalesced watermark, so the
    /// tuples a watermark covers always precede it on every channel.
    pending_wm: Option<Timestamp>,
    /// The watermark contract floor: the highest watermark this task has
    /// broadcast downstream. Every later emission must carry `ts ≥ floor`.
    #[cfg(feature = "invariant-checks")]
    wm_floor: Timestamp,
    /// Sources are exempt from the emission-floor check: with an
    /// under-estimated `watermark_lag` they legitimately emit late tuples,
    /// and downstream `drop_late` is the documented degradation path.
    #[cfg(feature = "invariant-checks")]
    enforce_emit_floor: bool,
}

impl ChannelCollector {
    /// Record `wm` for broadcast at the next [`flush`](Self::flush). Repeated
    /// calls between flushes coalesce into one watermark message per channel.
    fn broadcast_watermark(&mut self, wm: Timestamp) {
        #[cfg(feature = "invariant-checks")]
        {
            assert!(
                wm >= self.wm_floor,
                "invariant violation: task broadcast watermark {wm:?} behind its own previous watermark {:?}",
                self.wm_floor
            );
            self.wm_floor = wm;
        }
        self.pending_wm = Some(self.pending_wm.map_or(wm, |p| p.max(wm)));
    }

    /// Soft flush: release the coalesced pending watermark without
    /// truncating partially filled batch buffers. Destinations with an
    /// empty buffer get the watermark immediately; for the rest it is
    /// recorded as *owed* and sent right behind that destination's next
    /// batch, so micro-batches keep forming across punctuation (the
    /// hash-fan-out batch-efficiency fix). Owed watermarks are bounded by
    /// the callers' periodic [`flush_hard`](Self::flush_hard).
    fn flush(&mut self) {
        let Self {
            routes,
            abort,
            istats,
            failed,
            pending_wm,
            ..
        } = self;
        let abort: &AtomicBool = abort;
        let blocked_ns = &istats.backpressure_ns;
        if let Some(wm) = pending_wm.take() {
            for r in routes.iter_mut() {
                if r.soft_watermark(wm, abort, blocked_ns).is_err() {
                    *failed = true;
                }
            }
        }
    }

    /// Hard flush: send every pending batch (settling owed watermarks
    /// behind each), then broadcast the coalesced pending watermark.
    fn flush_hard(&mut self) {
        let Self {
            routes,
            batch_size,
            abort,
            istats,
            failed,
            pending_wm,
            ..
        } = self;
        let abort: &AtomicBool = abort;
        let blocked_ns = &istats.backpressure_ns;
        for r in routes.iter_mut() {
            if r.flush_all(*batch_size, abort, blocked_ns).is_err() {
                *failed = true;
            }
        }
        if let Some(wm) = pending_wm.take() {
            for r in routes.iter() {
                if r.broadcast(|| Message::Watermark(wm), abort, blocked_ns)
                    .is_err()
                {
                    *failed = true;
                }
            }
        }
    }

    /// Flush everything, then tell every downstream channel the stream is
    /// over.
    fn broadcast_end(&mut self) {
        self.flush_hard();
        for r in &self.routes {
            if r.broadcast(|| Message::End, &self.abort, &self.istats.backpressure_ns)
                .is_err()
            {
                self.failed = true;
            }
        }
    }

    /// Source fast path: append a primitive event to every route's pending
    /// columnar batch without materializing a row tuple (no heap traffic).
    /// Falls back to [`Collector::emit`] on the row plane.
    fn emit_event(&mut self, e: Event, wall: u64) {
        if !self.columnar {
            self.emit(Tuple::from_event_wall(e, wall));
            return;
        }
        self.out_count += 1;
        let Self {
            routes,
            batch_size,
            abort,
            istats,
            failed,
            ..
        } = self;
        let abort: &AtomicBool = abort;
        let blocked_ns = &istats.backpressure_ns;
        for r in routes.iter_mut() {
            if r.buffer_event(e, wall, *batch_size, abort, blocked_ns)
                .is_err()
            {
                *failed = true;
            }
        }
    }

    /// Route a processed columnar batch downstream (columnar plane). A
    /// dense, full batch bound for a single pre-resolved destination with
    /// an empty pending buffer moves onto the wire without copying a row;
    /// everything else gather-appends the selected rows into the
    /// destinations' pending batches.
    fn forward_batch(&mut self, mut batch: ColumnarBatch) {
        #[cfg(feature = "invariant-checks")]
        if self.enforce_emit_floor {
            if let Some(min) = batch.min_ts() {
                assert!(
                    min >= self.wm_floor,
                    "invariant violation: task emitted batch with min ts {min:?} behind its own broadcast watermark {:?}",
                    self.wm_floor
                );
            }
        }
        let selected = batch.selected_len();
        if selected == 0 {
            return;
        }
        self.out_count += selected as u64;
        let Self {
            routes,
            batch_size,
            abort,
            istats,
            failed,
            ..
        } = self;
        let abort: &AtomicBool = abort;
        let blocked_ns = &istats.backpressure_ns;
        let n = routes.len();
        if n == 0 {
            return;
        }
        for r in routes.iter_mut().take(n - 1) {
            if r.append_batch(&batch, *batch_size, abort, blocked_ns)
                .is_err()
            {
                *failed = true;
            }
        }
        let last = &mut routes[n - 1];
        if let Some(idx) = last.fixed {
            if last.cbufs[idx].is_empty() {
                batch.compact();
                if batch.len() >= *batch_size {
                    last.batches += 1;
                    if last
                        .send(idx, Message::Columnar(batch), abort, blocked_ns)
                        .is_err()
                    {
                        *failed = true;
                    } else if let Some(wm) = last.wm_owed[idx].take() {
                        if last
                            .send(idx, Message::Watermark(wm), abort, blocked_ns)
                            .is_err()
                        {
                            *failed = true;
                        }
                    }
                } else {
                    // Short batch: it *becomes* the pending buffer.
                    last.cbufs[idx] = batch;
                }
                return;
            }
        }
        if last
            .append_batch(&batch, *batch_size, abort, blocked_ns)
            .is_err()
        {
            *failed = true;
        }
    }

    /// Channel messages carrying tuples sent so far (a batch counts once).
    fn messages_sent(&self) -> u64 {
        self.routes.iter().map(|r| r.batches).sum()
    }
}

impl Collector for ChannelCollector {
    fn emit(&mut self, tuple: Tuple) {
        // Watermark contract: once a task has told downstream "no tuples
        // below W", it must never emit one (operators hold watermarks back
        // by their window size to guarantee this — see WindowJoinOp).
        #[cfg(feature = "invariant-checks")]
        assert!(
            !self.enforce_emit_floor || tuple.ts >= self.wm_floor,
            "invariant violation: task emitted tuple at {:?} behind its own broadcast watermark {:?}",
            tuple.ts,
            self.wm_floor
        );
        self.out_count += 1;
        // Borrow-split so the per-tuple path touches no `Arc` refcount.
        let Self {
            routes,
            batch_size,
            columnar,
            abort,
            istats,
            failed,
            ..
        } = self;
        let abort: &AtomicBool = abort;
        let blocked_ns = &istats.backpressure_ns;
        let n = routes.len();
        if n == 0 {
            return;
        }
        // Clone for all but the last route; move into the last. On the
        // columnar plane the tuple is decomposed into the routes' pending
        // column batches instead of buffered as a row.
        if *columnar {
            for r in routes.iter_mut().take(n - 1) {
                if r.buffer_tuple_columnar(tuple.clone(), *batch_size, abort, blocked_ns)
                    .is_err()
                {
                    *failed = true;
                }
            }
            if routes[n - 1]
                .buffer_tuple_columnar(tuple, *batch_size, abort, blocked_ns)
                .is_err()
            {
                *failed = true;
            }
            return;
        }
        for r in routes.iter_mut().take(n - 1) {
            if r.buffer_tuple(tuple.clone(), *batch_size, abort, blocked_ns)
                .is_err()
            {
                *failed = true;
            }
        }
        if routes[n - 1]
            .buffer_tuple(tuple, *batch_size, abort, blocked_ns)
            .is_err()
        {
            *failed = true;
        }
    }
}

/// Per-instance shared counters and gauges the report (and the sampler /
/// progress threads) aggregate. All fields use relaxed atomics: counters
/// are independent and the final report is assembled only after the worker
/// threads are joined, which is the synchronization edge; mid-run samples
/// tolerate approximation.
struct InstanceStats {
    records_in: AtomicU64,
    records_out: AtomicU64,
    batches_out: AtomicU64,
    late_dropped: AtomicU64,
    state_bytes: AtomicUsize,
    peak_state: AtomicUsize,
    /// Keyed-state high-water marks reported by the instance's operator
    /// ([`Operator::keyed_state`]): peak resident keys per side and the
    /// longest per-key run. 0 for operators without keyed state.
    keyed_left_keys: AtomicUsize,
    keyed_right_keys: AtomicUsize,
    keyed_max_run: AtomicUsize,
    /// Nanoseconds spent blocked sending into full downstream inboxes.
    backpressure_ns: AtomicU64,
    /// Last sampled inbox depth (queued channel messages), and its peak.
    queue_depth: AtomicUsize,
    queue_depth_peak: AtomicUsize,
    /// Gauge: newest event ts seen minus merged watermark, ms, and peak.
    watermark_lag_ms: AtomicI64,
    watermark_lag_peak_ms: AtomicI64,
    /// Strided `Operator::process` wall-time observations.
    proc_hist: LatencyHistogram,
}

impl InstanceStats {
    fn new() -> Arc<Self> {
        Arc::new(InstanceStats {
            records_in: AtomicU64::new(0),
            records_out: AtomicU64::new(0),
            batches_out: AtomicU64::new(0),
            late_dropped: AtomicU64::new(0),
            state_bytes: AtomicUsize::new(0),
            peak_state: AtomicUsize::new(0),
            keyed_left_keys: AtomicUsize::new(0),
            keyed_right_keys: AtomicUsize::new(0),
            keyed_max_run: AtomicUsize::new(0),
            backpressure_ns: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            queue_depth_peak: AtomicUsize::new(0),
            watermark_lag_ms: AtomicI64::new(0),
            watermark_lag_peak_ms: AtomicI64::new(0),
            proc_hist: LatencyHistogram::default(),
        })
    }

    fn set_state(&self, bytes: usize) {
        self.state_bytes.store(bytes, Ordering::Relaxed);
        self.peak_state.fetch_max(bytes, Ordering::Relaxed);
    }

    /// Record an operator's keyed-state high-water marks. The values are
    /// lifetime peaks, so a single observation at teardown is exact;
    /// `fetch_max` keeps earlier observations monotone regardless.
    fn set_keyed(&self, keyed: Option<crate::operator::KeyedStateStats>) {
        if let Some(ks) = keyed {
            self.keyed_left_keys
                .fetch_max(ks.left_keys, Ordering::Relaxed);
            self.keyed_right_keys
                .fetch_max(ks.right_keys, Ordering::Relaxed);
            self.keyed_max_run
                .fetch_max(ks.max_run_len, Ordering::Relaxed);
        }
    }

    /// Record the inbox depth gauge (and its peak).
    fn note_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.queue_depth_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Record how far the merged event-time clock trails the newest event
    /// timestamp this instance has seen. Skipped until both ends of the
    /// interval are meaningful (at least one tuple, a finite watermark).
    fn note_watermark_lag(&self, max_ts_seen: Timestamp, wm: Timestamp) {
        if max_ts_seen > Timestamp::MIN && wm < Timestamp::MAX {
            let lag = max_ts_seen.millis().saturating_sub(wm.millis()).max(0);
            self.watermark_lag_ms.store(lag, Ordering::Relaxed);
            self.watermark_lag_peak_ms.fetch_max(lag, Ordering::Relaxed);
        }
    }
}

struct SinkShared {
    mode: SinkMode,
    tuples: Mutex<Vec<Tuple>>,
    count: AtomicU64,
    latencies_ns: Mutex<Vec<u64>>,
    stride: usize,
}

/// Collected results of one pipeline run.
#[derive(Debug)]
pub struct RunReport {
    /// Wall-clock duration of the whole run.
    pub duration: StdDuration,
    /// Total events emitted by all sources.
    pub source_events: u64,
    /// Per-node statistics in graph order.
    pub nodes: Vec<NodeStats>,
    /// Resource samples (if sampling was enabled).
    pub samples: Vec<ResourceSample>,
    /// Structured events retained by the run's [`EventLog`], oldest first.
    pub events: Vec<LogEvent>,
    /// Events displaced from the ring (emitted but not retained).
    pub events_displaced: u64,
    sinks: Vec<SinkResult>,
}

#[derive(Debug)]
struct SinkResult {
    tuples: Vec<Tuple>,
    count: u64,
    latencies_ns: Vec<u64>,
}

impl RunReport {
    /// Tuples collected by a sink (empty in [`SinkMode::CountOnly`]).
    pub fn sink(&self, id: SinkId) -> &[Tuple] {
        &self.sinks[id.0].tuples
    }

    /// Move a sink's tuples out of the report.
    pub fn take_sink(&mut self, id: SinkId) -> Vec<Tuple> {
        std::mem::take(&mut self.sinks[id.0].tuples)
    }

    /// Number of tuples that reached the sink (works in both modes).
    pub fn sink_count(&self, id: SinkId) -> u64 {
        self.sinks[id.0].count
    }

    /// Source-side throughput in events/second — the sustainable-throughput
    /// metric (sources are backpressured by the pipeline).
    pub fn throughput(&self) -> f64 {
        self.source_events as f64 / self.duration.as_secs_f64().max(1e-9)
    }

    /// Detection latency statistics at a sink.
    pub fn latency(&self, id: SinkId) -> LatencyStats {
        LatencyStats::from_ns(&self.sinks[id.0].latencies_ns)
    }

    /// Peak total operator state across the run (max over samples, or max
    /// of per-node peaks when sampling is off).
    pub fn peak_state_bytes(&self) -> usize {
        let from_samples = self
            .samples
            .iter()
            .map(|s| s.state_bytes)
            .max()
            .unwrap_or(0);
        let from_nodes: usize = self.nodes.iter().map(|n| n.peak_state_bytes).sum();
        from_samples.max(from_nodes)
    }

    /// Check the run's observed telemetry against statically derived
    /// [`StaticBounds`] and return every violated limit.
    ///
    /// Sink tuples are the summed delivered counts across all sinks; state
    /// is the summed per-node peak (each node's peak is individually below
    /// its static bound, so the sums compare soundly without mapping plan
    /// nodes to physical operators). An empty result means the cost model
    /// survived contact with this run.
    pub fn check_bounds(&self, bounds: &StaticBounds) -> Vec<BoundViolation> {
        let mut violations = Vec::new();
        if let Some(limit) = bounds.max_sink_tuples {
            let actual: u64 = self.sinks.iter().map(|s| s.count).sum();
            if actual > limit {
                violations.push(BoundViolation {
                    quantity: "sink_tuples",
                    actual,
                    bound: limit,
                    origin: bounds.origin.clone(),
                });
            }
        }
        if let Some(limit) = bounds.max_total_state_bytes {
            let actual: u64 = self.nodes.iter().map(|n| n.peak_state_bytes as u64).sum();
            if actual > limit {
                violations.push(BoundViolation {
                    quantity: "state_bytes",
                    actual,
                    bound: limit,
                    origin: bounds.origin.clone(),
                });
            }
        }
        if let Some(limit) = bounds.max_keyed_run {
            // Runs are per key per instance, so the max over nodes is the
            // right observable (never summed).
            let actual: u64 = self
                .nodes
                .iter()
                .map(|n| n.keyed_max_run as u64)
                .max()
                .unwrap_or(0);
            if actual > limit {
                violations.push(BoundViolation {
                    quantity: "keyed_run_len",
                    actual,
                    bound: limit,
                    origin: bounds.origin.clone(),
                });
            }
        }
        violations
    }

    /// Export the full telemetry of the run as a pretty-printed JSON
    /// document: per-node counters and latency histograms, watermark-lag /
    /// queue-depth / backpressure gauges, the resource-sample series, sink
    /// latency summaries, and the structured event log.
    ///
    /// Per-node derived quantities (`avg_batch`, histogram quantile bucket
    /// bounds) are materialized alongside the raw fields so consumers need
    /// no histogram arithmetic.
    pub fn to_json(&self) -> String {
        let nodes: Vec<Value> = self
            .nodes
            .iter()
            .map(|n| {
                let mut v = n.to_value();
                if let Value::Object(pairs) = &mut v {
                    pairs.push(("avg_batch".into(), Value::Float(n.avg_batch())));
                    pairs.push((
                        "proc_latency_mean_us".into(),
                        Value::Float(n.proc_latency.mean_us()),
                    ));
                    for (name, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
                        pairs.push((
                            format!("proc_latency_{name}_le_ns"),
                            Value::UInt(n.proc_latency.quantile_le_ns(q)),
                        ));
                    }
                }
                v
            })
            .collect();
        let sinks: Vec<Value> = self
            .sinks
            .iter()
            .map(|s| {
                Value::Object(vec![
                    ("count".into(), Value::UInt(s.count)),
                    (
                        "latency".into(),
                        LatencyStats::from_ns(&s.latencies_ns).to_value(),
                    ),
                ])
            })
            .collect();
        let root = Value::Object(vec![
            ("schema_version".into(), Value::UInt(1)),
            (
                "duration_ms".into(),
                Value::Float(self.duration.as_secs_f64() * 1e3),
            ),
            ("source_events".into(), Value::UInt(self.source_events)),
            ("throughput_eps".into(), Value::Float(self.throughput())),
            (
                "peak_state_bytes".into(),
                Value::UInt(self.peak_state_bytes() as u64),
            ),
            ("nodes".into(), Value::Array(nodes)),
            ("samples".into(), self.samples.to_value()),
            ("sinks".into(), Value::Array(sinks)),
            ("events".into(), self.events.to_value()),
            (
                "events_displaced".into(),
                Value::UInt(self.events_displaced),
            ),
        ]);
        // The vendored writer is infallible for trees built from finite
        // numbers; fall back to an empty document rather than unwrap.
        serde_json::to_string_pretty(&root).unwrap_or_else(|_| String::from("{}"))
    }
}

/// Executes a [`GraphBuilder`] graph to completion.
pub struct Executor {
    cfg: ExecutorConfig,
}

impl Executor {
    /// An executor with the given runtime knobs.
    pub fn new(cfg: ExecutorConfig) -> Self {
        Executor { cfg }
    }

    /// Run the graph to end-of-stream and aggregate a [`RunReport`].
    ///
    /// The graph is statically validated first ([`crate::validate`]); a
    /// malformed graph is refused with [`PipelineError::Validation`] listing
    /// every defect before any thread is spawned.
    pub fn run(&self, graph: GraphBuilder) -> Result<RunReport, PipelineError> {
        crate::validate::validate(&graph).map_err(PipelineError::Validation)?;
        if self.cfg.batch_size == 0 {
            return Err(PipelineError::Validation(vec![
                crate::validate::Diagnostic::error(
                    crate::validate::Code::InvalidBatchSize,
                    None,
                    "ExecutorConfig::batch_size must be ≥ 1 (a zero-sized batch would never flush)",
                ),
            ]));
        }
        let graph = if self.cfg.operator_chaining {
            chain::fuse_chains(graph)
        } else {
            graph
        };
        let n_nodes = graph.nodes.len();
        let n_instances: usize = graph.nodes.iter().map(|n| n.parallelism).sum();
        let abort = Arc::new(AtomicBool::new(false));
        let first_error: Arc<Mutex<Option<PipelineError>>> = Arc::new(Mutex::new(None));
        let epoch = Instant::now();
        let log = Arc::new(EventLog::new(self.cfg.event_log_capacity));
        log.emit(
            Level::Info,
            "executor",
            format!(
                "run started: {n_nodes} nodes, {n_instances} instances, batch_size={}, chaining={}, plane={}",
                self.cfg.batch_size,
                self.cfg.operator_chaining,
                if self.cfg.columnar { "columnar" } else { "row" }
            ),
        );

        // Inboxes: one bounded channel per instance.
        let mut inbox_tx: Vec<Vec<Sender<Envelope>>> = Vec::with_capacity(n_nodes);
        let mut inbox_rx: Vec<Vec<Option<Receiver<Envelope>>>> = Vec::with_capacity(n_nodes);
        for node in &graph.nodes {
            let mut txs = Vec::with_capacity(node.parallelism);
            let mut rxs = Vec::with_capacity(node.parallelism);
            for _ in 0..node.parallelism {
                let (tx, rx) = bounded(self.cfg.channel_capacity);
                txs.push(tx);
                rxs.push(Some(rx));
            }
            inbox_tx.push(txs);
            inbox_rx.push(rxs);
        }

        // Routes: per node, the template of its outgoing edges.
        // route_templates[n] = Vec<(dst, port, exchange)>.
        let mut route_templates: Vec<Vec<(NodeId, usize, Exchange)>> = vec![Vec::new(); n_nodes];
        for e in &graph.edges {
            route_templates[e.src.0].push((e.dst, e.port, e.exchange));
        }

        // Input channel layout per node: (port, upstream parallelism).
        let input_layout: Vec<Vec<(usize, usize, bool)>> = (0..n_nodes)
            .map(|i| graph.input_channels(NodeId(i)))
            .collect();

        // Shared stats + sinks.
        let stats: Vec<Vec<Arc<InstanceStats>>> = graph
            .nodes
            .iter()
            .map(|n| (0..n.parallelism).map(|_| InstanceStats::new()).collect())
            .collect();
        let mut sink_shared: Vec<Arc<SinkShared>> = Vec::new();
        for node in &graph.nodes {
            if let NodeKind::Sink(sid) = node.kind {
                sink_shared.push(Arc::new(SinkShared {
                    mode: graph.sink_modes[sid.0],
                    tuples: Mutex::new(Vec::new()),
                    count: AtomicU64::new(0),
                    latencies_ns: Mutex::new(Vec::new()),
                    stride: self.cfg.latency_stride.max(1),
                }));
            }
        }

        let source_events = Arc::new(AtomicU64::new(0));
        let done = Arc::new(AtomicBool::new(false));

        // Sampler thread.
        let sampler_handle = self.cfg.sample_interval.map(|interval| {
            let flat_stats: Vec<Arc<InstanceStats>> = stats.iter().flatten().cloned().collect();
            let done = done.clone();
            std::thread::spawn(move || metrics::sample_loop(interval, flat_stats, done))
        });

        // Progress reporter thread (emits into the event log).
        let progress_handle = self.cfg.progress_interval.map(|interval| {
            let flat_stats: Vec<Arc<InstanceStats>> = stats.iter().flatten().cloned().collect();
            let done = done.clone();
            let log = log.clone();
            let sources = source_events.clone();
            std::thread::spawn(move || {
                metrics::progress_loop(interval, flat_stats, sources, log, done)
            })
        });

        let mut handles = Vec::new();
        let mut graph = graph;
        for (nid, node) in graph.nodes.iter_mut().enumerate() {
            let parallelism = node.parallelism;
            for instance in 0..parallelism {
                // Build this instance's routes.
                let routes: Vec<Route> = route_templates[nid]
                    .iter()
                    .map(|(dst, port, exchange)| {
                        Route::new(
                            *exchange,
                            *port as u16,
                            instance as u16,
                            instance,
                            inbox_tx[dst.0].clone(),
                        )
                    })
                    .collect();
                let istats = stats[nid][instance].clone();
                let collector = ChannelCollector {
                    routes,
                    batch_size: self.cfg.batch_size,
                    columnar: self.cfg.columnar,
                    abort: abort.clone(),
                    istats: istats.clone(),
                    out_count: 0,
                    failed: false,
                    pending_wm: None,
                    #[cfg(feature = "invariant-checks")]
                    wm_floor: Timestamp::MIN,
                    #[cfg(feature = "invariant-checks")]
                    enforce_emit_floor: !matches!(node.kind, NodeKind::Source { .. }),
                };
                let abort = abort.clone();
                let first_error = first_error.clone();
                let log = log.clone();
                let proc_every = self.cfg.proc_latency_every as u64;
                let name = node.name.clone();

                let handle = match &mut node.kind {
                    NodeKind::Source { cfg, chain } => {
                        let cfg = cfg.clone();
                        let chained: Option<Box<dyn Operator>> = if chain.is_empty() {
                            None
                        } else {
                            Some(Box::new(chain::ChainedOperator::new(
                                chain.iter().map(|f| f(instance)).collect(),
                            )))
                        };
                        let counter = source_events.clone();
                        let first_error = first_error.clone();
                        let idle_flush = self.cfg.idle_flush;
                        std::thread::Builder::new()
                            .name(format!("{name}#{instance}"))
                            .spawn(move || {
                                run_source(
                                    cfg,
                                    chained,
                                    instance,
                                    parallelism,
                                    collector,
                                    counter,
                                    istats,
                                    abort,
                                    first_error,
                                    epoch,
                                    idle_flush,
                                    proc_every,
                                    log,
                                )
                            })
                            .expect("spawn source")
                    }
                    NodeKind::Operator(factory) => {
                        let op = factory(instance);
                        let rx = inbox_rx[nid][instance].take().expect("rx unused");
                        let layout = input_layout[nid].clone();
                        let drop_late = self.cfg.drop_late;
                        let idle_flush = self.cfg.idle_flush;
                        std::thread::Builder::new()
                            .name(format!("{name}#{instance}"))
                            .spawn(move || {
                                run_operator(
                                    op,
                                    rx,
                                    layout,
                                    collector,
                                    istats,
                                    abort,
                                    first_error,
                                    drop_late,
                                    idle_flush,
                                    proc_every,
                                    log,
                                )
                            })
                            .expect("spawn operator")
                    }
                    NodeKind::Sink(sid) => {
                        let shared = sink_shared[sid.0].clone();
                        let rx = inbox_rx[nid][instance].take().expect("rx unused");
                        let layout = input_layout[nid].clone();
                        std::thread::Builder::new()
                            .name(format!("{name}#{instance}"))
                            .spawn(move || run_sink(shared, rx, layout, istats, abort, epoch))
                            .expect("spawn sink")
                    }
                };
                handles.push(handle);
            }
        }

        // Drop our copies of the senders so disconnects propagate.
        drop(inbox_tx);

        let mut panic_msg = None;
        for h in handles {
            if let Err(p) = h.join() {
                abort.store(true, Ordering::Relaxed);
                let msg = p
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| p.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".to_string());
                panic_msg.get_or_insert(msg);
            }
        }
        done.store(true, Ordering::Relaxed);
        let samples = sampler_handle
            .map(|h| h.join().unwrap_or_default())
            .unwrap_or_default();
        if let Some(h) = progress_handle {
            let _ = h.join();
        }
        let duration = epoch.elapsed();

        if let Some(err) = first_error.lock().take() {
            log.emit(Level::Error, "executor", format!("run aborted: {err}"));
            return Err(err);
        }
        if let Some(msg) = panic_msg {
            log.emit(Level::Error, "executor", format!("worker panicked: {msg}"));
            return Err(PipelineError::WorkerPanic(msg));
        }
        log.emit(
            Level::Info,
            "executor",
            format!(
                "run finished: {} source events in {:.1} ms",
                source_events.load(Ordering::Relaxed),
                duration.as_secs_f64() * 1e3
            ),
        );

        // Aggregate per-node stats.
        let nodes = graph
            .nodes
            .iter()
            .enumerate()
            .map(|(nid, node)| NodeStats {
                name: node.name.clone(),
                parallelism: node.parallelism,
                records_in: stats[nid]
                    .iter()
                    .map(|s| s.records_in.load(Ordering::Relaxed))
                    .sum(),
                records_out: stats[nid]
                    .iter()
                    .map(|s| s.records_out.load(Ordering::Relaxed))
                    .sum(),
                batches_out: stats[nid]
                    .iter()
                    .map(|s| s.batches_out.load(Ordering::Relaxed))
                    .sum(),
                late_dropped: stats[nid]
                    .iter()
                    .map(|s| s.late_dropped.load(Ordering::Relaxed))
                    .sum(),
                peak_state_bytes: stats[nid]
                    .iter()
                    .map(|s| s.peak_state.load(Ordering::Relaxed))
                    .sum(),
                keyed_left_keys: stats[nid]
                    .iter()
                    .map(|s| s.keyed_left_keys.load(Ordering::Relaxed))
                    .sum(),
                keyed_right_keys: stats[nid]
                    .iter()
                    .map(|s| s.keyed_right_keys.load(Ordering::Relaxed))
                    .sum(),
                keyed_max_run: stats[nid]
                    .iter()
                    .map(|s| s.keyed_max_run.load(Ordering::Relaxed))
                    .max()
                    .unwrap_or(0),
                proc_latency: stats[nid].iter().fold(
                    crate::obs::HistogramSummary::default(),
                    |mut acc, s| {
                        acc.merge(&s.proc_hist.summary());
                        acc
                    },
                ),
                watermark_lag_ms: stats[nid]
                    .iter()
                    .map(|s| s.watermark_lag_ms.load(Ordering::Relaxed))
                    .max()
                    .unwrap_or(0),
                watermark_lag_peak_ms: stats[nid]
                    .iter()
                    .map(|s| s.watermark_lag_peak_ms.load(Ordering::Relaxed))
                    .max()
                    .unwrap_or(0),
                queue_depth: stats[nid]
                    .iter()
                    .map(|s| s.queue_depth.load(Ordering::Relaxed))
                    .sum(),
                queue_depth_peak: stats[nid]
                    .iter()
                    .map(|s| s.queue_depth_peak.load(Ordering::Relaxed))
                    .max()
                    .unwrap_or(0),
                backpressure_ns: stats[nid]
                    .iter()
                    .map(|s| s.backpressure_ns.load(Ordering::Relaxed))
                    .sum(),
            })
            .collect();

        // All workers are joined, so each sink's Arc should be uniquely
        // held here. If one is not, the run's bookkeeping is broken —
        // report it as an error instead of panicking out of the embedder.
        let mut sinks = Vec::with_capacity(sink_shared.len());
        for (i, s) in sink_shared.into_iter().enumerate() {
            let count = s.count.load(Ordering::Relaxed);
            match Arc::try_unwrap(s) {
                Ok(s) => sinks.push(SinkResult {
                    tuples: s.tuples.into_inner(),
                    count,
                    latencies_ns: s.latencies_ns.into_inner(),
                }),
                Err(_) => {
                    let msg = format!("sink {i} result still shared after all workers joined");
                    log.emit(Level::Error, "executor", &msg);
                    return Err(PipelineError::Internal(msg));
                }
            }
        }

        Ok(RunReport {
            duration,
            source_events: source_events.load(Ordering::Relaxed),
            nodes,
            samples,
            events: log.snapshot(),
            events_displaced: log.displaced(),
            sinks,
        })
    }
}

#[allow(clippy::too_many_arguments)]
fn run_source(
    cfg: SourceConfig,
    mut chained: Option<Box<dyn Operator>>,
    instance: usize,
    parallelism: usize,
    mut collector: ChannelCollector,
    counter: Arc<AtomicU64>,
    istats: Arc<InstanceStats>,
    abort: Arc<AtomicBool>,
    first_error: Arc<Mutex<Option<PipelineError>>>,
    epoch: Instant,
    idle_flush: StdDuration,
    proc_every: u64,
    log: Arc<EventLog>,
) {
    let mut last_ts = Timestamp::MIN;
    let mut forwarded_wm = Timestamp::MIN;
    let mut emitted: u64 = 0;
    let lag = cfg.watermark_lag;
    let pace = cfg
        .rate
        .map(|r| StdDuration::from_secs_f64(1.0 / r.max(1e-9)));
    let start = Instant::now();
    // Rate-limited sources check the idle-flush deadline per event so a
    // partial batch never outlives `idle_flush`; saturating sources fill
    // batches in microseconds and flush at every punctuation instead.
    let mut last_flush = start;
    // Columnar plane: events stream straight into column batches. With a
    // columnar-capable chained operator they are staged per `batch_size`
    // and driven through `process_columnar`; without a chain they go
    // directly into the routes' pending batches (`emit_event`). A row-only
    // chain keeps the per-tuple path (its emissions are still re-batched
    // columnar by the collector).
    let columnar = collector.columnar;
    let columnar_chain = chained
        .as_ref()
        .is_some_and(|op| op.batch_support() == BatchSupport::Columnar);
    let bs = collector.batch_size;
    let mut staging = if columnar && columnar_chain {
        ColumnarBatch::with_capacity(bs)
    } else {
        ColumnarBatch::default()
    };
    'ingest: for (i, ev) in cfg.events.iter().enumerate() {
        if parallelism > 1 && i % parallelism != instance {
            continue;
        }
        if abort.load(Ordering::Relaxed) {
            break;
        }
        if let Some(p) = pace {
            let target = start + p.mul_f64(emitted as f64);
            let now = Instant::now();
            if target > now {
                std::thread::sleep(target - now);
            }
        }
        let wall = epoch.elapsed().as_nanos() as u64;
        last_ts = last_ts.max(ev.ts);
        match &mut chained {
            Some(op) if columnar && columnar_chain => {
                staging.push_event(*ev, wall);
                if staging.len() >= bs {
                    // One strided observation per batch call: the cost of
                    // two clock reads amortizes over `bs` events.
                    let t0 = (proc_every != 0).then(Instant::now);
                    if let Err(e) = op.process_columnar(0, &mut staging) {
                        record_op_error(op.name(), e, &abort, &first_error, &log);
                        break 'ingest;
                    }
                    if let Some(t0) = t0 {
                        istats.proc_hist.record(t0.elapsed().as_nanos() as u64);
                    }
                    collector.forward_batch(std::mem::replace(
                        &mut staging,
                        ColumnarBatch::with_capacity(bs),
                    ));
                }
            }
            // Chained operators run inline on the source task; their
            // processing latency is attributed to the source node.
            Some(op) => {
                let t = Tuple::from_event_wall(*ev, wall);
                let t0 = (proc_every != 0 && emitted % proc_every == 0).then(Instant::now);
                if let Err(e) = op.process(0, t, &mut collector) {
                    record_op_error(op.name(), e, &abort, &first_error, &log);
                    break 'ingest;
                }
                if let Some(t0) = t0 {
                    istats.proc_hist.record(t0.elapsed().as_nanos() as u64);
                }
            }
            None if columnar => collector.emit_event(*ev, wall),
            None => collector.emit(Tuple::from_event_wall(*ev, wall)),
        }
        emitted += 1;
        if emitted as usize % cfg.watermark_every == 0 {
            // Stage boundary: rows covered by the upcoming watermark must
            // reach the routes' buffers before the watermark is recorded.
            if !staging.is_empty() {
                if let Some(op) = &mut chained {
                    if let Err(e) = op.process_columnar(0, &mut staging) {
                        record_op_error(op.name(), e, &abort, &first_error, &log);
                        break 'ingest;
                    }
                }
                collector.forward_batch(std::mem::replace(
                    &mut staging,
                    ColumnarBatch::with_capacity(bs),
                ));
            }
            let wm = last_ts.saturating_sub(lag);
            match &mut chained {
                Some(op) => match op.on_watermark(wm, &mut collector) {
                    Ok(fwd) => {
                        let fwd = fwd.min(wm);
                        if fwd > forwarded_wm {
                            forwarded_wm = fwd;
                            collector.broadcast_watermark(fwd);
                        }
                    }
                    Err(e) => {
                        record_op_error(op.name(), e, &abort, &first_error, &log);
                        break 'ingest;
                    }
                },
                None => {
                    if wm > forwarded_wm {
                        forwarded_wm = wm;
                        collector.broadcast_watermark(wm);
                    }
                }
            }
            // Punctuation releases the watermark softly (it rides behind
            // full batches); the idle_flush deadline bounds how long an
            // owed watermark or partial batch can sit under sustained load.
            collector.flush();
            if last_flush.elapsed() >= idle_flush {
                collector.flush_hard();
                last_flush = Instant::now();
            }
            istats.set_state(chained.as_ref().map_or(0, |op| op.state_bytes()));
        } else if pace.is_some() && last_flush.elapsed() >= idle_flush {
            collector.flush_hard();
            last_flush = Instant::now();
        }
        if collector.failed {
            break;
        }
    }
    // Drain staged rows through the chain before the final watermark.
    if !staging.is_empty() && !abort.load(Ordering::Relaxed) {
        if let Some(op) = &mut chained {
            match op.process_columnar(0, &mut staging) {
                Ok(()) => collector.forward_batch(staging),
                Err(e) => record_op_error(op.name(), e, &abort, &first_error, &log),
            }
        }
    }
    match &mut chained {
        Some(op) => {
            if last_ts > Timestamp::MIN {
                if let Ok(fwd) = op.on_watermark(last_ts, &mut collector) {
                    let fwd = fwd.min(last_ts);
                    if fwd > forwarded_wm {
                        collector.broadcast_watermark(fwd);
                    }
                }
            }
            if let Err(e) = op.on_finish(&mut collector) {
                record_op_error(op.name(), e, &abort, &first_error, &log);
            }
            istats.set_state(op.state_bytes());
            istats.set_keyed(op.keyed_state());
        }
        None => {
            if last_ts > Timestamp::MIN {
                collector.broadcast_watermark(last_ts);
            }
        }
    }
    collector.broadcast_end();
    counter.fetch_add(emitted, Ordering::Relaxed);
    istats.records_out.fetch_add(emitted, Ordering::Relaxed);
    istats
        .batches_out
        .fetch_add(collector.messages_sent(), Ordering::Relaxed);
    log.emit(
        Level::Debug,
        std::thread::current().name().unwrap_or("source"),
        format!("end of stream: {emitted} events ingested"),
    );
}

/// Per-(port, channel) watermark table used to merge watermarks.
struct WatermarkTable {
    /// wm[port][chan]
    wm: Vec<Vec<Timestamp>>,
    ended: Vec<Vec<bool>>,
    live: usize,
}

impl WatermarkTable {
    fn new(layout: &[(usize, usize, bool)]) -> Self {
        let mut wm = Vec::new();
        let mut ended = Vec::new();
        let mut live = 0;
        for (_port, chans, _exempt) in layout {
            wm.push(vec![Timestamp::MIN; *chans]);
            ended.push(vec![false; *chans]);
            live += *chans;
        }
        WatermarkTable { wm, ended, live }
    }

    fn update(&mut self, port: usize, chan: usize, ts: Timestamp) {
        // Punctuated watermarks are strictly increasing per sender, and
        // each (port, chan) cell has exactly one sender instance — so a
        // regression or a post-End watermark means a runtime bug upstream.
        #[cfg(feature = "invariant-checks")]
        {
            assert!(
                !self.ended[port][chan],
                "invariant violation: watermark {ts:?} on (port {port}, chan {chan}) after End"
            );
            assert!(
                ts >= self.wm[port][chan],
                "invariant violation: watermark regressed on (port {port}, chan {chan}): {ts:?} < {:?}",
                self.wm[port][chan]
            );
        }
        let cell = &mut self.wm[port][chan];
        if ts > *cell {
            *cell = ts;
        }
    }

    fn end(&mut self, port: usize, chan: usize) {
        if !self.ended[port][chan] {
            self.ended[port][chan] = true;
            self.wm[port][chan] = Timestamp::MAX;
            self.live -= 1;
        }
    }

    fn all_ended(&self) -> bool {
        self.live == 0
    }

    fn min(&self) -> Timestamp {
        self.wm
            .iter()
            .flat_map(|v| v.iter())
            .copied()
            .min()
            .unwrap_or(Timestamp::MAX)
    }
}

fn record_op_error(
    name: &str,
    e: OpError,
    abort: &AtomicBool,
    first_error: &Mutex<Option<PipelineError>>,
    log: &EventLog,
) {
    log.emit(Level::Error, name, format!("operator error: {e}"));
    abort.store(true, Ordering::Relaxed);
    // An operator that declared columnar support but rejected its payload
    // is a contract violation, not a data error: surface it as diagnostic
    // G016 so it reads like the other plan/config defects.
    let err = match e {
        OpError::ColumnarUnsupported { .. } => {
            PipelineError::Validation(vec![crate::validate::Diagnostic::error(
                crate::validate::Code::ColumnarPayloadMismatch,
                None,
                format!("{e}"),
            )])
        }
        e => PipelineError::Operator(e),
    };
    first_error.lock().get_or_insert(err);
}

/// Outcome of handling one envelope in an instance harness.
enum Step {
    /// Keep draining the inbox.
    Continue,
    /// Every input channel ended and `on_finish` ran — exit cleanly.
    Finished,
    /// The operator errored (already recorded) — abort the run.
    Error,
}

#[allow(clippy::too_many_arguments)]
fn run_operator(
    mut op: Box<dyn Operator>,
    rx: Receiver<Envelope>,
    layout: Vec<(usize, usize, bool)>,
    mut collector: ChannelCollector,
    istats: Arc<InstanceStats>,
    abort: Arc<AtomicBool>,
    first_error: Arc<Mutex<Option<PipelineError>>>,
    drop_late: bool,
    idle_flush: StdDuration,
    proc_every: u64,
    log: Arc<EventLog>,
) {
    let mut table = WatermarkTable::new(&layout);
    let mut current_wm = Timestamp::MIN;
    let mut forwarded = Timestamp::MIN;
    let mut records_in: u64 = 0;
    let mut late: u64 = 0;
    // Newest event timestamp this instance has seen; the distance to the
    // merged watermark is the watermark-lag gauge.
    let mut max_ts = Timestamp::MIN;
    // Handle one envelope; tuple batches are processed back-to-back
    // without touching the channel again.
    let mut handle = |env: Envelope, collector: &mut ChannelCollector| -> Step {
        let port = env.port as usize;
        let wm_now = current_wm;
        let one_tuple = |t: Tuple,
                         op: &mut dyn Operator,
                         collector: &mut ChannelCollector,
                         records_in: &mut u64,
                         late: &mut u64,
                         max_ts: &mut Timestamp|
         -> Step {
            *records_in += 1;
            if t.ts > *max_ts {
                *max_ts = t.ts;
            }
            if drop_late && t.ts < wm_now {
                *late += 1;
                return Step::Continue;
            }
            // Strided processing-latency sampling: every `proc_every`-th
            // tuple pays two clock reads; the rest pay nothing.
            let t0 = (proc_every != 0 && *records_in % proc_every == 0).then(Instant::now);
            if let Err(e) = op.process(port, t, collector) {
                record_op_error(op.name(), e, &abort, &first_error, &log);
                return Step::Error;
            }
            if let Some(t0) = t0 {
                istats.proc_hist.record(t0.elapsed().as_nanos() as u64);
            }
            if *records_in % 64 == 0 {
                istats.set_state(op.state_bytes());
            }
            Step::Continue
        };
        match env.msg {
            Message::Tuple(t) => {
                return one_tuple(
                    t,
                    &mut *op,
                    collector,
                    &mut records_in,
                    &mut late,
                    &mut max_ts,
                );
            }
            Message::Batch(ts) => {
                for t in ts {
                    if let Step::Error = one_tuple(
                        t,
                        &mut *op,
                        collector,
                        &mut records_in,
                        &mut late,
                        &mut max_ts,
                    ) {
                        return Step::Error;
                    }
                }
            }
            Message::Columnar(mut b) => {
                debug_assert!(b.is_dense(), "wire batches are dense");
                if op.batch_support() == BatchSupport::Columnar {
                    // Vectorized path: account, late-drop, and process the
                    // whole batch without materializing a row.
                    records_in += b.len() as u64;
                    if let Some(m) = b.max_ts() {
                        if m > max_ts {
                            max_ts = m;
                        }
                    }
                    if drop_late {
                        late += b.drop_late(wm_now);
                    }
                    if b.selected_len() > 0 {
                        // One strided observation per batch call; the two
                        // clock reads amortize over the batch.
                        let t0 = (proc_every != 0).then(Instant::now);
                        if let Err(e) = op.process_columnar(port, &mut b) {
                            record_op_error(op.name(), e, &abort, &first_error, &log);
                            return Step::Error;
                        }
                        if let Some(t0) = t0 {
                            istats.proc_hist.record(t0.elapsed().as_nanos() as u64);
                        }
                        collector.forward_batch(b);
                    }
                    istats.set_state(op.state_bytes());
                } else {
                    // Row shim: materialize each row at the input boundary
                    // of a row-only (stateful) operator.
                    for i in 0..b.len() {
                        if let Step::Error = one_tuple(
                            b.tuple_at(i),
                            &mut *op,
                            collector,
                            &mut records_in,
                            &mut late,
                            &mut max_ts,
                        ) {
                            return Step::Error;
                        }
                    }
                }
            }
            Message::Watermark(ts) => {
                table.update(env.port as usize, env.chan as usize, ts);
                let m = table.min();
                if m > current_wm {
                    current_wm = m;
                    istats.note_watermark_lag(max_ts, m);
                    match op.on_watermark(m, collector) {
                        Ok(f) => {
                            let f = f.min(m);
                            if f > forwarded {
                                forwarded = f;
                                collector.broadcast_watermark(f);
                            }
                        }
                        Err(e) => {
                            record_op_error(op.name(), e, &abort, &first_error, &log);
                            return Step::Error;
                        }
                    }
                    istats.set_state(op.state_bytes());
                }
            }
            Message::End => {
                table.end(env.port as usize, env.chan as usize);
                // An ended channel no longer holds the clock back.
                let m = table.min();
                if !table.all_ended() && m > current_wm && m < Timestamp::MAX {
                    current_wm = m;
                    istats.note_watermark_lag(max_ts, m);
                    match op.on_watermark(m, collector) {
                        Ok(f) => {
                            let f = f.min(m);
                            if f > forwarded {
                                forwarded = f;
                                collector.broadcast_watermark(f);
                            }
                        }
                        Err(e) => {
                            record_op_error(op.name(), e, &abort, &first_error, &log);
                            return Step::Error;
                        }
                    }
                }
                if table.all_ended() {
                    if let Err(e) = op.on_finish(collector) {
                        record_op_error(op.name(), e, &abort, &first_error, &log);
                    }
                    return Step::Finished;
                }
            }
        }
        Step::Continue
    };
    let mut last_hard = Instant::now();
    loop {
        if abort.load(Ordering::Relaxed) {
            break;
        }
        let env = match rx.recv_timeout(idle_flush) {
            Ok(env) => env,
            Err(RecvTimeoutError::Timeout) => {
                // Idle: release any partial batches + pending/owed
                // watermarks so low-rate streams keep low latency.
                collector.flush_hard();
                last_hard = Instant::now();
                if collector.failed {
                    break;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => break,
        };
        let mut step = handle(env, &mut collector);
        // Drain whatever else is already queued (bounded, so a coalesced
        // watermark is never deferred for long under sustained load), then
        // flush once for the whole round.
        let mut drained = 1usize;
        while matches!(step, Step::Continue) && drained < DRAIN_LIMIT {
            match rx.try_recv() {
                Ok(env) => {
                    drained += 1;
                    step = handle(env, &mut collector);
                }
                Err(_) => break,
            }
        }
        // Soft flush per round keeps watermarks moving on empty channels;
        // the idle_flush deadline bounds owed watermarks and partial
        // batches when the task is busy but its output trickles.
        collector.flush();
        if last_hard.elapsed() >= idle_flush {
            collector.flush_hard();
            last_hard = Instant::now();
        }
        // One inbox-depth observation per scheduling round (up to
        // DRAIN_LIMIT envelopes), so the gauge costs one channel-lock
        // acquisition per round, not per message.
        istats.note_queue_depth(rx.len());
        if !matches!(step, Step::Continue) || collector.failed {
            break;
        }
    }
    collector.broadcast_end();
    istats.note_queue_depth(rx.len());
    istats.records_in.fetch_add(records_in, Ordering::Relaxed);
    istats.late_dropped.fetch_add(late, Ordering::Relaxed);
    istats
        .records_out
        .fetch_add(collector.out_count, Ordering::Relaxed);
    istats
        .batches_out
        .fetch_add(collector.messages_sent(), Ordering::Relaxed);
    istats.set_state(op.state_bytes());
    istats.set_keyed(op.keyed_state());
    log.emit(
        Level::Debug,
        std::thread::current().name().unwrap_or("operator"),
        format!(
            "finished: {records_in} in, {} out, {late} late-dropped",
            collector.out_count
        ),
    );
}

fn run_sink(
    shared: Arc<SinkShared>,
    rx: Receiver<Envelope>,
    layout: Vec<(usize, usize, bool)>,
    istats: Arc<InstanceStats>,
    abort: Arc<AtomicBool>,
    epoch: Instant,
) {
    let mut table = WatermarkTable::new(&layout);
    let mut sink_wm = Timestamp::MIN;
    let mut n: u64 = 0;
    let sink_one = |t: Tuple, n: &mut u64, sink_wm: Timestamp, enforce_floor: bool| {
        *n += 1;
        // Sink-side event-time monotonicity: a tuple behind the merged
        // watermark means some upstream task emitted late data the
        // watermark protocol had already sealed off. Ports fed straight
        // by a source task are exempt (`enforce_floor == false`): sources
        // — including chains fused into them — legitimately emit behind
        // their own watermark when `watermark_lag` under-estimates
        // disorder, and only the next *operator* task applies
        // `drop_late`; a sink wired directly after one has no such
        // shield by design.
        #[cfg(feature = "invariant-checks")]
        assert!(
            !enforce_floor || t.ts >= sink_wm,
            "invariant violation: sink received tuple at {:?} behind merged watermark {sink_wm:?}",
            t.ts
        );
        #[cfg(not(feature = "invariant-checks"))]
        let _ = (sink_wm, enforce_floor);
        shared.count.fetch_add(1, Ordering::Relaxed);
        if t.wall > 0 && *n % shared.stride as u64 == 0 {
            let now = epoch.elapsed().as_nanos() as u64;
            shared.latencies_ns.lock().push(now.saturating_sub(t.wall));
        }
        if shared.mode == SinkMode::Collect {
            shared.tuples.lock().push(t);
        }
    };
    let mut rounds: u64 = 0;
    loop {
        if abort.load(Ordering::Relaxed) {
            break;
        }
        let env = match rx.recv_timeout(StdDuration::from_millis(20)) {
            Ok(env) => env,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        // Strided inbox-depth observation: one channel-lock acquisition
        // per 64 envelopes keeps the gauge off the per-message path.
        rounds += 1;
        if rounds % 64 == 0 {
            istats.note_queue_depth(rx.len());
        }
        // The emission-floor contract only binds operator tasks; a port
        // whose upstream is a source task may carry late tuples (see
        // `sink_one`).
        let enforce_floor = !layout[env.port as usize].2;
        match env.msg {
            Message::Tuple(t) => sink_one(t, &mut n, sink_wm, enforce_floor),
            Message::Batch(ts) => {
                for t in ts {
                    sink_one(t, &mut n, sink_wm, enforce_floor);
                }
            }
            Message::Columnar(b) => {
                // Column-path delivery: one atomic add per batch; rows are
                // materialized only in Collect mode.
                shared.count.fetch_add(b.len() as u64, Ordering::Relaxed);
                for i in 0..b.len() {
                    n += 1;
                    #[cfg(feature = "invariant-checks")]
                    assert!(
                        !enforce_floor || b.ts[i] >= sink_wm,
                        "invariant violation: sink received tuple at {:?} behind merged watermark {sink_wm:?}",
                        b.ts[i]
                    );
                    if b.wall[i] > 0 && n % shared.stride as u64 == 0 {
                        let now = epoch.elapsed().as_nanos() as u64;
                        shared
                            .latencies_ns
                            .lock()
                            .push(now.saturating_sub(b.wall[i]));
                    }
                    if shared.mode == SinkMode::Collect {
                        shared.tuples.lock().push(b.tuple_at(i));
                    }
                }
            }
            Message::Watermark(ts) => {
                table.update(env.port as usize, env.chan as usize, ts);
                let m = table.min();
                if m > sink_wm {
                    sink_wm = m;
                }
            }
            Message::End => {
                table.end(env.port as usize, env.chan as usize);
                if table.all_ended() {
                    break;
                }
            }
        }
    }
    istats.note_queue_depth(rx.len());
    istats.records_in.fetch_add(n, Ordering::Relaxed);
}
