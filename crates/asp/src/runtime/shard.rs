//! Shared-nothing key sharding with adaptive hot-slot rebalancing.
//!
//! A node marked [`crate::graph::GraphBuilder::shard_node`] runs as `N`
//! *shard workers*: ordinary operator instances that each own a disjoint
//! set of key *slots*. Keys hash into [`SHARD_SLOTS`] fixed slots
//! ([`slot_of`]), and a shared [`ShardPlan`] maps each slot to its owning
//! shard instance. Senders route through a cached copy of that table, so
//! the steady-state tuple path costs one array index more than plain hash
//! partitioning.
//!
//! ## Migration protocol
//!
//! The rebalancer moves one slot at a time, drain → handoff → redirect:
//!
//! 1. **Publish.** The rebalancer records the [`Migration`] in the plan's
//!    registry, flips the slot's table entry to the target shard, and bumps
//!    `version` (registry strictly before version, so an observer of the
//!    new version always finds the migration).
//! 2. **Drain + cut over.** Each sender observes the new version at its
//!    next buffering/flush call, flushes everything routed under the *old*
//!    table, broadcasts [`super::Message::ShardMarker`] to every
//!    destination instance, refreshes its cached table, and **freezes
//!    watermark emission** on that route until the migration completes
//!    (deferring a watermark is always safe — it is a lower-bound
//!    promise). Channel FIFO then gives every receiver the same per-channel
//!    prefix of tuples *and watermarks* up to the marker, and nothing
//!    after it.
//! 3. **Handoff.** When the source shard has seen the marker (or `End`) on
//!    every live input channel, its per-key state for the slot can no
//!    longer grow: it extracts the slot's operator state
//!    ([`crate::operator::Operator::extract_shard`]) and sends it to the
//!    target instance's inbox as [`super::Message::ShardHandoff`].
//! 4. **Absorb + redirect.** The target stashes post-marker tuples for the
//!    in-flight slot (their late-drop verdicts are decided at arrival, so
//!    replay order equals arrival order), and absorbs the handoff only
//!    once *it* has seen the marker on every live channel too. At that
//!    point both sides have identical per-channel watermark tables — the
//!    frozen pre-marker values — hence identical merged clocks, so the
//!    handoff composes without loss or duplication (see
//!    `WindowJoinOp::absorb_shard` for the window-alignment argument).
//!    It then replays the stash in arrival order and marks the migration
//!    `completed`, which unfreezes the senders' watermarks.
//!
//! Migrations are fully serialized per plan (`completed == version` gates
//! the next one), and a slot maps to exactly one shard at every version,
//! so per-key delivery stays in order end to end.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration as StdDuration;

use parking_lot::Mutex;

/// Number of fixed key slots per sharded node. Keys hash into slots and
/// slots map to shards, so the rebalancer moves key *groups* with a bounded
/// table instead of tracking individual keys. 64 slots keeps the table in
/// one cache line per shard while still splitting hot shards meaningfully
/// for realistic shard counts (≤ 16).
pub const SHARD_SLOTS: usize = 64;

/// Fewest routed tuples a rebalance tick must have observed before it acts
/// — avoids thrashing on startup noise.
const MIN_TICK_TRAFFIC: u64 = 1024;

/// A shard must carry more than this multiple of the mean load before the
/// rebalancer migrates its hottest slot away.
const HOT_FACTOR: f64 = 1.5;

/// Deterministic key → slot mapping (same multiply-shift family as
/// [`super::key_partition`], so slot spread matches the plain hash
/// exchange's key spread).
#[inline]
pub fn slot_of(key: u64) -> usize {
    let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 17) % SHARD_SLOTS as u64) as usize
}

/// One in-flight slot migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Migration {
    /// Plan version this migration was published under.
    pub version: u64,
    /// The slot being moved.
    pub slot: usize,
    /// Shard instance giving the slot up.
    pub from: usize,
    /// Shard instance taking the slot over.
    pub to: usize,
}

/// Shared routing state of one sharded node: the slot → shard table, the
/// migration registry, and per-slot traffic gauges feeding the rebalancer.
#[derive(Debug)]
pub struct ShardPlan {
    /// Shard (instance) count of the node.
    pub shards: usize,
    /// slot → owning shard instance. Readers snapshot this into a plain
    /// array once per observed version; it changes only at a version bump.
    slots: Vec<AtomicU32>,
    /// Bumped once per published migration. Senders compare against their
    /// last observed value on the buffering path.
    version: AtomicU64,
    /// Highest version whose migration has been fully absorbed. Migrations
    /// are serialized: the rebalancer publishes version `v+1` only when
    /// `completed == version == v`.
    completed: AtomicU64,
    /// In-flight migration, present from publish until absorb.
    registry: Mutex<Option<Migration>>,
    /// Tuples routed per slot since the last rebalance tick (reset on
    /// read). Senders accumulate locally and publish on flush, so the
    /// tuple path stays free of shared-atomic traffic.
    traffic: Vec<AtomicU64>,
    /// Whether this node's operator supports live state handoff
    /// ([`crate::operator::Operator::shard_handoff_supported`]). Set once
    /// at spawn; statically sharded nodes whose operator cannot hand off
    /// simply never migrate.
    migratable: AtomicBool,
    /// Completed migrations, for [`super::NodeStats::shard_migrations`].
    migrations_done: AtomicU64,
}

impl ShardPlan {
    /// A fresh plan with slots dealt round-robin over `shards`.
    pub fn new(shards: usize) -> Arc<Self> {
        Arc::new(ShardPlan {
            shards,
            slots: (0..SHARD_SLOTS)
                .map(|i| AtomicU32::new((i % shards) as u32))
                .collect(),
            version: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            registry: Mutex::new(None),
            traffic: (0..SHARD_SLOTS).map(|_| AtomicU64::new(0)).collect(),
            migratable: AtomicBool::new(false),
            migrations_done: AtomicU64::new(0),
        })
    }

    /// Current table version (senders poll this on the buffering path).
    #[inline]
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Highest fully absorbed version.
    #[inline]
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Acquire)
    }

    /// Completed migrations so far.
    pub fn migrations_done(&self) -> u64 {
        self.migrations_done.load(Ordering::Relaxed)
    }

    /// Declare whether the node's operator supports live handoff.
    pub fn set_migratable(&self, yes: bool) {
        self.migratable.store(yes, Ordering::Relaxed);
    }

    /// Copy the slot table into a plain array for cached routing.
    pub fn snapshot_slots(&self) -> Vec<u32> {
        self.slots
            .iter()
            .map(|s| s.load(Ordering::Acquire))
            .collect()
    }

    /// The in-flight migration, if any.
    pub fn migration(&self) -> Option<Migration> {
        *self.registry.lock()
    }

    /// Publish per-slot traffic accumulated by a sender.
    pub fn add_traffic(&self, counts: &[u64; SHARD_SLOTS]) {
        for (slot, &n) in counts.iter().enumerate() {
            if n > 0 {
                self.traffic[slot].fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Publish a migration: registry first, then the slot flip, then the
    /// version bump (release) — an observer of the new version is
    /// guaranteed to see both the registry entry and the new table.
    ///
    /// Returns `false` (publishing nothing) when a migration is still in
    /// flight or `to` already owns the slot. Serialization is enforced
    /// *here*, under the registry lock, not just by the rebalancer's
    /// courtesy check: a superseding publish mid-drain would strand frozen
    /// senders forever (`completed` could never catch up to the overwritten
    /// version) and leak the target's stash for the first migration.
    #[must_use]
    pub fn begin_migration(&self, slot: usize, to: usize) -> bool {
        let mut registry = self.registry.lock();
        let version = self.version.load(Ordering::Acquire);
        if registry.is_some() || self.completed.load(Ordering::Acquire) != version {
            return false;
        }
        let from = self.slots[slot].load(Ordering::Acquire) as usize;
        if from == to {
            return false;
        }
        let version = version + 1;
        *registry = Some(Migration {
            version,
            slot,
            from,
            to,
        });
        self.slots[slot].store(to as u32, Ordering::Release);
        self.version.store(version, Ordering::Release);
        true
    }

    /// Target-side acknowledgement that version `v`'s handoff is absorbed;
    /// unfreezes sender watermarks and re-arms the rebalancer.
    ///
    /// Only the entry published under `v` may clear the registry, and
    /// `completed` advances monotonically — a stale or duplicate
    /// acknowledgement must neither destroy a newer in-flight migration's
    /// registry entry nor regress the absorbed horizon.
    pub fn complete(&self, v: u64) {
        let mut registry = self.registry.lock();
        if registry.is_some_and(|m| m.version == v) {
            *registry = None;
        }
        if self.completed.fetch_max(v, Ordering::AcqRel) < v {
            self.migrations_done.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// One rebalancer decision: if the hottest shard carries more than
    /// [`HOT_FACTOR`] × the mean load and owns more than one slot, move its
    /// hottest slot to the least-loaded shard. Returns the published
    /// migration, if any.
    fn rebalance_tick(&self) -> Option<Migration> {
        if !self.migratable.load(Ordering::Relaxed) || self.shards < 2 {
            return None;
        }
        // Serialize: never publish while a migration is still in flight.
        if self.completed() != self.version() {
            return None;
        }
        let counts: Vec<u64> = self
            .traffic
            .iter()
            .map(|c| c.swap(0, Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total < MIN_TICK_TRAFFIC {
            return None;
        }
        let slots = self.snapshot_slots();
        let mut load = vec![0u64; self.shards];
        let mut owned = vec![0usize; self.shards];
        for (slot, &n) in counts.iter().enumerate() {
            load[slots[slot] as usize] += n;
            owned[slots[slot] as usize] += 1;
        }
        let hot = (0..self.shards).max_by_key(|&s| load[s])?;
        let cold = (0..self.shards).min_by_key(|&s| load[s])?;
        let mean = total as f64 / self.shards as f64;
        if (load[hot] as f64) <= HOT_FACTOR * mean || owned[hot] < 2 || hot == cold {
            return None;
        }
        // Hottest slot owned by the hot shard — but never one that alone
        // wouldn't improve the balance.
        let slot = (0..SHARD_SLOTS)
            .filter(|&s| slots[s] as usize == hot)
            .max_by_key(|&s| counts[s])?;
        if counts[slot] == 0 || load[cold] + counts[slot] >= load[hot] {
            return None;
        }
        if !self.begin_migration(slot, cold) {
            return None;
        }
        self.migration()
    }
}

/// A slot's extracted operator state in flight from source to target shard.
pub struct HandoffPayload {
    /// Plan version of the migration this payload belongs to.
    pub version: u64,
    /// The migrated slot.
    pub slot: usize,
    /// Opaque operator state ([`crate::operator::Operator::extract_shard`]).
    pub state: Box<dyn std::any::Any + Send>,
}

/// Background rebalancer: wakes every `interval`, gives each plan one
/// [`ShardPlan::rebalance_tick`], and exits when `done` flips.
pub fn rebalance_loop(
    plans: Vec<Arc<ShardPlan>>,
    interval: StdDuration,
    done: Arc<AtomicBool>,
    log: Arc<crate::obs::EventLog>,
) {
    while !done.load(Ordering::Relaxed) {
        std::thread::sleep(interval);
        for plan in &plans {
            if let Some(m) = plan.rebalance_tick() {
                log.emit(
                    crate::obs::Level::Info,
                    "rebalancer",
                    format!(
                        "migrating slot {} from shard {} to shard {} (version {})",
                        m.slot, m.from, m.to, m.version
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_cover_all_shards_initially() {
        let plan = ShardPlan::new(3);
        let slots = plan.snapshot_slots();
        for s in 0..3u32 {
            assert!(slots.contains(&s));
        }
        assert!(slots.iter().all(|&s| s < 3));
    }

    #[test]
    fn migration_publish_orders_registry_before_version() {
        let plan = ShardPlan::new(2);
        let slot = (0..SHARD_SLOTS)
            .find(|&s| plan.snapshot_slots()[s] == 0)
            .expect("shard 0 owns slots");
        assert!(plan.begin_migration(slot, 1));
        assert_eq!(plan.version(), 1);
        let m = plan.migration().expect("registry populated");
        assert_eq!((m.slot, m.from, m.to, m.version), (slot, 0, 1, 1));
        assert_eq!(plan.snapshot_slots()[slot], 1);
        plan.complete(1);
        assert_eq!(plan.completed(), 1);
        assert_eq!(plan.migration(), None);
        assert_eq!(plan.migrations_done(), 1);
    }

    #[test]
    fn rebalance_moves_hot_slot_to_cold_shard() {
        let plan = ShardPlan::new(2);
        plan.set_migratable(true);
        // All traffic on one slot of shard 0 → that slot must move to 1.
        let hot_slot = (0..SHARD_SLOTS)
            .find(|&s| plan.snapshot_slots()[s] == 0)
            .expect("shard 0 owns slots");
        let mut counts = [0u64; SHARD_SLOTS];
        counts[hot_slot] = MIN_TICK_TRAFFIC;
        // A little background load elsewhere on shard 0 keeps `owned ≥ 2`
        // meaningful without changing the hottest slot.
        let other = (0..SHARD_SLOTS)
            .find(|&s| s != hot_slot && plan.snapshot_slots()[s] == 0)
            .expect("shard 0 owns ≥ 2 slots");
        counts[other] = 1;
        plan.add_traffic(&counts);
        let m = plan.rebalance_tick().expect("hot slot migrates");
        assert_eq!((m.slot, m.from, m.to), (hot_slot, 0, 1));
        // In-flight migration blocks the next tick.
        plan.add_traffic(&counts);
        assert_eq!(plan.rebalance_tick(), None);
        plan.complete(m.version);
        assert_eq!(plan.completed(), plan.version());
    }

    #[test]
    fn rebalance_ignores_noise_and_balanced_load() {
        let plan = ShardPlan::new(2);
        plan.set_migratable(true);
        // Below the traffic floor: no action.
        let mut counts = [0u64; SHARD_SLOTS];
        counts[0] = MIN_TICK_TRAFFIC / 2;
        plan.add_traffic(&counts);
        assert_eq!(plan.rebalance_tick(), None);
        // Perfectly balanced load: no action.
        let counts = [MIN_TICK_TRAFFIC; SHARD_SLOTS];
        plan.add_traffic(&counts);
        assert_eq!(plan.rebalance_tick(), None);
    }

    #[test]
    fn superseding_publish_is_refused_mid_flight() {
        let plan = ShardPlan::new(2);
        let owned_by_0: Vec<usize> = (0..SHARD_SLOTS)
            .filter(|&s| plan.snapshot_slots()[s] == 0)
            .collect();
        assert!(plan.begin_migration(owned_by_0[0], 1));
        // A second publish while v1 is still draining must be refused — it
        // would orphan v1's frozen senders and in-flight stash.
        assert!(!plan.begin_migration(owned_by_0[1], 1));
        assert_eq!(plan.version(), 1);
        let m = plan.migration().expect("v1 registry entry intact");
        assert_eq!((m.version, m.slot), (1, owned_by_0[0]));
        // Migrating a slot onto its current owner is likewise a no-op.
        plan.complete(1);
        assert!(!plan.begin_migration(owned_by_0[0], 1));
        assert_eq!(plan.version(), 1);
        // Once v1 is absorbed, the next publish proceeds.
        assert!(plan.begin_migration(owned_by_0[1], 1));
        assert_eq!(plan.version(), 2);
    }

    #[test]
    fn stale_complete_does_not_clear_newer_registry() {
        let plan = ShardPlan::new(2);
        let owned_by_0: Vec<usize> = (0..SHARD_SLOTS)
            .filter(|&s| plan.snapshot_slots()[s] == 0)
            .collect();
        assert!(plan.begin_migration(owned_by_0[0], 1));
        plan.complete(1);
        assert!(plan.begin_migration(owned_by_0[1], 1));
        // A duplicate acknowledgement of v1 arrives after v2 published: it
        // must neither clear v2's registry entry nor regress `completed`,
        // and must not double-count the migration.
        plan.complete(1);
        let m = plan.migration().expect("v2 registry entry intact");
        assert_eq!(m.version, 2);
        assert_eq!(plan.completed(), 1);
        assert_eq!(plan.migrations_done(), 1);
        plan.complete(2);
        assert_eq!(plan.completed(), 2);
        assert_eq!(plan.migrations_done(), 2);
        assert_eq!(plan.migration(), None);
    }
}
