//! Bounded-exhaustive schedule exploration: depth-first search over the
//! enabled-transition tree with sleep-set (DPOR-lite) pruning and
//! state-hash deduplication, under a wall-clock/state cap.
//!
//! The search is *replay-based*: operators are not cloneable, so instead of
//! snapshotting worlds the explorer rebuilds each frontier node by
//! replaying its schedule prefix from scratch. For the intended configs
//! (≤ 8 events, 1–2 migrations) a replay is a few dozen cheap steps, and
//! the cost is dwarfed by the pruning it buys.
//!
//! Soundness notes:
//!
//! * **Dedup** merges nodes whose [`World::state_hash`] agrees; operator
//!   state is represented by per-instance op-log hashes (equal op logs ⇒
//!   equal operator state ⇒ equal futures), so merging never hides a
//!   distinct outcome.
//! * **Sleep sets** use the textbook rule (a child inherits the parent's
//!   sleep set plus its earlier siblings, minus transitions dependent with
//!   the taken one) with a deliberately conservative independence relation
//!   ([`World::independent`]). Because naive caching is unsound *combined*
//!   with sleep sets, the visited key hashes the sleep set alongside the
//!   state — slightly fewer merges, no missed schedules.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use super::model::{oracle_sink, SimConfig, Transition, World};
use super::replay::Schedule;

/// Exploration limits.
#[derive(Debug, Clone, Copy)]
pub struct ExploreOpts {
    /// Wall-clock cap; the search reports `capped` when it runs out.
    pub time_cap: StdDuration,
    /// Cap on distinct states visited.
    pub max_states: u64,
}

impl Default for ExploreOpts {
    fn default() -> Self {
        ExploreOpts {
            time_cap: StdDuration::from_secs(30),
            max_states: 5_000_000,
        }
    }
}

/// A failing schedule with its diagnosis and full deterministic trace.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The exact interleaving that failed (serializable for replay).
    pub schedule: Schedule,
    /// What went wrong.
    pub message: String,
    /// The run's event log up to (and including) the failure.
    pub trace: String,
}

/// Search statistics and outcome.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Distinct states visited (post-dedup).
    pub states: u64,
    /// Tree edges expanded (scheduled child transitions).
    pub transitions: u64,
    /// Complete schedules that reached a final state.
    pub schedules: u64,
    /// Frontier nodes merged into an already-visited state.
    pub dedup_pruned: u64,
    /// Enabled transitions skipped by sleep sets.
    pub sleep_pruned: u64,
    /// Longest schedule prefix reached.
    pub max_depth: usize,
    /// Whether a cap cut the search short of exhaustiveness.
    pub capped: bool,
    /// First invariant violation found, if any (the search stops there).
    pub violation: Option<Violation>,
}

impl ExploreReport {
    /// True when the search covered the whole (pruned) schedule space
    /// without finding a violation.
    pub fn exhaustive_and_clean(&self) -> bool {
        !self.capped && self.violation.is_none()
    }
}

fn sleep_hash(sleep: &[Transition]) -> u64 {
    let mut h = DefaultHasher::new();
    sleep.hash(&mut h);
    h.finish()
}

/// Replay `prefix` on a fresh world. Any step error is an invariant
/// violation surfaced with the offending prefix as the failing schedule.
fn replay(cfg: &Arc<SimConfig>, prefix: &[Transition]) -> Result<World, Violation> {
    let mut w = World::new(Arc::clone(cfg), false);
    for &t in prefix {
        if let Err(message) = w.step(t) {
            return Err(Violation {
                schedule: Schedule(prefix.to_vec()),
                message,
                trace: w.trace().to_string(),
            });
        }
    }
    Ok(w)
}

/// Exhaustively explore `cfg`'s schedule space (up to the caps), checking
/// every complete schedule against the protocol invariants and the
/// single-shard oracle. Stops at the first violation.
pub fn explore(cfg: &SimConfig, opts: &ExploreOpts) -> Result<ExploreReport, String> {
    cfg.validate()?;
    let cfg = Arc::new(cfg.clone());
    let oracle = {
        // The oracle ignores the seeded bug: it defines correct semantics.
        let mut clean = (*cfg).clone();
        clean.seed_bug = None;
        oracle_sink(&Arc::new(clean))?
    };

    let started = Instant::now();
    let mut report = ExploreReport::default();
    let mut visited: HashSet<(u64, u64)> = HashSet::new();
    // DFS work stack of (schedule prefix, sleep set). Entries own their
    // prefixes; for the intended config sizes the stack stays small.
    let mut stack: Vec<(Vec<Transition>, Vec<Transition>)> = vec![(Vec::new(), Vec::new())];

    while let Some((prefix, sleep)) = stack.pop() {
        if started.elapsed() > opts.time_cap || report.states >= opts.max_states {
            report.capped = true;
            break;
        }
        let w = match replay(&cfg, &prefix) {
            Ok(w) => w,
            Err(v) => {
                report.violation = Some(v);
                break;
            }
        };
        if !visited.insert((w.state_hash(), sleep_hash(&sleep))) {
            report.dedup_pruned += 1;
            continue;
        }
        report.states += 1;
        report.max_depth = report.max_depth.max(prefix.len());

        if w.done() {
            report.schedules += 1;
            if let Err(message) = w.final_check(&oracle) {
                report.violation = Some(Violation {
                    schedule: Schedule(prefix),
                    message,
                    trace: w.trace().to_string(),
                });
                break;
            }
            continue;
        }
        let enabled = w.enabled();
        if enabled.is_empty() {
            report.violation = Some(Violation {
                schedule: Schedule(prefix),
                message: "deadlock: run incomplete but no transition enabled".to_string(),
                trace: w.trace().to_string(),
            });
            break;
        }
        let explorable: Vec<Transition> = enabled
            .iter()
            .copied()
            .filter(|t| !sleep.contains(t))
            .collect();
        report.sleep_pruned += (enabled.len() - explorable.len()) as u64;
        // Push children in reverse so the first transition is explored
        // first (pure DFS order, deterministic).
        for k in (0..explorable.len()).rev() {
            let taken = explorable[k];
            let mut child_sleep: Vec<Transition> = sleep
                .iter()
                .copied()
                .chain(explorable[..k].iter().copied())
                .filter(|&s| w.independent(s, taken))
                .collect();
            child_sleep.sort_unstable();
            child_sleep.dedup();
            let mut child = prefix.clone();
            child.push(taken);
            report.transitions += 1;
            stack.push((child, child_sleep));
        }
    }
    Ok(report)
}

/// Re-run one exact schedule (e.g. parsed from a regression file) and
/// report the outcome: `Ok(trace)` when every invariant holds, or the
/// violation when it reproduces.
pub fn run_schedule(cfg: &SimConfig, schedule: &Schedule) -> Result<String, Violation> {
    let cfg = Arc::new(cfg.clone());
    let oracle = {
        let mut clean = (*cfg).clone();
        clean.seed_bug = None;
        oracle_sink(&Arc::new(clean)).map_err(|message| Violation {
            schedule: schedule.clone(),
            message,
            trace: String::new(),
        })?
    };
    let mut w = replay(&cfg, &schedule.0)?;
    // Deterministically finish a partial schedule (replay files store the
    // prefix up to the failure; the violation fires during it).
    loop {
        let enabled = w.enabled();
        let Some(&t) = enabled.first() else { break };
        if let Err(message) = w.step(t) {
            return Err(Violation {
                schedule: schedule.clone(),
                message,
                trace: w.trace().to_string(),
            });
        }
    }
    if !w.done() {
        return Err(Violation {
            schedule: schedule.clone(),
            message: "deadlock: run incomplete but no transition enabled".to_string(),
            trace: w.trace().to_string(),
        });
    }
    if let Err(message) = w.final_check(&oracle) {
        return Err(Violation {
            schedule: schedule.clone(),
            message,
            trace: w.trace().to_string(),
        });
    }
    Ok(w.trace().to_string())
}
