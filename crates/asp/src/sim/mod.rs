//! Deterministic virtual scheduler + bounded model checker for the shard
//! migration protocol (see `asp::runtime::shard` for the protocol itself).
//!
//! The runtime's oracles (`tests/shard_oracle.rs`) *sample* thread
//! interleavings; this module *enumerates* them. Small scenarios — 2–3
//! shard instances, ≤ 8 events, 1–2 migrations — are modeled as an
//! explicit state machine whose transitions are the protocol's actual
//! units of concurrency: a sender executing its next act (observing the
//! placement table first, exactly like the real buffering path), an
//! instance receiving the head of one FIFO lane, and the rebalancer
//! publishing a scripted migration through the *real* `ShardPlan`
//! (`begin_migration`/`complete`), against the *real* [`Operator`]
//! implementations (`WindowJoinOp`, `IntervalJoinOp`).
//!
//! [`explore`] walks every schedule depth-first with sleep-set (DPOR-lite)
//! pruning and state-hash deduplication under a time cap, asserting on
//! every complete schedule:
//!
//! * the sink multiset equals a single-shard oracle (no tuple lost or
//!   duplicated),
//! * per-channel watermarks never regress across freeze/thaw and no input
//!   ever turns late (monotonicity),
//! * stashes fully drain, handoffs are absorbed, deferred `End`s resolve
//!   at the merged clock,
//! * the placement table converges (`completed == version`).
//!
//! A failing schedule serializes to a replay file
//! ([`Schedule::render_regression`]) that re-runs the exact interleaving
//! with a byte-identical trace. Seeded bugs ([`SeedBug`]) exist to prove
//! the checker catches interleaving-dependent defects; the real runtime
//! has no such flags.
//!
//! Run it locally: `cargo run --release -p bench --bin sim-explore`.
//!
//! [`Operator`]: crate::operator::Operator

mod explore;
mod model;
mod replay;

pub use explore::{explore, run_schedule, ExploreOpts, ExploreReport, Violation};
pub use model::{
    oracle_sink, CanonRow, MigrationSpec, OpSpec, SeedBug, SenderAct, SimConfig, Transition, World,
};
pub use replay::Schedule;

use crate::runtime::shard::slot_of;

/// Smallest key (≥ 1) whose slot the initial round-robin placement deals
/// to `owner`, excluding keys whose slot collides with one in `taken`.
fn key_owned_by(instances: usize, owner: usize, taken: &[u64]) -> u64 {
    (1u64..)
        .find(|&k| {
            slot_of(k) % instances == owner && taken.iter().all(|&t| slot_of(t) != slot_of(k))
        })
        .unwrap_or(1)
}

/// 2 instances, 2 keys, 1 migration: the canonical tumbling window-join
/// scenario (two pairs, one key's slot migrating mid-stream).
pub fn config_small_window_join(seed_bug: Option<SeedBug>) -> SimConfig {
    let a = key_owned_by(2, 0, &[]);
    let b = key_owned_by(2, 1, &[a]);
    SimConfig {
        name: "small-window-join".to_string(),
        instances: 2,
        op: OpSpec::WindowJoin {
            size_min: 10,
            slide_min: 10,
        },
        senders: vec![
            vec![
                SenderAct::Tuple { key: a, ts_min: 1 },
                SenderAct::Watermark { ts_min: 2 },
                SenderAct::Tuple { key: b, ts_min: 3 },
                SenderAct::Watermark { ts_min: 12 },
                SenderAct::End,
            ],
            vec![
                SenderAct::Tuple { key: a, ts_min: 2 },
                SenderAct::Tuple { key: b, ts_min: 4 },
                SenderAct::Watermark { ts_min: 12 },
                SenderAct::End,
            ],
        ],
        migrations: vec![MigrationSpec { key: a, to: 1 }],
        seed_bug,
    }
}

/// 2 instances, 1 key, 1 migration racing the streams' `End`s: most
/// schedules resolve the migration via deferred-`End` promotion rather
/// than markers.
pub fn config_end_race(seed_bug: Option<SeedBug>) -> SimConfig {
    let a = key_owned_by(2, 0, &[]);
    SimConfig {
        name: "end-race".to_string(),
        instances: 2,
        op: OpSpec::WindowJoin {
            size_min: 10,
            slide_min: 10,
        },
        senders: vec![
            vec![
                SenderAct::Tuple { key: a, ts_min: 1 },
                SenderAct::Watermark { ts_min: 2 },
                SenderAct::End,
            ],
            vec![SenderAct::Tuple { key: a, ts_min: 2 }, SenderAct::End],
        ],
        migrations: vec![MigrationSpec { key: a, to: 1 }],
        seed_bug,
    }
}

/// 2 instances, interval join (the second stateful operator with live
/// handoff), 1 migration.
pub fn config_interval_join(seed_bug: Option<SeedBug>) -> SimConfig {
    let a = key_owned_by(2, 0, &[]);
    SimConfig {
        name: "interval-join".to_string(),
        instances: 2,
        op: OpSpec::IntervalJoin { span_min: 4 },
        senders: vec![
            vec![
                SenderAct::Tuple { key: a, ts_min: 1 },
                SenderAct::Tuple { key: a, ts_min: 6 },
                SenderAct::Watermark { ts_min: 7 },
                SenderAct::End,
            ],
            vec![
                SenderAct::Tuple { key: a, ts_min: 3 },
                SenderAct::Watermark { ts_min: 5 },
                SenderAct::Tuple { key: a, ts_min: 8 },
                SenderAct::End,
            ],
        ],
        migrations: vec![MigrationSpec { key: a, to: 1 }],
        seed_bug,
    }
}

/// 2 instances, 2 serialized migrations in opposite directions — the
/// scheduler-driven regression for the supersession fix in
/// `ShardPlan::begin_migration`/`complete`: the second publish is only
/// enabled once the first migration fully resolves, and stale completions
/// cannot clear the newer registry entry.
pub fn config_two_migrations(seed_bug: Option<SeedBug>) -> SimConfig {
    let a = key_owned_by(2, 0, &[]);
    let b = key_owned_by(2, 1, &[a]);
    SimConfig {
        name: "two-migrations".to_string(),
        instances: 2,
        op: OpSpec::WindowJoin {
            size_min: 10,
            slide_min: 10,
        },
        senders: vec![
            vec![
                SenderAct::Tuple { key: a, ts_min: 1 },
                SenderAct::Watermark { ts_min: 2 },
                SenderAct::Tuple { key: b, ts_min: 3 },
                SenderAct::End,
            ],
            vec![SenderAct::Tuple { key: b, ts_min: 2 }, SenderAct::End],
        ],
        migrations: vec![
            MigrationSpec { key: a, to: 1 },
            MigrationSpec { key: b, to: 0 },
        ],
        seed_bug,
    }
}

/// Every named config, for the CI matrix and `sim-explore --all`.
pub fn all_configs() -> Vec<SimConfig> {
    vec![
        config_small_window_join(None),
        config_end_race(None),
        config_interval_join(None),
        config_two_migrations(None),
    ]
}

/// Look a named config up (the `sim-explore` CLI surface).
pub fn config_by_name(name: &str, seed_bug: Option<SeedBug>) -> Option<SimConfig> {
    match name {
        "small-window-join" => Some(config_small_window_join(seed_bug)),
        "end-race" => Some(config_end_race(seed_bug)),
        "interval-join" => Some(config_interval_join(seed_bug)),
        "two-migrations" => Some(config_two_migrations(seed_bug)),
        _ => None,
    }
}
