//! The virtual world: an explicit-state model of the shard-migration
//! protocol that reuses the *real* [`ShardPlan`] and the *real*
//! [`Operator`] implementations, replacing only threads and channels with
//! explicitly scheduled transitions.
//!
//! Fidelity notes (what maps to what in `asp::runtime`):
//!
//! * A **sender** models one upstream source pipeline's `Route` to the
//!   sharded node: cached slot table, `seen_version`, watermark freeze and
//!   the frozen-watermark stash (`RouteShard`). Every sender act first runs
//!   the shard observation (`observe_shard_cold`) exactly like the real
//!   buffering/flush path — thaw first, then marker broadcast + freeze on a
//!   new version. Batching is modeled at batch size 1.
//! * An **instance** models one shard worker: the per-(port, channel)
//!   watermark table, merged-clock firing, per-channel late-drop, and the
//!   receiver-side migration state (`ShardCtx`): marker need-set, stash,
//!   parked handoff, deferred Ends.
//! * A **queue** models one sender→instance mpsc lane (FIFO), plus one
//!   extra lane per instance for sibling handoff payloads.
//! * **Publish** drives the real [`ShardPlan::begin_migration`] with a
//!   scripted migration instead of the traffic heuristics, so the sim
//!   checks the protocol, not the rebalancing policy.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::event::{Event, EventType};
use crate::operator::{
    cross_join, IntervalBounds, IntervalJoinOp, Operator, VecCollector, WindowJoinOp,
};
use crate::runtime::shard::{slot_of, ShardPlan};
use crate::time::{Duration, Timestamp};
use crate::tuple::{TsRule, Tuple};
use crate::window::SlidingWindows;

/// One scripted action of a sender (an upstream source pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SenderAct {
    /// Emit a keyed tuple with the given event-time (minutes).
    Tuple {
        /// Partition key (also the event id).
        key: u64,
        /// Event time, in minutes.
        ts_min: i64,
    },
    /// Emit a punctuation watermark (minutes). Must be non-decreasing per
    /// sender, and no later tuple of the same sender may carry a smaller
    /// timestamp (the validated no-late-input regime in which shard-count
    /// invariance is exact — see `tests/shard_oracle.rs`).
    Watermark {
        /// Watermark position, in minutes.
        ts_min: i64,
    },
    /// End of stream; must be each script's final act.
    End,
}

/// Which stateful operator the sharded node runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpSpec {
    /// Keyed sliding-window join (tumbling when `slide == size`).
    WindowJoin {
        /// Window size in minutes.
        size_min: i64,
        /// Window slide in minutes.
        slide_min: i64,
    },
    /// Keyed interval join with symmetric (conjunction) bounds.
    IntervalJoin {
        /// Half-width of the symmetric interval, in minutes.
        span_min: i64,
    },
}

impl OpSpec {
    fn build(&self) -> Box<dyn Operator> {
        match *self {
            OpSpec::WindowJoin {
                size_min,
                slide_min,
            } => Box::new(WindowJoinOp::new(
                "⋈",
                SlidingWindows::new(
                    Duration::from_minutes(size_min),
                    Duration::from_minutes(slide_min),
                ),
                cross_join(),
                TsRule::Max,
            )),
            OpSpec::IntervalJoin { span_min } => Box::new(IntervalJoinOp::new(
                "i⋈",
                IntervalBounds::conjunction(Duration::from_minutes(span_min)),
                cross_join(),
                TsRule::Max,
            )),
        }
    }
}

/// One scripted migration, published in order by the `Publish` transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationSpec {
    /// The key whose slot moves (the whole slot migrates, as in the real
    /// rebalancer).
    pub key: u64,
    /// Destination instance.
    pub to: usize,
}

/// Deliberately seeded protocol bugs, for validating that the explorer
/// actually catches interleaving-dependent defects (and for nothing else —
/// the real runtime has no such flags).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedBug {
    /// The migration target drops its stash instead of replaying it after
    /// absorbing the handoff: post-cut-over tuples for the in-flight slot
    /// are silently lost on schedules where any were stashed.
    SkipStashReplay,
    /// `End`s promote the watermark table immediately even while a
    /// migration is tracked, instead of deferring to resolution: the
    /// extract/absorb clocks can diverge and the instance can finish with
    /// the migration still in flight.
    EagerEndPromotion,
}

/// A small, bounded scenario for the explorer.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Name used in reports and replay files.
    pub name: String,
    /// Shard instance count of the modeled node (2–4).
    pub instances: usize,
    /// The stateful operator under test.
    pub op: OpSpec,
    /// One script per input port (exactly 2: the join's left and right).
    pub senders: Vec<Vec<SenderAct>>,
    /// Scripted migrations, published serially by `Publish` transitions.
    pub migrations: Vec<MigrationSpec>,
    /// Optional seeded protocol bug (test-only).
    pub seed_bug: Option<SeedBug>,
}

impl SimConfig {
    /// Number of input ports (= sender count; one channel per port).
    pub fn ports(&self) -> usize {
        self.senders.len()
    }

    /// Check the scenario is well-formed for exact shard-count invariance:
    /// small bounds, terminated scripts, per-sender monotone watermarks,
    /// and no late input (every tuple at or above its sender's running
    /// watermark — freezes then only *delay* lateness verdicts, never flip
    /// one, so the single-instance oracle is schedule-invariant).
    pub fn validate(&self) -> Result<(), String> {
        if !(2..=4).contains(&self.instances) {
            return Err(format!("instances must be 2–4, got {}", self.instances));
        }
        if self.senders.len() != 2 {
            return Err(format!(
                "exactly 2 sender scripts required (join ports), got {}",
                self.senders.len()
            ));
        }
        let mut tuples = 0usize;
        for (s, script) in self.senders.iter().enumerate() {
            if script.last() != Some(&SenderAct::End) {
                return Err(format!("sender {s}: script must end with End"));
            }
            let mut wm = i64::MIN;
            for (k, act) in script.iter().enumerate() {
                match *act {
                    SenderAct::End if k + 1 != script.len() => {
                        return Err(format!("sender {s}: End before end of script"));
                    }
                    SenderAct::End => {}
                    SenderAct::Watermark { ts_min } => {
                        if ts_min < wm {
                            return Err(format!("sender {s}: watermark regresses at act {k}"));
                        }
                        wm = ts_min;
                    }
                    SenderAct::Tuple { key, ts_min } => {
                        if ts_min < wm {
                            return Err(format!(
                                "sender {s}: late tuple at act {k} (ts {ts_min}m < wm {wm}m)"
                            ));
                        }
                        if key > u64::from(u32::MAX) {
                            return Err(format!("sender {s}: key {key} exceeds u32 id space"));
                        }
                        tuples += 1;
                    }
                }
            }
        }
        if tuples > 8 {
            return Err(format!(
                "at most 8 tuples keep the state space bounded, got {tuples}"
            ));
        }
        if self.migrations.len() > 2 {
            return Err(format!(
                "at most 2 migrations, got {}",
                self.migrations.len()
            ));
        }
        // Replay the scripted publishes against the initial round-robin
        // placement: each must actually change its slot's owner.
        let mut owner: Vec<usize> = (0..crate::runtime::shard::SHARD_SLOTS)
            .map(|s| s % self.instances)
            .collect();
        for (k, m) in self.migrations.iter().enumerate() {
            if m.to >= self.instances {
                return Err(format!("migration {k}: target {} out of range", m.to));
            }
            let slot = slot_of(m.key);
            if owner[slot] == m.to {
                return Err(format!(
                    "migration {k}: key {} already owned by instance {}",
                    m.key, m.to
                ));
            }
            owner[slot] = m.to;
        }
        Ok(())
    }
}

/// One step of a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Transition {
    /// Sender `s` executes its next scripted act (observing the shard
    /// table first, like the real buffering path).
    Sender(usize),
    /// Instance `instance` receives the head message of `lane` (lanes
    /// `0..ports` are the per-sender channels; lane `ports` is the sibling
    /// handoff lane).
    Deliver {
        /// Receiving shard instance.
        instance: usize,
        /// Input lane (see above).
        lane: usize,
    },
    /// The rebalancer publishes the next scripted migration.
    Publish,
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Transition::Sender(s) => write!(f, "S{s}"),
            Transition::Deliver { instance, lane } => write!(f, "D{instance}.{lane}"),
            Transition::Publish => write!(f, "P"),
        }
    }
}

/// A sink row canonicalized for multiset comparison: key, working
/// timestamp, and the constituent events.
pub type CanonRow = (u64, i64, Vec<(u16, u32, i64)>);

/// One in-flight message (the sim's `Message` mirror; handoffs carry the
/// source's op-log hash so state deduplication stays sound).
enum Msg {
    Tuple(Tuple),
    Wm(Timestamp),
    Marker(u64),
    Handoff {
        version: u64,
        slot: usize,
        state: Box<dyn std::any::Any + Send>,
        src_oplog: u64,
    },
    End,
}

/// Sender-side route state (mirror of `RouteShard`).
struct SenderState {
    script: VecDeque<SenderAct>,
    cached_slots: Vec<u32>,
    seen_version: u64,
    frozen: bool,
    frozen_wm: Option<Timestamp>,
    ended: bool,
}

/// Receiver-side instance state (mirror of one shard worker's
/// `WatermarkTable` + `ShardCtx` + operator harness locals).
struct Inst {
    op: Box<dyn Operator>,
    /// wm\[port\] (single channel per port).
    wm: Vec<Timestamp>,
    ended: Vec<bool>,
    current_wm: Timestamp,
    forwarded: Timestamp,
    pending: Option<(crate::runtime::shard::Migration, BTreeSet<(usize, usize)>)>,
    stash: Vec<(usize, Tuple)>,
    parked: Option<(u64, usize, Box<dyn std::any::Any + Send>, u64)>,
    deferred_ends: Vec<(usize, usize)>,
    finished: bool,
    late: u64,
    /// Rolling hash over every state-mutating interaction with `op` (and
    /// the stash): two worlds with equal op-logs hold equal operator
    /// state, which is what makes state-hash merging sound without
    /// cloneable operators.
    oplog: u64,
}

impl Inst {
    fn live(&self) -> usize {
        self.ended.iter().filter(|e| !**e).count()
    }

    fn table_min(&self) -> Timestamp {
        self.wm.iter().copied().min().unwrap_or(Timestamp::MAX)
    }

    fn markers_complete(&self) -> bool {
        self.pending
            .as_ref()
            .is_some_and(|(_, need)| need.is_empty())
    }

    fn should_stash(&self, me: usize, key: u64) -> bool {
        self.pending
            .as_ref()
            .is_some_and(|(m, _)| m.to == me && slot_of(key) == m.slot)
    }

    fn log(&mut self, tag: u64, a: u64, b: u64, c: u64) {
        let mut h = DefaultHasher::new();
        (self.oplog, tag, a, b, c).hash(&mut h);
        self.oplog = h.finish();
    }
}

/// The complete explicit state of one scheduled run.
pub struct World {
    cfg: Arc<SimConfig>,
    plan: Arc<ShardPlan>,
    instances: usize,
    senders: Vec<SenderState>,
    /// queues\[instance\]\[lane\]; lane `ports` is the handoff lane.
    queues: Vec<Vec<VecDeque<Msg>>>,
    insts: Vec<Inst>,
    published: usize,
    sink: Vec<CanonRow>,
    trace: String,
}

impl World {
    /// Fresh world. `single` builds the 1-instance oracle twin (same
    /// scripts, no migrations).
    pub fn new(cfg: Arc<SimConfig>, single: bool) -> Self {
        let instances = if single { 1 } else { cfg.instances };
        let ports = cfg.ports();
        let plan = ShardPlan::new(instances);
        plan.set_migratable(true);
        let slots = plan.snapshot_slots();
        World {
            senders: cfg
                .senders
                .iter()
                .map(|script| SenderState {
                    script: script.iter().copied().collect(),
                    cached_slots: slots.clone(),
                    seen_version: 0,
                    frozen: false,
                    frozen_wm: None,
                    ended: false,
                })
                .collect(),
            queues: (0..instances)
                .map(|_| (0..=ports).map(|_| VecDeque::new()).collect())
                .collect(),
            insts: (0..instances)
                .map(|_| Inst {
                    op: cfg.op.build(),
                    wm: vec![Timestamp::MIN; ports],
                    ended: vec![false; ports],
                    current_wm: Timestamp::MIN,
                    forwarded: Timestamp::MIN,
                    pending: None,
                    stash: Vec::new(),
                    parked: None,
                    deferred_ends: Vec::new(),
                    finished: false,
                    late: 0,
                    oplog: 0,
                })
                .collect(),
            published: 0,
            sink: Vec::new(),
            trace: String::new(),
            instances,
            plan,
            cfg,
        }
    }

    /// The run's human-readable event log (deterministic per schedule; the
    /// replay round-trip asserts byte identity).
    pub fn trace(&self) -> &str {
        &self.trace
    }

    /// Sink rows so far, canonicalized and sorted (multiset semantics).
    pub fn sink_sorted(&self) -> Vec<CanonRow> {
        let mut v = self.sink.clone();
        v.sort();
        v
    }

    /// Enabled transitions in deterministic order: senders, then deliveries
    /// (instance-major, lane ascending), then publish.
    ///
    /// `Publish` is enabled only while the plan is idle (the real
    /// serialization gate) *and* some sender is still live — a published
    /// migration is then guaranteed to resolve, because every remaining
    /// sender act (including `End`) observes the new version first.
    pub fn enabled(&self) -> Vec<Transition> {
        let mut out = Vec::new();
        for (s, st) in self.senders.iter().enumerate() {
            if !st.script.is_empty() {
                out.push(Transition::Sender(s));
            }
        }
        for (i, lanes) in self.queues.iter().enumerate() {
            for (lane, q) in lanes.iter().enumerate() {
                if !q.is_empty() {
                    out.push(Transition::Deliver { instance: i, lane });
                }
            }
        }
        if self.published < self.cfg.migrations.len()
            && self.plan.completed() == self.plan.version()
            && self.senders.iter().any(|s| !s.ended)
        {
            out.push(Transition::Publish);
        }
        out
    }

    /// Whether the run is complete: every script consumed, every queue
    /// drained, every instance finished.
    pub fn done(&self) -> bool {
        self.senders.iter().all(|s| s.script.is_empty())
            && self.queues.iter().flatten().all(|q| q.is_empty())
            && self.insts.iter().all(|i| i.finished)
    }

    /// Execute one transition. `Err` is a protocol-invariant violation (or
    /// a corrupt replay schedule); the world must be discarded afterwards.
    pub fn step(&mut self, t: Transition) -> Result<(), String> {
        match t {
            Transition::Sender(s) => self.sender_step(s),
            Transition::Deliver { instance, lane } => self.deliver(instance, lane),
            Transition::Publish => self.publish(),
        }
    }

    fn tr(&mut self, line: String) {
        self.trace.push_str(&line);
        self.trace.push('\n');
    }

    /// Mirror of the sender-side `observe_shard_cold`: thaw first (release
    /// the withheld watermark), then on a new version flush + broadcast
    /// markers + refresh the cached table + freeze.
    fn observe_shard(&mut self, s: usize) {
        if self.senders[s].frozen && self.plan.completed() >= self.senders[s].seen_version {
            self.senders[s].frozen = false;
            if let Some(wm) = self.senders[s].frozen_wm.take() {
                self.tr(format!("S{s} thaw: releases wm={}m", wm.millis() / 60_000));
                self.broadcast_wm(s, wm);
            } else {
                self.tr(format!("S{s} thaw"));
            }
        }
        let v = self.plan.version();
        if v != self.senders[s].seen_version && !self.senders[s].frozen {
            for i in 0..self.instances {
                self.queues[i][s].push_back(Msg::Marker(v));
            }
            self.senders[s].cached_slots = self.plan.snapshot_slots();
            self.senders[s].seen_version = v;
            self.senders[s].frozen = true;
            self.tr(format!(
                "S{s} observes v{v}: markers broadcast, route frozen"
            ));
        }
    }

    fn broadcast_wm(&mut self, s: usize, wm: Timestamp) {
        for i in 0..self.instances {
            self.queues[i][s].push_back(Msg::Wm(wm));
        }
    }

    fn sender_step(&mut self, s: usize) -> Result<(), String> {
        let Some(act) = self.senders[s].script.pop_front() else {
            return Err(format!("schedule step S{s}: script exhausted"));
        };
        self.observe_shard(s);
        match act {
            SenderAct::Tuple { key, ts_min } => {
                let ts = Timestamp::from_minutes(ts_min);
                let dest = self.senders[s].cached_slots[slot_of(key)] as usize;
                #[allow(clippy::cast_possible_truncation)]
                let e = Event::new(EventType(s as u16), key as u32, ts, ts_min as f64);
                self.queues[dest][s].push_back(Msg::Tuple(Tuple::from_event(e)));
                self.tr(format!("S{s} tuple key={key} ts={ts_min}m -> i{dest}"));
            }
            SenderAct::Watermark { ts_min } => {
                let ts = Timestamp::from_minutes(ts_min);
                if self.senders[s].frozen {
                    let cur = self.senders[s].frozen_wm;
                    self.senders[s].frozen_wm = Some(cur.map_or(ts, |p| p.max(ts)));
                    self.tr(format!("S{s} wm={ts_min}m stashed (route frozen)"));
                } else {
                    self.broadcast_wm(s, ts);
                    self.tr(format!("S{s} wm={ts_min}m"));
                }
            }
            SenderAct::End => {
                for i in 0..self.instances {
                    self.queues[i][s].push_back(Msg::End);
                }
                self.senders[s].ended = true;
                self.tr(format!("S{s} end"));
            }
        }
        Ok(())
    }

    fn publish(&mut self) -> Result<(), String> {
        let Some(spec) = self.cfg.migrations.get(self.published).copied() else {
            return Err("schedule step P: no migration left to publish".to_string());
        };
        let slot = slot_of(spec.key);
        if !self.plan.begin_migration(slot, spec.to) {
            return Err("schedule step P: publish refused (migration in flight)".to_string());
        }
        self.published += 1;
        let m = self
            .plan
            .migration()
            .ok_or("published migration missing from registry")?;
        self.tr(format!(
            "P v{} slot {} : i{} -> i{}",
            m.version, m.slot, m.from, m.to
        ));
        Ok(())
    }

    /// Append the collector's emissions to the global sink; returns count.
    fn drain(&mut self, col: VecCollector) -> usize {
        let n = col.out.len();
        for t in col.out {
            self.sink.push((
                t.key,
                t.ts.millis(),
                t.events
                    .iter()
                    .map(|e| (e.etype.0, e.id, e.ts.millis()))
                    .collect(),
            ));
        }
        n
    }

    fn deliver(&mut self, i: usize, lane: usize) -> Result<(), String> {
        let Some(msg) = self.queues[i][lane].pop_front() else {
            return Err(format!("schedule step D{i}.{lane}: lane empty"));
        };
        if self.insts[i].finished {
            return Err(format!(
                "protocol violation: message delivered to finished instance i{i}"
            ));
        }
        let bug = self.cfg.seed_bug;
        match msg {
            Msg::Tuple(t) => {
                let inst = &mut self.insts[i];
                if t.ts < inst.wm[lane] {
                    // Validated configs have no late input in any schedule;
                    // a late verdict here is itself a protocol divergence.
                    inst.late += 1;
                    return Err(format!(
                        "protocol violation: tuple key={} ts={}m late on i{i} port {lane}",
                        t.key,
                        t.ts.millis() / 60_000
                    ));
                }
                if inst.should_stash(i, t.key) {
                    inst.log(1, lane as u64, t.key, t.ts.millis() as u64);
                    let line = format!(
                        "D{i}.{lane} tuple key={} ts={}m stashed",
                        t.key,
                        t.ts.millis() / 60_000
                    );
                    inst.stash.push((lane, t));
                    self.tr(line);
                    return Ok(());
                }
                inst.log(2, lane as u64, t.key, t.ts.millis() as u64);
                let (key, ts) = (t.key, t.ts.millis() / 60_000);
                let mut col = VecCollector::default();
                self.insts[i]
                    .op
                    .process(lane, t, &mut col)
                    .map_err(|e| format!("operator error on i{i}: {e}"))?;
                let n = self.drain(col);
                self.tr(format!("D{i}.{lane} tuple key={key} ts={ts}m +{n}"));
            }
            Msg::Wm(ts) => {
                let inst = &mut self.insts[i];
                if inst.ended[lane] {
                    return Err(format!(
                        "protocol violation: watermark after End on i{i} port {lane}"
                    ));
                }
                if ts < inst.wm[lane] {
                    return Err(format!(
                        "protocol violation: channel watermark regressed on i{i} port {lane} \
                         ({}m < {}m)",
                        ts.millis() / 60_000,
                        inst.wm[lane].millis() / 60_000
                    ));
                }
                inst.wm[lane] = ts;
                let n = self.promote_clock(i)?;
                self.tr(format!("D{i}.{lane} wm={}m +{n}", ts.millis() / 60_000));
            }
            Msg::Marker(v) => {
                self.begin_tracking(i, v);
                if let Some((m, need)) = &mut self.insts[i].pending {
                    if m.version == v {
                        need.remove(&(lane, 0));
                    }
                }
                self.tr(format!("D{i}.{lane} marker v{v}"));
                self.shard_progress(i)?;
            }
            Msg::Handoff {
                version,
                slot,
                state,
                src_oplog,
            } => {
                self.begin_tracking(i, version);
                self.insts[i].parked = Some((version, slot, state, src_oplog));
                self.tr(format!("D{i}.{lane} handoff v{version} slot {slot} parked"));
                self.shard_progress(i)?;
            }
            Msg::End => {
                let eager = bug == Some(SeedBug::EagerEndPromotion);
                if self.insts[i].pending.is_some() && !eager {
                    self.insts[i].deferred_ends.push((lane, 0));
                    if let Some((_, need)) = &mut self.insts[i].pending {
                        need.remove(&(lane, 0));
                    }
                    self.tr(format!("D{i}.{lane} end deferred (migration tracked)"));
                    self.shard_progress(i)?;
                } else {
                    if eager && self.insts[i].pending.is_some() {
                        // Seeded bug: satisfy the marker need-set but
                        // promote the table immediately anyway.
                        if let Some((_, need)) = &mut self.insts[i].pending {
                            need.remove(&(lane, 0));
                        }
                    }
                    let inst = &mut self.insts[i];
                    if !inst.ended[lane] {
                        inst.ended[lane] = true;
                        inst.wm[lane] = Timestamp::MAX;
                    }
                    let n = self.finish_or_promote(i)?;
                    self.tr(format!("D{i}.{lane} end +{n}"));
                    if eager {
                        self.shard_progress(i)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Mirror of `ShardCtx::begin_tracking`.
    fn begin_tracking(&mut self, i: usize, version: u64) {
        if self.insts[i].pending.is_some() || version <= self.plan.completed() {
            return;
        }
        let Some(mig) = self.plan.migration() else {
            return;
        };
        if mig.version != version {
            return;
        }
        let need: BTreeSet<(usize, usize)> = self.insts[i]
            .ended
            .iter()
            .enumerate()
            .filter(|(_, ended)| !**ended)
            .map(|(port, _)| (port, 0))
            .collect();
        self.insts[i].pending = Some((mig, need));
    }

    /// Merged-clock promotion after a watermark update (mirror of the
    /// `Message::Watermark` arm). Returns emitted-row count.
    fn promote_clock(&mut self, i: usize) -> Result<usize, String> {
        let m = self.insts[i].table_min();
        if m > self.insts[i].current_wm {
            self.insts[i].current_wm = m;
            self.insts[i].log(3, m.millis() as u64, 0, 0);
            let mut col = VecCollector::default();
            let f = self.insts[i]
                .op
                .on_watermark(m, &mut col)
                .map_err(|e| format!("operator error on i{i}: {e}"))?
                .min(m);
            if f > self.insts[i].forwarded {
                self.insts[i].forwarded = f;
            }
            return Ok(self.drain(col));
        }
        Ok(0)
    }

    /// End-path clock promotion + finish (mirror of the `Message::End`
    /// arm's tail). Returns emitted-row count.
    fn finish_or_promote(&mut self, i: usize) -> Result<usize, String> {
        let mut n = 0;
        let m = self.insts[i].table_min();
        let all_ended = self.insts[i].live() == 0;
        if !all_ended && m > self.insts[i].current_wm && m < Timestamp::MAX {
            self.insts[i].current_wm = m;
            self.insts[i].log(3, m.millis() as u64, 0, 0);
            let mut col = VecCollector::default();
            let f = self.insts[i]
                .op
                .on_watermark(m, &mut col)
                .map_err(|e| format!("operator error on i{i}: {e}"))?
                .min(m);
            if f > self.insts[i].forwarded {
                self.insts[i].forwarded = f;
            }
            n += self.drain(col);
        }
        if all_ended {
            self.insts[i].log(4, 0, 0, 0);
            let mut col = VecCollector::default();
            self.insts[i]
                .op
                .on_finish(&mut col)
                .map_err(|e| format!("operator error on i{i}: {e}"))?;
            n += self.drain(col);
            self.insts[i].finished = true;
        }
        Ok(n)
    }

    /// Mirror of `shard_progress`: drive the tracked migration forward
    /// after a marker/End/handoff event.
    fn shard_progress(&mut self, i: usize) -> Result<(), String> {
        if !self.insts[i].markers_complete() {
            return Ok(());
        }
        let Some((mig, need)) = self.insts[i].pending.take() else {
            return Ok(());
        };
        if mig.from == i {
            let slot = mig.slot;
            let Some(state) = self.insts[i].op.extract_shard(&move |k| slot_of(k) == slot) else {
                return Err(format!(
                    "protocol violation: i{i} migrated but operator lacks extract_shard"
                ));
            };
            self.insts[i].log(5, mig.version, slot as u64, 0);
            let src_oplog = self.insts[i].oplog;
            let ports = self.cfg.ports();
            self.queues[mig.to][ports].push_back(Msg::Handoff {
                version: mig.version,
                slot,
                state,
                src_oplog,
            });
            self.tr(format!(
                "i{i} extracts slot {} -> handoff to i{}",
                slot, mig.to
            ));
        } else if mig.to == i {
            let Some((version, slot, state, src_oplog)) = self.insts[i].parked.take() else {
                // Markers complete but the state is still in flight: keep
                // tracking (and keep deferring Ends) until it arrives.
                self.insts[i].pending = Some((mig, need));
                return Ok(());
            };
            if version != mig.version || slot != mig.slot {
                return Err(format!(
                    "protocol violation: handoff v{version}/slot {slot} mismatches \
                     migration v{}/slot {}",
                    mig.version, mig.slot
                ));
            }
            self.insts[i]
                .op
                .absorb_shard(state)
                .map_err(|e| format!("operator error on i{i}: {e}"))?;
            self.insts[i].log(6, version, slot as u64, src_oplog);
            let stash = std::mem::take(&mut self.insts[i].stash);
            let replayed = stash.len();
            if self.cfg.seed_bug == Some(SeedBug::SkipStashReplay) {
                self.tr(format!(
                    "i{i} absorbs slot {slot} [BUG: drops {replayed} stashed]"
                ));
            } else {
                let mut n = 0;
                for (port, t) in stash {
                    self.insts[i].log(2, port as u64, t.key, t.ts.millis() as u64);
                    let mut col = VecCollector::default();
                    self.insts[i]
                        .op
                        .process(port, t, &mut col)
                        .map_err(|e| format!("operator error on i{i}: {e}"))?;
                    n += self.drain(col);
                }
                self.tr(format!(
                    "i{i} absorbs slot {slot}, replays {replayed} stashed +{n}"
                ));
            }
            self.plan.complete(mig.version);
            self.tr(format!("i{i} completes v{}", mig.version));
        } else {
            self.tr(format!("i{i} stops tracking v{} (bystander)", mig.version));
        }
        // Resolution (all roles): promote deferred Ends, fire at the
        // recomputed merged clock.
        let deferred = std::mem::take(&mut self.insts[i].deferred_ends);
        for (port, _) in deferred {
            let inst = &mut self.insts[i];
            if !inst.ended[port] {
                inst.ended[port] = true;
                inst.wm[port] = Timestamp::MAX;
            }
        }
        let n = self.finish_or_promote(i)?;
        if n > 0 {
            self.tr(format!("i{i} fires at resolution +{n}"));
        }
        Ok(())
    }

    /// Protocol invariants at a completed run, vs. the single-shard oracle.
    pub fn final_check(&self, oracle: &[CanonRow]) -> Result<(), String> {
        for (i, inst) in self.insts.iter().enumerate() {
            if !inst.stash.is_empty() {
                return Err(format!(
                    "stash not drained: {} tuple(s) left on i{i}",
                    inst.stash.len()
                ));
            }
            if inst.parked.is_some() {
                return Err(format!("handoff never absorbed on i{i}"));
            }
            if inst.pending.is_some() {
                return Err(format!("migration still tracked on i{i} at end of run"));
            }
            if !inst.deferred_ends.is_empty() {
                return Err(format!("deferred Ends never promoted on i{i}"));
            }
            if inst.late > 0 {
                return Err(format!(
                    "{} late drop(s) on i{i} (oracle has none)",
                    inst.late
                ));
            }
        }
        if self.plan.completed() != self.plan.version() {
            return Err(format!(
                "placement versions did not converge (completed {} != version {})",
                self.plan.completed(),
                self.plan.version()
            ));
        }
        let got = self.sink_sorted();
        if got != oracle {
            return Err(format!(
                "sink diverges from single-shard oracle: got {} row(s), expected {}",
                got.len(),
                oracle.len()
            ));
        }
        Ok(())
    }

    /// Hash of the complete observable state (operator state represented
    /// by per-instance op-log hashes). Two worlds with equal hashes have
    /// equal futures and equal final-check outcomes, so the explorer can
    /// merge them.
    pub fn state_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        for s in &self.senders {
            (
                s.script.len(),
                s.seen_version,
                s.frozen,
                s.frozen_wm.map(|t| t.millis()),
                s.ended,
            )
                .hash(&mut h);
        }
        for lanes in &self.queues {
            for q in lanes {
                q.len().hash(&mut h);
                for m in q {
                    match m {
                        Msg::Tuple(t) => (0u8, t.key, t.ts.millis()).hash(&mut h),
                        Msg::Wm(ts) => (1u8, ts.millis()).hash(&mut h),
                        Msg::Marker(v) => (2u8, *v).hash(&mut h),
                        Msg::Handoff {
                            version,
                            slot,
                            src_oplog,
                            ..
                        } => (3u8, *version, *slot, *src_oplog).hash(&mut h),
                        Msg::End => 4u8.hash(&mut h),
                    }
                }
            }
        }
        (
            self.plan.version(),
            self.plan.completed(),
            self.plan.snapshot_slots(),
            self.published,
        )
            .hash(&mut h);
        for inst in &self.insts {
            (
                inst.wm.iter().map(|t| t.millis()).collect::<Vec<_>>(),
                &inst.ended,
                inst.current_wm.millis(),
                inst.forwarded.millis(),
                inst.finished,
                inst.late,
                inst.oplog,
            )
                .hash(&mut h);
            match &inst.pending {
                None => 0u8.hash(&mut h),
                Some((m, need)) => {
                    (1u8, m.version, m.slot, m.from, m.to).hash(&mut h);
                    for pc in need {
                        pc.hash(&mut h);
                    }
                }
            }
            inst.stash.len().hash(&mut h);
            for (port, t) in &inst.stash {
                (port, t.key, t.ts.millis()).hash(&mut h);
            }
            match &inst.parked {
                None => 0u8.hash(&mut h),
                Some((v, slot, _, src)) => (1u8, v, slot, src).hash(&mut h),
            }
            inst.deferred_ends.hash(&mut h);
        }
        h.finish()
    }

    /// Conservative independence of two enabled transitions *in this
    /// state* (for sleep-set pruning): both must commute at the state
    /// level. Only claimed when the plan is idle, neither is `Publish`,
    /// deliveries land on distinct migration-free instances with plain
    /// message heads, and senders are cold (no thaw/marker side effects).
    pub fn independent(&self, a: Transition, b: Transition) -> bool {
        if self.plan.completed() != self.plan.version() {
            return false;
        }
        let plain = |t: Transition| -> bool {
            match t {
                Transition::Publish => false,
                Transition::Sender(s) => {
                    let st = &self.senders[s];
                    !st.frozen && st.seen_version == self.plan.version()
                }
                Transition::Deliver { instance, lane } => {
                    lane < self.cfg.ports()
                        && self.insts[instance].pending.is_none()
                        && matches!(
                            self.queues[instance][lane].front(),
                            Some(Msg::Tuple(_) | Msg::Wm(_) | Msg::End)
                        )
                }
            }
        };
        if !plain(a) || !plain(b) {
            return false;
        }
        match (a, b) {
            (
                Transition::Deliver { instance: i1, .. },
                Transition::Deliver { instance: i2, .. },
            ) => i1 != i2,
            // Sender×Sender push to disjoint lanes; Sender×Deliver is a
            // tail-push against a head-pop of a non-empty queue.
            _ => a != b,
        }
    }
}

/// Run the 1-instance oracle twin under a canonical schedule (drain
/// deliveries first, then advance the lowest-index live sender) and return
/// its sorted sink. In the validated no-late-input regime this multiset is
/// schedule-invariant, so any deterministic schedule defines the reference.
pub fn oracle_sink(cfg: &Arc<SimConfig>) -> Result<Vec<CanonRow>, String> {
    let mut w = World::new(Arc::clone(cfg), true);
    loop {
        let enabled = w.enabled();
        let Some(t) = enabled
            .iter()
            .find(|t| matches!(t, Transition::Deliver { .. }))
            .or_else(|| enabled.first())
            .copied()
        else {
            break;
        };
        w.step(t)?;
    }
    if !w.done() {
        return Err("oracle run did not complete".to_string());
    }
    Ok(w.sink_sorted())
}
