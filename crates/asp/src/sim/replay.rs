//! Schedule serialization for regression replay, à la proptest's
//! `proptest-regressions/`: a failing interleaving is written to a small
//! text file whose last line re-runs the exact schedule.
//!
//! Format: `#`-prefixed header comments, then one line of
//! whitespace-separated steps — `S<sender>`, `D<instance>.<lane>`, `P`:
//!
//! ```text
//! # sim-regression for config: small-window-join
//! # violation: stash not drained: 1 tuple(s) left on i1
//! S0 P S0 D1.0 D1.0 ...
//! ```

use std::fmt;
use std::str::FromStr;

use super::model::Transition;

/// An ordered interleaving of transitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule(pub Vec<Transition>);

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, t) in self.0.iter().enumerate() {
            if k > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

impl FromStr for Schedule {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let mut steps = Vec::new();
        for tok in s.split_whitespace() {
            steps.push(parse_step(tok)?);
        }
        Ok(Schedule(steps))
    }
}

fn parse_step(tok: &str) -> Result<Transition, String> {
    if tok == "P" {
        return Ok(Transition::Publish);
    }
    if let Some(rest) = tok.strip_prefix('S') {
        let s = rest
            .parse::<usize>()
            .map_err(|_| format!("bad sender step {tok:?}"))?;
        return Ok(Transition::Sender(s));
    }
    if let Some(rest) = tok.strip_prefix('D') {
        let (i, lane) = rest
            .split_once('.')
            .ok_or_else(|| format!("bad deliver step {tok:?}"))?;
        let instance = i
            .parse::<usize>()
            .map_err(|_| format!("bad deliver step {tok:?}"))?;
        let lane = lane
            .parse::<usize>()
            .map_err(|_| format!("bad deliver step {tok:?}"))?;
        return Ok(Transition::Deliver { instance, lane });
    }
    Err(format!("unknown schedule step {tok:?}"))
}

impl Schedule {
    /// Render a regression file: header comments + the schedule line.
    pub fn render_regression(&self, config_name: &str, message: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("# sim-regression for config: {config_name}\n"));
        for line in message.lines() {
            out.push_str(&format!("# violation: {line}\n"));
        }
        out.push_str(
            "# re-run: asp::sim::run_schedule, or `sim-explore --config <name> --replay <file>`\n",
        );
        out.push_str(&self.to_string());
        out.push('\n');
        out
    }

    /// Parse a regression file: `#` lines are comments; the remaining
    /// non-empty lines are concatenated into one schedule.
    pub fn parse_regression(text: &str) -> Result<Schedule, String> {
        let body: Vec<&str> = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .collect();
        if body.is_empty() {
            return Err("regression file has no schedule line".to_string());
        }
        body.join(" ").parse()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_round_trips_through_text() {
        let s = Schedule(vec![
            Transition::Sender(0),
            Transition::Publish,
            Transition::Deliver {
                instance: 1,
                lane: 2,
            },
            Transition::Sender(1),
        ]);
        let text = s.to_string();
        assert_eq!(text, "S0 P D1.2 S1");
        assert_eq!(text.parse::<Schedule>().expect("parses"), s);
    }

    #[test]
    fn regression_file_round_trips() {
        let s = Schedule(vec![Transition::Publish, Transition::Sender(1)]);
        let file = s.render_regression("cfg", "sink diverges\nsecond line");
        assert_eq!(Schedule::parse_regression(&file).expect("parses"), s);
        assert!(file.starts_with("# sim-regression for config: cfg\n"));
    }

    #[test]
    fn malformed_steps_are_rejected() {
        assert!("S0 X1".parse::<Schedule>().is_err());
        assert!("D1".parse::<Schedule>().is_err());
        assert!(Schedule::parse_regression("# only comments\n").is_err());
    }
}
