//! Event-time primitives.
//!
//! The paper's data model (Section 2, model 4) is *event time*: every event
//! carries a creation timestamp assigned by its producer, and all temporal
//! operators (windows, sequences, interval joins) reason about that
//! timestamp, never about the system clock. This module provides the two
//! newtypes the whole workspace shares: [`Timestamp`] (a point on the event
//! time axis) and [`Duration`] (a distance on it), both in milliseconds.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Milliseconds in one minute; the paper specifies window sizes in minutes.
pub const MINUTE_MS: i64 = 60_000;

/// A point in event time, in milliseconds.
///
/// `Timestamp` is totally ordered and supports arithmetic with [`Duration`].
/// The sentinel values [`Timestamp::MIN`] and [`Timestamp::MAX`] are used by
/// the runtime for "no watermark yet" and "end of stream".
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// The smallest representable timestamp ("before everything").
    pub const MIN: Timestamp = Timestamp(i64::MIN);
    /// The largest representable timestamp ("after everything"); emitted as
    /// the final watermark so all windows fire at end of stream.
    pub const MAX: Timestamp = Timestamp(i64::MAX);

    /// Construct a timestamp from whole minutes (the unit the paper uses).
    #[inline]
    pub const fn from_minutes(m: i64) -> Self {
        Timestamp(m * MINUTE_MS)
    }

    /// Raw milliseconds.
    #[inline]
    pub const fn millis(self) -> i64 {
        self.0
    }

    /// Saturating addition of a duration (no overflow panic near `MAX`).
    #[inline]
    pub fn saturating_add(self, d: Duration) -> Self {
        Timestamp(self.0.saturating_add(d.0))
    }

    /// Saturating subtraction of a duration.
    #[inline]
    pub fn saturating_sub(self, d: Duration) -> Self {
        Timestamp(self.0.saturating_sub(d.0))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Timestamp::MAX {
            write!(f, "+inf")
        } else if *self == Timestamp::MIN {
            write!(f, "-inf")
        } else {
            write!(f, "{}ms", self.0)
        }
    }
}

/// A distance on the event-time axis, in milliseconds. May be negative
/// (interval-join lower bounds are negative for the conjunction mapping).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(pub i64);

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Construct a duration from whole minutes.
    #[inline]
    pub const fn from_minutes(m: i64) -> Self {
        Duration(m * MINUTE_MS)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: i64) -> Self {
        Duration(ms)
    }

    /// Raw milliseconds.
    #[inline]
    pub const fn millis(self) -> i64 {
        self.0
    }

    /// Negation, used to derive the conjunction's interval-join lower bound
    /// `(e1.ts - W, e1.ts + W)`.
    #[inline]
    pub const fn neg(self) -> Self {
        Duration(-self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 % MINUTE_MS == 0 {
            write!(f, "{}min", self.0 / MINUTE_MS)
        } else {
            write!(f, "{}ms", self.0)
        }
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn sub(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 - rhs.0)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Timestamp) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl AddAssign<Duration> for Timestamp {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl SubAssign<Duration> for Timestamp {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minute_conversion_round_trips() {
        assert_eq!(Timestamp::from_minutes(15).millis(), 15 * MINUTE_MS);
        assert_eq!(Duration::from_minutes(4).millis(), 4 * MINUTE_MS);
    }

    #[test]
    fn timestamp_duration_arithmetic() {
        let t = Timestamp::from_minutes(10);
        let w = Duration::from_minutes(4);
        assert_eq!(t + w, Timestamp::from_minutes(14));
        assert_eq!(t - w, Timestamp::from_minutes(6));
        assert_eq!((t + w) - t, w);
    }

    #[test]
    fn saturating_ops_do_not_overflow() {
        assert_eq!(
            Timestamp::MAX.saturating_add(Duration::from_minutes(1)),
            Timestamp::MAX
        );
        assert_eq!(
            Timestamp::MIN.saturating_sub(Duration::from_minutes(1)),
            Timestamp::MIN
        );
    }

    #[test]
    fn negative_duration_for_conjunction_bounds() {
        let w = Duration::from_minutes(15);
        let t = Timestamp::from_minutes(100);
        // Conjunction interval-join window: (e1.ts - W, e1.ts + W).
        assert_eq!(t + w.neg(), Timestamp::from_minutes(85));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Timestamp(1) < Timestamp(2));
        assert!(Timestamp::MIN < Timestamp(0));
        assert!(Timestamp(0) < Timestamp::MAX);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Timestamp(1500).to_string(), "1500ms");
        assert_eq!(Timestamp::MAX.to_string(), "+inf");
        assert_eq!(Duration::from_minutes(3).to_string(), "3min");
        assert_eq!(Duration(1500).to_string(), "1500ms");
    }
}
