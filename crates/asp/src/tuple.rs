//! The record type that flows through dataflow pipelines.
//!
//! A [`Tuple`] is either a single primitive event or a *composite event*
//! (a partial or complete pattern match, paper Section 2: each match `M`
//! is a tuple `ce(e1, …, en, ts_b, ts_e)`). Joins concatenate constituent
//! lists; the planner re-defines the tuple's working timestamp after each
//! join (minimum of the pair for a partial match, maximum for a complete
//! match — Section 4.2.2).
//!
//! `Tuple` is the *row format*: self-contained, heap-backed, the unit the
//! stateful operator tier processes. On the columnar plane the same record
//! travels decomposed into per-field arrays ([`crate::columnar::
//! ColumnarBatch`]); the runtime materializes a `Tuple` from a batch row
//! only at stateful-operator and collecting-sink boundaries. The two
//! representations round-trip losslessly (`ColumnarBatch::from_tuples` /
//! `to_tuples`).

use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::event::Event;
use crate::time::Timestamp;

/// Partition key carried by every tuple. Workloads use the sensor id;
/// the "no equi-join condition" case maps everything to a single key
/// (global window, parallelism 1 — Section 5.1.2).
pub type Key = u64;

/// A dataflow record: one or more constituent events plus routing and
/// timing metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    /// Partition key for hash exchanges.
    pub key: Key,
    /// Working event-time timestamp. For primitive events this is `e.ts`;
    /// after a join the planner sets it per the nested-pattern rule.
    pub ts: Timestamp,
    /// Wall-clock creation time of the newest constituent, in nanoseconds
    /// since the harness epoch. Detection latency = sink wall time − this
    /// (the paper's latency metric, Section 5.1.3).
    pub wall: u64,
    /// Constituent events in pattern order. Reference-counted: window
    /// operators buffer the same tuple in every overlapping pane, so a
    /// clone must be a refcount bump, not a heap copy.
    pub events: Arc<Vec<Event>>,
    /// Auxiliary timestamp attribute `ats` added by the NSEQ rewrite
    /// (Section 4.1, negated-sequence discussion).
    pub ats: Option<Timestamp>,
    /// Aggregate payload for the O2 (count-aggregation) mapping: the count
    /// of contributing events in the window.
    pub agg: Option<f64>,
}

impl Tuple {
    /// Wrap a primitive event; the key defaults to the sensor id.
    pub fn from_event(e: Event) -> Self {
        Tuple {
            key: e.id as Key,
            ts: e.ts,
            wall: 0,
            events: Arc::new(vec![e]),
            ats: None,
            agg: None,
        }
    }

    /// Wrap a primitive event with an explicit wall-clock creation stamp.
    pub fn from_event_wall(e: Event, wall: u64) -> Self {
        let mut t = Tuple::from_event(e);
        t.wall = wall;
        t
    }

    /// The head constituent (`e1`), if any. Vectorizable predicates
    /// ([`crate::operator::FilterSpec`]) are defined over exactly this
    /// event, whose fields the columnar plane keeps as dense per-row
    /// columns for every tuple, composite or primitive.
    #[inline]
    pub fn head(&self) -> Option<&Event> {
        self.events.first()
    }

    /// Whether this tuple carries more than one constituent (a partial or
    /// complete match rather than a wrapped primitive event). Composite
    /// rows are the only ones that hit the columnar plane's side table.
    #[inline]
    pub fn is_composite(&self) -> bool {
        self.events.len() > 1
    }

    /// Timestamp of the earliest constituent (`ce.ts_b`).
    pub fn ts_begin(&self) -> Timestamp {
        self.events.iter().map(|e| e.ts).min().unwrap_or(self.ts)
    }

    /// Timestamp of the latest constituent (`ce.ts_e`).
    pub fn ts_end(&self) -> Timestamp {
        self.events.iter().map(|e| e.ts).max().unwrap_or(self.ts)
    }

    /// Join two tuples: concatenate constituents left-then-right, keep the
    /// left key, take the max wall stamp, and set the working timestamp
    /// according to `ts_rule`.
    pub fn join(&self, right: &Tuple, ts_rule: TsRule) -> Tuple {
        let mut events = Vec::with_capacity(self.events.len() + right.events.len());
        events.extend_from_slice(&self.events);
        events.extend_from_slice(&right.events);
        let events = Arc::new(events);
        let ts = match ts_rule {
            TsRule::Min => self.ts.min(right.ts),
            TsRule::Max => self.ts.max(right.ts),
            TsRule::Left => self.ts,
            TsRule::Right => right.ts,
        };
        Tuple {
            key: self.key,
            ts,
            wall: self.wall.max(right.wall),
            events,
            ats: self.ats.or(right.ats),
            agg: None,
        }
    }

    /// Approximate heap + inline footprint in bytes, for state accounting
    /// (drives the Figure 5 memory series). Shared constituent lists are
    /// charged to every holder — an upper bound on the real footprint.
    #[inline]
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Tuple>() + self.events.capacity() * std::mem::size_of::<Event>()
    }

    /// Canonical identity of a match: the ordered constituent list. Two
    /// duplicate detections from overlapping sliding windows compare equal
    /// under this key (the paper's semantic-equivalence-modulo-duplicates,
    /// Section 4).
    pub fn match_key(&self) -> MatchKey {
        MatchKey((*self.events).clone())
    }

    /// Replace the constituent list (copy-on-write if shared).
    pub fn set_events(&mut self, events: Vec<Event>) {
        self.events = Arc::new(events);
    }
}

/// How a join derives the output tuple's working timestamp (Section 4.2.2):
/// minimum for partial matches of a nested pattern, maximum for complete
/// matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TsRule {
    /// Earliest constituent timestamp (partial matches).
    Min,
    /// Latest constituent timestamp (complete matches).
    Max,
    /// The left input's timestamp, unchanged.
    Left,
    /// The right input's timestamp, unchanged.
    Right,
}

/// Hashable identity of a match, used for deduplication and for comparing
/// engine outputs in tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchKey(pub Vec<Event>);

impl Hash for MatchKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for e in &self.0 {
            e.hash(state);
        }
    }
}

impl PartialOrd for MatchKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MatchKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let a = self
            .0
            .iter()
            .map(|e| (e.ts, e.etype, e.id, e.value.to_bits()));
        let b = other
            .0
            .iter()
            .map(|e| (e.ts, e.etype, e.id, e.value.to_bits()));
        a.cmp(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventType;

    fn ev(t: u16, id: u32, min: i64, v: f64) -> Event {
        Event::new(EventType(t), id, Timestamp::from_minutes(min), v)
    }

    #[test]
    fn from_event_sets_key_and_ts() {
        let t = Tuple::from_event(ev(0, 9, 5, 1.0));
        assert_eq!(t.key, 9);
        assert_eq!(t.ts, Timestamp::from_minutes(5));
        assert_eq!(t.events.len(), 1);
    }

    #[test]
    fn join_concatenates_and_applies_ts_rule() {
        let a = Tuple::from_event_wall(ev(0, 1, 2, 1.0), 100);
        let b = Tuple::from_event_wall(ev(1, 1, 7, 2.0), 300);
        let min = a.join(&b, TsRule::Min);
        assert_eq!(min.ts, Timestamp::from_minutes(2));
        assert_eq!(min.events.len(), 2);
        assert_eq!(min.wall, 300, "wall is max of constituents");
        let max = a.join(&b, TsRule::Max);
        assert_eq!(max.ts, Timestamp::from_minutes(7));
        assert_eq!(a.join(&b, TsRule::Left).ts, a.ts);
        assert_eq!(a.join(&b, TsRule::Right).ts, b.ts);
    }

    #[test]
    fn ts_begin_end_span_constituents() {
        let a = Tuple::from_event(ev(0, 1, 2, 1.0));
        let b = Tuple::from_event(ev(1, 1, 7, 2.0));
        let c = Tuple::from_event(ev(2, 1, 4, 3.0));
        let m = a.join(&b, TsRule::Max).join(&c, TsRule::Max);
        assert_eq!(m.ts_begin(), Timestamp::from_minutes(2));
        assert_eq!(m.ts_end(), Timestamp::from_minutes(7));
    }

    #[test]
    fn match_key_identifies_duplicates() {
        let a = Tuple::from_event(ev(0, 1, 2, 1.0));
        let b = Tuple::from_event(ev(1, 1, 3, 2.0));
        let m1 = a.join(&b, TsRule::Max);
        let mut m2 = a.join(&b, TsRule::Max);
        m2.wall = 999; // different detection time, same match
        assert_eq!(m1.match_key(), m2.match_key());
        let m3 = b.join(&a, TsRule::Max); // different constituent order
        assert_ne!(m1.match_key(), m3.match_key());
    }

    #[test]
    fn ats_propagates_through_join() {
        let mut a = Tuple::from_event(ev(0, 1, 2, 1.0));
        a.ats = Some(Timestamp::from_minutes(10));
        let b = Tuple::from_event(ev(1, 1, 3, 2.0));
        assert_eq!(
            a.join(&b, TsRule::Max).ats,
            Some(Timestamp::from_minutes(10))
        );
        assert_eq!(
            b.join(&a, TsRule::Max).ats,
            Some(Timestamp::from_minutes(10))
        );
    }

    #[test]
    fn mem_bytes_grows_with_constituents() {
        let a = Tuple::from_event(ev(0, 1, 2, 1.0));
        let b = Tuple::from_event(ev(1, 1, 3, 2.0));
        let joined = a.join(&b, TsRule::Max);
        assert!(joined.mem_bytes() > a.mem_bytes());
    }
}
