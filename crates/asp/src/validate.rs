//! Static validation of dataflow graphs before execution.
//!
//! [`validate`] inspects a [`GraphBuilder`] and reports every structural
//! defect as a typed [`Diagnostic`] instead of panicking mid-construction or
//! mid-run. [`crate::runtime::Executor::run`] calls it before spawning any
//! thread, so a malformed graph is refused with a full list of problems
//! rather than aborting the process.
//!
//! Each defect class has a stable code (`G001`–`G016`); see [`Code`] for the
//! catalogue. Codes `G001`–`G012` and `G015`–`G016` are errors (the graph
//! cannot run); `G013`–`G014` are warnings about suspicious but runnable
//! constructions. `G015` and `G016` are special in that they are raised by
//! the runtime rather than by the graph checks here — `G015` by
//! [`crate::runtime::Executor::run`] against the runtime configuration (an
//! invalid [`crate::runtime::ExecutorConfig::batch_size`]), and `G016` by the
//! operator harness when an operator that declared columnar batch support
//! rejects the payload it is handed mid-run. They share the diagnostic
//! vocabulary so callers see one uniform refusal path.

use std::fmt;

use crate::graph::{Exchange, GraphBuilder, NodeKind};

/// Stable identifier of a defect class found by [`validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// G001: an edge endpoint references a node id outside the graph.
    DanglingEdge,
    /// G002: a non-source node has inputs, but none traces back to a source.
    UnreachableNode,
    /// G003: no directed path from this node to any sink.
    NoSinkOnPath,
    /// G004: a node's input ports are non-contiguous or duplicated.
    PortGapOrDuplicate,
    /// G005: a `Forward` edge connects nodes of unequal parallelism.
    ForwardParallelismMismatch,
    /// G006: an edge does not respect topological id order (`src ≥ dst`),
    /// which would make the graph cyclic — typically a splice gone wrong.
    CycleAfterSplice,
    /// G007: a node was declared with parallelism 0.
    ZeroParallelism,
    /// G008: a sink node has outgoing edges.
    SinkWithDownstream,
    /// G009: the graph has no sink at all.
    NoSink,
    /// G010: a source node has input edges.
    SourceWithInputs,
    /// G011: a non-source node has no input edges.
    NoInputs,
    /// G012: the graph has no nodes.
    EmptyGraph,
    /// G013 (warning): a builder method was misused and had no effect
    /// (e.g. [`GraphBuilder::name_last`] on an empty builder).
    BuilderMisuse,
    /// G014 (warning): a negative watermark lag was clamped to zero.
    ClampedWatermarkLag,
    /// G015: [`crate::runtime::ExecutorConfig::batch_size`] is 0 — a batch
    /// that size would never flush, so the executor refuses to run.
    InvalidBatchSize,
    /// G016: an operator declared columnar batch support
    /// ([`crate::operator::BatchSupport::Columnar`]) but rejected the
    /// payload the harness handed it at runtime
    /// ([`crate::error::OpError::ColumnarUnsupported`]). Like `G015`, this
    /// is raised by the runtime (the operator harness), not the static
    /// graph checks — the declaration/implementation mismatch is only
    /// observable once a payload arrives.
    ColumnarPayloadMismatch,
    /// G017: an environment override (`ASP_DATA_PLANE`, `ASP_SHARDS`) held a
    /// value the executor does not understand. Raised by
    /// [`crate::runtime::Executor::run`] rather than the graph checks: the
    /// defect lives in the process environment, not the graph, but silently
    /// ignoring a typo'd override would run the wrong configuration.
    InvalidEnvConfig,
    /// G018: a node was marked for keyed sharding
    /// ([`GraphBuilder::shard_node`]) but its input edges are not all
    /// [`Exchange::Hash`] — shard routing owns key placement, so any other
    /// exchange would scatter a key across shards.
    InvalidShardedNode,
}

impl Code {
    /// Every code, in `Gxxx` order — the doc-sync test checks DESIGN.md's
    /// code table against this list, so keep it exhaustive.
    pub const ALL: &'static [Code] = &[
        Code::DanglingEdge,
        Code::UnreachableNode,
        Code::NoSinkOnPath,
        Code::PortGapOrDuplicate,
        Code::ForwardParallelismMismatch,
        Code::CycleAfterSplice,
        Code::ZeroParallelism,
        Code::SinkWithDownstream,
        Code::NoSink,
        Code::SourceWithInputs,
        Code::NoInputs,
        Code::EmptyGraph,
        Code::BuilderMisuse,
        Code::ClampedWatermarkLag,
        Code::InvalidBatchSize,
        Code::ColumnarPayloadMismatch,
        Code::InvalidEnvConfig,
        Code::InvalidShardedNode,
    ];

    /// The stable `Gxxx` string for this code.
    pub fn as_str(&self) -> &'static str {
        match self {
            Code::DanglingEdge => "G001",
            Code::UnreachableNode => "G002",
            Code::NoSinkOnPath => "G003",
            Code::PortGapOrDuplicate => "G004",
            Code::ForwardParallelismMismatch => "G005",
            Code::CycleAfterSplice => "G006",
            Code::ZeroParallelism => "G007",
            Code::SinkWithDownstream => "G008",
            Code::NoSink => "G009",
            Code::SourceWithInputs => "G010",
            Code::NoInputs => "G011",
            Code::EmptyGraph => "G012",
            Code::BuilderMisuse => "G013",
            Code::ClampedWatermarkLag => "G014",
            Code::InvalidBatchSize => "G015",
            Code::ColumnarPayloadMismatch => "G016",
            Code::InvalidEnvConfig => "G017",
            Code::InvalidShardedNode => "G018",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How serious a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The graph cannot run; [`validate`] returns `Err`.
    Error,
    /// Suspicious but runnable; reported alongside errors, never fatal.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => f.write_str("error"),
            Severity::Warning => f.write_str("warning"),
        }
    }
}

/// One defect found by [`validate`], tied to a [`Code`] and, where
/// applicable, the name of the offending node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable defect class.
    pub code: Code,
    /// Error (fatal) or warning (informational).
    pub severity: Severity,
    /// Name of the node the defect is anchored at, when one exists.
    pub node: Option<String>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    pub(crate) fn error(code: Code, node: Option<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            node,
            message: message.into(),
        }
    }

    pub(crate) fn warning(code: Code, node: Option<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            node,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.node {
            Some(n) => write!(
                f,
                "{} {} at node `{}`: {}",
                self.code, self.severity, n, self.message
            ),
            None => write!(f, "{} {}: {}", self.code, self.severity, self.message),
        }
    }
}

/// Collect every diagnostic (errors *and* warnings) for `graph` without
/// deciding whether it may run. [`validate`] is the go/no-go wrapper.
pub fn check(graph: &GraphBuilder) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = graph.warnings.clone();
    let n = graph.nodes.len();
    let name = |id: usize| graph.nodes[id].name.clone();

    if n == 0 {
        out.push(Diagnostic::error(
            Code::EmptyGraph,
            None,
            "graph has no nodes",
        ));
        return out;
    }

    // G007: zero parallelism.
    for node in &graph.nodes {
        if node.parallelism == 0 {
            out.push(Diagnostic::error(
                Code::ZeroParallelism,
                Some(node.name.clone()),
                "declared with parallelism 0",
            ));
        }
    }

    // G001 / G006: edge endpoint sanity. Only in-range edges participate in
    // the structural checks below.
    let mut valid_edges = Vec::new();
    for e in &graph.edges {
        if e.src.0 >= n || e.dst.0 >= n {
            out.push(Diagnostic::error(
                Code::DanglingEdge,
                if e.src.0 < n {
                    Some(name(e.src.0))
                } else if e.dst.0 < n {
                    Some(name(e.dst.0))
                } else {
                    None
                },
                format!(
                    "edge {} → {} references a node outside the graph ({} nodes)",
                    e.src.0, e.dst.0, n
                ),
            ));
            continue;
        }
        if e.src.0 >= e.dst.0 {
            out.push(Diagnostic::error(
                Code::CycleAfterSplice,
                Some(name(e.dst.0)),
                format!(
                    "edge `{}` ({}) → `{}` ({}) violates topological id order; the graph must stay acyclic",
                    name(e.src.0), e.src.0, name(e.dst.0), e.dst.0
                ),
            ));
            continue;
        }
        valid_edges.push(e);
    }

    // G005: Forward edges need equal parallelism on both ends.
    for e in &valid_edges {
        if e.exchange == Exchange::Forward
            && graph.nodes[e.src.0].parallelism != graph.nodes[e.dst.0].parallelism
        {
            out.push(Diagnostic::error(
                Code::ForwardParallelismMismatch,
                Some(name(e.dst.0)),
                format!(
                    "Forward edge `{}` → `{}` with unequal parallelism {} vs {}",
                    name(e.src.0),
                    name(e.dst.0),
                    graph.nodes[e.src.0].parallelism,
                    graph.nodes[e.dst.0].parallelism
                ),
            ));
        }
    }

    // G008: sinks are terminal.
    for e in &valid_edges {
        if matches!(graph.nodes[e.src.0].kind, NodeKind::Sink(_)) {
            out.push(Diagnostic::error(
                Code::SinkWithDownstream,
                Some(name(e.src.0)),
                format!("sink has a downstream edge to `{}`", name(e.dst.0)),
            ));
        }
    }

    // G009: at least one sink.
    if graph.sink_count == 0 {
        out.push(Diagnostic::error(Code::NoSink, None, "graph has no sink"));
    }

    // Per-node input structure: G010 / G011 / G004.
    let mut in_ports: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in &valid_edges {
        in_ports[e.dst.0].push(e.port);
    }
    for (i, node) in graph.nodes.iter().enumerate() {
        let mut ports = in_ports[i].clone();
        ports.sort_unstable();
        match node.kind {
            NodeKind::Source { .. } => {
                if !ports.is_empty() {
                    out.push(Diagnostic::error(
                        Code::SourceWithInputs,
                        Some(node.name.clone()),
                        format!(
                            "source has {} input edge(s); sources must be roots",
                            ports.len()
                        ),
                    ));
                }
            }
            _ => {
                if ports.is_empty() {
                    out.push(Diagnostic::error(
                        Code::NoInputs,
                        Some(node.name.clone()),
                        "non-source node has no input edges",
                    ));
                    continue;
                }
                for (want, port) in ports.iter().enumerate() {
                    if *port != want {
                        let kind = if ports.windows(2).any(|w| w[0] == w[1]) {
                            "duplicated"
                        } else {
                            "non-contiguous"
                        };
                        out.push(Diagnostic::error(
                            Code::PortGapOrDuplicate,
                            Some(node.name.clone()),
                            format!(
                                "input ports are {kind}: got {ports:?}, expected 0..{}",
                                ports.len()
                            ),
                        ));
                        break;
                    }
                }
            }
        }
    }

    // Reachability. Forward from sources (G002) and backward from sinks
    // (G003), over in-range, order-respecting edges only. Nodes already
    // flagged G010/G011 are skipped to avoid piling codes on one defect.
    let mut fwd = vec![false; n];
    let mut bwd = vec![false; n];
    for (i, node) in graph.nodes.iter().enumerate() {
        match node.kind {
            NodeKind::Source { .. } => fwd[i] = true,
            NodeKind::Sink(_) => bwd[i] = true,
            NodeKind::Operator(_) => {}
        }
    }
    // Edges are topologically ordered (src < dst), so one forward sweep and
    // one backward sweep settle reachability without a worklist.
    for e in &valid_edges {
        if fwd[e.src.0] {
            fwd[e.dst.0] = true;
        }
    }
    for e in valid_edges.iter().rev() {
        if bwd[e.dst.0] {
            bwd[e.src.0] = true;
        }
    }
    let any_sink = graph.sink_count > 0;
    for (i, node) in graph.nodes.iter().enumerate() {
        let has_inputs = !in_ports[i].is_empty();
        if !fwd[i] && has_inputs {
            out.push(Diagnostic::error(
                Code::UnreachableNode,
                Some(node.name.clone()),
                "has inputs, but no path from any source reaches it",
            ));
        }
        if any_sink && !bwd[i] && !matches!(node.kind, NodeKind::Sink(_)) {
            out.push(Diagnostic::error(
                Code::NoSinkOnPath,
                Some(node.name.clone()),
                "no directed path from this node reaches a sink; its output is dropped",
            ));
        }
    }

    // G018: sharded nodes must be operators whose every input is a Hash
    // exchange — shard routing owns key placement, so a Forward/Rebalance
    // input would scatter one key's tuples across shard instances.
    for (i, node) in graph.nodes.iter().enumerate() {
        if !node.sharded {
            continue;
        }
        if !matches!(node.kind, NodeKind::Operator(_)) {
            out.push(Diagnostic::error(
                Code::InvalidShardedNode,
                Some(node.name.clone()),
                "shard_node on a source or sink; only operators hold keyed shard state",
            ));
            continue;
        }
        for e in &valid_edges {
            if e.dst.0 == i && e.exchange != Exchange::Hash {
                out.push(Diagnostic::error(
                    Code::InvalidShardedNode,
                    Some(node.name.clone()),
                    format!(
                        "sharded node has a non-Hash input edge from `{}` ({:?})",
                        name(e.src.0),
                        e.exchange
                    ),
                ));
            }
        }
    }

    // G014: sources whose watermark lag was clamped at configuration time.
    for node in &graph.nodes {
        if let NodeKind::Source { cfg, .. } = &node.kind {
            if cfg.lag_clamped {
                out.push(Diagnostic::warning(
                    Code::ClampedWatermarkLag,
                    Some(node.name.clone()),
                    "negative watermark lag was clamped to zero",
                ));
            }
        }
    }

    out
}

/// Validate `graph` for execution.
///
/// Returns `Ok(())` when no **error**-severity diagnostic is present
/// (warnings alone do not fail validation). On failure, returns every
/// diagnostic found — errors and warnings — so callers can render the
/// complete picture at once.
pub fn validate(graph: &GraphBuilder) -> Result<(), Vec<Diagnostic>> {
    let diags = check(graph);
    if diags.iter().any(|d| d.severity == Severity::Error) {
        Err(diags)
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventType};
    use crate::graph::{Edge, NodeId, SourceConfig};
    use crate::operator::{always_true, FilterOp};
    use crate::time::{Duration, Timestamp};

    fn some_events(n: i64) -> Vec<Event> {
        (0..n)
            .map(|i| Event::new(EventType(0), 0, Timestamp::from_minutes(i), i as f64))
            .collect()
    }

    fn filter_factory() -> crate::graph::OperatorFactory {
        Box::new(|_| Box::new(FilterOp::new("f", always_true())))
    }

    fn codes(g: &GraphBuilder) -> Vec<Code> {
        check(g).into_iter().map(|d| d.code).collect()
    }

    /// src → filter → sink, entirely well-formed.
    fn good_graph() -> GraphBuilder {
        let mut g = GraphBuilder::new();
        let s = g.source("s", some_events(3), 1);
        let f = g.unary(s, Exchange::Forward, 1, filter_factory());
        let _ = g.sink(f, Exchange::Forward);
        g
    }

    #[test]
    fn well_formed_graph_passes() {
        assert!(validate(&good_graph()).is_ok());
        assert!(check(&good_graph()).is_empty());
    }

    #[test]
    fn g001_dangling_edge() {
        let mut g = GraphBuilder::new();
        let s = g.source("s", some_events(1), 1);
        let f = g.unary(s, Exchange::Forward, 1, filter_factory());
        let _ = g.sink(f, Exchange::Forward);
        g.edges.push(Edge {
            src: NodeId(99),
            dst: NodeId(1),
            port: 1,
            exchange: Exchange::Hash,
        });
        assert!(codes(&g).contains(&Code::DanglingEdge));
    }

    #[test]
    fn g002_unreachable_node() {
        let mut g = GraphBuilder::new();
        let s = g.source("s", some_events(1), 1);
        let _direct = g.sink(s, Exchange::Forward);
        // A head → tail chain, then detach head from the source: head has no
        // inputs (G011) and tail has inputs but no path from any source (G002).
        let head = g.unary(s, Exchange::Forward, 1, filter_factory());
        let tail = g.unary(head, Exchange::Forward, 1, filter_factory());
        let _ = g.sink(tail, Exchange::Forward);
        g.edges.retain(|e| !(e.src == s && e.dst == head));
        let cs = codes(&g);
        assert!(cs.contains(&Code::UnreachableNode), "{cs:?}");
        assert!(cs.contains(&Code::NoInputs), "{cs:?}");
    }

    #[test]
    fn g003_no_sink_on_path() {
        let mut g = GraphBuilder::new();
        let s = g.source("s", some_events(1), 1);
        let _ = g.sink(s, Exchange::Forward);
        // A second branch that never reaches any sink.
        let dead = g.unary(s, Exchange::Forward, 1, filter_factory());
        let _dead2 = g.unary(dead, Exchange::Forward, 1, filter_factory());
        let cs = codes(&g);
        assert!(cs.contains(&Code::NoSinkOnPath), "{cs:?}");
    }

    #[test]
    fn g004_duplicate_port() {
        let mut g = good_graph();
        // Duplicate the filter's port-0 input.
        g.edges.push(Edge {
            src: NodeId(0),
            dst: NodeId(1),
            port: 0,
            exchange: Exchange::Hash,
        });
        let ds = check(&g);
        let d = ds
            .iter()
            .find(|d| d.code == Code::PortGapOrDuplicate)
            .expect("G004");
        assert!(d.message.contains("duplicated"), "{}", d.message);
    }

    #[test]
    fn g004_port_gap() {
        let mut g = GraphBuilder::new();
        let a = g.source("a", some_events(1), 1);
        let b = g.source("b", some_events(1), 1);
        let j = g.binary(a, b, Exchange::Hash, 1, filter_factory());
        let _ = g.sink(j, Exchange::Forward);
        // Shift the right input from port 1 to port 2, leaving a gap.
        for e in &mut g.edges {
            if e.dst == j && e.port == 1 {
                e.port = 2;
            }
        }
        let ds = check(&g);
        let d = ds
            .iter()
            .find(|d| d.code == Code::PortGapOrDuplicate)
            .expect("G004");
        assert!(d.message.contains("non-contiguous"), "{}", d.message);
    }

    #[test]
    fn g005_forward_parallelism_mismatch() {
        let mut g = GraphBuilder::new();
        let s = g.source("s", some_events(1), 1);
        let f = g.unary(s, Exchange::Forward, 3, filter_factory());
        let _ = g.sink(f, Exchange::Rebalance);
        let ds = check(&g);
        let d = ds
            .iter()
            .find(|d| d.code == Code::ForwardParallelismMismatch)
            .expect("G005");
        assert!(
            d.message.contains("1 vs 3") || d.message.contains("3 vs 1"),
            "{}",
            d.message
        );
        assert!(d.node.is_some());
    }

    #[test]
    fn g006_cycle_after_splice() {
        let mut g = good_graph();
        // Back-edge from the filter to the source: violates id order.
        g.edges.push(Edge {
            src: NodeId(1),
            dst: NodeId(0),
            port: 0,
            exchange: Exchange::Hash,
        });
        assert!(codes(&g).contains(&Code::CycleAfterSplice));
    }

    #[test]
    fn g007_zero_parallelism() {
        let mut g = GraphBuilder::new();
        let s = g.source("s", some_events(1), 0);
        let _ = g.sink(s, Exchange::Forward);
        assert!(codes(&g).contains(&Code::ZeroParallelism));
    }

    #[test]
    fn g008_sink_with_downstream() {
        let mut g = good_graph();
        // Node 2 is the sink; give it an outgoing edge to a new operator.
        let extra = g.unary(NodeId(1), Exchange::Forward, 1, filter_factory());
        g.edges.push(Edge {
            src: NodeId(2),
            dst: extra,
            port: 1,
            exchange: Exchange::Hash,
        });
        assert!(codes(&g).contains(&Code::SinkWithDownstream));
    }

    #[test]
    fn g009_no_sink() {
        let mut g = GraphBuilder::new();
        let _s = g.source("s", some_events(1), 1);
        assert!(codes(&g).contains(&Code::NoSink));
    }

    #[test]
    fn g010_source_with_inputs() {
        let mut g = GraphBuilder::new();
        let a = g.source("a", some_events(1), 1);
        let b = g.source("b", some_events(1), 1);
        let _ = g.sink(b, Exchange::Forward);
        g.edges.push(Edge {
            src: a,
            dst: b,
            port: 0,
            exchange: Exchange::Forward,
        });
        assert!(codes(&g).contains(&Code::SourceWithInputs));
    }

    #[test]
    fn g011_no_inputs() {
        let mut g = GraphBuilder::new();
        let s = g.source("s", some_events(1), 1);
        let f = g.unary(s, Exchange::Forward, 1, filter_factory());
        let _ = g.sink(f, Exchange::Forward);
        g.edges.retain(|e| e.dst != f);
        assert!(codes(&g).contains(&Code::NoInputs));
    }

    #[test]
    fn g012_empty_graph() {
        let g = GraphBuilder::new();
        let err = validate(&g).unwrap_err();
        assert_eq!(err.len(), 1);
        assert_eq!(err[0].code, Code::EmptyGraph);
    }

    #[test]
    fn g013_name_last_on_empty_builder() {
        let mut g = GraphBuilder::new();
        g.name_last("ghost");
        let ds = check(&g);
        let d = ds
            .iter()
            .find(|d| d.code == Code::BuilderMisuse)
            .expect("G013");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("ghost"), "{}", d.message);
    }

    #[test]
    fn g014_clamped_watermark_lag_warns_but_runs() {
        let mut g = GraphBuilder::new();
        let cfg = SourceConfig::new(some_events(1)).with_watermark_lag(Duration::from_millis(-5));
        let s = g.source_with("s", cfg, 1);
        let _ = g.sink(s, Exchange::Forward);
        let ds = check(&g);
        let d = ds
            .iter()
            .find(|d| d.code == Code::ClampedWatermarkLag)
            .expect("G014");
        assert_eq!(d.severity, Severity::Warning);
        // Warnings alone never fail validation.
        assert!(validate(&g).is_ok());
    }

    #[test]
    fn g015_invalid_batch_size_code_is_stable() {
        assert_eq!(Code::InvalidBatchSize.as_str(), "G015");
        let d = Diagnostic::error(Code::InvalidBatchSize, None, "batch_size must be ≥ 1");
        assert!(d.to_string().starts_with("G015 error:"), "{d}");
    }

    #[test]
    fn diagnostics_render_with_code_severity_and_node() {
        let d = Diagnostic::error(
            Code::ForwardParallelismMismatch,
            Some("⋈".into()),
            "Forward edge `a` → `⋈` with unequal parallelism 1 vs 3",
        );
        let s = d.to_string();
        assert!(s.starts_with("G005 error at node `⋈`:"), "{s}");
        let w = Diagnostic::warning(Code::BuilderMisuse, None, "no-op");
        assert_eq!(w.to_string(), "G013 warning: no-op");
    }

    #[test]
    fn validate_reports_all_errors_at_once() {
        let mut g = GraphBuilder::new();
        let s = g.source("s", some_events(1), 0); // G007
        let f = g.unary(s, Exchange::Forward, 3, filter_factory()); // G005
        let _ = f;
        // No sink → G009; dead path → G003.
        let errs = validate(&g).unwrap_err();
        let cs: Vec<Code> = errs.iter().map(|d| d.code).collect();
        assert!(cs.contains(&Code::ZeroParallelism), "{cs:?}");
        assert!(cs.contains(&Code::ForwardParallelismMismatch), "{cs:?}");
        assert!(cs.contains(&Code::NoSink), "{cs:?}");
        assert!(cs.len() >= 3);
    }
}
