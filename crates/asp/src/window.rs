//! Explicit windowing (paper Section 3.1.2).
//!
//! ASP systems discretize unbounded streams into finite substreams
//! `T_k = [T]^{ts_e}_{ts_b}` of length `W`. The *intra-window* semantic
//! assigns each event with `ts ∈ [ts_b, ts_e)` to the substream; the
//! *inter-window* semantic creates subsequent windows every slide `s`.
//! Theorem 2 requires `s` no larger than the minimum inter-arrival of the
//! fastest stream for no match to be lost; the paper uses slide-by-one-minute
//! for minute-granularity sensors.

use std::fmt;

use crate::time::{Duration, Timestamp};

/// A window instance `[start, end)` on the event-time axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WindowId {
    /// Inclusive window start.
    pub start: Timestamp,
    /// Exclusive window end.
    pub end: Timestamp,
}

impl fmt::Display for WindowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// A sliding (or, when `slide == size`, tumbling) event-time window
/// assigner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlidingWindows {
    /// Window length `W`.
    pub size: Duration,
    /// Slide `s`; windows start at integer multiples of `s`.
    pub slide: Duration,
}

impl SlidingWindows {
    /// Create an assigner; panics if sizes are non-positive or the slide
    /// exceeds the size (which would drop events between windows).
    pub fn new(size: Duration, slide: Duration) -> Self {
        assert!(size.millis() > 0, "window size must be positive");
        assert!(slide.millis() > 0, "slide must be positive");
        assert!(
            slide <= size,
            "slide {slide} larger than window size {size} would lose events"
        );
        SlidingWindows { size, slide }
    }

    /// A tumbling window: slide equals size, no overlap, no duplicates.
    pub fn tumbling(size: Duration) -> Self {
        SlidingWindows::new(size, size)
    }

    /// Number of windows each event belongs to: `ceil(W / s)`.
    pub fn windows_per_event(&self) -> usize {
        let w = self.size.millis();
        let s = self.slide.millis();
        ((w + s - 1) / s) as usize
    }

    /// Intra-window semantic: all windows `[k·s, k·s + W)` containing `ts`.
    /// Windows are aligned to the epoch (start ≡ 0 mod slide), matching
    /// Flink's default alignment. Starts are clamped at 0: the workloads
    /// place all events at non-negative timestamps.
    pub fn assign(&self, ts: Timestamp) -> impl Iterator<Item = WindowId> {
        let w = self.size.millis();
        let s = self.slide.millis();
        let t = ts.millis();
        // Last window start ≤ t, aligned to slide.
        let last_start = t - t.rem_euclid(s);
        // First window start: smallest aligned start with start + W > t,
        // i.e. ceil((t - W + 1) / s) · s, clamped at the epoch.
        fn ceil_div(a: i64, b: i64) -> i64 {
            -((-a).div_euclid(b))
        }
        let first_start = (ceil_div(t - w + 1, s) * s).max(0).min(last_start);
        (0..)
            .map(move |i| first_start + i as i64 * s)
            .take_while(move |start| *start <= last_start)
            .map(move |start| WindowId {
                start: Timestamp(start),
                end: Timestamp(start + w),
            })
    }

    /// The earliest aligned window start whose window contains `ts`
    /// (clamped at the epoch): `max(0, ceil((ts − W + 1) / s) · s)`.
    pub fn first_window_start(&self, ts: Timestamp) -> Timestamp {
        let w = self.size.millis();
        let s = self.slide.millis();
        let t = ts.millis();
        let start = -((-(t - w + 1)).div_euclid(s)) * s;
        Timestamp(start.max(0))
    }

    /// The single window that *ends last* among those containing `ts`
    /// (useful for computing maximum retention).
    pub fn last_window_end(&self, ts: Timestamp) -> Timestamp {
        let s = self.slide.millis();
        let t = ts.millis();
        let last_start = t - t.rem_euclid(s);
        Timestamp(last_start + self.size.millis())
    }
}

impl fmt::Display for SlidingWindows {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.size == self.slide {
            write!(f, "TUMBLING({})", self.size)
        } else {
            write!(f, "SLIDING({}, {})", self.size, self.slide)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::MINUTE_MS;

    fn min(m: i64) -> Timestamp {
        Timestamp::from_minutes(m)
    }

    #[test]
    fn tumbling_assigns_exactly_one_window() {
        let w = SlidingWindows::tumbling(Duration::from_minutes(5));
        let ids: Vec<_> = w.assign(min(7)).collect();
        assert_eq!(ids.len(), 1);
        assert_eq!(ids[0].start, min(5));
        assert_eq!(ids[0].end, min(10));
    }

    #[test]
    fn sliding_assigns_w_over_s_windows() {
        let w = SlidingWindows::new(Duration::from_minutes(4), Duration::from_minutes(1));
        assert_eq!(w.windows_per_event(), 4);
        let ids: Vec<_> = w.assign(min(10)).collect();
        assert_eq!(ids.len(), 4);
        assert_eq!(ids[0].start, min(7));
        assert_eq!(ids[3].start, min(10));
        for id in &ids {
            assert!(
                id.start <= min(10) && min(10) < id.end,
                "{id} must contain ts"
            );
        }
    }

    #[test]
    fn boundary_event_belongs_to_window_starting_at_its_ts() {
        // Intra-window semantic: ts ∈ [ts_b, ts_e), so an event at a window
        // start belongs to that window but NOT to the one ending at its ts.
        let w = SlidingWindows::new(Duration::from_minutes(3), Duration::from_minutes(3));
        let ids: Vec<_> = w.assign(min(3)).collect();
        assert_eq!(
            ids,
            vec![WindowId {
                start: min(3),
                end: min(6)
            }]
        );
    }

    #[test]
    fn early_events_are_clamped_at_zero() {
        let w = SlidingWindows::new(Duration::from_minutes(10), Duration::from_minutes(1));
        let ids: Vec<_> = w.assign(min(2)).collect();
        assert!(!ids.is_empty());
        assert!(ids.iter().all(|id| id.start.millis() >= 0));
        assert!(ids.iter().all(|id| id.start <= min(2) && min(2) < id.end));
    }

    #[test]
    fn theorem2_worst_case_pair_shares_a_window() {
        // Two events W-1 time units apart must co-occur in ≥1 substream when
        // sliding by one unit (proof of Theorem 2).
        let w_ms = 4 * MINUTE_MS;
        let assigner = SlidingWindows::new(Duration(w_ms), Duration(1));
        let e1 = Timestamp(100_000);
        let e2 = Timestamp(100_000 + w_ms - 1);
        let a: std::collections::HashSet<_> = assigner.assign(e1).collect();
        let b: std::collections::HashSet<_> = assigner.assign(e2).collect();
        assert!(
            a.intersection(&b).next().is_some(),
            "worst-case pair must share a window"
        );
    }

    #[test]
    fn pair_w_apart_shares_no_window() {
        // Events exactly W apart can never match WITHIN W.
        let w_ms = 4 * MINUTE_MS;
        let assigner = SlidingWindows::new(Duration(w_ms), Duration(1));
        let a: std::collections::HashSet<_> = assigner.assign(Timestamp(50_000)).collect();
        let b: std::collections::HashSet<_> = assigner.assign(Timestamp(50_000 + w_ms)).collect();
        assert!(a.intersection(&b).next().is_none());
    }

    #[test]
    #[should_panic(expected = "slide")]
    fn slide_larger_than_size_panics() {
        SlidingWindows::new(Duration::from_minutes(1), Duration::from_minutes(2));
    }

    #[test]
    fn non_divisible_slide_assignment_is_exact() {
        // W=4, s=3 (units): event at t=9 belongs to [6,10) and [9,13).
        let w = SlidingWindows::new(Duration(4), Duration(3));
        let ids: Vec<_> = w.assign(Timestamp(9)).collect();
        assert_eq!(
            ids,
            vec![
                WindowId {
                    start: Timestamp(6),
                    end: Timestamp(10)
                },
                WindowId {
                    start: Timestamp(9),
                    end: Timestamp(13)
                },
            ]
        );
        // t=10 belongs only to [9,13).
        let ids: Vec<_> = w.assign(Timestamp(10)).collect();
        assert_eq!(
            ids,
            vec![WindowId {
                start: Timestamp(9),
                end: Timestamp(13)
            }]
        );
    }

    #[test]
    fn assignment_matches_brute_force() {
        // Cross-check the closed form against a brute-force scan of all
        // aligned windows for a grid of (W, s, t) combinations.
        for (w, s) in [(4, 1), (4, 3), (5, 2), (6, 6), (7, 5), (10, 1)] {
            let assigner = SlidingWindows::new(Duration(w), Duration(s));
            for t in 0..60 {
                let got: Vec<_> = assigner.assign(Timestamp(t)).collect();
                let want: Vec<_> = (0..)
                    .map(|k| k * s)
                    .take_while(|start| *start <= t)
                    .filter(|start| start + w > t)
                    .map(|start| WindowId {
                        start: Timestamp(start),
                        end: Timestamp(start + w),
                    })
                    .collect();
                assert_eq!(got, want, "W={w} s={s} t={t}");
            }
        }
    }

    #[test]
    fn last_window_end_bounds_retention() {
        let w = SlidingWindows::new(Duration::from_minutes(4), Duration::from_minutes(1));
        let ts = min(10);
        let last_end = w.last_window_end(ts);
        assert_eq!(last_end, min(14));
        assert!(w.assign(ts).all(|id| id.end <= last_end));
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            SlidingWindows::tumbling(Duration::from_minutes(2)).to_string(),
            "TUMBLING(2min)"
        );
        assert_eq!(
            SlidingWindows::new(Duration::from_minutes(4), Duration::from_minutes(1)).to_string(),
            "SLIDING(4min, 1min)"
        );
    }
}
