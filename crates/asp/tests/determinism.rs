//! Batching must be invisible: the sink's tuple multiset is identical for
//! every `batch_size` and with operator chaining on or off.
//!
//! One pipeline per Section-5 join flavor — window join, interval join
//! (SEQ), and negation (NSEQ's next-occurrence UDF) — each executed across
//! `batch_size ∈ {1, 7, 64, 1024}` × chaining {on, off}. The 1024 case
//! exceeds the total event count, so the End/idle flush paths (not the
//! size trigger) deliver everything. CI runs this suite with
//! `--features invariant-checks` as well, so the flush protocol is also
//! validated against the emission-floor and watermark-regression asserts.

#![allow(clippy::unwrap_used)] // test code

use std::sync::Arc;

use asp::event::{Event, EventType};
use asp::graph::{Exchange, GraphBuilder, SinkId};
use asp::operator::{
    cross_join, FilterOp, IntervalBounds, IntervalJoinOp, NextOccurrenceOp, UnaryPredicate,
    WindowJoinOp,
};
use asp::runtime::{Executor, ExecutorConfig};
use asp::time::{Duration, Timestamp};
use asp::tuple::{MatchKey, TsRule, Tuple};
use asp::window::SlidingWindows;

const BATCH_SIZES: [usize; 4] = [1, 7, 64, 1024];

fn events(etype: u16, ids: &[u32], minutes: std::ops::Range<i64>) -> Vec<Event> {
    let mut out = Vec::new();
    for m in minutes {
        for &id in ids {
            out.push(Event::new(
                EventType(etype),
                id,
                Timestamp::from_minutes(m),
                (m as f64) + id as f64 / 100.0,
            ));
        }
    }
    out
}

fn sorted_keys(tuples: &[Tuple]) -> Vec<MatchKey> {
    let mut keys: Vec<MatchKey> = tuples.iter().map(Tuple::match_key).collect();
    keys.sort();
    keys
}

/// Run `build` under every (batch_size, chaining) combination and assert
/// the sorted match-key multiset never changes.
fn assert_batch_invariant(name: &str, build: impl Fn() -> (GraphBuilder, SinkId)) {
    let run = |batch_size: usize, chaining: bool| {
        let (g, sink) = build();
        let cfg = ExecutorConfig {
            batch_size,
            operator_chaining: chaining,
            ..ExecutorConfig::default()
        };
        let mut report = Executor::new(cfg).run(g).unwrap();
        sorted_keys(&report.take_sink(sink))
    };
    let reference = run(BATCH_SIZES[0], true);
    assert!(
        !reference.is_empty(),
        "{name}: pipeline produced no matches"
    );
    for chaining in [true, false] {
        for batch_size in BATCH_SIZES {
            let got = run(batch_size, chaining);
            assert_eq!(
                got, reference,
                "{name}: result diverged at batch_size={batch_size}, chaining={chaining}"
            );
        }
    }
}

/// Sliding window join (paper Section 4.1, SEQ-as-join): overlapping panes,
/// keyed parallelism 2, so hash routes with multiple senders are exercised.
#[test]
fn window_join_multiset_is_batch_invariant() {
    assert_batch_invariant("window-join", || {
        let mut g = GraphBuilder::new();
        let a = g.source("a", events(0, &[1, 2, 3], 0..40), 1);
        let b = g.source("b", events(1, &[1, 2, 3], 0..40), 1);
        let j = g.binary(
            a,
            b,
            Exchange::Hash,
            2,
            Box::new(|_| {
                Box::new(WindowJoinOp::new(
                    "⋈w",
                    SlidingWindows::new(Duration::from_minutes(6), Duration::from_minutes(2)),
                    cross_join(),
                    TsRule::Max,
                ))
            }),
        );
        let sink = g.sink(j, Exchange::Hash);
        (g, sink)
    });
}

/// Interval join with SEQ bounds (`0 < r.ts − l.ts ≤ W`), fed through a
/// filter so chaining has something to fuse.
#[test]
fn interval_join_multiset_is_batch_invariant() {
    assert_batch_invariant("interval-join", || {
        let mut g = GraphBuilder::new();
        let a = g.source("a", events(0, &[1, 2], 0..50), 1);
        let fa = g.unary(
            a,
            Exchange::Forward,
            1,
            Box::new(|_| {
                Box::new(FilterOp::new(
                    "σ",
                    Arc::new(|t: &Tuple| t.events[0].value < 45.0),
                ))
            }),
        );
        let b = g.source("b", events(1, &[1, 2], 0..50), 1);
        let j = g.binary(
            fa,
            b,
            Exchange::Hash,
            2,
            Box::new(|_| {
                Box::new(IntervalJoinOp::new(
                    "⋈i",
                    IntervalBounds::seq(Duration::from_minutes(4)),
                    cross_join(),
                    TsRule::Right,
                ))
            }),
        );
        let sink = g.sink(j, Exchange::Hash);
        (g, sink)
    });
}

/// Negation via the NSEQ next-occurrence UDF: triggers every minute,
/// markers every 7th minute; a trigger survives iff no marker lands within
/// the 5-minute window after it.
#[test]
fn negation_multiset_is_batch_invariant() {
    assert_batch_invariant("negation", || {
        let mut g = GraphBuilder::new();
        let triggers = g.source("t", events(0, &[1], 0..60), 1);
        let markers: Vec<Event> = events(1, &[1], 0..60)
            .into_iter()
            .filter(|e| e.ts.millis() % (7 * asp::time::MINUTE_MS) == 0)
            .collect();
        let msrc = g.source("m", markers, 1);
        let is_trigger: UnaryPredicate = Arc::new(|t: &Tuple| t.events[0].etype == EventType(0));
        let is_marker: UnaryPredicate = Arc::new(|t: &Tuple| t.events[0].etype == EventType(1));
        let n = g.nary(
            &[(triggers, Exchange::Rebalance), (msrc, Exchange::Rebalance)],
            1,
            Box::new(move |_| {
                Box::new(NextOccurrenceOp::new(
                    "nextOcc",
                    is_trigger.clone(),
                    is_marker.clone(),
                    Duration::from_minutes(5),
                ))
            }),
        );
        let sink = g.sink(n, Exchange::Forward);
        (g, sink)
    });
}
