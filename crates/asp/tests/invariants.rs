//! Tests of the `invariant-checks` feature: a task that breaks the
//! watermark contract must abort the pipeline with a diagnosable panic
//! instead of silently producing wrong (late) results downstream.

#![cfg(feature = "invariant-checks")]
#![allow(clippy::unwrap_used)] // test code

use std::sync::Arc;

use asp::event::{Event, EventType};
use asp::graph::{Exchange, GraphBuilder};
use asp::operator::{Collector, MapOp, Operator};
use asp::runtime::{Executor, ExecutorConfig};
use asp::time::Timestamp;
use asp::tuple::Tuple;
use asp::OpError;

fn events(n: i64) -> Vec<Event> {
    (0..n)
        .map(|m| Event::new(EventType(0), 1, Timestamp::from_minutes(m), m as f64))
        .collect()
}

/// A well-behaved pipeline runs to completion with the checks enabled.
#[test]
fn clean_pipeline_passes_invariant_checks() {
    let mut g = GraphBuilder::new();
    let src = g.source("s", events(500), 1);
    let m = g.unary(
        src,
        Exchange::Rebalance,
        2,
        Box::new(|_| Box::new(MapOp::new("id", Arc::new(|t| t)))),
    );
    let sink = g.sink(m, Exchange::Rebalance);
    let report = Executor::new(ExecutorConfig::default()).run(g).unwrap();
    assert_eq!(report.sink_count(sink), 500);
}

/// An operator that forwards watermarks honestly but pins every emitted
/// tuple to t=0 — emitting behind its own broadcast watermark.
struct TimeTraveler;

impl Operator for TimeTraveler {
    fn process(
        &mut self,
        _input: usize,
        mut tuple: Tuple,
        out: &mut dyn Collector,
    ) -> Result<(), OpError> {
        tuple.ts = Timestamp(0);
        out.emit(tuple);
        Ok(())
    }
    fn name(&self) -> &str {
        "time-traveler"
    }
}

#[test]
fn emission_behind_watermark_aborts_the_run() {
    let mut g = GraphBuilder::new();
    // Frequent watermarks so the contract floor rises during the run.
    use asp::graph::SourceConfig;
    let cfg = SourceConfig::new(events(2000)).with_watermark_every(8);
    let src = g.source_with("s", cfg, 1);
    // Parallelism 2 prevents chaining (a 1→2 edge is not fusible), so the
    // rogue operator runs in its own task with its own collector floor —
    // fused into the source it would inherit the source exemption instead.
    let bad = g.unary(
        src,
        Exchange::Rebalance,
        2,
        Box::new(|_| Box::new(TimeTraveler)),
    );
    let _sink = g.counting_sink(bad, Exchange::Rebalance);
    let err = Executor::new(ExecutorConfig::default()).run(g).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("invariant violation"), "got: {msg}");
}

/// Sources are exempt from the emission-floor contract: with an
/// under-estimated `watermark_lag` they legitimately emit tuples behind
/// their own watermark, and `drop_late` at the next *operator* task is the
/// degradation path. When operator chaining fuses the whole pipeline into
/// the source task, no such task exists before the sink — so the sink must
/// accept the late tuples rather than flag a (false) contract violation.
/// Regression test: found by the cross-plane oracle, reproduced on both
/// data planes.
#[test]
fn late_tuples_from_a_fused_source_chain_reach_the_sink() {
    use asp::graph::SourceConfig;
    // Punctuation every 2 events with zero lag: after ts=39min the source
    // watermark is 39min, making the ts=27min event behind it late.
    let disordered: Vec<Event> = [10i64, 39, 27, 40]
        .iter()
        .map(|&m| Event::new(EventType(0), 0, Timestamp::from_minutes(m), 1.0))
        .collect();
    for columnar in [false, true] {
        let mut g = GraphBuilder::new();
        let src = g.source_with(
            "s",
            SourceConfig::new(disordered.clone()).with_watermark_every(2),
            1,
        );
        // Forward + equal parallelism: the map fuses into the source task,
        // so nothing between the source and the sink applies `drop_late`.
        let op = g.unary(
            src,
            Exchange::Forward,
            1,
            Box::new(|_| Box::new(MapOp::identity("id"))),
        );
        let sink = g.sink(op, Exchange::Forward);
        let report = Executor::new(ExecutorConfig {
            columnar,
            batch_size: 1,
            operator_chaining: true,
            ..ExecutorConfig::default()
        })
        .run(g)
        .expect("late tuples on a source-fed sink port are not a violation");
        assert_eq!(report.sink_count(sink), 4, "columnar={columnar}");
    }
}
