//! Property-based equivalence of the key-partitioned joins against naive
//! reference oracles.
//!
//! Both binary temporal joins buffer their sides in hash-partitioned,
//! ts-ordered per-key runs and evaluate windows incrementally (band
//! probing). These are pure layout/scheduling optimizations: the output
//! *multiset* must be identical to the textbook evaluation. The oracles
//! here do it the slow, obviously-correct way — enumerate every
//! left × right pair, re-derive window membership (with pane multiplicity)
//! or interval containment from scratch — and the property compares full
//! sorted multisets of match keys, so lost duplicates, extra duplicates,
//! cross-key leaks, and premature eviction all fail.
//!
//! Random dimensions: key cardinality (including the uniform-key K = 1
//! degenerate case of Section 4.3.3), timestamp distribution, window
//! size × slide, interval bound shape (sequence / conjunction), θ, and
//! watermark cadence (`wm_every` — the per-batch punctuation analog, which
//! varies how aggressively state is evicted mid-stream).

#![allow(clippy::unwrap_used)]

use asp::event::{Event, EventType};
use asp::operator::{
    cross_join, Collector, IntervalBounds, IntervalJoinOp, JoinPredicate, Operator, WindowJoinOp,
};
use asp::time::{Duration, Timestamp};
use asp::tuple::{MatchKey, TsRule, Tuple};
use asp::window::SlidingWindows;
use proptest::prelude::*;
use std::sync::Arc;

/// (port, key, minute, value) — one join input.
type Item = (usize, u32, i64, u32);

#[derive(Default)]
struct Sink {
    out: Vec<Tuple>,
}

impl Collector for Sink {
    fn emit(&mut self, t: Tuple) {
        self.out.push(t);
    }
}

fn tuple_of(key: u32, minute: i64, value: u32, port: usize) -> Tuple {
    let mut t = Tuple::from_event(Event::new(
        EventType(port as u16),
        key,
        Timestamp::from_minutes(minute),
        value as f64,
    ));
    t.key = key as u64;
    t
}

/// Drive an operator the way the runtime does: tuples in timestamp order
/// (the runtime drops late tuples before they reach an operator), with a
/// punctuated watermark every `wm_every` tuples and a final flush.
fn run_op(op: &mut dyn Operator, items: &[Item], wm_every: usize) -> Vec<MatchKey> {
    let mut sorted = items.to_vec();
    sorted.sort_by_key(|&(_, _, m, _)| m);
    let mut sink = Sink::default();
    for (i, &(port, key, minute, value)) in sorted.iter().enumerate() {
        op.process(port, tuple_of(key, minute, value, port), &mut sink)
            .unwrap();
        if (i + 1) % wm_every == 0 {
            op.on_watermark(Timestamp::from_minutes(minute), &mut sink)
                .unwrap();
        }
    }
    op.on_finish(&mut sink).unwrap();
    let mut keys: Vec<MatchKey> = sink.out.iter().map(Tuple::match_key).collect();
    keys.sort();
    keys
}

fn theta_of(use_seq: bool) -> JoinPredicate {
    if use_seq {
        Arc::new(|l: &Tuple, r: &Tuple| l.ts_end() < r.ts_begin())
    } else {
        cross_join()
    }
}

/// Naive sliding-window reference: every left × right pair, same key, θ —
/// emitted once per aligned pane `[k·s, k·s + W)` containing both.
fn window_reference(items: &[Item], windows: SlidingWindows, use_seq: bool) -> Vec<MatchKey> {
    let theta = theta_of(use_seq);
    let lefts: Vec<Tuple> = items
        .iter()
        .filter(|i| i.0 == 0)
        .map(|&(p, k, m, v)| tuple_of(k, m, v, p))
        .collect();
    let rights: Vec<Tuple> = items
        .iter()
        .filter(|i| i.0 == 1)
        .map(|&(p, k, m, v)| tuple_of(k, m, v, p))
        .collect();
    let mut keys = Vec::new();
    for l in &lefts {
        for r in &rights {
            if l.key != r.key || !theta(l, r) {
                continue;
            }
            let (mn, mx) = (l.ts.min(r.ts), l.ts.max(r.ts));
            // Panes containing both = panes assigned to the earlier element
            // whose end also covers the later one.
            let panes = windows.assign(mn).filter(|wid| mx < wid.end).count();
            let key = l.join(r, TsRule::Max).match_key();
            keys.extend(std::iter::repeat(key).take(panes));
        }
    }
    keys.sort();
    keys
}

/// Naive interval reference: every left × right pair, same key, θ, with
/// `r.ts − l.ts` strictly inside the bounds — exactly once (the interval
/// join is duplicate-free by construction).
fn interval_reference(items: &[Item], bounds: IntervalBounds, use_seq: bool) -> Vec<MatchKey> {
    let theta = theta_of(use_seq);
    let mut keys = Vec::new();
    for &(lp, lk, lm, lv) in items.iter().filter(|i| i.0 == 0) {
        for &(rp, rk, rm, rv) in items.iter().filter(|i| i.0 == 1) {
            let (l, r) = (tuple_of(lk, lm, lv, lp), tuple_of(rk, rm, rv, rp));
            if l.key != r.key || !theta(&l, &r) {
                continue;
            }
            if r.ts > l.ts.saturating_add(bounds.lower) && r.ts < l.ts.saturating_add(bounds.upper)
            {
                keys.push(l.join(&r, TsRule::Max).match_key());
            }
        }
    }
    keys.sort();
    keys
}

/// Key cardinality 1..=5: K = 1 forces every tuple into one run (the
/// uniform-key degenerate case); larger K exercises cross-key isolation.
fn arb_items(max_key: u32) -> impl Strategy<Value = Vec<Item>> {
    proptest::collection::vec((0usize..2, 0..max_key, 0i64..40, 0u32..50), 4..70)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        ..ProptestConfig::default()
    })]

    #[test]
    fn window_join_matches_rescanning_reference(
        max_key in 1u32..=5,
        items in arb_items(5),
        w_min in 1i64..=6,
        slide_div in 1i64..=4,
        use_seq in any::<bool>(),
        wm_every in 1usize..=8,
    ) {
        let items: Vec<Item> =
            items.into_iter().map(|(p, k, m, v)| (p, k % max_key, m, v)).collect();
        let slide = Duration::from_minutes((w_min / slide_div).max(1));
        let windows = SlidingWindows::new(Duration::from_minutes(w_min), slide);
        let mut op = WindowJoinOp::new("⋈", windows, theta_of(use_seq), TsRule::Max);
        let got = run_op(&mut op, &items, wm_every);
        let want = window_reference(&items, windows, use_seq);
        prop_assert_eq!(got, want);
        prop_assert_eq!(op.state_bytes(), 0, "full eviction after finish");
    }

    #[test]
    fn interval_join_matches_pairwise_reference(
        max_key in 1u32..=5,
        items in arb_items(5),
        w_min in 1i64..=6,
        conjunction in any::<bool>(),
        use_seq in any::<bool>(),
        wm_every in 1usize..=8,
    ) {
        let items: Vec<Item> =
            items.into_iter().map(|(p, k, m, v)| (p, k % max_key, m, v)).collect();
        let w = Duration::from_minutes(w_min);
        let bounds = if conjunction {
            IntervalBounds::conjunction(w)
        } else {
            IntervalBounds::seq(w)
        };
        let mut op = IntervalJoinOp::new("i⋈", bounds, theta_of(use_seq), TsRule::Max);
        let got = run_op(&mut op, &items, wm_every);
        let want = interval_reference(&items, bounds, use_seq);
        prop_assert_eq!(got, want);
        prop_assert_eq!(op.state_bytes(), 0, "full eviction after finish");
    }
}
