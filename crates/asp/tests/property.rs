//! Property-based tests of the individual operators against brute-force
//! reference semantics.

#![allow(clippy::unwrap_used)] // test code

use std::sync::Arc;

use asp::event::{Event, EventType};
use asp::operator::{
    cross_join, DedupOp, IntervalBounds, IntervalJoinOp, Operator, VecCollector, WindowAggregateOp,
    WindowJoinOp,
};
use asp::time::{Duration, Timestamp, MINUTE_MS};
use asp::tuple::{MatchKey, TsRule, Tuple};
use asp::window::SlidingWindows;
use proptest::prelude::*;

fn ev(side: u16, id: u32, minute: i64, v: u32) -> Event {
    Event::new(
        EventType(side),
        id,
        Timestamp::from_minutes(minute),
        v as f64,
    )
}

fn arb_side_events(side: u16) -> impl Strategy<Value = Vec<Event>> {
    proptest::collection::vec((0u32..3, 0i64..30, 0u32..100), 0..25).prop_map(move |v| {
        let mut out: Vec<Event> = v
            .into_iter()
            .map(|(id, m, val)| ev(side, id, m, val))
            .collect();
        out.sort_by_key(|e| e.ts);
        out
    })
}

/// Drive a two-input operator with ts-merged feeds and per-event
/// watermarks; returns emissions.
fn drive_two(op: &mut dyn Operator, left: &[Event], right: &[Event]) -> Vec<Tuple> {
    let mut feed: Vec<(usize, Event)> = left
        .iter()
        .map(|e| (0usize, *e))
        .chain(right.iter().map(|e| (1usize, *e)))
        .collect();
    feed.sort_by_key(|(_, e)| e.ts);
    let mut col = VecCollector::default();
    let mut wm = Timestamp::MIN;
    for (port, e) in feed {
        wm = wm.max(e.ts);
        op.process(port, Tuple::from_event(e), &mut col).unwrap();
        op.on_watermark(wm, &mut col).unwrap();
    }
    op.on_finish(&mut col).unwrap();
    col.out
}

fn keys_of(tuples: &[Tuple]) -> Vec<MatchKey> {
    let mut k: Vec<MatchKey> = tuples.iter().map(Tuple::match_key).collect();
    k.sort();
    k
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Sliding-window join ≡ brute-force per-window enumeration (with
    /// duplicates), for random streams, windows, and slides.
    #[test]
    fn window_join_matches_brute_force(
        left in arb_side_events(0),
        right in arb_side_events(1),
        w_min in 1i64..8,
        s_min in 1i64..4,
    ) {
        prop_assume!(s_min <= w_min);
        let windows = SlidingWindows::new(
            Duration::from_minutes(w_min),
            Duration::from_minutes(s_min),
        );
        let mut op = WindowJoinOp::new("⋈", windows, cross_join(), TsRule::Max);
        let got = keys_of(&drive_two(&mut op, &left, &right));

        // Brute force over all aligned windows intersecting the data.
        let mut want: Vec<MatchKey> = Vec::new();
        let horizon = 40 * MINUTE_MS;
        let mut start = 0;
        while start < horizon {
            let in_win = |e: &Event| {
                e.ts.millis() >= start && e.ts.millis() < start + w_min * MINUTE_MS
            };
            for l in left.iter().filter(|e| in_win(e)) {
                for r in right.iter().filter(|e| in_win(e)) {
                    if l.id == r.id {
                        want.push(MatchKey(vec![*l, *r]));
                    }
                }
            }
            start += s_min * MINUTE_MS;
        }
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// Interval join ≡ its bounds definition, duplicate-free.
    #[test]
    fn interval_join_matches_definition(
        left in arb_side_events(0),
        right in arb_side_events(1),
        w_min in 1i64..8,
        conjunction in any::<bool>(),
    ) {
        let w = Duration::from_minutes(w_min);
        let bounds = if conjunction {
            IntervalBounds::conjunction(w)
        } else {
            IntervalBounds::seq(w)
        };
        let mut op = IntervalJoinOp::new("i⋈", bounds, cross_join(), TsRule::Min);
        let got = keys_of(&drive_two(&mut op, &left, &right));

        let lower = if conjunction { -w.millis() } else { 0 };
        let mut want: Vec<MatchKey> = Vec::new();
        for l in &left {
            for r in &right {
                let d = (r.ts - l.ts).millis();
                if l.id == r.id && d > lower && d < w.millis() {
                    want.push(MatchKey(vec![*l, *r]));
                }
            }
        }
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// Count aggregation ≡ brute-force per-window counts.
    #[test]
    fn aggregate_count_matches_brute_force(
        events in arb_side_events(0),
        w_min in 1i64..8,
        m in 1u64..5,
    ) {
        let windows = SlidingWindows::new(
            Duration::from_minutes(w_min),
            Duration::from_minutes(1),
        );
        let mut op = WindowAggregateOp::count_at_least("γ", windows, m);
        let mut col = VecCollector::default();
        for e in &events {
            let wm = e.ts;
            op.process(0, Tuple::from_event(*e), &mut col).unwrap();
            op.on_watermark(wm, &mut col).unwrap();
        }
        op.on_finish(&mut col).unwrap();

        // Brute force: per (aligned window, key), count; emit if ≥ m.
        let mut want = 0usize;
        for start_min in 0..40 {
            let start = start_min * MINUTE_MS;
            for id in 0..3u32 {
                let count = events
                    .iter()
                    .filter(|e| {
                        e.id == id
                            && e.ts.millis() >= start
                            && e.ts.millis() < start + w_min * MINUTE_MS
                    })
                    .count() as u64;
                if count >= m {
                    want += 1;
                }
            }
        }
        prop_assert_eq!(col.out.len(), want);
        for t in &col.out {
            prop_assert!(t.agg.unwrap() >= m as f64);
        }
    }

    /// Dedup emits exactly the distinct match keys of its input when all
    /// duplicates fall within the horizon.
    #[test]
    fn dedup_emits_distinct_keys(
        events in arb_side_events(0),
        copies in 1usize..4,
    ) {
        let mut op = DedupOp::new("δ", Duration::from_minutes(60));
        let mut col = VecCollector::default();
        for _ in 0..copies {
            for e in &events {
                op.process(0, Tuple::from_event(*e), &mut col).unwrap();
            }
        }
        op.on_finish(&mut col).unwrap();
        let mut distinct: Vec<MatchKey> = events.iter().map(|e| MatchKey(vec![*e])).collect();
        distinct.sort();
        distinct.dedup();
        prop_assert_eq!(keys_of(&col.out), distinct);
    }

    /// Chaining operators ≡ applying them sequentially.
    #[test]
    fn chained_equals_sequential(events in arb_side_events(0), threshold in 0.0f64..100.0) {
        use asp::operator::{FilterOp, MapOp};
        use asp::runtime::ChainedOperator;
        let filt = || -> Box<dyn Operator> {
            let t = threshold;
            Box::new(FilterOp::new("σ", Arc::new(move |tp: &Tuple| tp.events[0].value <= t)))
        };
        let map = || -> Box<dyn Operator> {
            Box::new(MapOp::new(
                "Π",
                Arc::new(|mut t: Tuple| {
                    t.key = 9;
                    t
                }),
            ))
        };
        // Chained.
        let mut chain = ChainedOperator::new(vec![filt(), map()]);
        let mut got = VecCollector::default();
        for e in &events {
            chain.process(0, Tuple::from_event(*e), &mut got).unwrap();
        }
        chain.on_finish(&mut got).unwrap();
        // Sequential.
        let (mut f, mut m) = (filt(), map());
        let mut mid = VecCollector::default();
        for e in &events {
            f.process(0, Tuple::from_event(*e), &mut mid).unwrap();
        }
        let mut want = VecCollector::default();
        for t in mid.out {
            m.process(0, t, &mut want).unwrap();
        }
        prop_assert_eq!(got.out.len(), want.out.len());
        prop_assert!(got.out.iter().all(|t| t.key == 9));
    }
}

// ---------------------------------------------------------------------------
// Graph-validator properties: random well-formed graphs pass validation, and
// single structural mutations are flagged with the expected `G` code.
// ---------------------------------------------------------------------------

mod validator {
    use super::*;
    use asp::graph::{Exchange, GraphBuilder, NodeId};
    use asp::validate::{validate, Code};

    /// A pure-data description of a linear pipeline (proptest strategies
    /// need `Clone + Debug`, which `GraphBuilder` itself cannot be).
    #[derive(Debug, Clone)]
    struct ChainSpec {
        src_parallelism: usize,
        /// Per operator stage: (parallelism, prefer `Forward` exchange).
        /// `Forward` is only used when legal (equal parallelism upstream).
        stages: Vec<(usize, bool)>,
    }

    fn arb_chain() -> impl Strategy<Value = ChainSpec> {
        (
            1usize..4,
            proptest::collection::vec((1usize..4, any::<bool>()), 1..5),
        )
            .prop_map(|(src_parallelism, stages)| ChainSpec {
                src_parallelism,
                stages,
            })
    }

    /// Build the described graph. Returns the builder and the operator
    /// `NodeId`s in stage order (the source is node 0; edge `i` connects
    /// stage `i-1` to stage `i`; the last edge feeds the sink).
    fn build(spec: &ChainSpec) -> (GraphBuilder, Vec<NodeId>) {
        let mut g = GraphBuilder::new();
        let events = vec![Event::new(EventType(0), 1, Timestamp::from_minutes(0), 1.0)];
        let mut prev = g.source("src", events, spec.src_parallelism);
        let mut prev_par = spec.src_parallelism;
        let mut ops = Vec::new();
        for &(par, forward) in &spec.stages {
            let exchange = if forward && par == prev_par {
                Exchange::Forward
            } else {
                Exchange::Rebalance
            };
            prev = g.unary(
                prev,
                exchange,
                par,
                Box::new(|_| Box::new(asp::operator::MapOp::new("id", Arc::new(|t| t)))),
            );
            ops.push(prev);
            prev_par = par;
        }
        g.sink(prev, Exchange::Rebalance);
        (g, ops)
    }

    fn codes(g: &GraphBuilder) -> Vec<Code> {
        match validate(g) {
            Ok(()) => Vec::new(),
            Err(diags) => diags.iter().map(|d| d.code).collect(),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Every graph the generator can produce is well formed.
        #[test]
        fn random_chain_graphs_pass_validation(spec in arb_chain()) {
            let (g, _) = build(&spec);
            prop_assert!(validate(&g).is_ok());
        }

        /// Dropping any edge leaves its destination without an input: G011.
        #[test]
        fn dropped_edge_is_flagged(spec in arb_chain(), pick in 0usize..64) {
            let (mut g, _) = build(&spec);
            let idx = pick % g.edge_count();
            g.drop_edge(idx);
            prop_assert!(codes(&g).contains(&Code::NoInputs));
        }

        /// Zeroing any node's parallelism: G007.
        #[test]
        fn zero_parallelism_is_flagged(spec in arb_chain(), pick in 0usize..64) {
            let (mut g, ops) = build(&spec);
            let node = ops[pick % ops.len()];
            g.set_parallelism(node, 0);
            prop_assert!(codes(&g).contains(&Code::ZeroParallelism));
        }

        /// Bumping the parallelism of a `Forward`-fed stage: G005.
        #[test]
        fn forward_mismatch_is_flagged(spec in arb_chain(), pick in 0usize..64) {
            // Force at least one legal Forward edge into the chain.
            let mut spec = spec;
            spec.stages.insert(0, (spec.src_parallelism, true));
            let (mut g, ops) = build(&spec);
            let _ = pick;
            g.set_parallelism(ops[0], spec.src_parallelism + 1);
            prop_assert!(codes(&g).contains(&Code::ForwardParallelismMismatch));
        }

        /// Duplicating any edge duplicates a destination port: G004.
        #[test]
        fn duplicated_port_is_flagged(spec in arb_chain(), pick in 0usize..64) {
            let (mut g, _) = build(&spec);
            let idx = pick % g.edge_count();
            g.duplicate_edge(idx);
            prop_assert!(codes(&g).contains(&Code::PortGapOrDuplicate));
        }
    }
}
