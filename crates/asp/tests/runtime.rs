//! End-to-end tests of the threaded dataflow runtime: watermark merging,
//! keyed parallelism, backpressure, failure propagation, and metrics.

#![allow(clippy::unwrap_used)] // test code

use std::sync::Arc;

use asp::event::{Event, EventType};
use asp::graph::{Exchange, GraphBuilder};
use asp::operator::{cross_join, FilterOp, MapOp, UnionOp, WindowJoinOp};
use asp::runtime::{key_partition, Executor, ExecutorConfig};
use asp::time::{Duration, Timestamp};
use asp::tuple::{MatchKey, TsRule, Tuple};
use asp::window::SlidingWindows;

fn events(etype: u16, ids: &[u32], minutes: std::ops::Range<i64>) -> Vec<Event> {
    let mut out = Vec::new();
    for m in minutes {
        for &id in ids {
            out.push(Event::new(
                EventType(etype),
                id,
                Timestamp::from_minutes(m),
                (m as f64) + id as f64 / 100.0,
            ));
        }
    }
    out
}

fn sorted_keys(tuples: &[Tuple]) -> Vec<MatchKey> {
    let mut keys: Vec<MatchKey> = tuples.iter().map(Tuple::match_key).collect();
    keys.sort();
    keys
}

#[test]
fn filter_pipeline_end_to_end() {
    let mut g = GraphBuilder::new();
    let src = g.source("s", events(0, &[1], 0..100), 1);
    let f = g.unary(
        src,
        Exchange::Forward,
        1,
        Box::new(|_| {
            Box::new(FilterOp::new(
                "σ",
                Arc::new(|t: &Tuple| t.events[0].value >= 50.0),
            ))
        }),
    );
    let sink = g.sink(f, Exchange::Forward);
    let report = Executor::new(ExecutorConfig::default()).run(g).unwrap();
    assert_eq!(report.sink_count(sink), 50);
    assert_eq!(report.source_events, 100);
    assert!(report.throughput() > 0.0);
}

#[test]
fn union_merges_sources_with_aligned_watermarks() {
    let mut g = GraphBuilder::new();
    let a = g.source("a", events(0, &[1], 0..50), 1);
    let b = g.source("b", events(1, &[2], 0..50), 1);
    let u = g.nary(
        &[(a, Exchange::Forward), (b, Exchange::Forward)],
        1,
        Box::new(|_| Box::new(UnionOp::new("∪", 2))),
    );
    let sink = g.sink(u, Exchange::Forward);
    let report = Executor::new(ExecutorConfig::default()).run(g).unwrap();
    assert_eq!(report.sink_count(sink), 100);
}

/// A tumbling join over two sources must produce exactly the cross product
/// per window, regardless of thread interleaving.
#[test]
fn window_join_pipeline_is_deterministic() {
    let run = || {
        let mut g = GraphBuilder::new();
        let a = g.source("a", events(0, &[1], 0..40), 1);
        let b = g.source("b", events(1, &[1], 0..40), 1);
        let j = g.binary(
            a,
            b,
            Exchange::Hash,
            1,
            Box::new(|_| {
                Box::new(WindowJoinOp::new(
                    "⋈",
                    SlidingWindows::tumbling(Duration::from_minutes(10)),
                    cross_join(),
                    TsRule::Max,
                ))
            }),
        );
        let sink = g.sink(j, Exchange::Forward);
        let mut report = Executor::new(ExecutorConfig::default()).run(g).unwrap();
        sorted_keys(&report.take_sink(sink))
    };
    let first = run();
    // 4 windows × 10 × 10 pairs.
    assert_eq!(first.len(), 400);
    for _ in 0..3 {
        assert_eq!(run(), first, "same matches on every run");
    }
}

/// Keyed parallel execution must produce exactly the same matches as the
/// single-slot execution (co-partitioning correctness).
#[test]
fn keyed_parallelism_preserves_semantics() {
    let ids: Vec<u32> = (0..16).collect();
    let run = |par: usize| {
        let mut g = GraphBuilder::new();
        let a = g.source("a", events(0, &ids, 0..30), 1);
        let b = g.source("b", events(1, &ids, 0..30), 1);
        let j = g.binary(
            a,
            b,
            Exchange::Hash,
            par,
            Box::new(|_| {
                Box::new(WindowJoinOp::new(
                    "⋈=",
                    SlidingWindows::tumbling(Duration::from_minutes(5)),
                    cross_join(),
                    TsRule::Max,
                ))
            }),
        );
        let sink = g.sink(j, Exchange::Hash);
        let mut report = Executor::new(ExecutorConfig::default()).run(g).unwrap();
        sorted_keys(&report.take_sink(sink))
    };
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(serial.len(), 16 * 6 * 25, "16 keys × 6 windows × 5×5 pairs");
    assert_eq!(serial, parallel);
}

#[test]
fn rebalance_distributes_and_preserves_count() {
    let mut g = GraphBuilder::new();
    let src = g.source("s", events(0, &[1, 2, 3], 0..100), 1);
    let m = g.unary(
        src,
        Exchange::Rebalance,
        4,
        Box::new(|_| Box::new(MapOp::new("id", Arc::new(|t| t)))),
    );
    let sink = g.sink(m, Exchange::Rebalance);
    let report = Executor::new(ExecutorConfig::default()).run(g).unwrap();
    assert_eq!(report.sink_count(sink), 300);
    let map_node = report.nodes.iter().find(|n| n.name == "op1").unwrap();
    assert_eq!(map_node.records_in, 300);
    assert_eq!(map_node.records_out, 300);
}

#[test]
fn memory_limit_failure_aborts_pipeline() {
    let mut g = GraphBuilder::new();
    let a = g.source("a", events(0, &[1], 0..2000), 1);
    let b = g.source("b", events(1, &[1], 0..2000), 1);
    let j = g.binary(
        a,
        b,
        Exchange::Hash,
        1,
        Box::new(|_| {
            Box::new(
                WindowJoinOp::new(
                    "⋈",
                    SlidingWindows::new(Duration::from_minutes(100), Duration::from_minutes(1)),
                    cross_join(),
                    TsRule::Max,
                )
                .with_memory_limit(64 * 1024),
            )
        }),
    );
    let _sink = g.counting_sink(j, Exchange::Forward);
    let err = Executor::new(ExecutorConfig::default()).run(g).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("exhausted memory"), "got: {msg}");
}

#[test]
fn rate_limited_source_paces_emission() {
    use asp::graph::SourceConfig;
    let evs = events(0, &[1], 0..200);
    let mut g = GraphBuilder::new();
    let src = g.source_with("paced", SourceConfig::new(evs).with_rate(2000.0), 1);
    let sink = g.sink(src, Exchange::Forward);
    let report = Executor::new(ExecutorConfig::default()).run(g).unwrap();
    assert_eq!(report.sink_count(sink), 200);
    // 200 events at 2000/s ≥ 100 ms.
    assert!(
        report.duration.as_millis() >= 95,
        "run finished too fast: {:?}",
        report.duration
    );
    // Throughput reflects pacing, not machine speed.
    assert!(report.throughput() < 3000.0);
}

#[test]
fn latency_is_measured_at_sink() {
    let mut g = GraphBuilder::new();
    let src = g.source("s", events(0, &[1], 0..500), 1);
    let sink = g.sink(src, Exchange::Forward);
    let cfg = ExecutorConfig {
        latency_stride: 1,
        ..Default::default()
    };
    let report = Executor::new(cfg).run(g).unwrap();
    let lat = report.latency(sink);
    assert!(lat.samples > 0);
    assert!(lat.p50_ms <= lat.p99_ms);
    assert!(lat.max_ms < 10_000.0, "latency sane: {:?}", lat);
}

#[test]
fn resource_sampling_produces_series() {
    let mut g = GraphBuilder::new();
    let evs = events(0, &[1], 0..2000);
    use asp::graph::SourceConfig;
    let src = g.source_with("s", SourceConfig::new(evs).with_rate(10_000.0), 1);
    let j = g.binary(
        src,
        src,
        Exchange::Hash,
        1,
        Box::new(|_| {
            Box::new(WindowJoinOp::new(
                "⋈",
                SlidingWindows::tumbling(Duration::from_minutes(50)),
                cross_join(),
                TsRule::Max,
            ))
        }),
    );
    let _sink = g.counting_sink(j, Exchange::Forward);
    let cfg = ExecutorConfig {
        sample_interval: Some(std::time::Duration::from_millis(10)),
        ..Default::default()
    };
    let report = Executor::new(cfg).run(g).unwrap();
    assert!(!report.samples.is_empty(), "sampler collected data");
    assert!(report.peak_state_bytes() > 0, "join buffered state");
}

#[test]
fn key_partition_is_balanced_for_sequential_keys() {
    for p in [2usize, 4, 8, 16] {
        let mut counts = vec![0usize; p];
        for k in 0..128u64 {
            counts[key_partition(k, p)] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(
            max <= min.max(1) * 4,
            "partitioning too skewed for p={p}: {counts:?}"
        );
        assert!(counts.iter().all(|&c| c > 0), "empty partition for p={p}");
    }
}

#[test]
fn invalid_graphs_are_rejected() {
    // No sink.
    let mut g = GraphBuilder::new();
    let _src = g.source("s", events(0, &[1], 0..1), 1);
    assert!(Executor::new(ExecutorConfig::default()).run(g).is_err());

    // Forward with unequal parallelism.
    let mut g = GraphBuilder::new();
    let src = g.source("s", events(0, &[1], 0..1), 1);
    let f = g.unary(
        src,
        Exchange::Forward,
        3,
        Box::new(|_| Box::new(MapOp::new("id", Arc::new(|t| t)))),
    );
    let _ = g.sink(f, Exchange::Rebalance);
    assert!(Executor::new(ExecutorConfig::default()).run(g).is_err());
}

#[test]
fn parallel_sources_preserve_all_events() {
    let mut g = GraphBuilder::new();
    let src = g.source("s", events(0, &[1], 0..1000), 4);
    let sink = g.sink(src, Exchange::Rebalance);
    let report = Executor::new(ExecutorConfig::default()).run(g).unwrap();
    assert_eq!(report.sink_count(sink), 1000);
    assert_eq!(report.source_events, 1000);
}

/// Operator chaining is a pure optimization: fused and unfused executions
/// of the same graph must produce identical match sets.
#[test]
fn chaining_does_not_change_results() {
    let build = || {
        let mut g = GraphBuilder::new();
        let a = g.source("a", events(0, &[1, 2], 0..60), 1);
        let fa = g.unary(
            a,
            Exchange::Forward,
            1,
            Box::new(|_| {
                Box::new(FilterOp::new(
                    "σ",
                    Arc::new(|t: &Tuple| t.events[0].value < 40.0),
                ))
            }),
        );
        let b = g.source("b", events(1, &[1, 2], 0..60), 1);
        let j = g.binary(
            fa,
            b,
            Exchange::Hash,
            1,
            Box::new(|_| {
                Box::new(WindowJoinOp::new(
                    "⋈",
                    SlidingWindows::new(Duration::from_minutes(5), Duration::from_minutes(1)),
                    cross_join(),
                    TsRule::Max,
                ))
            }),
        );
        let m = g.unary(
            j,
            Exchange::Forward,
            1,
            Box::new(|_| Box::new(MapOp::ts_to_max("Π"))),
        );
        let sink = g.sink(m, Exchange::Forward);
        (g, sink)
    };
    let run = |chaining: bool| {
        let (g, sink) = build();
        let cfg = ExecutorConfig {
            operator_chaining: chaining,
            ..Default::default()
        };
        let mut report = Executor::new(cfg).run(g).unwrap();
        sorted_keys(&report.take_sink(sink))
    };
    let fused = run(true);
    let unfused = run(false);
    assert!(!fused.is_empty());
    assert_eq!(fused, unfused);
}

/// A panicking operator must surface as a pipeline error, not a hang.
#[test]
fn worker_panic_is_reported() {
    struct Bomb;
    impl asp::operator::Operator for Bomb {
        fn process(
            &mut self,
            _input: usize,
            _tuple: Tuple,
            _out: &mut dyn asp::operator::Collector,
        ) -> Result<(), asp::OpError> {
            panic!("boom");
        }
        fn name(&self) -> &str {
            "bomb"
        }
    }
    let mut g = GraphBuilder::new();
    let src = g.source("s", events(0, &[1], 0..10), 1);
    // Rebalance prevents fusing the bomb into the source thread, so the
    // panic travels the worker-join path.
    let b = g.unary(src, Exchange::Rebalance, 2, Box::new(|_| Box::new(Bomb)));
    let _sink = g.counting_sink(b, Exchange::Rebalance);
    let err = Executor::new(ExecutorConfig::default()).run(g).unwrap_err();
    assert!(err.to_string().contains("panic"), "{err}");
}
