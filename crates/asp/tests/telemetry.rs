//! Integration tests for the runtime observability layer: watermark-lag
//! gauges, late-drop accounting, processing-latency histograms, resource
//! sampling at short runs, the structured event log, and the JSON export
//! round-trip through the vendored parser.

#![allow(clippy::unwrap_used)] // test code

use std::sync::Arc;

use asp::event::{Event, EventType};
use asp::graph::{Exchange, GraphBuilder, SourceConfig};
use asp::operator::FilterOp;
use asp::runtime::{Executor, ExecutorConfig, NodeStats, RunReport};
use asp::time::{Duration, Timestamp};
use asp::tuple::Tuple;
use serde::{de_field, Value};

fn in_order_events(minutes: std::ops::Range<i64>) -> Vec<Event> {
    minutes
        .map(|m| Event::new(EventType(0), 1, Timestamp::from_minutes(m), m as f64))
        .collect()
}

fn pass_all() -> Box<dyn Fn(usize) -> Box<dyn asp::operator::Operator> + Send + Sync> {
    Box::new(|_| Box::new(FilterOp::new("σ", Arc::new(|_: &Tuple| true))))
}

fn node<'a>(report: &'a RunReport, name: &str) -> &'a NodeStats {
    report
        .nodes
        .iter()
        .find(|n| n.name.contains(name))
        .unwrap_or_else(|| panic!("no node named {name}"))
}

/// On an in-order per-tuple-messaging pipeline the operator's
/// watermark-lag gauge is bounded by the configured source watermark lag,
/// and the source's final watermark (at the last event timestamp) drives
/// the gauge back to 0.
///
/// The strict bound holds at `batch_size: 1`: with micro-batching, the
/// soft-flush protocol defers watermarks behind partially filled batches
/// (they ride out right after the batch), so the observed lag may exceed
/// the configured lag by up to one punctuation interval in event time.
#[test]
fn watermark_lag_gauge_bounded_by_source_lag() {
    const LAG_MS: i64 = 120_000; // 2 minutes
    let mut g = GraphBuilder::new();
    let cfg = SourceConfig::new(in_order_events(0..500))
        .with_watermark_every(1)
        .with_watermark_lag(Duration::from_millis(LAG_MS));
    let src = g.source_with("s", cfg, 1);
    let f = g.unary(src, Exchange::Forward, 1, pass_all());
    g.name_last("filter");
    let _sink = g.sink(f, Exchange::Forward);
    let report = Executor::new(ExecutorConfig {
        operator_chaining: false, // keep the filter a real (unfused) node
        batch_size: 1,            // watermarks are never deferred
        ..ExecutorConfig::default()
    })
    .run(g)
    .unwrap();

    let filt = node(&report, "filter");
    assert!(
        filt.watermark_lag_peak_ms > 0,
        "per-event punctuation with a 2 min lag must register a nonzero gauge"
    );
    assert!(
        filt.watermark_lag_peak_ms <= LAG_MS,
        "gauge peak {} exceeds the configured source lag {LAG_MS}",
        filt.watermark_lag_peak_ms
    );
    assert_eq!(
        filt.watermark_lag_ms, 0,
        "the source's final watermark (at the last event ts) should close the lag"
    );
    // Strided processing-latency sampling saw some of the 500 tuples.
    assert!(filt.proc_latency.count > 0);
    assert!(filt.proc_latency.max_ns >= 1);
    // In-order input with a correct lag never drops anything.
    assert_eq!(filt.late_dropped, 0);
}

/// With zero watermark lag and out-of-order input, `drop_late` fires; the
/// drops are counted in `NodeStats::late_dropped` and visible in the JSON
/// export.
#[test]
fn late_dropped_is_counted_and_exported() {
    let mut events = in_order_events(0..50);
    // Three stragglers far behind the frontier, then the stream resumes.
    for m in [2, 3, 4] {
        events.push(Event::new(
            EventType(0),
            1,
            Timestamp::from_minutes(m),
            m as f64,
        ));
    }
    events.extend(in_order_events(50..60));

    let mut g = GraphBuilder::new();
    let cfg = SourceConfig::new(events).with_watermark_every(1); // lag 0
    let src = g.source_with("s", cfg, 1);
    let f = g.unary(src, Exchange::Forward, 1, pass_all());
    g.name_last("filter");
    let sink = g.sink(f, Exchange::Forward);
    let report = Executor::new(ExecutorConfig {
        operator_chaining: false,
        batch_size: 1, // per-tuple messages: watermarks overtake nothing
        drop_late: true,
        ..ExecutorConfig::default()
    })
    .run(g)
    .unwrap();

    let filt = node(&report, "filter");
    assert_eq!(filt.late_dropped, 3, "exactly the three stragglers drop");
    assert_eq!(report.sink_count(sink), 60);

    let json = report.to_json();
    let v: Value = serde_json::from_str(&json).unwrap();
    let nodes = match de_field(&v, "nodes") {
        Value::Array(items) => items,
        other => panic!("nodes should be an array, got {other:?}"),
    };
    let exported = nodes
        .iter()
        .find(|n| matches!(de_field(n, "name"), Value::Str(s) if s.contains("filter")))
        .expect("filter node in JSON export");
    assert_eq!(de_field(exported, "late_dropped"), &Value::UInt(3));
}

/// `RunReport::to_json` produces a document the vendored parser accepts,
/// and the parse → re-serialize round trip is the identity. The export
/// carries every telemetry surface: per-node histograms and gauges, the
/// resource-sample series, sink latency, and the structured event log.
#[test]
fn run_report_json_round_trips_and_is_complete() {
    let mut g = GraphBuilder::new();
    let cfg = SourceConfig::new(in_order_events(0..2000))
        .with_watermark_every(16)
        .with_watermark_lag(Duration::from_millis(60_000));
    let src = g.source_with("s", cfg, 1);
    let f = g.unary(src, Exchange::Forward, 1, pass_all());
    let _sink = g.sink(f, Exchange::Forward);
    let report = Executor::new(ExecutorConfig {
        operator_chaining: false,
        sample_interval: Some(std::time::Duration::from_millis(1)),
        progress_interval: Some(std::time::Duration::from_millis(1)),
        ..ExecutorConfig::default()
    })
    .run(g)
    .unwrap();

    let json = report.to_json();
    let v: Value = serde_json::from_str(&json).unwrap();
    let reprinted = serde_json::to_string_pretty(&v).unwrap();
    assert_eq!(json, reprinted, "parse → print must be the identity");

    // Top-level telemetry surfaces.
    assert_eq!(de_field(&v, "schema_version"), &Value::UInt(1));
    assert!(matches!(de_field(&v, "throughput_eps"), Value::Float(t) if *t > 0.0));
    let nodes = match de_field(&v, "nodes") {
        Value::Array(items) => items,
        other => panic!("nodes should be an array, got {other:?}"),
    };
    assert_eq!(nodes.len(), report.nodes.len());
    for n in nodes {
        for key in [
            "proc_latency",
            "watermark_lag_ms",
            "watermark_lag_peak_ms",
            "queue_depth",
            "queue_depth_peak",
            "backpressure_ns",
            "avg_batch",
            "proc_latency_p99_le_ns",
        ] {
            assert!(
                !matches!(de_field(n, key), Value::Null),
                "node object missing `{key}`"
            );
        }
    }
    // The t≈0 + shutdown samples guarantee a non-empty series even for a
    // run much shorter than any realistic interval.
    assert!(matches!(de_field(&v, "samples"), Value::Array(s) if !s.is_empty()));
    // Event log: lifecycle events from the executor plus progress lines.
    let events = match de_field(&v, "events") {
        Value::Array(items) => items,
        other => panic!("events should be an array, got {other:?}"),
    };
    let has = |task: &str, needle: &str| {
        events.iter().any(|e| {
            matches!(de_field(e, "task"), Value::Str(t) if t == task)
                && matches!(de_field(e, "message"), Value::Str(m) if m.contains(needle))
        })
    };
    assert!(has("executor", "run started"), "missing run-started event");
    assert!(
        has("executor", "run finished"),
        "missing run-finished event"
    );
}

/// A run far shorter than the sampling interval still yields a series:
/// one sample at t ≈ 0 and one at shutdown.
#[test]
fn short_run_still_yields_resource_samples() {
    let mut g = GraphBuilder::new();
    let src = g.source("s", in_order_events(0..10), 1);
    let _sink = g.sink(src, Exchange::Forward);
    let report = Executor::new(ExecutorConfig {
        sample_interval: Some(std::time::Duration::from_millis(500)),
        ..ExecutorConfig::default()
    })
    .run(g)
    .unwrap();
    assert!(
        report.samples.len() >= 2,
        "expected a t≈0 sample and a shutdown sample, got {}",
        report.samples.len()
    );
    assert!(
        report.samples[0].elapsed_ms < 500,
        "first sample must be taken before the first full interval"
    );
}

/// `event_log_capacity: 0` disables retention but keeps counting, so the
/// report records how much was discarded.
#[test]
fn zero_event_log_capacity_retains_nothing() {
    let mut g = GraphBuilder::new();
    let src = g.source("s", in_order_events(0..10), 1);
    let _sink = g.sink(src, Exchange::Forward);
    let report = Executor::new(ExecutorConfig {
        event_log_capacity: 0,
        ..ExecutorConfig::default()
    })
    .run(g)
    .unwrap();
    assert!(report.events.is_empty());
    assert!(report.events_displaced > 0);
}
