//! Criterion micro-benchmarks of the runtime hot path: end-to-end
//! pipelines swept over `batch_size`, with operator chaining disabled so
//! channel synchronization dominates. Absolute numbers live in
//! `BENCH_hotpath.json` (see `scripts/bench_hotpath.sh`); this suite is
//! for relative tracking across commits.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bench::hotpath::{
    dense_stream, run_chain, run_chain_row, run_fanout, run_window_join,
    run_window_join_global_scan, run_window_join_keyed, stream, BATCH_SIZES,
};

const CHAIN_N: usize = 50_000;
const FANOUT_N: usize = 50_000;
const JOIN_N: usize = 10_000;

fn bench_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath_chain");
    g.throughput(Throughput::Elements(CHAIN_N as u64));
    for bs in BATCH_SIZES {
        g.bench_with_input(BenchmarkId::new("filter_map", bs), &bs, |b, &bs| {
            b.iter(|| {
                let (report, sink) = run_chain(stream(CHAIN_N, 4, 1), bs);
                black_box(report.sink_count(sink))
            })
        });
    }
    g.finish();
}

/// Columnar vs row data plane on the identical filter→map graph at the
/// headline batch size — the criterion-tracked form of the
/// `speedup_filter_map_columnar_vs_row_256` ratio.
fn bench_chain_planes(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath_chain_planes");
    g.throughput(Throughput::Elements(CHAIN_N as u64));
    g.bench_function("columnar_256", |b| {
        b.iter(|| {
            let (report, sink) = run_chain(stream(CHAIN_N, 4, 1), 256);
            black_box(report.sink_count(sink))
        })
    });
    g.bench_function("row_256", |b| {
        b.iter(|| {
            let (report, sink) = run_chain_row(stream(CHAIN_N, 4, 1), 256);
            black_box(report.sink_count(sink))
        })
    });
    g.finish();
}

fn bench_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath_fanout");
    g.throughput(Throughput::Elements(FANOUT_N as u64));
    for bs in BATCH_SIZES {
        g.bench_with_input(BenchmarkId::new("hash_x4", bs), &bs, |b, &bs| {
            b.iter(|| {
                let (report, sink) = run_fanout(stream(FANOUT_N, 16, 2), bs, 4);
                black_box(report.sink_count(sink))
            })
        });
    }
    g.finish();
}

fn bench_window_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath_window_join");
    g.throughput(Throughput::Elements(2 * JOIN_N as u64));
    for bs in [1usize, 64] {
        g.bench_with_input(BenchmarkId::new("sliding_5_1", bs), &bs, |b, &bs| {
            b.iter(|| {
                let (report, sink) =
                    run_window_join(stream(JOIN_N, 4, 3), stream(JOIN_N, 4, 4), bs);
                black_box(report.sink_count(sink))
            })
        });
    }
    g.finish();
}

/// Keyed vs frozen global-scan window join on the same dense K=64 input:
/// the criterion-tracked form of the headline state-layout ratio.
fn bench_window_join_keyed(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath_window_join_keyed");
    g.throughput(Throughput::Elements(2 * JOIN_N as u64));
    g.bench_function("keyed_k64", |b| {
        b.iter(|| {
            let (report, sink) =
                run_window_join_keyed(dense_stream(JOIN_N, 64, 3), dense_stream(JOIN_N, 64, 4), 64);
            black_box(report.sink_count(sink))
        })
    });
    g.bench_function("global_scan_k64", |b| {
        b.iter(|| {
            let (report, sink) = run_window_join_global_scan(
                dense_stream(JOIN_N, 64, 3),
                dense_stream(JOIN_N, 64, 4),
                64,
            );
            black_box(report.sink_count(sink))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_chain, bench_chain_planes, bench_fanout, bench_window_join, bench_window_join_keyed
}
criterion_main!(benches);
