//! Criterion end-to-end benchmarks: one complete pipeline run per
//! elementary SEA operator, FCEP vs FASP vs FASP-O1 — the microbenchmark
//! companion to the `repro fig3a` experiment.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use asp::event::{Event, EventType};
use asp::runtime::{Executor, ExecutorConfig};
use bench::patterns;
use cep::BaselineConfig;
use cep2asp::{MapperOptions, PhysicalConfig};
use sea::pattern::Pattern;
use workloads::{generate_aq, generate_qnv, AqConfig, QnvConfig, ValueModel};

fn workload(minutes: i64) -> (HashMap<EventType, Vec<Event>>, usize) {
    let mut w = generate_qnv(&QnvConfig {
        sensors: 4,
        minutes,
        seed: 77,
        value_model: ValueModel::Uniform,
    });
    w.merge(generate_aq(&AqConfig {
        sensors: 4,
        minutes,
        seed: 77,
        value_model: ValueModel::Uniform,
        id_offset: 0,
    }));
    let total = w.total_events();
    let map = w.streams.clone();
    (map, total)
}

fn run_fcep(pattern: &Pattern, sources: &HashMap<EventType, Vec<Event>>) -> u64 {
    let cfg = BaselineConfig {
        collect_output: false,
        ..Default::default()
    };
    let (g, sink) = cep::build_baseline(pattern, sources, &cfg).unwrap();
    let report = Executor::new(ExecutorConfig::default()).run(g).unwrap();
    report.sink_count(sink)
}

fn run_fasp(
    pattern: &Pattern,
    opts: &MapperOptions,
    sources: &HashMap<EventType, Vec<Event>>,
) -> u64 {
    let phys = PhysicalConfig {
        collect_output: false,
        ..Default::default()
    };
    let run =
        cep2asp::run_pattern(pattern, opts, sources, &phys, &ExecutorConfig::default()).unwrap();
    run.raw_count()
}

fn bench_elementary(c: &mut Criterion) {
    let (sources, total) = workload(1500);
    let mut g = c.benchmark_group("elementary");
    g.throughput(Throughput::Elements(total as u64));
    g.sample_size(10);

    let cases: Vec<(&str, Pattern, bool)> = vec![
        ("SEQ1", patterns::seq1(0.05, 15), true),
        ("ITER3", patterns::iter_threshold(3, 0.08, 15), true),
        ("NSEQ1", patterns::nseq1(0.2, 0.05, 15), true),
        (
            "AND2",
            {
                use sea::pattern::{builders, WindowSpec};
                use sea::predicate::{CmpOp, Predicate};
                builders::and(
                    &[(EventType(0), "Q"), (EventType(1), "V")],
                    WindowSpec::minutes(15),
                    vec![
                        Predicate::threshold(0, asp::event::Attr::Value, CmpOp::Le, 5.0),
                        Predicate::threshold(1, asp::event::Attr::Value, CmpOp::Le, 5.0),
                    ],
                )
            },
            false,
        ),
    ];
    for (name, pattern, fcep_supported) in &cases {
        if *fcep_supported {
            g.bench_with_input(BenchmarkId::new("FCEP", name), pattern, |b, p| {
                b.iter(|| run_fcep(p, &sources))
            });
        }
        g.bench_with_input(BenchmarkId::new("FASP", name), pattern, |b, p| {
            b.iter(|| run_fasp(p, &MapperOptions::plain(), &sources))
        });
        g.bench_with_input(BenchmarkId::new("FASP-O1", name), pattern, |b, p| {
            b.iter(|| run_fasp(p, &MapperOptions::o1(), &sources))
        });
    }
    g.finish();
}

fn bench_translation(c: &mut Criterion) {
    // Plan construction itself should be trivially cheap.
    let mut g = c.benchmark_group("translate");
    let pattern = patterns::seq_n(6, 0.3, 15);
    g.bench_function("seq6_plan", |b| {
        b.iter(|| cep2asp::translate(&pattern, &MapperOptions::o1().and_o3()).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_elementary, bench_translation);
criterion_main!(benches);
