//! Criterion micro-benchmarks of the individual dataflow operators and the
//! NFA engine — the per-operator costs behind the end-to-end numbers.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use asp::event::{Event, EventType};
use asp::operator::{
    cross_join, Collector, IntervalBounds, IntervalJoinOp, Operator, WindowAggregateOp,
    WindowJoinOp,
};
use asp::time::{Duration, Timestamp};
use asp::tuple::{TsRule, Tuple};
use asp::window::SlidingWindows;
use cep::{Nfa, NfaEngine, SelectionPolicy};
use sea::pattern::{builders, WindowSpec};

const Q: EventType = EventType(0);
const V: EventType = EventType(1);

struct NullCollector(u64);

impl Collector for NullCollector {
    fn emit(&mut self, t: Tuple) {
        self.0 += 1;
        black_box(&t);
    }
}

fn stream(n: usize, sensors: u32, seed: u64) -> Vec<Event> {
    // Cheap deterministic pseudo-stream: one event per sensor per minute.
    let mut out = Vec::with_capacity(n);
    let mut x = seed | 1;
    for i in 0..n {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let minute = (i as u32 / sensors) as i64;
        out.push(Event::new(
            if i % 2 == 0 { Q } else { V },
            (i as u32) % sensors,
            Timestamp::from_minutes(minute),
            (x >> 33) as f64 / (1u64 << 31) as f64 * 100.0,
        ));
    }
    out
}

fn bench_window_joins(c: &mut Criterion) {
    let mut g = c.benchmark_group("window_join");
    let n = 20_000usize;
    g.throughput(Throughput::Elements(n as u64));
    for w_min in [5i64, 15] {
        g.bench_with_input(BenchmarkId::new("sliding", w_min), &w_min, |b, &w_min| {
            let events = stream(n, 4, 1);
            b.iter(|| {
                let mut op = WindowJoinOp::new(
                    "⋈",
                    SlidingWindows::new(Duration::from_minutes(w_min), Duration::from_minutes(1)),
                    cross_join(),
                    TsRule::Min,
                );
                let mut col = NullCollector(0);
                for e in &events {
                    let port = (e.etype == V) as usize;
                    op.process(port, Tuple::from_event(*e), &mut col).unwrap();
                    op.on_watermark(e.ts, &mut col).unwrap();
                }
                op.on_finish(&mut col).unwrap();
                col.0
            })
        });
        g.bench_with_input(BenchmarkId::new("interval", w_min), &w_min, |b, &w_min| {
            let events = stream(n, 4, 1);
            b.iter(|| {
                let mut op = IntervalJoinOp::new(
                    "i⋈",
                    IntervalBounds::seq(Duration::from_minutes(w_min)),
                    cross_join(),
                    TsRule::Min,
                );
                let mut col = NullCollector(0);
                for e in &events {
                    let port = (e.etype == V) as usize;
                    op.process(port, Tuple::from_event(*e), &mut col).unwrap();
                    op.on_watermark(e.ts, &mut col).unwrap();
                }
                op.on_finish(&mut col).unwrap();
                col.0
            })
        });
    }
    g.finish();
}

fn bench_aggregate(c: &mut Criterion) {
    let mut g = c.benchmark_group("aggregate");
    let n = 50_000usize;
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("count_at_least", |b| {
        let events = stream(n, 4, 2);
        b.iter(|| {
            let mut op = WindowAggregateOp::count_at_least(
                "γ",
                SlidingWindows::new(Duration::from_minutes(15), Duration::from_minutes(1)),
                4,
            );
            let mut col = NullCollector(0);
            for e in &events {
                op.process(0, Tuple::from_event(*e), &mut col).unwrap();
                op.on_watermark(e.ts, &mut col).unwrap();
            }
            op.on_finish(&mut col).unwrap();
            col.0
        })
    });
    g.finish();
}

fn bench_nfa(c: &mut Criterion) {
    let mut g = c.benchmark_group("nfa_engine");
    let n = 20_000usize;
    g.throughput(Throughput::Elements(n as u64));
    for policy in [
        SelectionPolicy::SkipTillAnyMatch,
        SelectionPolicy::SkipTillNextMatch,
        SelectionPolicy::StrictContiguity,
    ] {
        g.bench_with_input(
            BenchmarkId::new("seq2", format!("{policy}")),
            &policy,
            |b, &policy| {
                let pattern = builders::seq(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(15), vec![]);
                let nfa = Nfa::compile(&pattern).unwrap();
                let events = stream(n, 4, 3);
                b.iter(|| {
                    let mut engine = NfaEngine::new(nfa.clone(), policy);
                    let mut out = Vec::new();
                    let mut last = Timestamp::MIN;
                    for e in &events {
                        engine.process(e, &mut out);
                        if e.ts > last {
                            engine.prune(e.ts);
                            last = e.ts;
                        }
                        out.clear();
                    }
                    engine.matches_emitted()
                })
            },
        );
    }
    g.finish();
}

fn bench_window_assignment(c: &mut Criterion) {
    let mut g = c.benchmark_group("window_assign");
    let w = SlidingWindows::new(Duration::from_minutes(15), Duration::from_minutes(1));
    g.bench_function("assign_15_1", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for m in 0..1000 {
                for wid in w.assign(Timestamp::from_minutes(m)) {
                    acc = acc.wrapping_add(wid.start.millis());
                }
            }
            acc
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_window_joins, bench_aggregate, bench_nfa, bench_window_assignment
}
criterion_main!(benches);
