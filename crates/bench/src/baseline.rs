//! Frozen pre-optimization operators, kept as honest speedup baselines.
//!
//! [`GlobalScanWindowJoinOp`] is the sliding-window join as it existed
//! before the key-partitioned state rework: each side is one global
//! ts-ordered `BTreeMap` over *all* keys, pane probing range-scans the
//! whole opposite pane and filters `l.key == r.key` pair by pair, and
//! eviction removes tuples one `BTreeMap::remove` at a time. Semantics
//! (incremental band probing, pane multiplicity, `(ts, seq)` emission
//! order) are identical to `asp::operator::WindowJoinOp` — only the state
//! layout differs — so `window_join_keyed` bench runs can report
//! keyed-vs-global-scan ratios from the same binary and the CI smoke gate
//! can fail if the keyed layout ever regresses below this baseline.
//!
//! Do not "fix" this operator's complexity; it exists to stay slow the
//! same way the original was.

use std::collections::BTreeMap;

use asp::error::OpError;
use asp::operator::{Collector, JoinPredicate, Operator};
use asp::time::{Duration, Timestamp};
use asp::tuple::{TsRule, Tuple};
use asp::window::SlidingWindows;

/// One global ts-ordered side buffer (all keys interleaved).
#[derive(Default)]
struct Side {
    buf: BTreeMap<(Timestamp, u64), Tuple>,
    bytes: usize,
}

impl Side {
    fn insert(&mut self, seq: u64, t: Tuple) {
        self.bytes += t.mem_bytes();
        self.buf.insert((t.ts, seq), t);
    }

    fn earliest(&self) -> Option<Timestamp> {
        self.buf.first_key_value().map(|((ts, _), _)| *ts)
    }

    fn evict_before(&mut self, cutoff: Timestamp) {
        while let Some((&(ts, seq), _)) = self.buf.first_key_value() {
            if ts >= cutoff {
                break;
            }
            let t = self.buf.remove(&(ts, seq)).expect("entry exists");
            self.bytes = self.bytes.saturating_sub(t.mem_bytes());
        }
    }
}

/// The pre-rework two-input sliding-window join (see module docs).
pub struct GlobalScanWindowJoinOp {
    name: String,
    windows: SlidingWindows,
    theta: JoinPredicate,
    ts_rule: TsRule,
    left: Side,
    right: Side,
    seq: u64,
    next_fire: Timestamp,
    probed_hi: Timestamp,
}

impl GlobalScanWindowJoinOp {
    /// A sliding-window join over `windows` with the frozen global-scan
    /// state layout.
    pub fn new(
        name: impl Into<String>,
        windows: SlidingWindows,
        theta: JoinPredicate,
        ts_rule: TsRule,
    ) -> Self {
        GlobalScanWindowJoinOp {
            name: name.into(),
            windows,
            theta,
            ts_rule,
            left: Side::default(),
            right: Side::default(),
            seq: 0,
            next_fire: Timestamp(0),
            probed_hi: Timestamp(0),
        }
    }

    fn fire(&mut self, upto: Timestamp, out: &mut dyn Collector) {
        let w = Duration(self.windows.size.millis());
        let slide = Duration(self.windows.slide.millis());
        loop {
            let earliest = match (self.left.earliest(), self.right.earliest()) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => break,
            };
            let min_start = self.windows.first_window_start(earliest);
            if self.next_fire < min_start {
                self.next_fire = min_start;
            }
            let start = self.next_fire;
            if start.saturating_add(w) > upto {
                break;
            }
            let end = start.saturating_add(w);
            let band_lo = self.probed_hi.max(start);
            {
                let theta = &self.theta;
                let ts_rule = self.ts_rule;
                let slide_ms = slide.millis();
                let mut pair = |l: &Tuple, r: &Tuple| {
                    // The defining cost of this layout: key equality is
                    // checked per candidate pair, not structurally.
                    if l.key == r.key && theta(l, r) {
                        let mn = l.ts.min(r.ts);
                        let copies =
                            ((mn.millis() - start.millis()).div_euclid(slide_ms) + 1) as u64;
                        let j = l.join(r, ts_rule);
                        for _ in 1..copies {
                            out.emit(j.clone());
                        }
                        out.emit(j);
                    }
                };
                for ((_, _), l) in self.left.buf.range((band_lo, 0)..(end, 0)) {
                    for ((_, _), r) in self.right.buf.range((start, 0)..=(l.ts, u64::MAX)) {
                        pair(l, r);
                    }
                }
                for ((_, _), r) in self.right.buf.range((band_lo, 0)..(end, 0)) {
                    for ((_, _), l) in self.left.buf.range((start, 0)..(r.ts, 0)) {
                        pair(l, r);
                    }
                }
            }
            self.probed_hi = self.probed_hi.max(end);
            self.next_fire = start.saturating_add(slide);
            self.left.evict_before(self.next_fire);
            self.right.evict_before(self.next_fire);
        }
    }
}

impl Operator for GlobalScanWindowJoinOp {
    fn process(
        &mut self,
        input: usize,
        tuple: Tuple,
        _out: &mut dyn Collector,
    ) -> Result<(), OpError> {
        self.seq += 1;
        if input == 0 {
            self.left.insert(self.seq, tuple);
        } else {
            self.right.insert(self.seq, tuple);
        }
        Ok(())
    }

    fn on_watermark(
        &mut self,
        wm: Timestamp,
        out: &mut dyn Collector,
    ) -> Result<Timestamp, OpError> {
        self.fire(wm, out);
        Ok(wm
            .saturating_sub(Duration(self.windows.size.millis()))
            .saturating_add(Duration(1)))
    }

    fn state_bytes(&self) -> usize {
        self.left.bytes + self.right.bytes
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asp::event::{Event, EventType};
    use asp::operator::{cross_join, WindowJoinOp};

    fn tup(port: u16, key: u32, minute: i64, v: f64) -> Tuple {
        Tuple::from_event(Event::new(
            EventType(port),
            key,
            Timestamp::from_minutes(minute),
            v,
        ))
    }

    #[derive(Default)]
    struct Sink {
        out: Vec<Tuple>,
    }
    impl Collector for Sink {
        fn emit(&mut self, t: Tuple) {
            self.out.push(t);
        }
    }

    /// The baseline must emit the exact same multiset as the keyed
    /// operator — it is a state-layout freeze, not a different join.
    #[test]
    fn baseline_agrees_with_keyed_window_join() {
        let windows = SlidingWindows::new(Duration::from_minutes(6), Duration::from_minutes(2));
        let mut keyed = WindowJoinOp::new("⋈", windows, cross_join(), TsRule::Max);
        let mut global = GlobalScanWindowJoinOp::new("⋈g", windows, cross_join(), TsRule::Max);
        let mut out_k = Sink::default();
        let mut out_g = Sink::default();
        for i in 0..60i64 {
            let t = tup((i % 2) as u16, (i % 5) as u32, i / 2, i as f64);
            let port = (i % 2) as usize;
            keyed.process(port, t.clone(), &mut out_k).unwrap();
            global.process(port, t, &mut out_g).unwrap();
            let wm = Timestamp::from_minutes(i / 2);
            keyed.on_watermark(wm, &mut out_k).unwrap();
            global.on_watermark(wm, &mut out_g).unwrap();
        }
        keyed.on_finish(&mut out_k).unwrap();
        global.on_finish(&mut out_g).unwrap();
        let keys = |s: &Sink| {
            let mut k: Vec<_> = s.out.iter().map(Tuple::match_key).collect();
            k.sort();
            k
        };
        assert!(!out_k.out.is_empty());
        assert_eq!(keys(&out_k), keys(&out_g));
    }
}
