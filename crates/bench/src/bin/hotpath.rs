//! Emits `BENCH_hotpath.json`: absolute throughput of the hot-path
//! pipelines swept over `batch_size ∈ {1, 16, 64, 256}`, plus the keyed
//! join sweep over key cardinality `K ∈ {1, 4, 64, 1024}` with the frozen
//! global-scan operator as the speedup denominator.
//!
//! Usage: `hotpath [--quick] [--out PATH] [--telemetry PATH] [--explain]
//! [--assert-keyed-floor] [--assert-columnar-floor] [--assert-shard-floor]
//! [--assert-multi-floor]`
//! (normally via `scripts/bench_hotpath.sh`). `--quick` shrinks the event
//! counts and repetitions for CI smoke runs; the headline
//! `speedup_filter_map_64_vs_1` and
//! `speedup_window_join_keyed_k64_vs_global_scan` ratios are still
//! meaningful, just noisier. `--assert-keyed-floor` exits nonzero if the
//! key-partitioned window join at K = 64, batch 64 falls below the
//! global-scan baseline — the CI regression gate for the state layout.
//! `--assert-columnar-floor` exits nonzero if the columnar filter→map
//! chain at batch 256 falls below the row plane on the same graph (the
//! gate for the columnar data plane), or if the batch-1 crossover drops
//! below 0.9× the row plane (the gate for the automatic row-plane
//! fallback). `--assert-shard-floor` exits nonzero if the adaptive
//! multi-shard zipf join falls below 1.3× static hashing or 3× the
//! single-instance run; the worker count auto-sizes to the host
//! (`cores.clamp(2, 8)`, the `shard_workers` field) and the floor is
//! asserted only on hosts with ≥ 4 cores (skipped loudly otherwise:
//! time-sliced shard workers measure contention, not scaling; the
//! recorded `cores` field says which regime a JSON artifact
//! came from).
//!
//! `--assert-multi-floor` exits nonzero if the shared-subplan DAG over
//! 1000 overlapping pattern variants (`multi_patterns`) falls below 3×
//! the isolated per-pattern pipelines on the same workload — the CI gate
//! for the multi-query optimizer. Both arms run single-threaded source
//! replay of identical streams and must agree on every sink count before
//! the ratio is recorded.
//!
//! The filter→map chain is swept twice: on the columnar plane (the
//! default) and pinned to the row plane (`filter_map_chain_row`), giving
//! the `speedup_filter_map_columnar_vs_row_256` headline.
//!
//! After the sweep, one *instrumented* run of the filter→map chain at the
//! default batch size exports the runtime's full telemetry (per-operator
//! latency histograms, watermark-lag / queue-depth / backpressure gauges,
//! resource samples, and the structured event log) to the `--telemetry`
//! path (default `BENCH_hotpath_telemetry.json`), with a summary block
//! printed next to the throughput numbers.

use std::io::Write as _;

use bench::hotpath::{
    dense_stream, run_chain, run_chain_instrumented, run_chain_row, run_fanout, run_interval_join,
    run_window_join, run_window_join_global_scan, run_window_join_keyed, run_window_join_sharded,
    stream, zipf_stream, BATCH_SIZES, KEY_CARDINALITIES, ZIPF_KEYS,
};
use serde::Serialize;

/// One measured point of the sweep.
#[derive(Serialize)]
struct Point {
    /// The *configured* `ExecutorConfig::batch_size`.
    batch_size: usize,
    /// Source-side sustainable throughput, events/second (median of reps).
    throughput_eps: f64,
    /// Mean tuples per channel message the source actually *realized*.
    /// Under the soft-flush watermark protocol punctuation no longer
    /// truncates per-destination output buffers — a watermark reaching a
    /// destination with a partial buffer is *deferred* and rides out right
    /// after that buffer fills — so buffers flush only when full, on idle
    /// (hard flush), or at end of stream. Realized batch therefore tracks
    /// the configured size even across hash fan-out; the residual gap
    /// comes from end-of-stream partials and idle hard flushes.
    avg_batch_at_source: f64,
    /// `avg_batch_at_source / batch_size`: the fraction of the configured
    /// batch the pipeline could actually use (1.0 = fully realized).
    batch_efficiency: f64,
    /// Tuples that reached the sink (sanity: batch-size independent).
    sink_count: u64,
}

/// A [`Point`] of the keyed-join sweep, tagged with its key cardinality.
#[derive(Serialize)]
struct KeyedPoint {
    /// Distinct join keys in the input streams (the `sensors` parameter).
    keys: u32,
    #[serde(flatten)]
    point: Point,
}

#[derive(Serialize)]
struct Output {
    bench: &'static str,
    mode: &'static str,
    events: Events,
    repetitions: usize,
    filter_map_chain: Vec<Point>,
    /// The same chain pinned to the row data plane (`columnar: false`) —
    /// the denominator for the columnar speedup.
    filter_map_chain_row: Vec<Point>,
    hash_fanout_x4: Vec<Point>,
    window_join: Vec<Point>,
    /// Key-partitioned window join swept over K × batch_size.
    window_join_keyed: Vec<KeyedPoint>,
    /// Frozen pre-rework global-scan window join, swept over K at
    /// batch_size=64 — the denominator for the keyed speedup.
    window_join_global_scan: Vec<KeyedPoint>,
    /// Key-partitioned interval join (sequence bounds) at K=64, swept
    /// over batch_size.
    interval_join: Vec<Point>,
    /// Logical CPU cores the host exposed. Shard speedups are only
    /// meaningful when this is ≥ 4 — on fewer cores the shard workers
    /// time-slice one another and the ratios below record contention, not
    /// scaling.
    cores: usize,
    /// Shard workers the multi-shard scenarios ran with: auto-sized to
    /// the host's core count, clamped to [2, 8] — so a 2-core CI runner
    /// measures 2 real workers instead of 8 time-sliced ones, and big
    /// hosts stay comparable to the historical 8-shard runs.
    shard_workers: usize,
    /// Zipf-skewed (~1M-key) keyed window join at batch 64:
    /// single-instance, static multi-shard (rebalancer off), and adaptive
    /// multi-shard (hot-key rebalancer on), at `shard_workers` workers.
    window_join_sharded: Vec<ShardedPoint>,
    /// Headline number: filter→map chain throughput at batch_size=64 over
    /// batch_size=1. The acceptance floor for the micro-batching work is 2×.
    speedup_filter_map_64_vs_1: f64,
    /// Headline number for the key-partitioned state layout: keyed window
    /// join over the global-scan baseline at K=64, batch 64. Target ≥ 3×;
    /// `--assert-keyed-floor` fails the run if it drops below 1×.
    speedup_window_join_keyed_k64_vs_global_scan: f64,
    /// Headline number for the columnar data plane: filter→map chain on
    /// the columnar plane over the row plane at batch 256. Target ≥ 1.5×;
    /// `--assert-columnar-floor` fails the run if it drops below 1×.
    speedup_filter_map_columnar_vs_row_256: f64,
    /// The `batch_size == 1` crossover: columnar-configured chain over the
    /// row chain at batch 1. The executor falls back to the row plane at
    /// batch 1, so this must sit at ~1× — `--assert-columnar-floor` fails
    /// the run if it drops below 0.9× (the old regression was ~0.5×).
    speedup_filter_map_columnar_vs_row_1: f64,
    /// Headline for adaptive sharding: zipf-skewed keyed join, adaptive
    /// over static placement at `shard_workers` workers. Target ≥ 1.3× on
    /// ≥ 4 cores; `--assert-shard-floor` gates on it (skipped below
    /// 4 cores).
    speedup_shard_adaptive_vs_static: f64,
    /// Adaptive multi-shard over the single-instance run. Target ≥ 3× on
    /// ≥ 4 cores; `--assert-shard-floor` gates on it (same core gate).
    speedup_shard_adaptive_vs_single: f64,
    /// The multi-pattern scenario: ~1k overlapping pattern variants over
    /// shared streams, once as one shared-subplan DAG and once as
    /// isolated per-pattern pipelines.
    multi_patterns: Vec<MultiPoint>,
    /// Headline for the shared-subplan optimizer: logical throughput of
    /// the shared DAG over the isolated pipelines (a pure wall-time
    /// ratio — both arms process the same logical volume). Target ≥ 3×;
    /// `--assert-multi-floor` fails the run below that.
    speedup_multi_shared_vs_isolated: f64,
}

/// One arm of the multi-pattern scenario.
#[derive(Serialize)]
struct MultiPoint {
    /// Pattern variants in the batch.
    variants: usize,
    /// Whether the shared-subplan pass was on.
    shared: bool,
    /// End-to-end wall time (translate + build + run), seconds.
    wall_secs: f64,
    /// Logical events per second: `variants × 2 × stream_len / wall` —
    /// the same numerator for both arms, so the ratio is wall time.
    throughput_eps: f64,
    /// Events the sources actually replayed (shared arm: once per merged
    /// scan; isolated arm: once per pattern per scan).
    source_events: u64,
    /// Total matches across all per-pattern sinks (cross-arm oracle).
    sink_total: u64,
    /// Plan nodes before sharing.
    nodes_total: usize,
    /// Plan nodes actually lowered.
    nodes_lowered: usize,
    /// Scans before sharing.
    scans_total: usize,
    /// Scans actually lowered.
    scans_lowered: usize,
}

/// One sharded-scenario configuration with its measured point.
#[derive(Serialize)]
struct ShardedPoint {
    /// Shard-worker instances of the join node.
    shards: usize,
    /// Whether the hot-key rebalancer was running.
    adaptive: bool,
    /// Key migrations the rebalancer actually performed (last rep).
    migrations: u64,
    #[serde(flatten)]
    point: Point,
}

#[derive(Serialize)]
struct Events {
    chain: usize,
    fanout: usize,
    join_per_side: usize,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("throughput is finite"));
    xs[xs.len() / 2]
}

/// Median throughput over `reps` runs of `f`, plus stats from the last run.
fn measure(reps: usize, f: impl Fn() -> (f64, f64, u64)) -> Point {
    let mut tputs = Vec::with_capacity(reps);
    let mut last = (0.0, 0);
    for _ in 0..reps {
        let (t, avg, n) = f();
        tputs.push(t);
        last = (avg, n);
    }
    Point {
        batch_size: 0,         // filled by caller
        batch_efficiency: 0.0, // filled by caller once batch_size is known
        throughput_eps: median(tputs),
        avg_batch_at_source: last.0,
        sink_count: last.1,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--explain") {
        // Static plan analysis of the standard suite instead of the sweep.
        print!(
            "{}",
            bench::explain::suite_report(
                &bench::explain::ExplainConfig::default(),
                cep2asp::OrderingStrategy::CostBased,
            )
        );
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_hotpath.json")
        .to_string();
    let telemetry_path = args
        .iter()
        .position(|a| a == "--telemetry")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_hotpath_telemetry.json")
        .to_string();

    let (chain_n, fanout_n, join_n, reps) = if quick {
        (100_000, 50_000, 10_000, 3)
    } else {
        (500_000, 250_000, 40_000, 5)
    };

    let src_avg = |report: &asp::runtime::RunReport| {
        report
            .nodes
            .iter()
            .find(|n| n.name == "src" || n.name == "a")
            .map(|n| n.avg_batch())
            .unwrap_or(0.0)
    };

    let sweep = |label: &str, f: &dyn Fn(usize) -> (f64, f64, u64)| -> Vec<Point> {
        BATCH_SIZES
            .iter()
            .map(|&bs| {
                let mut p = measure(reps, || f(bs));
                p.batch_size = bs;
                p.batch_efficiency = p.avg_batch_at_source / bs as f64;
                eprintln!(
                    "{label:>20} batch_size={bs:<4} {:>12.0} events/s  (avg batch {:.1})",
                    p.throughput_eps, p.avg_batch_at_source
                );
                p
            })
            .collect()
    };

    let chain = sweep("filter_map", &|bs| {
        let (r, s) = run_chain(stream(chain_n, 4, 1), bs);
        (r.throughput(), src_avg(&r), r.sink_count(s))
    });
    let chain_row = sweep("filter_map_row", &|bs| {
        let (r, s) = run_chain_row(stream(chain_n, 4, 1), bs);
        (r.throughput(), src_avg(&r), r.sink_count(s))
    });
    // Same graph, same input: the planes must agree on the output.
    for (c, r) in chain.iter().zip(&chain_row) {
        assert_eq!(
            c.sink_count, r.sink_count,
            "columnar and row planes disagree at batch_size={}",
            c.batch_size
        );
    }
    let fanout = sweep("hash_fanout_x4", &|bs| {
        let (r, s) = run_fanout(stream(fanout_n, 16, 2), bs, 4);
        (r.throughput(), src_avg(&r), r.sink_count(s))
    });
    let join = sweep("window_join", &|bs| {
        let (r, s) = run_window_join(stream(join_n, 4, 3), stream(join_n, 4, 4), bs);
        (r.throughput(), src_avg(&r), r.sink_count(s))
    });

    // Keyed sweep: K × batch_size with the key-partitioned operator, then
    // the frozen global-scan operator per K at the headline batch size.
    let mut keyed: Vec<KeyedPoint> = Vec::new();
    for &k in &KEY_CARDINALITIES {
        let pts = sweep(&format!("wjoin_keyed k={k}"), &|bs| {
            let (r, s) =
                run_window_join_keyed(dense_stream(join_n, k, 3), dense_stream(join_n, k, 4), bs);
            (r.throughput(), src_avg(&r), r.sink_count(s))
        });
        keyed.extend(pts.into_iter().map(|point| KeyedPoint { keys: k, point }));
    }
    let mut global_scan: Vec<KeyedPoint> = Vec::new();
    for &k in &KEY_CARDINALITIES {
        let mut p = measure(reps, || {
            let (r, s) = run_window_join_global_scan(
                dense_stream(join_n, k, 3),
                dense_stream(join_n, k, 4),
                64,
            );
            (r.throughput(), src_avg(&r), r.sink_count(s))
        });
        p.batch_size = 64;
        p.batch_efficiency = p.avg_batch_at_source / 64.0;
        eprintln!(
            "{:>20} batch_size=64   {:>12.0} events/s  (avg batch {:.1})",
            format!("wjoin_global k={k}"),
            p.throughput_eps,
            p.avg_batch_at_source
        );
        global_scan.push(KeyedPoint { keys: k, point: p });
    }
    // The two layouts must be observationally equivalent — same sink
    // multiset, so same count — or the speedup ratio is meaningless.
    for g in &global_scan {
        let kp = keyed
            .iter()
            .find(|p| p.keys == g.keys && p.point.batch_size == 64)
            .expect("keyed sweep covers batch_size=64");
        assert_eq!(
            kp.point.sink_count, g.point.sink_count,
            "keyed and global-scan joins disagree at K={}",
            g.keys
        );
    }
    let interval = sweep("interval_join", &|bs| {
        let (r, s) =
            run_interval_join(dense_stream(join_n, 64, 3), dense_stream(join_n, 64, 4), bs);
        (r.throughput(), src_avg(&r), r.sink_count(s))
    });

    // Zipf-skewed sharded scenario at batch 64: identical inputs through
    // the single-instance join, a static multi-shard placement, and the
    // adaptive multi-shard placement with the hot-key rebalancer live.
    // Worker count auto-sizes to the host: min(cores, 8), at least 2, so
    // small CI runners measure real parallelism instead of time-slicing.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let shard_workers = cores.clamp(2, 8);
    let zleft = zipf_stream(join_n, ZIPF_KEYS, 9);
    let zright = zipf_stream(join_n, ZIPF_KEYS, 10);
    let mut sharded: Vec<ShardedPoint> = Vec::new();
    for &(shards, adaptive) in &[
        (1usize, false),
        (shard_workers, false),
        (shard_workers, true),
    ] {
        let mut tputs = Vec::with_capacity(reps);
        let mut avg = 0.0;
        let mut count = 0u64;
        let mut migrations = 0u64;
        for _ in 0..reps {
            let (r, s) =
                run_window_join_sharded(zleft.clone(), zright.clone(), 64, shards, adaptive);
            tputs.push(r.throughput());
            avg = src_avg(&r);
            count = r.sink_count(s);
            migrations = r.nodes.iter().map(|n| n.shard_migrations).sum();
        }
        let point = Point {
            batch_size: 64,
            throughput_eps: median(tputs),
            avg_batch_at_source: avg,
            batch_efficiency: avg / 64.0,
            sink_count: count,
        };
        eprintln!(
            "{:>20} batch_size=64   {:>12.0} events/s  ({} migrations)",
            format!(
                "wjoin_shard n={shards}{}",
                if adaptive { " adpt" } else { "" }
            ),
            point.throughput_eps,
            migrations,
        );
        sharded.push(ShardedPoint {
            shards,
            adaptive,
            migrations,
            point,
        });
    }
    // All three configurations see the same input — the sink count is the
    // correctness oracle for the migration protocol under load.
    for p in &sharded[1..] {
        assert_eq!(
            p.point.sink_count, sharded[0].point.sink_count,
            "sharded join (shards={}, adaptive={}) diverged from single instance",
            p.shards, p.adaptive
        );
    }

    // Multi-pattern scenario: ~1k overlapping variants, shared DAG vs
    // isolated pipelines. Arms are interleaved across 3 reps and each
    // arm keeps its best wall — each run stands up thousands of threads,
    // and allocator/scheduler drift across runs in one process otherwise
    // leaks into the ratio.
    let multi_cfg = if quick {
        bench::multi::MultiBenchConfig::quick()
    } else {
        bench::multi::MultiBenchConfig::full()
    };
    let (multi_jobs, multi_sources) = bench::multi::build_workload(&multi_cfg);
    let mut multi_points: Vec<MultiPoint> = Vec::new();
    let mut multi_sinks: Vec<u64> = Vec::new();
    let mut best: [Option<MultiPoint>; 2] = [None, None];
    for _ in 0..3 {
        for (slot, shared) in [true, false].into_iter().enumerate() {
            let (run, wall) = bench::multi::run_multi(&multi_jobs, &multi_sources, shared);
            let sink_total = bench::multi::sink_total(&run);
            multi_sinks.push(sink_total);
            let point = MultiPoint {
                variants: multi_cfg.variants,
                shared,
                wall_secs: wall.as_secs_f64(),
                throughput_eps: multi_cfg.logical_events() as f64 / wall.as_secs_f64().max(1e-9),
                source_events: run.report.source_events,
                sink_total,
                nodes_total: run.share.nodes_total,
                nodes_lowered: run.share.nodes_lowered,
                scans_total: run.share.scans_total,
                scans_lowered: run.share.scans_lowered,
            };
            match &best[slot] {
                Some(b) if point.wall_secs >= b.wall_secs => {}
                _ => best[slot] = Some(point),
            }
        }
    }
    for point in best {
        let point = point.expect("three reps ran");
        eprintln!(
            "{:>20} variants={} {:>12.0} events/s  (wall {:.2}s, scans {} → {})",
            if point.shared {
                "multi_shared"
            } else {
                "multi_isolated"
            },
            multi_cfg.variants,
            point.throughput_eps,
            point.wall_secs,
            point.scans_total,
            point.scans_lowered,
        );
        multi_points.push(point);
    }
    // Same workload, same streams: every rep of both arms must agree
    // exactly on the total output or the speedup is meaningless.
    assert!(
        multi_sinks.windows(2).all(|w| w[0] == w[1]),
        "multi-pattern arms disagree on sink totals: {multi_sinks:?}"
    );
    let multi_speedup = multi_points[1].wall_secs / multi_points[0].wall_secs.max(1e-9);
    eprintln!(
        "multi_patterns shared speedup ({} variants, vs isolated pipelines): {multi_speedup:.2}x",
        multi_cfg.variants
    );

    let at = |pts: &[Point], bs: usize| -> f64 {
        pts.iter()
            .find(|p| p.batch_size == bs)
            .map(|p| p.throughput_eps)
            .expect("swept batch size present")
    };
    let keyed_at = |pts: &[KeyedPoint], k: u32, bs: usize| -> f64 {
        pts.iter()
            .find(|p| p.keys == k && p.point.batch_size == bs)
            .map(|p| p.point.throughput_eps)
            .expect("swept keyed point present")
    };
    let speedup = at(&chain, 64) / at(&chain, 1);
    eprintln!("filter_map speedup (batch 64 vs 1): {speedup:.2}x");
    let keyed_speedup = keyed_at(&keyed, 64, 64) / keyed_at(&global_scan, 64, 64);
    eprintln!("window_join keyed speedup at K=64, batch 64 (vs global scan): {keyed_speedup:.2}x");
    let columnar_speedup = at(&chain, 256) / at(&chain_row, 256);
    eprintln!("filter_map columnar speedup at batch 256 (vs row plane): {columnar_speedup:.2}x");
    let crossover_bs1 = at(&chain, 1) / at(&chain_row, 1);
    eprintln!(
        "filter_map columnar-config vs row at batch 1 (fallback crossover): {crossover_bs1:.2}x"
    );
    let sharded_at = |shards: usize, adaptive: bool| -> f64 {
        sharded
            .iter()
            .find(|p| p.shards == shards && p.adaptive == adaptive)
            .map(|p| p.point.throughput_eps)
            .expect("sharded scenario present")
    };
    let shard_vs_static = sharded_at(shard_workers, true) / sharded_at(shard_workers, false);
    let shard_vs_single = sharded_at(shard_workers, true) / sharded_at(1, false);
    eprintln!(
        "zipf keyed join, adaptive {shard_workers}-shard: {shard_vs_static:.2}x vs static \
         hashing, {shard_vs_single:.2}x vs single instance ({cores} cores)"
    );

    let out = Output {
        bench: "hotpath",
        mode: if quick { "quick" } else { "full" },
        events: Events {
            chain: chain_n,
            fanout: fanout_n,
            join_per_side: join_n,
        },
        repetitions: reps,
        filter_map_chain: chain,
        filter_map_chain_row: chain_row,
        hash_fanout_x4: fanout,
        window_join: join,
        window_join_keyed: keyed,
        window_join_global_scan: global_scan,
        interval_join: interval,
        cores,
        shard_workers,
        window_join_sharded: sharded,
        speedup_filter_map_64_vs_1: speedup,
        speedup_window_join_keyed_k64_vs_global_scan: keyed_speedup,
        speedup_filter_map_columnar_vs_row_256: columnar_speedup,
        speedup_filter_map_columnar_vs_row_1: crossover_bs1,
        speedup_shard_adaptive_vs_static: shard_vs_static,
        speedup_shard_adaptive_vs_single: shard_vs_single,
        multi_patterns: multi_points,
        speedup_multi_shared_vs_isolated: multi_speedup,
    };
    let json = serde_json::to_string_pretty(&out).expect("serializable");
    let mut f = std::fs::File::create(&out_path).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output file");
    f.write_all(b"\n").expect("write trailing newline");
    eprintln!("wrote {out_path}");

    if args.iter().any(|a| a == "--assert-keyed-floor") && keyed_speedup < 1.0 {
        eprintln!(
            "FAIL: keyed window join at K=64, batch 64 regressed below the \
             global-scan baseline ({keyed_speedup:.2}x < 1.00x)"
        );
        std::process::exit(1);
    }
    if args.iter().any(|a| a == "--assert-columnar-floor") {
        if columnar_speedup < 1.0 {
            eprintln!(
                "FAIL: columnar filter→map chain at batch 256 regressed below \
                 the row plane ({columnar_speedup:.2}x < 1.00x)"
            );
            std::process::exit(1);
        }
        // The batch-1 crossover: the executor falls back to the row plane
        // at batch_size == 1, so a columnar-configured run must no longer
        // pay the one-row column-set tax (historically ~0.5×).
        if crossover_bs1 < 0.9 {
            eprintln!(
                "FAIL: columnar-configured chain at batch 1 regressed below \
                 the row plane ({crossover_bs1:.2}x < 0.90x) — the row-plane \
                 fallback is not engaging"
            );
            std::process::exit(1);
        }
    }
    if args.iter().any(|a| a == "--assert-multi-floor") && multi_speedup < 3.0 {
        eprintln!(
            "FAIL: shared-subplan DAG over {} overlapping pattern variants fell \
             below 3x the isolated pipelines ({multi_speedup:.2}x)",
            out.multi_patterns[0].variants
        );
        std::process::exit(1);
    }
    if args.iter().any(|a| a == "--assert-shard-floor") {
        if cores < 4 {
            eprintln!(
                "SKIP: --assert-shard-floor needs ≥ 4 cores (host has {cores}); \
                 {shard_workers} shard workers time-slicing {cores} core(s) measure \
                 contention, not scaling — the floor is not asserted"
            );
        } else {
            if shard_vs_static < 1.3 {
                eprintln!(
                    "FAIL: adaptive {shard_workers}-shard zipf join fell below 1.3x \
                     static hashing ({shard_vs_static:.2}x)"
                );
                std::process::exit(1);
            }
            if shard_vs_single < 3.0 {
                eprintln!(
                    "FAIL: adaptive {shard_workers}-shard zipf join fell below 3x the \
                     single-instance run ({shard_vs_single:.2}x)"
                );
                std::process::exit(1);
            }
        }
    }

    // One instrumented run at the default batch size for the telemetry
    // artifact — sampling and progress reporting on, never measured.
    let (report, _) = run_chain_instrumented(stream(chain_n, 4, 1), 64);
    eprintln!("telemetry (filter_map chain @ batch_size=64, instrumented run):");
    for n in &report.nodes {
        eprintln!(
            "  {:>8}: proc p99 ≤ {} ns (n={}), wm lag peak {} ms, \
             inbox peak {}, backpressure {:.2} ms",
            n.name,
            n.proc_latency.quantile_le_ns(0.99),
            n.proc_latency.count,
            n.watermark_lag_peak_ms,
            n.queue_depth_peak,
            n.backpressure_ns as f64 / 1e6,
        );
    }
    eprintln!(
        "  {} resource samples, {} log events ({} displaced)",
        report.samples.len(),
        report.events.len(),
        report.events_displaced
    );
    let mut f = std::fs::File::create(&telemetry_path).expect("create telemetry file");
    f.write_all(report.to_json().as_bytes())
        .expect("write telemetry file");
    f.write_all(b"\n").expect("write trailing newline");
    eprintln!("wrote {telemetry_path}");
}
