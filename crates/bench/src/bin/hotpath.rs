//! Emits `BENCH_hotpath.json`: absolute throughput of the hot-path
//! pipelines swept over `batch_size ∈ {1, 16, 64, 256}`.
//!
//! Usage: `hotpath [--quick] [--out PATH] [--telemetry PATH] [--explain]`
//! (normally
//! via `scripts/bench_hotpath.sh`). `--quick` shrinks the event counts and
//! repetitions for CI smoke runs; the headline `speedup_filter_map_64_vs_1`
//! ratio is still meaningful, just noisier.
//!
//! After the sweep, one *instrumented* run of the filter→map chain at the
//! default batch size exports the runtime's full telemetry (per-operator
//! latency histograms, watermark-lag / queue-depth / backpressure gauges,
//! resource samples, and the structured event log) to the `--telemetry`
//! path (default `BENCH_hotpath_telemetry.json`), with a summary block
//! printed next to the throughput numbers.

use std::io::Write as _;

use bench::hotpath::{
    run_chain, run_chain_instrumented, run_fanout, run_window_join, stream, BATCH_SIZES,
};
use serde::Serialize;

/// One measured point of the sweep.
#[derive(Serialize)]
struct Point {
    batch_size: usize,
    /// Source-side sustainable throughput, events/second (median of reps).
    throughput_eps: f64,
    /// Mean tuples per channel message at the source (batching realized).
    avg_batch_at_source: f64,
    /// Tuples that reached the sink (sanity: batch-size independent).
    sink_count: u64,
}

#[derive(Serialize)]
struct Output {
    bench: &'static str,
    mode: &'static str,
    events: Events,
    repetitions: usize,
    filter_map_chain: Vec<Point>,
    hash_fanout_x4: Vec<Point>,
    window_join: Vec<Point>,
    /// Headline number: filter→map chain throughput at batch_size=64 over
    /// batch_size=1. The acceptance floor for the micro-batching work is 2×.
    speedup_filter_map_64_vs_1: f64,
}

#[derive(Serialize)]
struct Events {
    chain: usize,
    fanout: usize,
    join_per_side: usize,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("throughput is finite"));
    xs[xs.len() / 2]
}

/// Median throughput over `reps` runs of `f`, plus stats from the last run.
fn measure(reps: usize, f: impl Fn() -> (f64, f64, u64)) -> Point {
    let mut tputs = Vec::with_capacity(reps);
    let mut last = (0.0, 0);
    for _ in 0..reps {
        let (t, avg, n) = f();
        tputs.push(t);
        last = (avg, n);
    }
    Point {
        batch_size: 0, // filled by caller
        throughput_eps: median(tputs),
        avg_batch_at_source: last.0,
        sink_count: last.1,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--explain") {
        // Static plan analysis of the standard suite instead of the sweep.
        print!(
            "{}",
            bench::explain::suite_report(
                &bench::explain::ExplainConfig::default(),
                cep2asp::OrderingStrategy::CostBased,
            )
        );
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_hotpath.json")
        .to_string();
    let telemetry_path = args
        .iter()
        .position(|a| a == "--telemetry")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_hotpath_telemetry.json")
        .to_string();

    let (chain_n, fanout_n, join_n, reps) = if quick {
        (100_000, 50_000, 10_000, 3)
    } else {
        (500_000, 250_000, 40_000, 5)
    };

    let src_avg = |report: &asp::runtime::RunReport| {
        report
            .nodes
            .iter()
            .find(|n| n.name == "src" || n.name == "a")
            .map(|n| n.avg_batch())
            .unwrap_or(0.0)
    };

    let sweep = |label: &str, f: &dyn Fn(usize) -> (f64, f64, u64)| -> Vec<Point> {
        BATCH_SIZES
            .iter()
            .map(|&bs| {
                let mut p = measure(reps, || f(bs));
                p.batch_size = bs;
                eprintln!(
                    "{label:>16} batch_size={bs:<4} {:>12.0} events/s  (avg batch {:.1})",
                    p.throughput_eps, p.avg_batch_at_source
                );
                p
            })
            .collect()
    };

    let chain = sweep("filter_map", &|bs| {
        let (r, s) = run_chain(stream(chain_n, 4, 1), bs);
        (r.throughput(), src_avg(&r), r.sink_count(s))
    });
    let fanout = sweep("hash_fanout_x4", &|bs| {
        let (r, s) = run_fanout(stream(fanout_n, 16, 2), bs, 4);
        (r.throughput(), src_avg(&r), r.sink_count(s))
    });
    let join = sweep("window_join", &|bs| {
        let (r, s) = run_window_join(stream(join_n, 4, 3), stream(join_n, 4, 4), bs);
        (r.throughput(), src_avg(&r), r.sink_count(s))
    });

    let at = |pts: &[Point], bs: usize| -> f64 {
        pts.iter()
            .find(|p| p.batch_size == bs)
            .map(|p| p.throughput_eps)
            .expect("swept batch size present")
    };
    let speedup = at(&chain, 64) / at(&chain, 1);
    eprintln!("filter_map speedup (batch 64 vs 1): {speedup:.2}x");

    let out = Output {
        bench: "hotpath",
        mode: if quick { "quick" } else { "full" },
        events: Events {
            chain: chain_n,
            fanout: fanout_n,
            join_per_side: join_n,
        },
        repetitions: reps,
        filter_map_chain: chain,
        hash_fanout_x4: fanout,
        window_join: join,
        speedup_filter_map_64_vs_1: speedup,
    };
    let json = serde_json::to_string_pretty(&out).expect("serializable");
    let mut f = std::fs::File::create(&out_path).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output file");
    f.write_all(b"\n").expect("write trailing newline");
    eprintln!("wrote {out_path}");

    // One instrumented run at the default batch size for the telemetry
    // artifact — sampling and progress reporting on, never measured.
    let (report, _) = run_chain_instrumented(stream(chain_n, 4, 1), 64);
    eprintln!("telemetry (filter_map chain @ batch_size=64, instrumented run):");
    for n in &report.nodes {
        eprintln!(
            "  {:>8}: proc p99 ≤ {} ns (n={}), wm lag peak {} ms, \
             inbox peak {}, backpressure {:.2} ms",
            n.name,
            n.proc_latency.quantile_le_ns(0.99),
            n.proc_latency.count,
            n.watermark_lag_peak_ms,
            n.queue_depth_peak,
            n.backpressure_ns as f64 / 1e6,
        );
    }
    eprintln!(
        "  {} resource samples, {} log events ({} displaced)",
        report.samples.len(),
        report.events.len(),
        report.events_displaced
    );
    let mut f = std::fs::File::create(&telemetry_path).expect("create telemetry file");
    f.write_all(report.to_json().as_bytes())
        .expect("write telemetry file");
    f.write_all(b"\n").expect("write trailing newline");
    eprintln!("wrote {telemetry_path}");
}
