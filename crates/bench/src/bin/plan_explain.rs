//! `plan-explain` — static EXPLAIN report for the standard workload suite.
//!
//! ```text
//! Usage: plan-explain [--order cost|heuristic] [--window MIN] [--sensors N]
//!                     [--out FILE] [--ab] [--multi] [--schema]
//!                     [--schema-json FILE]
//!
//! Options:
//!   --order MODE        join ordering strategy: cost (default) or heuristic
//!   --window MIN        pattern window in minutes (default: 15)
//!   --sensors N         sensors per dataset (default: 4; raises key fanout)
//!   --out FILE          also write the report to FILE
//!   --ab                run the cost-vs-heuristic join-order A/B measurement
//!                       (executes the pipelines; use --release)
//!   --multi             render the shared-subplan report instead: the suite
//!                       lowered as one multi-pattern batch, each plan node
//!                       annotated with its consumer count (×N), duplicate
//!                       pipelines collapsed, plus the sharing summary
//!                       (nodes/scans before vs. after interning)
//!   --schema            append the schema & partition-safety report (the
//!                       typechecker's inferred schemas, key provenance, and
//!                       shardability verdict per node) plus the M-code
//!                       migration-safety findings under a hypothetical
//!                       8-shard adaptive deployment
//!   --schema-json FILE  write the machine-readable typecheck + migration
//!                       artifact
//! ```
//!
//! Without `--ab` no pipeline runs: the report is purely static, derived
//! from generated stream statistics and the analyzer's cost model. Each
//! pattern gets an estimate tree plus `A`-code diagnostics (see
//! DESIGN.md, "Static cost model").

use bench::explain::{
    ab_join_order, multi_report, schema_json, schema_report, suite_report, ExplainConfig,
};
use cep2asp::OrderingStrategy;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ExplainConfig::default();
    let mut strategy = OrderingStrategy::CostBased;
    let mut out_file: Option<String> = None;
    let mut run_ab = false;
    let mut show_multi = false;
    let mut show_schema = false;
    let mut schema_json_file: Option<String> = None;

    let i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--order" => {
                if i + 1 >= args.len() {
                    eprintln!("--order requires `cost` or `heuristic`");
                    std::process::exit(2);
                }
                let mode = args.remove(i + 1);
                args.remove(i);
                strategy = match mode.as_str() {
                    "cost" => OrderingStrategy::CostBased,
                    "heuristic" => OrderingStrategy::RateHeuristic,
                    other => {
                        eprintln!("unknown --order mode `{other}` (want cost|heuristic)");
                        std::process::exit(2);
                    }
                };
            }
            "--window" => {
                if i + 1 >= args.len() {
                    eprintln!("--window requires a minute count");
                    std::process::exit(2);
                }
                let v = args.remove(i + 1);
                args.remove(i);
                cfg.w_minutes = match v.parse::<i64>() {
                    Ok(n) if n > 0 => n,
                    _ => {
                        eprintln!("--window wants a positive integer, got `{v}`");
                        std::process::exit(2);
                    }
                };
            }
            "--sensors" => {
                if i + 1 >= args.len() {
                    eprintln!("--sensors requires a count");
                    std::process::exit(2);
                }
                let v = args.remove(i + 1);
                args.remove(i);
                cfg.sensors = match v.parse::<u32>() {
                    Ok(n) if n > 0 => n,
                    _ => {
                        eprintln!("--sensors wants a positive integer, got `{v}`");
                        std::process::exit(2);
                    }
                };
            }
            "--out" => {
                if i + 1 >= args.len() {
                    eprintln!("--out requires a file path");
                    std::process::exit(2);
                }
                out_file = Some(args.remove(i + 1));
                args.remove(i);
            }
            "--ab" => {
                run_ab = true;
                args.remove(i);
            }
            "--multi" => {
                show_multi = true;
                args.remove(i);
            }
            "--schema" => {
                show_schema = true;
                args.remove(i);
            }
            "--schema-json" => {
                if i + 1 >= args.len() {
                    eprintln!("--schema-json requires a file path");
                    std::process::exit(2);
                }
                schema_json_file = Some(args.remove(i + 1));
                args.remove(i);
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other => {
                eprintln!("unknown argument `{other}` — see --help");
                std::process::exit(2);
            }
        }
    }

    let mut report = if show_multi {
        multi_report(&cfg, strategy)
    } else {
        suite_report(&cfg, strategy)
    };
    if show_schema {
        report.push('\n');
        report.push_str(&schema_report(&cfg, strategy));
    }
    if run_ab {
        #[cfg(debug_assertions)]
        eprintln!("WARNING: debug build — A/B wall times will be meaningless; use --release");
        report.push('\n');
        report.push_str(&ab_join_order(&cfg));
    }
    print!("{report}");
    if let Some(path) = out_file {
        if let Err(e) = std::fs::write(&path, &report) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
    if let Some(path) = schema_json_file {
        let json = schema_json(&cfg, strategy);
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}

fn print_usage() {
    eprintln!(
        "Usage: plan-explain [--order cost|heuristic] [--window MIN] [--sensors N] [--out FILE]\n\
                             [--ab] [--multi] [--schema] [--schema-json FILE]\n\
         Renders the static analyzer's EXPLAIN report (per-node rate/state\n\
         estimates and A-code diagnostics) for the standard workload suite.\n\
         --multi renders the shared-subplan report instead: the suite as one\n\
         multi-pattern batch with per-node consumer counts and the sharing\n\
         summary (nodes/scans saved).\n\
         --schema appends the typechecker's schema & partition-safety report\n\
         and the M-code migration-safety findings (8-shard adaptive check);\n\
         --schema-json writes their machine-readable artifact to FILE.\n\
         --ab additionally executes the join-order A/B measurement."
    );
}
