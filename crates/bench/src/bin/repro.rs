//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! Usage: repro [--full] [--out DIR] <experiment>...
//!
//! Experiments:
//!   table1 table2
//!   fig3a fig3b fig3c fig3d fig3e fig3f
//!   fig4 fig4fail fig5 fig6
//!   ablations          (frequency-ratio, join-order, watermark)
//!   all                (everything above)
//!
//! Options:
//!   --full     paper-scale workloads (~10M tuples; slow — and the keyed
//!              experiments fig4/fig5/fig6 generate volume proportional to
//!              the key count, so expect multi-GB allocations at 128 keys)
//!   --out DIR  results directory (default: results)
//! ```
//!
//! Each experiment prints a summary table and writes
//! `<out>/<experiment>.jsonl` with one JSON record per measured point.
//! Run with `--release`; debug builds distort throughput by 10–50×.

use bench::experiments::{self, Scale};
use bench::report::ResultSink;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::quick();
    let mut out_dir = "results".to_string();
    let mut experiments_requested: Vec<String> = Vec::new();

    let i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => {
                scale = Scale::full();
                args.remove(i);
            }
            "--out" => {
                if i + 1 >= args.len() {
                    eprintln!("--out requires a directory");
                    std::process::exit(2);
                }
                out_dir = args.remove(i + 1);
                args.remove(i);
            }
            "--explain" => {
                // Static EXPLAIN of the standard suite; no pipeline runs.
                print!(
                    "{}",
                    bench::explain::suite_report(
                        &bench::explain::ExplainConfig::default(),
                        cep2asp::OrderingStrategy::CostBased,
                    )
                );
                return;
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            _ => {
                experiments_requested.push(args.remove(i));
            }
        }
    }
    if experiments_requested.is_empty() {
        print_usage();
        std::process::exit(2);
    }
    if experiments_requested.iter().any(|e| e == "all") {
        experiments_requested = [
            "table1",
            "table2",
            "fig3a",
            "fig3b",
            "fig3c",
            "fig3d",
            "fig3e",
            "fig3f",
            "fig4",
            "fig4fail",
            "fig5",
            "fig6",
            "ablations",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    #[cfg(debug_assertions)]
    eprintln!("WARNING: debug build — throughput numbers will be meaningless; use --release");

    // Fail fast on malformed plans/graphs before generating any workload.
    if let Err(report) = bench::preflight::check() {
        eprintln!("pre-flight validation failed:\n{report}");
        std::process::exit(1);
    }

    for exp in &experiments_requested {
        let mut sink = ResultSink::new(&out_dir);
        let started = std::time::Instant::now();
        eprintln!("\n### {exp} (scale: ~{} events)", scale.events);
        match exp.as_str() {
            "table1" => {
                experiments::table1();
                continue;
            }
            "table2" => {
                experiments::table2();
                continue;
            }
            "fig3a" => experiments::fig3a(&mut sink, &scale),
            "fig3b" => experiments::fig3b(&mut sink, &scale),
            "fig3c" => experiments::fig3c(&mut sink, &scale),
            "fig3d" => experiments::fig3d(&mut sink, &scale),
            "fig3e" => experiments::fig3ef(&mut sink, &scale, true),
            "fig3f" => experiments::fig3ef(&mut sink, &scale, false),
            "fig4" => experiments::fig4(&mut sink, &scale),
            "fig4fail" => experiments::fig4_failure(&mut sink, &scale),
            "fig5" => experiments::fig5(&mut sink, &scale),
            "fig6" => experiments::fig6(&mut sink, &scale),
            "ablations" => {
                experiments::ablation_frequency(&mut sink, &scale);
                experiments::ablation_join_order(&mut sink, &scale);
                experiments::ablation_watermark(&mut sink, &scale);
            }
            other => {
                eprintln!("unknown experiment `{other}` — see --help");
                std::process::exit(2);
            }
        }
        sink.print_table(exp);
        let group_params: &[&str] = match exp.as_str() {
            "fig3a" => &["pattern"],
            "fig3b" => &["target_sel_pct"],
            "fig3c" => &["window_min"],
            "fig3d" => &["n"],
            "fig3e" | "fig3f" => &["m"],
            "fig4" => &["pattern", "keys"],
            "fig4fail" => &[],
            "fig5" => &["pattern", "keys"],
            "fig6" => &["pattern", "workers"],
            "ablations" => &["freq_ratio", "order", "wm_every"],
            _ => &[],
        };
        sink.print_charts(exp, group_params);
        if let Err(e) = sink.flush() {
            eprintln!("failed to write results: {e}");
        }
        eprintln!("### {exp} done in {:.1}s", started.elapsed().as_secs_f64());
    }
}

fn print_usage() {
    eprintln!(
        "Usage: repro [--full] [--out DIR] [--explain] <experiment>...\n\
         Experiments: table1 table2 fig3a fig3b fig3c fig3d fig3e fig3f\n\
         \x20            fig4 fig4fail fig5 fig6 ablations all\n\
         Options: --full (paper-scale ~10M tuples; keyed figs need multi-GB RAM),\n\
         \x20        --out DIR (default: results),\n\
         \x20        --explain (print the static plan analysis for the standard\n\
         \x20                   suite and exit; see also the plan-explain bin)"
    );
}
