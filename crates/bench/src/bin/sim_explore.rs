//! CLI front-end for the bounded model checker (`asp::sim`): exhaustively
//! explores the shard-migration protocol's schedule space for the named
//! small configs and reports states/pruning counters per config.
//!
//! ```text
//! sim-explore [--all | --config <name>] [--time-cap-ms N] [--max-states N]
//!             [--seed-bug skip-stash-replay|eager-end-promotion]
//!             [--regressions <dir>] [--replay <file>] [--list]
//! ```
//!
//! Exit status is non-zero when any explored config yields a violation (the
//! failing schedule is printed, and written under `--regressions` if set)
//! or when a time/state cap prevented exhaustive coverage.

use std::process::ExitCode;
use std::time::Duration as StdDuration;

use asp::sim::{
    all_configs, config_by_name, explore, run_schedule, ExploreOpts, Schedule, SeedBug, SimConfig,
};

struct Args {
    configs: Vec<SimConfig>,
    opts: ExploreOpts,
    regressions: Option<String>,
    replay: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut names: Vec<String> = Vec::new();
    let mut all = false;
    let mut seed_bug: Option<SeedBug> = None;
    let mut opts = ExploreOpts::default();
    let mut regressions = None;
    let mut replay = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
        match arg.as_str() {
            "--list" => {
                for c in all_configs() {
                    println!("{}", c.name);
                }
                std::process::exit(0);
            }
            "--all" => all = true,
            "--config" => names.push(val("--config")?),
            "--time-cap-ms" => {
                opts.time_cap = StdDuration::from_millis(
                    val("--time-cap-ms")?
                        .parse()
                        .map_err(|_| "bad --time-cap-ms".to_string())?,
                );
            }
            "--max-states" => {
                opts.max_states = val("--max-states")?
                    .parse()
                    .map_err(|_| "bad --max-states".to_string())?;
            }
            "--seed-bug" => {
                seed_bug = Some(match val("--seed-bug")?.as_str() {
                    "skip-stash-replay" => SeedBug::SkipStashReplay,
                    "eager-end-promotion" => SeedBug::EagerEndPromotion,
                    other => return Err(format!("unknown seed bug {other:?}")),
                });
            }
            "--regressions" => regressions = Some(val("--regressions")?),
            "--replay" => replay = Some(val("--replay")?),
            other => return Err(format!("unknown argument {other:?} (see --list)")),
        }
    }
    let configs = if all || names.is_empty() {
        all_configs()
            .into_iter()
            .map(|mut c| {
                c.seed_bug = seed_bug;
                c
            })
            .collect()
    } else {
        let mut out = Vec::new();
        for n in &names {
            out.push(config_by_name(n, seed_bug).ok_or_else(|| format!("unknown config {n:?}"))?);
        }
        out
    };
    Ok(Args {
        configs,
        opts,
        regressions,
        replay,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sim-explore: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Replay mode: re-run one stored schedule against one config.
    if let Some(path) = &args.replay {
        let [cfg] = &args.configs[..] else {
            eprintln!("sim-explore: --replay needs exactly one --config");
            return ExitCode::FAILURE;
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("sim-explore: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let schedule = match Schedule::parse_regression(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("sim-explore: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match run_schedule(cfg, &schedule) {
            Ok(trace) => {
                println!("{}: schedule holds ({} steps)", cfg.name, schedule.0.len());
                println!("{trace}");
                ExitCode::SUCCESS
            }
            Err(v) => {
                eprintln!("{}: violation reproduced: {}", cfg.name, v.message);
                eprintln!("{}", v.trace);
                ExitCode::FAILURE
            }
        };
    }

    let mut failed = false;
    for cfg in &args.configs {
        let t0 = std::time::Instant::now();
        let report = match explore(cfg, &args.opts) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: config invalid: {e}", cfg.name);
                failed = true;
                continue;
            }
        };
        println!(
            "{}: states={} transitions={} schedules={} dedup-pruned={} sleep-pruned={} \
             max-depth={} capped={} ({} ms)",
            cfg.name,
            report.states,
            report.transitions,
            report.schedules,
            report.dedup_pruned,
            report.sleep_pruned,
            report.max_depth,
            report.capped,
            t0.elapsed().as_millis()
        );
        if report.capped {
            eprintln!(
                "{}: NOT exhaustive (cap hit) — raise --time-cap-ms",
                cfg.name
            );
            failed = true;
        }
        if let Some(v) = &report.violation {
            failed = true;
            eprintln!("{}: VIOLATION: {}", cfg.name, v.message);
            eprintln!("{}: failing schedule: {}", cfg.name, v.schedule);
            if let Some(dir) = &args.regressions {
                let file = format!("{dir}/{}.txt", cfg.name);
                let body = v.schedule.render_regression(&cfg.name, &v.message);
                if let Err(e) =
                    std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&file, body))
                {
                    eprintln!("{}: cannot write regression {file}: {e}", cfg.name);
                } else {
                    eprintln!("{}: regression written to {file}", cfg.name);
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
