//! Terminal rendering of the figures: grouped horizontal bar charts from
//! [`ResultRow`]s, so `repro` output visually mirrors the paper's plots.
//!
//! ```text
//! fig3b — throughput (tpl/s), grouped by target_sel_pct
//! target_sel_pct=0.003
//!   FCEP       │███▌                                    │   1.78M
//!   FASP       │█████████████████▋                      │   8.78M
//!   FASP-O1    │███████████████████▎                    │   9.59M
//! ```

use crate::report::{human_tps, ResultRow};

const BAR_WIDTH: usize = 40;
const BLOCKS: [char; 8] = ['▏', '▎', '▍', '▌', '▋', '▊', '▉', '█'];

/// Render one bar of `value` against `max`, `BAR_WIDTH` cells wide.
fn bar(value: f64, max: f64) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let cells = (value / max) * BAR_WIDTH as f64;
    let full = cells.floor() as usize;
    let frac = cells - full as f64;
    let mut s = "█".repeat(full.min(BAR_WIDTH));
    if full < BAR_WIDTH && frac > 1.0 / 16.0 {
        let idx = ((frac * 8.0).round() as usize).clamp(1, 8) - 1;
        s.push(BLOCKS[idx]);
    }
    s
}

/// Which measurement a chart plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    Throughput,
    LatencyMeanMs,
    PeakStateMib,
}

impl Metric {
    fn value(&self, r: &ResultRow) -> Option<f64> {
        match self {
            Metric::Throughput => Some(r.throughput_tps),
            Metric::LatencyMeanMs => r.latency_mean_ms,
            Metric::PeakStateMib => Some(r.peak_state_mib),
        }
    }

    fn format(&self, v: f64) -> String {
        match self {
            Metric::Throughput => human_tps(v),
            Metric::LatencyMeanMs => format!("{v:.1}ms"),
            Metric::PeakStateMib => format!("{v:.1}MiB"),
        }
    }

    pub fn title(&self) -> &'static str {
        match self {
            Metric::Throughput => "throughput (tpl/s)",
            Metric::LatencyMeanMs => "mean detection latency",
            Metric::PeakStateMib => "peak operator state",
        }
    }
}

/// Render rows as grouped bar charts: one group per distinct combination
/// of `group_params` values (in row order), one bar per system.
pub fn render(rows: &[ResultRow], metric: Metric, group_params: &[&str]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    // Group key preserving first-seen order.
    let mut groups: Vec<(String, Vec<&ResultRow>)> = Vec::new();
    for r in rows {
        let key = group_params
            .iter()
            .filter_map(|p| r.params.get(*p).map(|v| format!("{p}={v}")))
            .collect::<Vec<_>>()
            .join(" ");
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push(r),
            None => groups.push((key, vec![r])),
        }
    }
    let max = rows
        .iter()
        .filter_map(|r| metric.value(r))
        .fold(0.0f64, f64::max);
    let name_w = rows
        .iter()
        .map(|r| r.system.len())
        .max()
        .unwrap_or(8)
        .max(8);
    for (key, members) in groups {
        if !key.is_empty() {
            let _ = writeln!(out, "{key}");
        }
        for r in members {
            if let Some(why) = &r.failed {
                let _ = writeln!(
                    out,
                    "  {:<name_w$} │{:<BAR_WIDTH$}│ ✗ {}",
                    r.system,
                    "",
                    truncate(why, 40)
                );
                continue;
            }
            match metric.value(r) {
                Some(v) => {
                    let _ = writeln!(
                        out,
                        "  {:<name_w$} │{:<BAR_WIDTH$}│ {:>9}",
                        r.system,
                        bar(v, max),
                        metric.format(v)
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "  {:<name_w$} │{:<BAR_WIDTH$}│         -",
                        r.system, ""
                    );
                }
            }
        }
    }
    out
}

/// Render the Figure 5 state time series of one row as a sparkline.
pub fn sparkline(samples: &[(u64, usize, f64)], width: usize) -> String {
    if samples.is_empty() {
        return String::new();
    }
    const TICKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = samples.iter().map(|s| s.1).max().unwrap_or(1).max(1);
    let stride = (samples.len() as f64 / width as f64).max(1.0);
    let mut s = String::new();
    let mut i = 0.0;
    while (i as usize) < samples.len() && s.chars().count() < width {
        let v = samples[i as usize].1;
        let idx = ((v as f64 / max as f64) * 7.0).round() as usize;
        s.push(TICKS[idx.min(7)]);
        i += stride;
    }
    s
}

fn truncate(s: &str, n: usize) -> &str {
    match s.char_indices().nth(n) {
        Some((idx, _)) => &s[..idx],
        None => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap as Map;

    fn row(system: &str, param: (&str, &str), tps: f64) -> ResultRow {
        ResultRow {
            experiment: "x".into(),
            system: system.into(),
            params: Map::from([(param.0.to_string(), param.1.to_string())]),
            events: 100,
            matches: 1,
            selectivity_pct: 1.0,
            throughput_tps: tps,
            latency_mean_ms: Some(tps / 1000.0),
            latency_p99_ms: None,
            peak_state_mib: 1.0,
            duration_s: 0.1,
            failed: None,
            samples: vec![],
        }
    }

    #[test]
    fn bars_scale_to_the_maximum() {
        assert_eq!(bar(0.0, 10.0), "");
        assert_eq!(bar(10.0, 10.0).chars().count(), BAR_WIDTH);
        let half = bar(5.0, 10.0);
        assert!(half.chars().count() >= BAR_WIDTH / 2);
        assert!(half.chars().count() <= BAR_WIDTH / 2 + 1);
    }

    #[test]
    fn render_groups_by_parameter() {
        let rows = vec![
            row("FCEP", ("w", "30"), 1_000_000.0),
            row("FASP", ("w", "30"), 4_000_000.0),
            row("FCEP", ("w", "90"), 900_000.0),
            row("FASP", ("w", "90"), 4_100_000.0),
        ];
        let text = render(&rows, Metric::Throughput, &["w"]);
        assert!(text.contains("w=30"), "{text}");
        assert!(text.contains("w=90"), "{text}");
        assert!(text.contains("4.10M"), "{text}");
        // The max bar is full width.
        assert!(
            text.lines().any(|l| l.matches('█').count() == BAR_WIDTH),
            "{text}"
        );
    }

    #[test]
    fn failed_rows_render_a_cross() {
        let mut r = row("FCEP", ("k", "32"), 0.0);
        r.failed = Some("exhausted memory".into());
        let text = render(&[r], Metric::Throughput, &["k"]);
        assert!(text.contains('✗'), "{text}");
        assert!(text.contains("exhausted"), "{text}");
    }

    #[test]
    fn sparkline_is_bounded_and_monotone_capable() {
        let samples: Vec<(u64, usize, f64)> = (0..100).map(|i| (i as u64, i * 1024, 0.0)).collect();
        let s = sparkline(&samples, 20);
        assert!(s.chars().count() <= 20);
        assert!(s.ends_with('█'), "{s}");
        assert!(s.starts_with('▁'), "{s}");
        assert_eq!(sparkline(&[], 10), "");
    }

    #[test]
    fn metric_formatting() {
        assert_eq!(Metric::Throughput.format(2_000_000.0), "2.00M");
        assert_eq!(Metric::LatencyMeanMs.format(4.25), "4.2ms");
        assert_eq!(Metric::PeakStateMib.format(7.0), "7.0MiB");
    }
}
