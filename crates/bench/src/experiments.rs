//! One driver per paper artifact: Figures 3a–3f, 4, 5, 6 and Tables 1–2,
//! plus the ablations DESIGN.md calls out. Each driver generates its
//! workload, runs every system series the figure plots, and pushes
//! [`crate::ResultRow`]s into the sink.

use std::collections::HashMap;

use asp::event::{Event, EventType};
use cep2asp::{translate, JoinOrder, MapperOptions};
use sea::pattern::Pattern;
use workloads::{generate_aq, generate_qnv, AqConfig, QnvConfig, ValueModel, Workload, PM10, Q, V};

use crate::patterns;
use crate::report::ResultSink;
use crate::runner::{measure_fasp, measure_fcep, params, MeasureConfig};

/// Workload scale. The paper uses 10M-tuple extracts; the default quick
/// scale keeps every experiment in seconds on a laptop while preserving
/// all trends. `--full` restores paper-scale volumes.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Approximate total events per unkeyed experiment.
    pub events: usize,
    /// Sensors (keys) for the unkeyed experiments.
    pub sensors: u32,
}

impl Scale {
    pub fn quick() -> Self {
        Scale {
            events: 1_000_000,
            sensors: 4,
        }
    }

    pub fn full() -> Self {
        Scale {
            events: 10_000_000,
            sensors: 4,
        }
    }

    /// Minutes of QnV data so that Q+V ≈ `events`.
    fn qnv_minutes(&self, sensors: u32) -> i64 {
        ((self.events / 2).max(1) as i64 / sensors.max(1) as i64).max(10)
    }
}

fn qnv(scale: &Scale, sensors: u32, seed: u64) -> Workload {
    generate_qnv(&QnvConfig {
        sensors,
        minutes: scale.qnv_minutes(sensors),
        seed,
        value_model: ValueModel::Uniform,
    })
}

fn with_aq(mut w: Workload, scale: &Scale, sensors: u32, seed: u64) -> Workload {
    w.merge(generate_aq(&AqConfig {
        sensors,
        minutes: scale.qnv_minutes(sensors),
        seed,
        value_model: ValueModel::Uniform,
        id_offset: 0,
    }));
    w
}

fn sources_for(pattern: &Pattern, w: &Workload) -> HashMap<EventType, Vec<Event>> {
    let mut map = HashMap::new();
    for t in pattern.expr.input_types() {
        map.entry(t).or_insert_with(|| w.stream(t).to_vec());
    }
    map
}

/// The FASP variants plotted in Figures 3a–3f.
fn unkeyed_fasp_variants(iter_pattern: bool) -> Vec<(&'static str, MapperOptions)> {
    let mut v = vec![
        ("FASP", MapperOptions::plain()),
        ("FASP-O1", MapperOptions::o1()),
    ];
    if iter_pattern {
        v.push(("FASP-O2", MapperOptions::o2()));
    }
    v
}

/// Figure 3a — elementary operator baseline: SEQ1(2), ITER³₁(1), NSEQ1(3)
/// with low output selectivity and W = 15.
pub fn fig3a(sink: &mut ResultSink, scale: &Scale) {
    let w15 = 15i64;
    // SEQ1.
    let w = qnv(scale, scale.sensors, 101);
    let p_rate = patterns::pass_rate_for_selectivity(0.005, scale.sensors, w15);
    let seq = patterns::seq1(p_rate, w15);
    let srcs = sources_for(&seq, &w);
    let cfg = MeasureConfig::default();
    sink.push(measure_fcep(
        "fig3a",
        &seq,
        &srcs,
        false,
        &cfg,
        params(&[("pattern", "SEQ1".into())]),
    ));
    for (name, opts) in unkeyed_fasp_variants(false) {
        sink.push(measure_fasp(
            "fig3a",
            name,
            &seq,
            &opts,
            &srcs,
            &cfg,
            params(&[("pattern", "SEQ1".into())]),
        ));
    }
    // ITER³₁: threshold-filtered so ~1.5 relevant events fall into each
    // window — the paper's σₒ = 0.00005 % regime where matches are rare.
    let iter_rate = (1.5 / (scale.sensors as f64 * w15 as f64)).min(1.0);
    let iter = patterns::iter_threshold(3, iter_rate, w15);
    let srcs = sources_for(&iter, &w);
    sink.push(measure_fcep(
        "fig3a",
        &iter,
        &srcs,
        false,
        &cfg,
        params(&[("pattern", "ITER3".into())]),
    ));
    for (name, opts) in unkeyed_fasp_variants(true) {
        sink.push(measure_fasp(
            "fig3a",
            name,
            &iter,
            &opts,
            &srcs,
            &cfg,
            params(&[("pattern", "ITER3".into())]),
        ));
    }
    // NSEQ1 over QnV + AQ.
    let w2 = with_aq(qnv(scale, scale.sensors, 103), scale, scale.sensors, 103);
    let nseq = patterns::nseq1(p_rate * 4.0, 0.05, w15);
    let srcs = sources_for(&nseq, &w2);
    sink.push(measure_fcep(
        "fig3a",
        &nseq,
        &srcs,
        false,
        &cfg,
        params(&[("pattern", "NSEQ1".into())]),
    ));
    for (name, opts) in unkeyed_fasp_variants(false) {
        sink.push(measure_fasp(
            "fig3a",
            name,
            &nseq,
            &opts,
            &srcs,
            &cfg,
            params(&[("pattern", "NSEQ1".into())]),
        ));
    }
}

/// Figure 3b — output-selectivity sweep on SEQ1 (σₒ from ~0.003 % to
/// ~30 %): FCEP collapses, FASP stays flat until very high σₒ.
pub fn fig3b(sink: &mut ResultSink, scale: &Scale) {
    let w15 = 15i64;
    let w = qnv(scale, scale.sensors, 107);
    let cfg = MeasureConfig::default();
    for target in [0.003, 0.1, 1.0, 30.0] {
        let p_rate = patterns::pass_rate_for_selectivity(target, scale.sensors, w15);
        let pattern = patterns::seq1(p_rate, w15);
        let srcs = sources_for(&pattern, &w);
        let prm = || params(&[("target_sel_pct", format!("{target}"))]);
        sink.push(measure_fcep("fig3b", &pattern, &srcs, false, &cfg, prm()));
        for (name, opts) in unkeyed_fasp_variants(false) {
            sink.push(measure_fasp(
                "fig3b",
                name,
                &pattern,
                &opts,
                &srcs,
                &cfg,
                prm(),
            ));
        }
    }
}

/// Figure 3c — window-size sweep on SEQ1 (W ∈ {30, 90, 360} minutes):
/// FCEP degrades with window size, FASP stays constant.
pub fn fig3c(sink: &mut ResultSink, scale: &Scale) {
    let w = qnv(scale, scale.sensors, 109);
    let cfg = MeasureConfig::default();
    // Fixed filter pass rate: σₒ rises with W exactly as in the paper.
    let p_rate = patterns::pass_rate_for_selectivity(0.003, scale.sensors, 30);
    for w_min in [30i64, 90, 360] {
        let pattern = patterns::seq1(p_rate, w_min);
        let srcs = sources_for(&pattern, &w);
        let prm = || params(&[("window_min", format!("{w_min}"))]);
        sink.push(measure_fcep("fig3c", &pattern, &srcs, false, &cfg, prm()));
        for (name, opts) in unkeyed_fasp_variants(false) {
            sink.push(measure_fasp(
                "fig3c",
                name,
                &pattern,
                &opts,
                &srcs,
                &cfg,
                prm(),
            ));
        }
    }
}

/// Figure 3d — nested SEQ(n), n ∈ 2..=6 over QnV + AQ types: each new
/// type forces another union on FCEP, while FASP adds one pipeline join.
pub fn fig3d(sink: &mut ResultSink, scale: &Scale) {
    let w15 = 15i64;
    let w = with_aq(qnv(scale, scale.sensors, 113), scale, scale.sensors, 113);
    let cfg = MeasureConfig::default();
    for n in 2..=6usize {
        // Per-stage pass rate p solving p·(candidates·p)^(n-1) ≈ r for a
        // constant (low) match rate r across n, with ~W·sensors candidate
        // events per stage window — the paper holds σₒ fixed likewise.
        let candidates = (scale.sensors as f64) * (w15 as f64);
        let r = 2e-3;
        let p_rate = (r / candidates.powi(n as i32 - 1)).powf(1.0 / n as f64);
        let pattern = patterns::seq_n(n, p_rate, w15);
        let srcs = sources_for(&pattern, &w);
        let prm = || params(&[("n", format!("{n}"))]);
        sink.push(measure_fcep("fig3d", &pattern, &srcs, false, &cfg, prm()));
        for (name, opts) in unkeyed_fasp_variants(false) {
            sink.push(measure_fasp(
                "fig3d",
                name,
                &pattern,
                &opts,
                &srcs,
                &cfg,
                prm(),
            ));
        }
    }
}

/// Figures 3e/3f — iteration length m ∈ {3, 6, 9} with (e) pairwise
/// constraints between subsequent events and (f) threshold filters.
pub fn fig3ef(sink: &mut ResultSink, scale: &Scale, pairwise: bool) {
    let exp = if pairwise { "fig3e" } else { "fig3f" };
    let w15 = 15i64;
    let w = qnv(scale, scale.sensors, 127);
    let cfg = MeasureConfig::default();
    for m in [3usize, 6, 9] {
        // Calibrate the relevant-event rate λ per window so the *final*
        // match rate stays constant across m (the paper tightens the
        // constraints for larger m likewise): with k ~ Poisson(λ) relevant
        // events per window, exact-m combinations are ≈ λ^m / m! and
        // pairwise-increasing ones ≈ λ^m / (m!)². λ is capped so the join
        // chain's intermediate results stay bounded.
        let fact = |n: usize| (1..=n).map(|i| i as f64).product::<f64>();
        let lam = if pairwise {
            (0.05 * fact(m) * fact(m)).powf(1.0 / m as f64).min(5.0)
        } else {
            (0.05 * fact(m)).powf(1.0 / m as f64)
        };
        let keep = lam / (scale.sensors as f64 * w15 as f64);
        let pattern = if pairwise {
            // Pairwise value ordering plus the σₒ-maintaining filter.
            let mut p = patterns::iter_threshold(m, keep, w15);
            let mut preds = p.predicates.clone();
            preds.extend((0..m - 1).map(|i| {
                sea::predicate::Predicate::cross(
                    i,
                    asp::event::Attr::Value,
                    sea::predicate::CmpOp::Lt,
                    i + 1,
                    asp::event::Attr::Value,
                )
            }));
            p = Pattern::new(p.name.clone(), p.expr.clone(), p.window, preds).unwrap();
            p
        } else {
            patterns::iter_threshold(m, keep, w15)
        };
        let srcs = sources_for(&pattern, &w);
        let prm = || params(&[("m", format!("{m}"))]);
        sink.push(measure_fcep(exp, &pattern, &srcs, false, &cfg, prm()));
        for (name, opts) in unkeyed_fasp_variants(true) {
            sink.push(measure_fasp(exp, name, &pattern, &opts, &srcs, &cfg, prm()));
        }
    }
}

/// The keyed workloads of Sections 5.2.3–5.2.5: SEQ7(3) over Q, V, PM10
/// and ITER⁴₄(1) over V, both keyed by sensor id.
fn keyed_workload(scale: &Scale, keys: u32, seed: u64) -> Workload {
    // Volume grows with the key count, as in the paper (each sensor adds
    // data volume): the duration is fixed so that the 32-key configuration
    // ingests ≈ `scale.events` QnV tuples.
    let minutes = ((scale.events / 64).max(600)) as i64;
    let mut w = generate_qnv(&QnvConfig {
        sensors: keys,
        minutes,
        seed,
        value_model: ValueModel::Uniform,
    });
    w.merge(generate_aq(&AqConfig {
        sensors: keys,
        minutes,
        seed,
        value_model: ValueModel::Uniform,
        id_offset: 0,
    }));
    w
}

/// Keyed FASP variants of Figure 4/6.
fn keyed_fasp_variants(iter_pattern: bool) -> Vec<(&'static str, MapperOptions)> {
    let mut v = vec![
        ("FASP-O3", MapperOptions::o3()),
        ("FASP-O1+O3", MapperOptions::o1().and_o3()),
    ];
    if iter_pattern {
        v.push(("FASP-O2+O3", MapperOptions::o2().and_o3()));
    }
    v
}

/// Figure 4 — data characteristics: key cardinality ∈ {16, 32, 128} with
/// 16 task slots; both systems leverage partitioning, FASP stays ahead.
/// Task slots are *simulated* (per-partition critical path) because the
/// evaluation host may expose a single CPU — see `runner::scaleout`.
pub fn fig4(sink: &mut ResultSink, scale: &Scale) {
    let cfg = MeasureConfig::default();
    let slots = 16;
    for keys in [16u32, 32, 128] {
        let w = keyed_workload(scale, keys, 131);
        // SEQ7(3), σₒ ≈ 1 %, W = 15.
        let seq7 = patterns::seq7(0.1, 15);
        let srcs = sources_for(&seq7, &w);
        let prm = |p: &str| params(&[("pattern", p.to_string()), ("keys", format!("{keys}"))]);
        sink.push(crate::runner::scaleout::measure_fcep(
            "fig4",
            &seq7,
            &srcs,
            slots,
            &cfg,
            prm("SEQ7"),
        ));
        for (name, opts) in keyed_fasp_variants(false) {
            sink.push(crate::runner::scaleout::measure_fasp(
                "fig4",
                name,
                &seq7,
                &opts,
                &srcs,
                slots,
                &cfg,
                prm("SEQ7"),
            ));
        }
        // ITER⁴₄(1), W = 90.
        let iter4 = patterns::iter4(0.008, 90);
        let srcs = sources_for(&iter4, &w);
        sink.push(crate::runner::scaleout::measure_fcep(
            "fig4",
            &iter4,
            &srcs,
            slots,
            &cfg,
            prm("ITER4"),
        ));
        for (name, opts) in keyed_fasp_variants(true) {
            sink.push(crate::runner::scaleout::measure_fasp(
                "fig4",
                name,
                &iter4,
                &opts,
                &srcs,
                slots,
                &cfg,
                prm("ITER4"),
            ));
        }
    }
}

/// Section 5.2.3's failure observation: with the same state budget, FCEP
/// exhausts memory while the mapping completes.
///
/// The workload makes the asymmetry structural, not incidental: the
/// pattern's only selective constraints involve its *last* event type
/// (rare PM10 readings). The NFA must therefore materialize every (Q, V)
/// prefix as a partial match — quadratic in the window — before the
/// selective stage can prune anything, while the mapping simply reorders
/// the join tree rare-stream-first (Section 4.2.2) and never builds that
/// state.
pub fn fig4_failure(sink: &mut ResultSink, scale: &Scale) {
    use asp::event::Attr;
    use sea::pattern::{builders, WindowSpec};
    use sea::predicate::{CmpOp, Predicate};

    let keys = 32u32;
    let w = keyed_workload(scale, keys, 137);
    let budget = 16 * 1024 * 1024;
    // Few threaded slots: the host may be single-core, and the experiment
    // is about state, not speed.
    let cfg = MeasureConfig {
        parallelism: 4,
        memory_limit: Some(budget),
        ..Default::default()
    };
    // SEQ(Q, V, PM10) keyed by sensor; all value constraints reference the
    // PM10 event, so nothing prunes (Q, V) prefixes early.
    let pattern = builders::seq(
        &[(Q, "Q"), (V, "V"), (PM10, "PM10")],
        WindowSpec::minutes(360),
        vec![
            Predicate::same_id(0, 1),
            Predicate::same_id(1, 2),
            Predicate::threshold(2, Attr::Value, CmpOp::Le, 5.0),
            Predicate::cross(0, Attr::Value, CmpOp::Le, 2, Attr::Value),
            Predicate::cross(1, Attr::Value, CmpOp::Le, 2, Attr::Value),
        ],
    );
    let srcs = sources_for(&pattern, &w);
    let prm = || {
        params(&[
            ("keys", format!("{keys}")),
            ("budget_mib", format!("{}", budget / 1024 / 1024)),
        ])
    };
    sink.push(measure_fcep("fig4fail", &pattern, &srcs, true, &cfg, prm()));
    // Rare-stream-first join order + interval joins + key partitioning.
    let opts = MapperOptions {
        interval_join: true,
        partition_by_key: true,
        join_order: JoinOrder::Permutation(vec![2, 0, 1]),
        ..Default::default()
    };
    sink.push(measure_fasp(
        "fig4fail",
        "FASP-O1+O3",
        &pattern,
        &opts,
        &srcs,
        &cfg,
        prm(),
    ));
}

/// Figure 5 — resource usage over time (state bytes as the memory proxy +
/// process CPU) for SEQ7 and ITER4 at 32 and 128 keys.
pub fn fig5(sink: &mut ResultSink, scale: &Scale) {
    // Threaded execution with resource sampling; on a single-CPU host the
    // CPU series is of one core and slots time-slice, but the state
    // (memory) series — the paper's key signal — is unaffected.
    let cfg = MeasureConfig {
        parallelism: 4,
        sample_resources: true,
        ..Default::default()
    };
    for keys in [32u32, 128] {
        let w = keyed_workload(scale, keys, 139);
        for (pname, pattern, iter_pattern) in [
            ("SEQ7", patterns::seq7(0.1, 15), false),
            ("ITER4", patterns::iter4(0.008, 90), true),
        ] {
            let srcs = sources_for(&pattern, &w);
            let prm = || params(&[("pattern", pname.to_string()), ("keys", format!("{keys}"))]);
            sink.push(measure_fcep("fig5", &pattern, &srcs, true, &cfg, prm()));
            for (name, opts) in keyed_fasp_variants(iter_pattern) {
                sink.push(measure_fasp(
                    "fig5",
                    name,
                    &pattern,
                    &opts,
                    &srcs,
                    &cfg,
                    prm(),
                ));
            }
        }
    }
}

/// Figure 6 — scalability: workers ∈ {1, 2, 4} × 16 slots at 128 keys,
/// with slots simulated per partition (see `runner::scaleout`).
pub fn fig6(sink: &mut ResultSink, scale: &Scale) {
    let keys = 128u32;
    let w = keyed_workload(scale, keys, 149);
    for workers in [1usize, 2, 4] {
        let cfg = MeasureConfig::default();
        let slots = workers * 16;
        for (pname, pattern, iter_pattern) in [
            ("SEQ7", patterns::seq7(0.1, 15), false),
            ("ITER4", patterns::iter4(0.008, 90), true),
        ] {
            let srcs = sources_for(&pattern, &w);
            let prm = || {
                params(&[
                    ("pattern", pname.to_string()),
                    ("workers", format!("{workers}")),
                ])
            };
            sink.push(crate::runner::scaleout::measure_fcep(
                "fig6",
                &pattern,
                &srcs,
                slots,
                &cfg,
                prm(),
            ));
            for (name, opts) in keyed_fasp_variants(iter_pattern) {
                sink.push(crate::runner::scaleout::measure_fasp(
                    "fig6",
                    name,
                    &pattern,
                    &opts,
                    &srcs,
                    slots,
                    &cfg,
                    prm(),
                ));
            }
        }
    }
}

/// Table 1 — the operator mapping overview, printed as the logical plans
/// the translator actually produces.
pub fn table1() {
    use sea::pattern::{builders, Leaf, WindowSpec};
    println!("== Table 1: operator mapping overview ==\n");
    let w = WindowSpec::minutes(15);
    #[allow(clippy::type_complexity)]
    let cases: Vec<(&str, Pattern, Vec<(&str, MapperOptions)>)> = vec![
        (
            "Conjunction (T1 ∧ T2) — AND",
            builders::and(&[(Q, "Q"), (V, "V")], w, vec![]),
            vec![
                ("T1 × T2 (sliding)", MapperOptions::plain()),
                ("O1 interval", MapperOptions::o1()),
            ],
        ),
        (
            "Sequence (T1; T2) — SEQ",
            builders::seq(&[(Q, "Q"), (V, "V")], w, vec![]),
            vec![
                ("T1 ⋈θ T2 (sliding)", MapperOptions::plain()),
                ("O1 interval", MapperOptions::o1()),
            ],
        ),
        (
            "Sequence with equi-key — SEQ + O3",
            builders::seq(
                &[(Q, "Q"), (V, "V")],
                w,
                vec![sea::predicate::Predicate::same_id(0, 1)],
            ),
            vec![("T1 ⋈c T2 (by key)", MapperOptions::o3())],
        ),
        (
            "Disjunction (T1 ∨ T2) — OR",
            builders::or(&[(Q, "Q"), (V, "V")], w),
            vec![("T1 ∪ T2", MapperOptions::plain())],
        ),
        (
            "Iteration (T^m) — ITER3",
            builders::iter(V, "V", 3, w, vec![]),
            vec![
                ("T ⋈θ … ⋈θ T (self joins)", MapperOptions::plain()),
                ("O2 γ_count(T)", MapperOptions::o2()),
            ],
        ),
        (
            "Negated sequence ¬T2[T1; T3] — NSEQ",
            builders::nseq((Q, "Q"), Leaf::new(PM10, "PM10", "n"), (V, "V"), w, vec![]),
            vec![("UDF(T1 ∪ T2) ⋈θ T3", MapperOptions::plain())],
        ),
    ];
    for (title, pattern, mappings) in cases {
        println!("--- {title}");
        println!("{pattern}");
        println!(
            "\n  as ASP query:\n{}",
            indent(&cep2asp::to_query_text(&pattern), 2)
        );
        for (label, opts) in mappings {
            match translate(&pattern, &opts) {
                Ok(plan) => println!("\n  mapping: {label}\n{}", indent(&plan.explain(), 2)),
                Err(e) => println!("\n  mapping: {label}: unsupported: {e}"),
            }
        }
        println!();
    }
}

/// Table 2 — operator support & selection policies per system.
pub fn table2() {
    use cep::SelectionPolicy;
    use sea::pattern::{builders, Leaf, WindowSpec};
    let w = WindowSpec::minutes(15);
    let cases: Vec<(&str, Pattern)> = vec![
        ("AND", builders::and(&[(Q, "Q"), (V, "V")], w, vec![])),
        ("SEQ", builders::seq(&[(Q, "Q"), (V, "V")], w, vec![])),
        ("OR", builders::or(&[(Q, "Q"), (V, "V")], w)),
        ("ITER", builders::iter(V, "V", 3, w, vec![])),
        (
            "NSEQ",
            builders::nseq((Q, "Q"), Leaf::new(PM10, "PM10", "n"), (V, "V"), w, vec![]),
        ),
    ];
    println!("== Table 2: operator support of FCEP and FASP ==\n");
    println!("{:<8} {:<18} {:<40}", "op", "FASP", "FCEP");
    for (name, pattern) in &cases {
        let fasp = match translate(pattern, &MapperOptions::o2()) {
            Ok(_) => "✓ (stam)".to_string(),
            Err(e) => format!("✗ ({e})"),
        };
        let fcep = match cep::Nfa::compile(pattern) {
            Ok(_) => {
                let policies = [
                    SelectionPolicy::SkipTillAnyMatch,
                    SelectionPolicy::SkipTillNextMatch,
                    SelectionPolicy::StrictContiguity,
                ]
                .map(|p| p.to_string())
                .join(", ");
                format!("✓ ({policies})")
            }
            Err(e) => format!("✗ ({e})"),
        };
        println!("{name:<8} {fasp:<18} {fcep:<40}");
    }
    println!();
}

/// Ablation A — interval join vs sliding-window join under varying
/// left/right stream-frequency ratios (the crossover claim of 4.3.1).
pub fn ablation_frequency(sink: &mut ResultSink, scale: &Scale) {
    let w15 = 15i64;
    let cfg = MeasureConfig::default();
    // Frequency ratio r: the Q stream keeps 1/min per sensor; V is
    // decimated (r < 1) or sensor-multiplied (r > 1).
    for (label, q_sensors, v_sensors) in [("1:8", 1u32, 8u32), ("1:1", 4, 4), ("8:1", 8, 1)] {
        let minutes = scale.qnv_minutes(scale.sensors);
        let wq = generate_qnv(&QnvConfig {
            sensors: q_sensors,
            minutes,
            seed: 151,
            value_model: ValueModel::Uniform,
        });
        let wv = generate_qnv(&QnvConfig {
            sensors: v_sensors,
            minutes,
            seed: 157,
            value_model: ValueModel::Uniform,
        });
        let pattern = patterns::seq1(0.03, w15);
        let sources = HashMap::from([(Q, wq.stream(Q).to_vec()), (V, wv.stream(V).to_vec())]);
        let prm = || params(&[("freq_ratio", label.to_string())]);
        sink.push(measure_fasp(
            "ablationA",
            "FASP",
            &pattern,
            &MapperOptions::plain(),
            &sources,
            &cfg,
            prm(),
        ));
        sink.push(measure_fasp(
            "ablationA",
            "FASP-O1",
            &pattern,
            &MapperOptions::o1(),
            &sources,
            &cfg,
            prm(),
        ));
    }
}

/// Ablation B — join order for a nested sequence: textual vs rare-first
/// (Section 4.2.2's manual reordering).
pub fn ablation_join_order(sink: &mut ResultSink, scale: &Scale) {
    let w = with_aq(qnv(scale, scale.sensors, 163), scale, scale.sensors, 163);
    let pattern = patterns::seq_n(3, 0.05, 15); // Q, V, PM10 — PM10 is rarest
    let srcs = sources_for(&pattern, &w);
    let cfg = MeasureConfig::default();
    for (label, order) in [
        ("textual", JoinOrder::Textual),
        ("rare-first", JoinOrder::Permutation(vec![2, 0, 1])),
    ] {
        let opts = MapperOptions {
            interval_join: true,
            join_order: order,
            ..Default::default()
        };
        sink.push(measure_fasp(
            "ablationB",
            &format!("FASP-O1/{label}"),
            &pattern,
            &opts,
            &srcs,
            &cfg,
            params(&[("order", label.to_string())]),
        ));
    }
}

/// Ablation C — watermark interval: FCEP's sort buffer and pruning are
/// tied to watermark cadence; coarse watermarks inflate its state.
pub fn ablation_watermark(sink: &mut ResultSink, scale: &Scale) {
    let w = qnv(scale, scale.sensors, 167);
    let pattern = patterns::seq1(0.02, 15);
    let srcs = sources_for(&pattern, &w);
    for every in [64usize, 1024, 8192] {
        let cfg = MeasureConfig {
            watermark_every: every,
            ..Default::default()
        };
        let prm = || params(&[("wm_every", format!("{every}"))]);
        sink.push(measure_fcep(
            "ablationC",
            &pattern,
            &srcs,
            false,
            &cfg,
            prm(),
        ));
        sink.push(measure_fasp(
            "ablationC",
            "FASP",
            &pattern,
            &MapperOptions::plain(),
            &srcs,
            &cfg,
            prm(),
        ));
    }
}

fn indent(s: &str, n: usize) -> String {
    let pad = " ".repeat(n);
    s.lines().map(|l| format!("{pad}{l}\n")).collect()
}
