//! EXPLAIN reports for the standard workload suite.
//!
//! [`suite_report`] drives the full static-analysis loop for every
//! pattern in [`crate::patterns::standard_suite`]: generate the QnV + AQ
//! streams, measure [`StreamStats`], pick options with the requested
//! [`OrderingStrategy`], translate, and render the analyzer's per-node
//! estimates and `A`-code diagnostics. The output is what the
//! `plan-explain` bin prints and what CI uploads as the `PLAN_EXPLAIN`
//! artifact, so plan or cost-model regressions show up as a text diff.
//!
//! [`ab_join_order`] is the A/B harness behind `plan-explain --ab`: it
//! executes the join-order-sensitive patterns under both ordering
//! strategies on the same streams and reports wall time and emitted
//! candidate volume side by side.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

use asp::event::{Event, EventType};
use asp::runtime::ExecutorConfig;
use cep2asp::exec::run_pattern;
use cep2asp::optimizer::{annotations_from_stats, auto_options_with, OrderingStrategy};
use cep2asp::physical::PhysicalConfig;
use cep2asp::{explain_analyzed, translate, AnalyzeConfig, StreamStats};

use workloads::{generate_aq, generate_qnv, AqConfig, QnvConfig, ValueModel};

use crate::patterns::standard_suite;

/// Workload shape for the EXPLAIN suite and the A/B harness.
#[derive(Debug, Clone, Copy)]
pub struct ExplainConfig {
    /// Pattern window, minutes.
    pub w_minutes: i64,
    /// Sensors per dataset (QnV road segments / AQ sites).
    pub sensors: u32,
    /// Simulated stream duration, minutes.
    pub minutes: i64,
    /// RNG seed for the generators.
    pub seed: u64,
}

impl Default for ExplainConfig {
    fn default() -> Self {
        ExplainConfig {
            w_minutes: 15,
            sensors: 4,
            minutes: 120,
            seed: 42,
        }
    }
}

/// Generate the suite's source streams (QnV merged with AQ).
pub fn suite_sources(cfg: &ExplainConfig) -> HashMap<EventType, Vec<Event>> {
    let mut w = generate_qnv(&QnvConfig {
        sensors: cfg.sensors,
        minutes: cfg.minutes,
        seed: cfg.seed,
        value_model: ValueModel::Uniform,
    });
    w.merge(generate_aq(&AqConfig {
        sensors: cfg.sensors,
        minutes: cfg.minutes,
        seed: cfg.seed,
        id_offset: 0,
        ..Default::default()
    }));
    w.streams
}

/// Render the EXPLAIN report for every pattern in the standard suite.
pub fn suite_report(cfg: &ExplainConfig, strategy: OrderingStrategy) -> String {
    let sources = suite_sources(cfg);
    let stats = StreamStats::from_sources(&sources);
    let acfg = AnalyzeConfig::default();
    let mut out = format!(
        "PLAN EXPLAIN — standard suite (W = {} min, {} sensors × {} min, order = {:?})\n\n",
        cfg.w_minutes, cfg.sensors, cfg.minutes, strategy
    );
    for (name, pattern) in standard_suite(cfg.w_minutes) {
        let opts = auto_options_with(&pattern, &stats, strategy);
        match translate(&pattern, &opts) {
            Ok(plan) => {
                let ann = annotations_from_stats(&pattern, &stats);
                let _ = writeln!(out, "== {name} [{}]", plan.mapping);
                out.push_str(&explain_analyzed(&plan, &pattern, &ann, &acfg));
            }
            Err(e) => {
                let _ = writeln!(out, "== {name}\n-- translate failed: {e}");
            }
        }
        out.push('\n');
    }
    out
}

/// Render the shared-subplan report for the standard suite run as one
/// multi-pattern batch: every pattern's plan tree annotated with how many
/// consumers each interned subtree serves (`×N`), patterns whose whole
/// pipeline duplicates an earlier one collapsed to a reference, and the
/// sharing summary (nodes and scans before vs. after interning). Printed
/// by `plan-explain --multi` and uploaded as the CI `PLAN_MULTI`
/// artifact, so sharing regressions — a canonical-key change that stops
/// two suite patterns from merging — show up as a text diff.
pub fn multi_report(cfg: &ExplainConfig, strategy: OrderingStrategy) -> String {
    let sources = suite_sources(cfg);
    let stats = StreamStats::from_sources(&sources);
    let mut plans = Vec::new();
    let mut failed = String::new();
    for (name, pattern) in standard_suite(cfg.w_minutes) {
        let opts = auto_options_with(&pattern, &stats, strategy);
        match translate(&pattern, &opts) {
            Ok(plan) => plans.push((name, plan)),
            Err(e) => {
                let _ = writeln!(failed, "== {name}\n-- translate failed: {e}");
            }
        }
    }
    format!(
        "PLAN MULTI — standard suite as one shared batch (W = {} min, order = {:?})\n\n{}{}",
        cfg.w_minutes,
        strategy,
        cep2asp::render_multi(plans.iter().map(|(n, p)| (*n, p))),
        failed
    )
}

/// The hypothetical deployment `plan-explain --schema` checks migration
/// safety against: 8 shards with the adaptive rebalancer on — the shape
/// the hotpath scenario exercises.
fn hypothetical_deployment() -> cep2asp::MigrateConfig {
    cep2asp::MigrateConfig::sharded(8)
}

/// Render the schema & partition-safety report for every pattern in the
/// standard suite: the typechecker's per-node inferred row schema, key
/// provenance, and shardability verdict (see DESIGN.md, "Schema &
/// partition-safety"), followed by the `M`-code migration-safety findings
/// under a hypothetical 8-shard adaptive deployment. Printed by
/// `plan-explain --schema`.
pub fn schema_report(cfg: &ExplainConfig, strategy: OrderingStrategy) -> String {
    let sources = suite_sources(cfg);
    let stats = StreamStats::from_sources(&sources);
    let mcfg = hypothetical_deployment();
    let mut out = format!(
        "PLAN SCHEMA — standard suite (W = {} min, order = {:?}, migration check: {} shards, adaptive)\n\n",
        cfg.w_minutes,
        strategy,
        mcfg.shards.unwrap_or(1)
    );
    for (name, pattern) in standard_suite(cfg.w_minutes) {
        let opts = auto_options_with(&pattern, &stats, strategy);
        match translate(&pattern, &opts) {
            Ok(plan) => {
                let tc = cep2asp::typecheck(&plan);
                let _ = writeln!(out, "== {name} [{}]", plan.mapping);
                out.push_str(&tc.render());
                let mig = cep2asp::migration_safety(&plan, &tc, &mcfg);
                if mig.is_empty() {
                    out.push_str("-- migration safety: clean\n");
                } else {
                    let _ = writeln!(out, "-- migration safety ({}):", mig.len());
                    for d in &mig {
                        let _ = writeln!(out, "   {d}");
                    }
                }
            }
            Err(e) => {
                let _ = writeln!(out, "== {name}\n-- translate failed: {e}");
            }
        }
        out.push('\n');
    }
    out
}

/// The machine-readable companion of [`schema_report`]: one JSON document
/// with each suite pattern's full typecheck artifact (schemas, key
/// provenance, safety verdicts, S-code diagnostics). Written by
/// `plan-explain --schema-json FILE` and uploaded as a CI artifact.
pub fn schema_json(cfg: &ExplainConfig, strategy: OrderingStrategy) -> String {
    let sources = suite_sources(cfg);
    let stats = StreamStats::from_sources(&sources);
    let mcfg = hypothetical_deployment();
    let mut entries = Vec::new();
    for (name, pattern) in standard_suite(cfg.w_minutes) {
        let opts = auto_options_with(&pattern, &stats, strategy);
        let entry = match translate(&pattern, &opts) {
            // `to_json` already emits a complete JSON object; embed raw.
            Ok(plan) => {
                let tc = cep2asp::typecheck(&plan);
                let mig = cep2asp::migration_safety(&plan, &tc, &mcfg);
                format!(
                    "{{\"pattern\":\"{name}\",\"typecheck\":{},\"migration\":{}}}",
                    tc.to_json(),
                    cep2asp::migration_json(&mig)
                )
            }
            Err(e) => {
                format!("{{\"pattern\":\"{name}\",\"typecheck\":{{\"error\":\"{e}\"}},\"migration\":[]}}")
            }
        };
        entries.push(entry);
    }
    format!(
        "{{\"window_minutes\":{},\"order\":\"{:?}\",\"patterns\":[{}]}}\n",
        cfg.w_minutes,
        strategy,
        entries.join(",")
    )
}

/// One side of an A/B join-order measurement.
#[derive(Debug, Clone)]
pub struct AbSide {
    /// Ordering strategy the side ran under.
    pub strategy: OrderingStrategy,
    /// Wall time of the pipeline run, milliseconds.
    pub wall_ms: f64,
    /// Tuples emitted across all operators — the intermediate-volume
    /// metric the cost model minimizes. Deterministic, unlike wall time.
    pub tuples_emitted: u64,
    /// Tuples delivered to the sink (incl. sliding duplicates) — must be
    /// identical between strategies (ordering never changes the matches).
    pub sink_tuples: u64,
}

/// The A/B pattern set: the join-order-sensitive suite patterns (3+
/// operand SEQ/AND chains) plus `SEQ-xkey`, a sequence whose selective
/// equi-key links the two *frequent* streams — the rate heuristic leads
/// with the rare stream and pays an unfiltered high-rate join, while the
/// cost model pulls the keyed pair together first.
pub fn ab_patterns(w_minutes: i64) -> Vec<(&'static str, sea::pattern::Pattern)> {
    use sea::pattern::{builders, PatternExpr, WindowSpec};
    use sea::predicate::Predicate;
    use workloads::{PM25, Q, V};
    let mut pats: Vec<(&'static str, sea::pattern::Pattern)> = standard_suite(w_minutes)
        .into_iter()
        .filter(|(_, p)| {
            matches!(
                &p.expr,
                PatternExpr::Seq(parts) | PatternExpr::And(parts) if parts.len() > 2
            )
        })
        .collect();
    pats.push((
        "SEQ-xkey",
        builders::seq(
            &[(Q, "Q"), (PM25, "PM25"), (V, "V")],
            WindowSpec::minutes(w_minutes),
            vec![Predicate::same_id(0, 2)],
        ),
    ));
    pats
}

/// A/B the cost-based join ordering against the rate heuristic. Returns a
/// rendered table; the tuple columns count *intermediate* volume (total
/// emissions minus the order-invariant final output), "volume" is the
/// heuristic-over-cost ratio on that (> 1 means the cost model's order
/// produced less intermediate work), "speedup" the same ratio on wall
/// time (noisy at small scale).
pub fn ab_join_order(cfg: &ExplainConfig) -> String {
    let sources = suite_sources(cfg);
    let stats = StreamStats::from_sources(&sources);
    let mut out = format!(
        "A/B join ordering (W = {} min, {} sensors × {} min)\n{:<12} {:>14} {:>14} {:>12} {:>9} {:>9}\n",
        cfg.w_minutes,
        cfg.sensors,
        cfg.minutes,
        "pattern",
        "cost inter",
        "heur inter",
        "sink",
        "volume",
        "speedup"
    );
    for (name, pattern) in ab_patterns(cfg.w_minutes) {
        let sides: Vec<AbSide> = [OrderingStrategy::CostBased, OrderingStrategy::RateHeuristic]
            .into_iter()
            .filter_map(|strategy| {
                let opts = auto_options_with(&pattern, &stats, strategy);
                let start = Instant::now();
                let run = run_pattern(
                    &pattern,
                    &opts,
                    &sources,
                    &PhysicalConfig::default(),
                    &ExecutorConfig::default(),
                )
                .ok()?;
                Some(AbSide {
                    strategy,
                    wall_ms: start.elapsed().as_secs_f64() * 1e3,
                    tuples_emitted: run.report.nodes.iter().map(|n| n.records_out).sum(),
                    sink_tuples: run.raw_count(),
                })
            })
            .collect();
        if let [cost, heur] = sides.as_slice() {
            debug_assert_eq!(cost.sink_tuples, heur.sink_tuples);
            // Final-join output and source volume are order-invariant;
            // what the ordering controls is everything in between.
            let inter = |s: &AbSide| s.tuples_emitted.saturating_sub(s.sink_tuples).max(1);
            let _ = writeln!(
                out,
                "{:<12} {:>14} {:>14} {:>12} {:>8.2}x {:>8.2}x",
                name,
                inter(cost),
                inter(heur),
                cost.sink_tuples,
                inter(heur) as f64 / inter(cost) as f64,
                heur.wall_ms / cost.wall_ms.max(1e-9)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_report_renders_every_pattern_with_estimates() {
        let cfg = ExplainConfig {
            minutes: 40,
            ..Default::default()
        };
        let report = suite_report(&cfg, OrderingStrategy::CostBased);
        for (name, _) in standard_suite(cfg.w_minutes) {
            assert!(report.contains(&format!("== {name}")), "missing {name}");
        }
        assert!(!report.contains("translate failed"), "{report}");
        assert!(report.contains("rate≈"), "{report}");
        // The suite includes pathological shapes: super-linear state and
        // join amplification must both be diagnosed somewhere.
        assert!(report.contains("A001"), "{report}");
        assert!(report.contains("A002"), "{report}");
    }

    #[test]
    fn multi_report_shows_sharing_across_the_suite() {
        let cfg = ExplainConfig {
            minutes: 40,
            ..Default::default()
        };
        let report = multi_report(&cfg, OrderingStrategy::CostBased);
        for (name, _) in standard_suite(cfg.w_minutes) {
            assert!(report.contains(&format!("== {name}")), "missing {name}");
        }
        assert!(!report.contains("translate failed"), "{report}");
        assert!(report.contains("-- sharing:"), "{report}");
        // The suite's patterns read overlapping streams: at least one
        // subtree must be interned for more than one consumer.
        assert!(report.contains("×"), "no shared subtree\n{report}");
    }

    #[test]
    fn schema_report_gives_every_pattern_a_verdict() {
        let cfg = ExplainConfig {
            minutes: 40,
            ..Default::default()
        };
        let report = schema_report(&cfg, OrderingStrategy::CostBased);
        for (name, _) in standard_suite(cfg.w_minutes) {
            assert!(report.contains(&format!("== {name}")), "missing {name}");
        }
        assert!(!report.contains("translate failed"), "{report}");
        // Every plan the mapper emits must typecheck clean; the report
        // shows schemas, key provenance, and safety verdicts.
        assert!(!report.contains("!!"), "unexpected S diagnostics\n{report}");
        assert!(
            report.contains("key=") || report.contains("id(e1)"),
            "{report}"
        );
        assert!(report.contains("[shardable-by-key]"), "{report}");
        assert!(report.contains("[global-only]"), "{report}");
        // The migration-safety footer rides along for every pattern: the
        // suite's ByKey joins have live handoff (M003 obligations only),
        // while global-only nodes under the 8-shard check surface M004.
        assert!(report.contains("-- migration safety"), "{report}");
        assert!(report.contains("M003"), "{report}");
        assert!(report.contains("M004"), "{report}");
        // Both join operators implement handoff, so no M001 anchors at a
        // Join node (it may still fire for non-join shardables).
        assert!(
            !report
                .lines()
                .any(|l| l.contains("M001") && l.contains("Join")),
            "{report}"
        );
    }

    #[test]
    fn schema_json_is_valid_json() {
        let cfg = ExplainConfig {
            minutes: 40,
            ..Default::default()
        };
        let json = schema_json(&cfg, OrderingStrategy::CostBased);
        let v: serde::Value = serde_json::from_str(json.trim()).expect("valid JSON");
        let pats = match serde::de_field(&v, "patterns") {
            serde::Value::Array(items) => items,
            other => panic!("expected patterns array, got {other:?}"),
        };
        assert_eq!(pats.len(), standard_suite(cfg.w_minutes).len());
        let mut migration_findings = 0usize;
        for p in pats {
            let tc = serde::de_field(p, "typecheck");
            assert_eq!(
                serde::de_field(tc, "clean"),
                &serde::Value::Bool(true),
                "{p:?}"
            );
            assert!(
                matches!(serde::de_field(tc, "root"), serde::Value::Object(_)),
                "{p:?}"
            );
            match serde::de_field(p, "migration") {
                serde::Value::Array(items) => migration_findings += items.len(),
                other => panic!("expected migration array, got {other:?}"),
            }
        }
        // The 8-shard adaptive check always finds something across the
        // suite (obligations notes at minimum).
        assert!(migration_findings > 0);
    }
}
