//! Hot-path micro-pipelines for the micro-batching baseline.
//!
//! Three pipelines isolate the runtime's per-message costs, each run
//! end-to-end through the [`Executor`] with **operator chaining disabled**
//! so every edge is a real channel and the cost being measured is channel
//! synchronization, not operator logic:
//!
//! * **filter→map chain** — a saturating source through a cheap filter and
//!   identity map into a counting sink. With per-tuple sends the channel
//!   handoff dominates; micro-batching amortizes it `batch_size`-fold.
//! * **hash fan-out** — one source hash-partitioned across 4 slots. Routes
//!   with multiple senders cannot pre-resolve their destination, so this
//!   exercises the per-destination output buffers.
//! * **window-join fire** — two sources into a sliding window join, the
//!   heaviest Section-5 operator, showing batching's effect when compute
//!   shares the profile with communication.
//!
//! Shared by the `hotpath` criterion bench (relative numbers, regression
//! tracking) and the `hotpath` binary (absolute numbers, emitted to
//! `BENCH_hotpath.json` by `scripts/bench_hotpath.sh`).

use std::sync::Arc;

use asp::event::{Event, EventType};
use asp::graph::{Exchange, GraphBuilder, SinkId};
use asp::operator::{cross_join, FilterOp, MapOp, WindowJoinOp};
use asp::runtime::{Executor, ExecutorConfig, RunReport};
use asp::time::{Duration, Timestamp};
use asp::tuple::{TsRule, Tuple};
use asp::window::SlidingWindows;

/// The batch sizes the baseline sweeps, smallest (per-tuple sends) first.
pub const BATCH_SIZES: [usize; 4] = [1, 16, 64, 256];

/// Deterministic pseudo-stream: one event per sensor per minute, LCG
/// values in `[0, 100)`, types alternating Q/V.
pub fn stream(n: usize, sensors: u32, seed: u64) -> Vec<Event> {
    let mut out = Vec::with_capacity(n);
    let mut x = seed | 1;
    for i in 0..n {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let minute = (i as u32 / sensors) as i64;
        out.push(Event::new(
            EventType((i % 2) as u16),
            (i as u32) % sensors,
            Timestamp::from_minutes(minute),
            (x >> 33) as f64 / (1u64 << 31) as f64 * 100.0,
        ));
    }
    out
}

/// Executor settings for the sweep: chaining off (every edge is a
/// channel), everything else at defaults except the swept `batch_size`.
fn cfg(batch_size: usize) -> ExecutorConfig {
    ExecutorConfig {
        batch_size,
        operator_chaining: false,
        ..ExecutorConfig::default()
    }
}

fn run(g: GraphBuilder, batch_size: usize) -> RunReport {
    Executor::new(cfg(batch_size))
        .run(g)
        .expect("hotpath pipeline runs to completion")
}

/// Build the filter→map chain graph shared by the measured and the
/// instrumented runs.
fn chain_graph(events: Vec<Event>) -> (GraphBuilder, SinkId) {
    let mut g = GraphBuilder::new();
    let src = g.source("src", events, 1);
    let f = g.unary(
        src,
        Exchange::Forward,
        1,
        Box::new(|_| {
            Box::new(FilterOp::new(
                "σ",
                Arc::new(|t: &Tuple| t.events[0].value >= 50.0),
            ))
        }),
    );
    g.name_last("filter");
    let m = g.unary(
        f,
        Exchange::Forward,
        1,
        Box::new(|_| Box::new(MapOp::new("id", Arc::new(|t| t)))),
    );
    g.name_last("map");
    let sink = g.counting_sink(m, Exchange::Forward);
    (g, sink)
}

/// Saturating source → filter (passes ~half) → identity map → counting
/// sink, one slot per stage.
pub fn run_chain(events: Vec<Event>, batch_size: usize) -> (RunReport, SinkId) {
    let (g, sink) = chain_graph(events);
    (run(g, batch_size), sink)
}

/// One fully instrumented run of the filter→map chain: resource sampling
/// and the progress reporter are enabled on top of the sweep
/// configuration, so the resulting [`RunReport::to_json`] carries every
/// telemetry surface (histograms, gauges, samples, event log). Used for
/// the `BENCH_hotpath_telemetry.json` artifact, never for the measured
/// throughput points.
pub fn run_chain_instrumented(events: Vec<Event>, batch_size: usize) -> (RunReport, SinkId) {
    let (g, sink) = chain_graph(events);
    let report = Executor::new(ExecutorConfig {
        sample_interval: Some(std::time::Duration::from_millis(20)),
        progress_interval: Some(std::time::Duration::from_millis(100)),
        ..cfg(batch_size)
    })
    .run(g)
    .expect("instrumented hotpath pipeline runs to completion");
    (report, sink)
}

/// Source hash-partitioned across `fanout` identity-map slots.
pub fn run_fanout(events: Vec<Event>, batch_size: usize, fanout: usize) -> (RunReport, SinkId) {
    let mut g = GraphBuilder::new();
    let src = g.source("src", events, 1);
    let m = g.unary(
        src,
        Exchange::Hash,
        fanout,
        Box::new(|_| Box::new(MapOp::new("id", Arc::new(|t| t)))),
    );
    let sink = g.counting_sink(m, Exchange::Hash);
    (run(g, batch_size), sink)
}

/// Two sources into a keyed sliding window join (5 min window, 1 min
/// slide), parallelism 2.
pub fn run_window_join(
    left: Vec<Event>,
    right: Vec<Event>,
    batch_size: usize,
) -> (RunReport, SinkId) {
    let mut g = GraphBuilder::new();
    let a = g.source("a", left, 1);
    let b = g.source("b", right, 1);
    let j = g.binary(
        a,
        b,
        Exchange::Hash,
        2,
        Box::new(|_| {
            Box::new(WindowJoinOp::new(
                "⋈",
                SlidingWindows::new(Duration::from_minutes(5), Duration::from_minutes(1)),
                cross_join(),
                TsRule::Max,
            ))
        }),
    );
    let sink = g.counting_sink(j, Exchange::Hash);
    (run(g, batch_size), sink)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_counts_are_batch_size_independent() {
        let (r1, s1) = run_chain(stream(4_000, 4, 1), 1);
        let (r64, s64) = run_chain(stream(4_000, 4, 1), 64);
        assert_eq!(r1.sink_count(s1), r64.sink_count(s64));
        assert_eq!(r1.source_events, 4_000);
    }

    #[test]
    fn fanout_and_join_produce_output() {
        let (r, s) = run_fanout(stream(2_000, 8, 2), 16, 4);
        assert_eq!(r.sink_count(s), 2_000);
        let (rj, sj) = run_window_join(stream(1_000, 4, 3), stream(1_000, 4, 4), 64);
        assert!(rj.sink_count(sj) > 0, "join fired");
    }

    #[test]
    fn larger_batches_mean_fewer_messages() {
        let (r1, _) = run_chain(stream(8_000, 4, 5), 1);
        let (r64, _) = run_chain(stream(8_000, 4, 5), 64);
        let msgs = |r: &RunReport| -> u64 { r.nodes.iter().map(|n| n.batches_out).sum() };
        assert!(
            msgs(&r64) * 8 < msgs(&r1),
            "batch_size=64 should send far fewer channel messages: {} vs {}",
            msgs(&r64),
            msgs(&r1)
        );
        let src = r64
            .nodes
            .iter()
            .find(|n| n.name == "src")
            .expect("src node");
        assert!(
            src.avg_batch() > 8.0,
            "mean batch too small: {}",
            src.avg_batch()
        );
    }
}
