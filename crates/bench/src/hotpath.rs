//! Hot-path micro-pipelines for the micro-batching baseline.
//!
//! Three pipelines isolate the runtime's per-message costs, each run
//! end-to-end through the [`Executor`] with **operator chaining disabled**
//! so every edge is a real channel and the cost being measured is channel
//! synchronization, not operator logic:
//!
//! * **filter→map chain** — a saturating source through a cheap filter and
//!   identity map into a counting sink. With per-tuple sends the channel
//!   handoff dominates; micro-batching amortizes it `batch_size`-fold.
//!   Both stages are declarative ([`FilterOp::with_spec`] /
//!   [`MapOp::identity`]) so the whole chain runs on the columnar plane by
//!   default; [`run_chain_row`] pins the same graph to the row plane
//!   (`ExecutorConfig::columnar = false`) for the row-vs-columnar headline
//!   ratio.
//! * **hash fan-out** — one source hash-partitioned across 4 slots. Routes
//!   with multiple senders cannot pre-resolve their destination, so this
//!   exercises the per-destination output buffers.
//! * **window-join fire** — two sources into a sliding window join, the
//!   heaviest Section-5 operator, showing batching's effect when compute
//!   shares the profile with communication.
//! * **keyed-join sweep** — the same window-join graph swept over key
//!   cardinality K, once with the key-partitioned [`WindowJoinOp`] and
//!   once with the frozen pre-rework
//!   [`GlobalScanWindowJoinOp`](crate::baseline::GlobalScanWindowJoinOp),
//!   plus an interval-join variant. The keyed/global-scan ratio at K = 64
//!   is the headline number the CI smoke gate asserts on.
//!
//! Shared by the `hotpath` criterion bench (relative numbers, regression
//! tracking) and the `hotpath` binary (absolute numbers, emitted to
//! `BENCH_hotpath.json` by `scripts/bench_hotpath.sh`).

use std::sync::Arc;

use asp::event::Attr;
use asp::event::{Event, EventType};
use asp::graph::{Exchange, GraphBuilder, OperatorFactory, SinkId};
use asp::operator::{
    cross_join, Cmp, FilterOp, FilterSpec, IntervalBounds, IntervalJoinOp, MapOp, WindowJoinOp,
};
use asp::runtime::{Executor, ExecutorConfig, RunReport};
use asp::time::{Duration, Timestamp};
use asp::tuple::{TsRule, Tuple};
use asp::window::SlidingWindows;

/// The batch sizes the baseline sweeps, smallest (per-tuple sends) first.
pub const BATCH_SIZES: [usize; 4] = [1, 16, 64, 256];

/// Key cardinalities for the keyed-join sweep. K = 1 is the degenerate
/// uniform-key case (the keyed layout collapses to a single run and should
/// roughly tie the global scan); at K = 1024 runs approach one tuple each
/// and the per-key probe advantage is largest.
pub const KEY_CARDINALITIES: [u32; 4] = [1, 4, 64, 1024];

/// Deterministic pseudo-stream: one event per sensor per minute, LCG
/// values in `[0, 100)`, types alternating Q/V.
pub fn stream(n: usize, sensors: u32, seed: u64) -> Vec<Event> {
    let mut out = Vec::with_capacity(n);
    let mut x = seed | 1;
    for i in 0..n {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let minute = (i as u32 / sensors) as i64;
        out.push(Event::new(
            EventType((i % 2) as u16),
            (i as u32) % sensors,
            Timestamp::from_minutes(minute),
            (x >> 33) as f64 / (1u64 << 31) as f64 * 100.0,
        ));
    }
    out
}

/// Events per minute in [`dense_stream`], chosen so a 5-minute join pane
/// holds `5 × DENSE_RATE` tuples per side regardless of key cardinality.
pub const DENSE_RATE: u32 = 512;

/// Dense pseudo-stream for the keyed-join sweep: `DENSE_RATE` events per
/// minute with ids round-robin over `sensors`. Unlike [`stream`] (one
/// event per sensor per minute), the pane *size* here is fixed by the
/// rate and key cardinality only divides it into runs — so sweeping K
/// isolates the state layout (global scan vs per-key runs) instead of
/// also changing how much data is in flight.
pub fn dense_stream(n: usize, sensors: u32, seed: u64) -> Vec<Event> {
    let mut out = Vec::with_capacity(n);
    let mut x = seed | 1;
    for i in 0..n {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        out.push(Event::new(
            EventType((i % 2) as u16),
            (i as u32) % sensors,
            Timestamp::from_minutes((i as u32 / DENSE_RATE) as i64),
            (x >> 33) as f64 / (1u64 << 31) as f64 * 100.0,
        ));
    }
    out
}

/// Key space of the zipf-skewed sharded scenario (~1M distinct keys).
pub const ZIPF_KEYS: u32 = 1 << 20;

/// Stride between consecutive zipf *ranks* in [`zipf_stream`]'s key
/// space. 29 is chosen adversarially against the shard runtime's 64-slot
/// multiply-shift placement hash: the top-36 zipf ranks all land on ONE
/// initial shard (spread over its 8 round-robin slots), so static hashing
/// funnels ~34% of a million-key zipf stream — 2.7× the fair share — into
/// a single worker. Real workloads hit this whenever a key schema
/// resonates with the placement hash (sequential order ids, strided
/// sensor addresses); the point of the scenario is that *adaptive*
/// placement recovers while static placement cannot.
pub const ZIPF_STRIDE: u32 = 29;

/// Zipf-skewed dense pseudo-stream over `keys` distinct ids: uniform LCG
/// draws mapped through `exp(u·ln K)` (log-uniform) give continuous
/// Zipf(s=1) ranks — `P(rank=z) ∝ 1/z`, the hottest rank soaking up ~7%
/// of a million-key stream — and each rank maps to id `ZIPF_STRIDE · z`,
/// which piles the hot head of the distribution onto one shard of the
/// 64-slot placement table (see [`ZIPF_STRIDE`]). Timestamps advance at
/// [`DENSE_RATE`] events per minute, like [`dense_stream`].
pub fn zipf_stream(n: usize, keys: u32, seed: u64) -> Vec<Event> {
    let mut out = Vec::with_capacity(n);
    let mut x = seed | 1;
    let ln_k = (keys as f64).ln();
    for i in 0..n {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        let rank = ((u * ln_k).exp() as u32).min(keys) - 1;
        out.push(Event::new(
            EventType((i % 2) as u16),
            rank * ZIPF_STRIDE,
            Timestamp::from_minutes((i as u32 / DENSE_RATE) as i64),
            (x >> 33) as f64 / (1u64 << 31) as f64 * 100.0,
        ));
    }
    out
}

/// θ for the keyed-join sweep: a ~1% value-band predicate. With a dense
/// stream a cross join's output would grow quadratically in the per-key
/// pane population and emission cost would drown the probe cost being
/// measured; a selective θ keeps the measured work candidate *scanning*.
fn band_theta() -> asp::operator::JoinPredicate {
    Arc::new(|l: &Tuple, r: &Tuple| (l.events[0].value - r.events[0].value).abs() < 0.5)
}

/// Executor settings for the sweep: chaining off (every edge is a
/// channel), everything else at defaults except the swept `batch_size`.
fn cfg(batch_size: usize) -> ExecutorConfig {
    ExecutorConfig {
        batch_size,
        operator_chaining: false,
        ..ExecutorConfig::default()
    }
}

fn run(g: GraphBuilder, batch_size: usize) -> RunReport {
    Executor::new(cfg(batch_size))
        .run(g)
        .expect("hotpath pipeline runs to completion")
}

/// Build the filter→map chain graph shared by the measured and the
/// instrumented runs. Both operators are declarative, so the chain runs
/// vectorized when the executor's columnar plane is on.
fn chain_graph(events: Vec<Event>) -> (GraphBuilder, SinkId) {
    let mut g = GraphBuilder::new();
    let src = g.source("src", events, 1);
    let f = g.unary(
        src,
        Exchange::Forward,
        1,
        Box::new(|_| {
            Box::new(FilterOp::with_spec(
                "σ",
                FilterSpec::default().clause(Attr::Value, Cmp::Ge, 50.0),
            ))
        }),
    );
    g.name_last("filter");
    let m = g.unary(
        f,
        Exchange::Forward,
        1,
        Box::new(|_| Box::new(MapOp::identity("id"))),
    );
    g.name_last("map");
    let sink = g.counting_sink(m, Exchange::Forward);
    (g, sink)
}

/// Saturating source → filter (passes ~half) → identity map → counting
/// sink, one slot per stage.
pub fn run_chain(events: Vec<Event>, batch_size: usize) -> (RunReport, SinkId) {
    let (g, sink) = chain_graph(events);
    (run(g, batch_size), sink)
}

/// The same filter→map chain pinned to the row data plane — the
/// denominator for the columnar-vs-row headline ratio. Differs from
/// [`run_chain`] only in `ExecutorConfig::columnar`.
pub fn run_chain_row(events: Vec<Event>, batch_size: usize) -> (RunReport, SinkId) {
    let (g, sink) = chain_graph(events);
    let report = Executor::new(ExecutorConfig {
        columnar: false,
        ..cfg(batch_size)
    })
    .run(g)
    .expect("hotpath pipeline runs to completion");
    (report, sink)
}

/// One fully instrumented run of the filter→map chain: resource sampling
/// and the progress reporter are enabled on top of the sweep
/// configuration, so the resulting [`RunReport::to_json`] carries every
/// telemetry surface (histograms, gauges, samples, event log). Used for
/// the `BENCH_hotpath_telemetry.json` artifact, never for the measured
/// throughput points.
pub fn run_chain_instrumented(events: Vec<Event>, batch_size: usize) -> (RunReport, SinkId) {
    let (g, sink) = chain_graph(events);
    let report = Executor::new(ExecutorConfig {
        sample_interval: Some(std::time::Duration::from_millis(20)),
        progress_interval: Some(std::time::Duration::from_millis(100)),
        ..cfg(batch_size)
    })
    .run(g)
    .expect("instrumented hotpath pipeline runs to completion");
    (report, sink)
}

/// Source hash-partitioned across `fanout` identity-map slots.
pub fn run_fanout(events: Vec<Event>, batch_size: usize, fanout: usize) -> (RunReport, SinkId) {
    let mut g = GraphBuilder::new();
    let src = g.source("src", events, 1);
    let m = g.unary(
        src,
        Exchange::Hash,
        fanout,
        Box::new(|_| Box::new(MapOp::identity("id"))),
    );
    let sink = g.counting_sink(m, Exchange::Hash);
    (run(g, batch_size), sink)
}

/// The window shape every join scenario uses: 5 min panes sliding by
/// 1 min (band = 5 panes per pair on average).
fn join_windows() -> SlidingWindows {
    SlidingWindows::new(Duration::from_minutes(5), Duration::from_minutes(1))
}

/// Shared two-source binary-join graph. Keyed and global-scan runs differ
/// *only* in the operator `factory` — sources, exchanges, parallelism, and
/// sink are identical, so throughput ratios isolate the state layout.
fn join_graph(
    left: Vec<Event>,
    right: Vec<Event>,
    factory: OperatorFactory,
) -> (GraphBuilder, SinkId) {
    let mut g = GraphBuilder::new();
    let a = g.source("a", left, 1);
    let b = g.source("b", right, 1);
    let j = g.binary(a, b, Exchange::Hash, 2, factory);
    let sink = g.counting_sink(j, Exchange::Hash);
    (g, sink)
}

/// Two sources into the key-partitioned sliding window join (5 min
/// window, 1 min slide), parallelism 2. Key cardinality is whatever the
/// `sensors` argument of [`stream`] produced.
pub fn run_window_join(
    left: Vec<Event>,
    right: Vec<Event>,
    batch_size: usize,
) -> (RunReport, SinkId) {
    let (g, sink) = join_graph(
        left,
        right,
        Box::new(|_| {
            Box::new(WindowJoinOp::new(
                "⋈",
                join_windows(),
                cross_join(),
                TsRule::Max,
            ))
        }),
    );
    (run(g, batch_size), sink)
}

/// The keyed-sweep scenario: key-partitioned window join with the
/// selective `band_theta` θ, meant to be fed [`dense_stream`] sides so
/// the probe cost — not the source or the sink — dominates.
pub fn run_window_join_keyed(
    left: Vec<Event>,
    right: Vec<Event>,
    batch_size: usize,
) -> (RunReport, SinkId) {
    let (g, sink) = join_graph(
        left,
        right,
        Box::new(|_| {
            Box::new(WindowJoinOp::new(
                "⋈",
                join_windows(),
                band_theta(),
                TsRule::Max,
            ))
        }),
    );
    (run(g, batch_size), sink)
}

/// Same graph and θ as [`run_window_join_keyed`] but with the frozen
/// pre-rework global-scan operator — the honest denominator for the keyed
/// speedup.
pub fn run_window_join_global_scan(
    left: Vec<Event>,
    right: Vec<Event>,
    batch_size: usize,
) -> (RunReport, SinkId) {
    let (g, sink) = join_graph(
        left,
        right,
        Box::new(|_| {
            Box::new(crate::baseline::GlobalScanWindowJoinOp::new(
                "⋈g",
                join_windows(),
                band_theta(),
                TsRule::Max,
            ))
        }),
    );
    (run(g, batch_size), sink)
}

/// The sharded scenario: key-partitioned window join fanned out over
/// `shards` shared-nothing instances (`GraphBuilder::shard_node`), fed
/// zipf-skewed sides. `adaptive` enables the hot-key rebalancer; with it
/// off the 64-slot table stays at its static round-robin placement, so
/// the hottest hash slots pin one unlucky shard — the honest denominator
/// for the adaptive speedup. `shards == 1` is the single-instance
/// baseline. Env overrides are pinned off so the scenario measures the
/// graph it built, not the ambient `ASP_SHARDS`.
pub fn run_window_join_sharded(
    left: Vec<Event>,
    right: Vec<Event>,
    batch_size: usize,
    shards: usize,
    adaptive: bool,
) -> (RunReport, SinkId) {
    let mut g = GraphBuilder::new();
    let a = g.source("a", left, 1);
    let b = g.source("b", right, 1);
    let j = g.nary(
        &[(a, Exchange::Hash), (b, Exchange::Hash)],
        shards,
        Box::new(|_| {
            Box::new(WindowJoinOp::new(
                "⋈",
                join_windows(),
                band_theta(),
                TsRule::Max,
            ))
        }),
    );
    if shards > 1 {
        g.shard_node(j);
    }
    let sink = g.counting_sink(j, Exchange::Hash);
    let report = Executor::new(ExecutorConfig {
        shards: None,
        env_errors: Vec::new(),
        rebalance_interval: adaptive.then(|| std::time::Duration::from_millis(10)),
        ..cfg(batch_size)
    })
    .run(g)
    .expect("sharded hotpath pipeline runs to completion");
    (report, sink)
}

/// Two sources into the key-partitioned interval join (sequence bounds,
/// 5 min span), parallelism 2 — the other operator whose state the rework
/// partitioned. Same θ as the keyed window-join sweep.
pub fn run_interval_join(
    left: Vec<Event>,
    right: Vec<Event>,
    batch_size: usize,
) -> (RunReport, SinkId) {
    let (g, sink) = join_graph(
        left,
        right,
        Box::new(|_| {
            Box::new(IntervalJoinOp::new(
                "i⋈",
                IntervalBounds::seq(Duration::from_minutes(5)),
                band_theta(),
                TsRule::Max,
            ))
        }),
    );
    (run(g, batch_size), sink)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_counts_are_batch_size_independent() {
        let (r1, s1) = run_chain(stream(4_000, 4, 1), 1);
        let (r64, s64) = run_chain(stream(4_000, 4, 1), 64);
        assert_eq!(r1.sink_count(s1), r64.sink_count(s64));
        assert_eq!(r1.source_events, 4_000);
    }

    #[test]
    fn row_and_columnar_planes_agree_on_the_chain() {
        let (rc, sc) = run_chain(stream(4_000, 4, 1), 64);
        let (rr, sr) = run_chain_row(stream(4_000, 4, 1), 64);
        assert_eq!(rc.sink_count(sc), rr.sink_count(sr));
        assert!(rc.sink_count(sc) > 0, "filter passes ~half the stream");
    }

    #[test]
    fn fanout_and_join_produce_output() {
        let (r, s) = run_fanout(stream(2_000, 8, 2), 16, 4);
        assert_eq!(r.sink_count(s), 2_000);
        let (rj, sj) = run_window_join(stream(1_000, 4, 3), stream(1_000, 4, 4), 64);
        assert!(rj.sink_count(sj) > 0, "join fired");
    }

    #[test]
    fn keyed_and_global_scan_joins_emit_the_same_count() {
        let left = dense_stream(2_000, 64, 6);
        let right = dense_stream(2_000, 64, 7);
        let (rk, sk) = run_window_join_keyed(left.clone(), right.clone(), 64);
        let (rg, sg) = run_window_join_global_scan(left.clone(), right.clone(), 64);
        assert!(rk.sink_count(sk) > 0, "keyed join fired");
        assert_eq!(
            rk.sink_count(sk),
            rg.sink_count(sg),
            "layouts must be observationally equivalent"
        );
        let (ri, si) = run_interval_join(left, right, 64);
        assert!(ri.sink_count(si) > 0, "interval join fired");
    }

    #[test]
    fn sharded_join_counts_match_single_instance() {
        let left = zipf_stream(3_000, ZIPF_KEYS, 8);
        let right = zipf_stream(3_000, ZIPF_KEYS, 9);
        let (r1, s1) = run_window_join_sharded(left.clone(), right.clone(), 64, 1, false);
        assert!(r1.sink_count(s1) > 0, "zipf join fired");
        for adaptive in [false, true] {
            let (r8, s8) = run_window_join_sharded(left.clone(), right.clone(), 64, 8, adaptive);
            assert_eq!(
                r8.sink_count(s8),
                r1.sink_count(s1),
                "sharded (adaptive={adaptive}) diverged from single instance"
            );
        }
    }

    #[test]
    fn larger_batches_mean_fewer_messages() {
        let (r1, _) = run_chain(stream(8_000, 4, 5), 1);
        let (r64, _) = run_chain(stream(8_000, 4, 5), 64);
        let msgs = |r: &RunReport| -> u64 { r.nodes.iter().map(|n| n.batches_out).sum() };
        assert!(
            msgs(&r64) * 8 < msgs(&r1),
            "batch_size=64 should send far fewer channel messages: {} vs {}",
            msgs(&r64),
            msgs(&r1)
        );
        let src = r64
            .nodes
            .iter()
            .find(|n| n.name == "src")
            .expect("src node");
        assert!(
            src.avg_batch() > 8.0,
            "mean batch too small: {}",
            src.avg_batch()
        );
    }
}
