//! # bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation
//! (Section 5) by running the same pattern workloads through the NFA
//! baseline ("FCEP") and the operator mapping ("FASP", plus the O1/O2/O3
//! variants) on the threaded dataflow runtime, measuring
//!
//! * maximum sustainable throughput (events/s at full-speed,
//!   backpressured sources),
//! * detection latency (sink wall time − newest contributing event's
//!   creation time),
//! * peak operator state and the state/CPU time series (Figure 5).
//!
//! Absolute numbers differ from the paper (its testbed is a 5-node Flink
//! cluster; ours is a single process with thread-level "task slots"), but
//! the harness reports the same series so the *shape* — who wins, by what
//! factor, where crossovers fall — can be compared. See EXPERIMENTS.md.

pub mod baseline;
pub mod chart;
pub mod experiments;
pub mod explain;
pub mod hotpath;
pub mod multi;
pub mod patterns;
pub mod preflight;
pub mod report;
pub mod runner;

pub use report::{ResultRow, ResultSink};
pub use runner::{measure_fasp, measure_fcep, MeasureConfig};
