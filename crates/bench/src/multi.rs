//! The `multi_patterns` scenario: ~1k generated pattern variants over
//! shared streams, run once as one shared-subplan DAG
//! ([`cep2asp::run_patterns_with`] with sharing on) and once as isolated
//! per-pattern pipelines (sharing off) — the workload multi-query
//! optimization exists for, and the regime the paper's Section 6 notes
//! serial CEP engines cannot enter at all.
//!
//! The catalog is built so structural overlap is high but not total:
//! variants cycle through a base grid of shapes (SEQ/AND × adjacent type
//! pairs × two window lengths × a small set of shared thresholds), and
//! every eighth variant gets a threshold constant unique to it, so its
//! scan and join intern to fresh DAG nodes while its partner-side scan
//! still shares. At 1000 variants that yields ≳ 75% of patterns whose
//! entire pipeline is lowered once for many consumers (≥ 50% is the
//! floor the CI gate's workload promises).
//!
//! Both arms process the same logical volume — every pattern reads its
//! two input streams end to end — so the reported throughput divides the
//! *logical* event count (events × patterns reading them) by wall time,
//! and the shared/isolated ratio is a pure wall-time ratio. Sinks count
//! only ([`PhysicalConfig::collect_output`] off) and channels are small:
//! the isolated arm stands up thousands of pipelines at once, and
//! default-sized buffers would turn the comparison into an allocator
//! benchmark.

use std::collections::HashMap;
use std::time::{Duration as StdDuration, Instant};

use asp::event::{Attr, Event, EventType};
use asp::runtime::ExecutorConfig;
use asp::time::Timestamp;
use cep2asp::{
    run_patterns_with, shared_catalog, MapperOptions, MultiOptions, MultiRun, PatternJob,
    PhysicalConfig, SourceCatalog,
};
use sea::pattern::{builders, WindowSpec};
use sea::predicate::{CmpOp, Predicate};

/// Input event types the variant catalog draws from.
pub const MULTI_TYPES: u16 = 4;

/// Every eighth variant gets a threshold constant no other variant uses,
/// keeping structural overlap below 100% so the shared arm still lowers
/// a long tail of unique subtrees.
const UNIQUE_EVERY: usize = 8;

/// Shared left-leaf threshold constants the non-unique variants cycle
/// through. Deliberately selective (≤ 15% pass): matches must stay rare
/// so the arms' walls measure the scan/join work sharing deduplicates,
/// not the per-sink match deliveries both arms pay identically.
const COMMON_THRESHOLDS: [f64; 3] = [5.0, 10.0, 15.0];

/// Right-leaf threshold all variants share (≈ 8% pass) — see
/// [`COMMON_THRESHOLDS`] on why the workload keeps matches rare.
const RIGHT_THRESHOLD: f64 = 92.0;

/// Window lengths (minutes) the base shape grid cycles through.
const WINDOWS: [i64; 2] = [2, 4];

/// Configuration of the multi-pattern scenario.
#[derive(Debug, Clone)]
pub struct MultiBenchConfig {
    /// Pattern variants to generate.
    pub variants: usize,
    /// Events per minute per input stream.
    pub sensors: u32,
    /// Stream length in minutes.
    pub minutes: i64,
}

impl MultiBenchConfig {
    /// The full-mode scenario: 1000 variants over 1000-minute streams.
    pub fn full() -> Self {
        MultiBenchConfig {
            variants: 1000,
            sensors: 4,
            minutes: 1000,
        }
    }

    /// CI smoke mode: same variant count (the sharing ratio is the point),
    /// shorter streams.
    pub fn quick() -> Self {
        MultiBenchConfig {
            minutes: 800,
            ..Self::full()
        }
    }

    /// Total events across all generated streams.
    pub fn total_events(&self) -> u64 {
        MULTI_TYPES as u64 * self.sensors as u64 * self.minutes as u64
    }

    /// Logical event volume: every pattern reads two full streams, so both
    /// arms process `variants × 2 × stream_len` events' worth of input
    /// regardless of how many physical scans the optimizer lowered.
    pub fn logical_events(&self) -> u64 {
        self.variants as u64 * 2 * self.sensors as u64 * self.minutes as u64
    }
}

/// Deterministic per-type streams: `sensors` events per minute per type,
/// LCG values in `[0, 100)`, ids round-robin over the sensors.
pub fn multi_sources(cfg: &MultiBenchConfig) -> HashMap<EventType, Vec<Event>> {
    let mut out: HashMap<EventType, Vec<Event>> = HashMap::new();
    let mut x = 0x5DEECE66Du64;
    for t in 0..MULTI_TYPES {
        let stream = out.entry(EventType(t)).or_default();
        for m in 0..cfg.minutes {
            for s in 0..cfg.sensors {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                stream.push(Event::new(
                    EventType(t),
                    s,
                    Timestamp::from_minutes(m),
                    (x >> 33) as f64 / (1u64 << 31) as f64 * 100.0,
                ));
            }
        }
    }
    out
}

/// Generate `n` pattern variants over the base shape grid. Variant `i`
/// takes shape `i mod grid`, threshold `COMMON_THRESHOLDS[(i / grid) % 3]`
/// — except every `UNIQUE_EVERY`-th variant, whose constant
/// `5 + i/1000` is unique to it. All variants map with O1 (interval
/// joins, duplicate-free), so solo and shared runs need no output dedup.
pub fn variant_catalog(n: usize) -> Vec<PatternJob> {
    let pairs: Vec<(u16, u16)> = (0..MULTI_TYPES)
        .flat_map(|a| ((a + 1)..MULTI_TYPES).map(move |b| (a, b)))
        .collect();
    let grid = 2 * pairs.len() * WINDOWS.len();
    (0..n)
        .map(|i| {
            let shape = i % grid;
            let and = shape % 2 == 1;
            let (a, b) = pairs[(shape / 2) % pairs.len()];
            let w = WINDOWS[(shape / (2 * pairs.len())) % WINDOWS.len()];
            let c = if i % UNIQUE_EVERY == UNIQUE_EVERY - 1 {
                5.0 + i as f64 * 0.001
            } else {
                COMMON_THRESHOLDS[(i / grid) % COMMON_THRESHOLDS.len()]
            };
            let preds = vec![
                Predicate::threshold(0, Attr::Value, CmpOp::Le, c),
                Predicate::threshold(1, Attr::Value, CmpOp::Ge, RIGHT_THRESHOLD),
                Predicate::same_id(0, 1),
            ];
            let leaves = [(EventType(a), "A"), (EventType(b), "B")];
            let pattern = if and {
                builders::and(&leaves, WindowSpec::minutes(w), preds)
            } else {
                builders::seq(&leaves, WindowSpec::minutes(w), preds)
            };
            PatternJob::new(format!("v{i}"), pattern, MapperOptions::o1())
        })
        .collect()
}

/// Physical settings of the scenario: count-only sinks, no sharding (the
/// isolated arm would multiply its thousands of pipelines by the shard
/// count), everything else at defaults.
pub fn multi_phys() -> PhysicalConfig {
    PhysicalConfig {
        collect_output: false,
        shards: None,
        ..PhysicalConfig::default()
    }
}

/// Executor settings of the scenario: small channels (the isolated arm
/// stands up thousands of them), sharding env overrides pinned off so the
/// scenario measures the graph it built, not the ambient `ASP_SHARDS`.
pub fn multi_exec() -> ExecutorConfig {
    ExecutorConfig {
        channel_capacity: 64,
        shards: None,
        env_errors: Vec::new(),
        ..ExecutorConfig::default()
    }
}

/// One timed arm of the scenario. Returns the run (for sink totals and
/// the sharing report) and the end-to-end wall time, including plan
/// translation and graph construction — sharing that does not pay for
/// its own analysis is not a win.
pub fn run_multi(
    jobs: &[PatternJob],
    sources: &SourceCatalog,
    share: bool,
) -> (MultiRun, StdDuration) {
    let start = Instant::now();
    let run = run_patterns_with(
        jobs,
        sources,
        &multi_phys(),
        &multi_exec(),
        &MultiOptions { share },
    )
    .expect("multi-pattern scenario runs to completion");
    (run, start.elapsed())
}

/// Total matches across all sinks — the cross-arm correctness oracle
/// (shared and isolated arms must agree exactly).
pub fn sink_total(run: &MultiRun) -> u64 {
    run.names().iter().map(|n| run.raw_count(n)).sum()
}

/// Convenience: catalog + sources + both arms, as the hotpath binary and
/// tests use them.
pub fn build_workload(cfg: &MultiBenchConfig) -> (Vec<PatternJob>, SourceCatalog) {
    (
        variant_catalog(cfg.variants),
        shared_catalog(&multi_sources(cfg)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_overlaps_heavily_but_not_totally() {
        let cfg = MultiBenchConfig {
            variants: 200,
            sensors: 1,
            minutes: 30,
        };
        let (jobs, sources) = build_workload(&cfg);
        assert_eq!(jobs.len(), 200);
        let (shared, _) = run_multi(&jobs, &sources, true);
        // ≥ 50% structural overlap: at least half the per-pattern root
        // subtrees were lowered as duplicates of an earlier pattern's.
        assert!(
            shared.share.nodes_saved() * 2 >= shared.share.nodes_total,
            "overlap too low: {:?}",
            shared.share
        );
        // …but the unique-threshold tail keeps it below total sharing.
        assert!(shared.share.nodes_lowered > shared.share.nodes_total / 200);
        assert_eq!(
            shared.report.source_events,
            shared.share.expected_source_events
        );
    }

    #[test]
    fn shared_and_isolated_arms_agree_on_every_sink() {
        let cfg = MultiBenchConfig {
            variants: 48,
            sensors: 1,
            minutes: 40,
        };
        let (jobs, sources) = build_workload(&cfg);
        let (shared, _) = run_multi(&jobs, &sources, true);
        let (isolated, _) = run_multi(&jobs, &sources, false);
        assert!(sink_total(&shared) > 0, "workload produced matches");
        assert_eq!(sink_total(&shared), sink_total(&isolated));
        for name in shared.names() {
            assert_eq!(
                shared.raw_count(name),
                isolated.raw_count(name),
                "pattern {name} diverged between arms"
            );
        }
        assert!(shared.share.scans_saved() > 0);
        assert_eq!(isolated.share.scans_saved(), 0);
        assert_eq!(
            isolated.report.source_events, isolated.share.expected_source_events,
            "isolated accounting still predicts its per-pattern scans"
        );
    }
}

#[cfg(test)]
mod tune {
    use super::*;

    #[test]
    #[ignore = "manual tuning probe"]
    fn sweep_scales() {
        for (sensors, minutes) in [(4u32, 500i64), (4, 800), (4, 1000)] {
            let cfg = MultiBenchConfig {
                variants: 1000,
                sensors,
                minutes,
            };
            let (jobs, sources) = build_workload(&cfg);
            let (s, ws) = run_multi(&jobs, &sources, true);
            let (i, wi) = run_multi(&jobs, &sources, false);
            assert_eq!(sink_total(&s), sink_total(&i));
            eprintln!(
                "sensors={sensors} minutes={minutes}: shared {:.2}s isolated {:.2}s speedup {:.2}x (scans {} -> {}, sinks {})",
                ws.as_secs_f64(), wi.as_secs_f64(), wi.as_secs_f64() / ws.as_secs_f64(),
                s.share.scans_total, s.share.scans_lowered, sink_total(&s)
            );
        }
    }
}
