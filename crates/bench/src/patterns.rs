//! The evaluation patterns of Section 5 and their workload calibration.
//!
//! Pattern names follow the paper: `SEQ1(2)`, `ITER³₁(1)`, `NSEQ1(3)`
//! (Section 5.2.1), the nested `SEQ(n)` family (5.2.2), `ITER^m₂/₃`
//! (5.2.2), and the keyed `SEQ7(3)` / `ITER⁴₄(1)` of 5.2.3–5.2.5.
//!
//! Output selectivity σₒ = #matches/#events is controlled through the
//! filter pass rate `p` on uniformly distributed values: for a binary
//! sequence over streams with `s` sensors and window `W` minutes,
//! `matches ≈ n_q · p² · s · W`, so `p = sqrt(2 σₒ / (s W))`. The harness
//! always reports the *measured* σₒ alongside.

use asp::event::Attr;
use sea::pattern::{builders, Leaf, Pattern, WindowSpec};
use sea::predicate::{CmpOp, Predicate};
use workloads::{threshold_for_pass_rate, HUM, PM10, PM25, Q, TEMP, V};

/// Filter pass rate that yields roughly the target output selectivity for
/// a binary sequence (both sides filtered at the same rate).
pub fn pass_rate_for_selectivity(target_pct: f64, sensors: u32, w_minutes: i64) -> f64 {
    let sigma = target_pct / 100.0;
    (2.0 * sigma / (sensors as f64 * w_minutes as f64))
        .sqrt()
        .clamp(1e-4, 1.0)
}

/// `SEQ1(2) = SEQ(Q, V)` with value filters at the given pass rate.
pub fn seq1(pass_rate: f64, w_minutes: i64) -> Pattern {
    let t = threshold_for_pass_rate(pass_rate);
    builders::seq(
        &[(Q, "Q"), (V, "V")],
        WindowSpec::minutes(w_minutes),
        vec![
            Predicate::threshold(0, Attr::Value, CmpOp::Le, t),
            Predicate::threshold(1, Attr::Value, CmpOp::Le, t),
        ],
    )
}

/// `ITER³₁(1) = ITER(V, m)` with a per-event threshold filter.
pub fn iter_threshold(m: usize, pass_rate: f64, w_minutes: i64) -> Pattern {
    let t = threshold_for_pass_rate(pass_rate);
    let preds = (0..m)
        .map(|i| Predicate::threshold(i, Attr::Value, CmpOp::Le, t))
        .collect();
    builders::iter(V, "V", m, WindowSpec::minutes(w_minutes), preds)
}

/// `ITER^m₂`: pairwise constraint `v_n.value < v_{n+1}.value`
/// (Section 5.2.2, Figure 3e).
pub fn iter_pairwise(m: usize, w_minutes: i64) -> Pattern {
    let preds = (0..m.saturating_sub(1))
        .map(|i| Predicate::cross(i, Attr::Value, CmpOp::Lt, i + 1, Attr::Value))
        .collect();
    builders::iter(V, "V", m, WindowSpec::minutes(w_minutes), preds)
}

/// `NSEQ1(3) = SEQ(Q, ¬PM10, V)`: traffic pattern negated by an
/// air-quality event (QnV + AQ sources, Section 5.2.1).
pub fn nseq1(pass_rate: f64, absent_pass: f64, w_minutes: i64) -> Pattern {
    let t = threshold_for_pass_rate(pass_rate);
    let ta = threshold_for_pass_rate(absent_pass);
    builders::nseq(
        (Q, "Q"),
        Leaf::new(PM10, "PM10", "n").with_filter(Attr::Value, CmpOp::Le, ta),
        (V, "V"),
        WindowSpec::minutes(w_minutes),
        vec![
            Predicate::threshold(0, Attr::Value, CmpOp::Le, t),
            Predicate::threshold(1, Attr::Value, CmpOp::Le, t),
        ],
    )
}

/// The nested `SEQ(n)` family of Figure 3d over QnV + AQ event types
/// (n ∈ 2..=6): Q, V, PM10, PM25, Temp, Hum in order.
pub fn seq_n(n: usize, pass_rate: f64, w_minutes: i64) -> Pattern {
    let all = [
        (Q, "Q"),
        (V, "V"),
        (PM10, "PM10"),
        (PM25, "PM25"),
        (TEMP, "Temp"),
        (HUM, "Hum"),
    ];
    let n = n.clamp(2, all.len());
    let t = threshold_for_pass_rate(pass_rate);
    let preds = (0..n)
        .map(|i| Predicate::threshold(i, Attr::Value, CmpOp::Le, t))
        .collect();
    builders::seq(&all[..n], WindowSpec::minutes(w_minutes), preds)
}

/// `SEQ7(3) = SEQ(Q, V, PM10)` with sensor-id equi-keys between all pairs
/// (the keyed workload of Sections 5.2.3–5.2.5).
pub fn seq7(pass_rate: f64, w_minutes: i64) -> Pattern {
    let t = threshold_for_pass_rate(pass_rate);
    builders::seq(
        &[(Q, "Q"), (V, "V"), (PM10, "PM10")],
        WindowSpec::minutes(w_minutes),
        vec![
            Predicate::same_id(0, 1),
            Predicate::same_id(1, 2),
            Predicate::threshold(0, Attr::Value, CmpOp::Le, t),
            Predicate::threshold(1, Attr::Value, CmpOp::Le, t),
            Predicate::threshold(2, Attr::Value, CmpOp::Le, t),
        ],
    )
}

/// `ITER⁴₄(1) = ITER(V, 4)` keyed by sensor id, window 90
/// (Sections 5.2.3–5.2.5).
pub fn iter4(pass_rate: f64, w_minutes: i64) -> Pattern {
    let t = threshold_for_pass_rate(pass_rate);
    let mut preds: Vec<Predicate> = (0..3).map(|i| Predicate::same_id(i, i + 1)).collect();
    preds.extend((0..4).map(|i| Predicate::threshold(i, Attr::Value, CmpOp::Le, t)));
    builders::iter(V, "V", 4, WindowSpec::minutes(w_minutes), preds)
}

/// The standard workload suite: one named pattern per evaluation family,
/// used by `plan-explain` (and the CI EXPLAIN artifact) so plan changes
/// across every pattern shape are diffable between PRs.
pub fn standard_suite(w_minutes: i64) -> Vec<(&'static str, Pattern)> {
    vec![
        ("SEQ1(2)", seq1(0.3, w_minutes)),
        ("SEQ(3)", seq_n(3, 0.3, w_minutes)),
        ("SEQ(4)", seq_n(4, 0.3, w_minutes)),
        ("ITER3_1(1)", iter_threshold(3, 0.3, w_minutes)),
        ("ITER4_2", iter_pairwise(4, w_minutes)),
        ("NSEQ1(3)", nseq1(0.3, 0.2, w_minutes)),
        ("SEQ7(3)", seq7(0.3, w_minutes)),
        ("ITER4_4(1)", iter4(0.3, w_minutes)),
        (
            "KLEENE2+",
            builders::kleene_plus(V, "V", 2, WindowSpec::minutes(w_minutes)),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_suite_covers_every_family() {
        let suite = standard_suite(15);
        assert!(suite.len() >= 8);
        let names: Vec<&str> = suite.iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"SEQ7(3)"), "{names:?}");
        assert!(names.contains(&"KLEENE2+"), "{names:?}");
    }

    #[test]
    fn pass_rate_calibration_is_monotone() {
        let lo = pass_rate_for_selectivity(0.003, 4, 15);
        let hi = pass_rate_for_selectivity(30.0, 4, 15);
        assert!(lo < hi);
        assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
    }

    #[test]
    fn seq_n_clamps_and_grows() {
        for n in 2..=6 {
            let p = seq_n(n, 0.5, 15);
            assert_eq!(p.positions(), n);
        }
        assert_eq!(
            seq_n(99, 0.5, 15).positions(),
            6,
            "clamped to available types"
        );
    }

    #[test]
    fn keyed_patterns_expose_equi_keys() {
        assert_eq!(seq7(0.5, 15).equi_keys().len(), 2);
        assert_eq!(iter4(0.5, 90).equi_keys().len(), 3);
        assert!(seq1(0.5, 15).equi_keys().is_empty());
    }

    #[test]
    fn patterns_build_without_panicking() {
        seq1(0.1, 15);
        iter_threshold(3, 0.1, 15);
        iter_pairwise(9, 15);
        nseq1(0.2, 0.1, 15);
    }
}
