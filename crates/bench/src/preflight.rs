//! Pre-flight validation for the reproduction harness.
//!
//! `repro` runs experiments that take minutes to hours; a malformed plan or
//! dataflow graph should be refused *before* any workload is generated, not
//! discovered as a worker panic deep into a run. [`check`] pushes every
//! evaluation pattern of Section 5 through the full static-analysis stack —
//! [`cep2asp::lint_plan`] on the translated plan and [`asp::validate`] on
//! the built dataflow graph — for every mapper-option variant the
//! experiments use.

use std::collections::HashMap;

use asp::event::{Event, EventType};
use cep2asp::{build_pipeline, lint_plan, translate, MapperOptions, PhysicalConfig};
use sea::pattern::Pattern;
use workloads::{HUM, PM10, PM25, Q, TEMP, V};

use crate::patterns;

/// The mapper-option variants the experiments exercise.
fn option_variants() -> Vec<(&'static str, MapperOptions)> {
    vec![
        ("plain", MapperOptions::plain()),
        ("O1", MapperOptions::o1()),
        ("O2", MapperOptions::o2()),
        ("O3", MapperOptions::o3()),
        ("O1+O3", MapperOptions::o1().and_o3()),
    ]
}

/// The evaluation patterns of Section 5 at representative parameters.
fn pattern_suite() -> Vec<(&'static str, Pattern)> {
    vec![
        ("SEQ1(2)", patterns::seq1(0.1, 15)),
        ("ITER3_1(1)", patterns::iter_threshold(3, 0.1, 15)),
        ("ITER3_pairwise", patterns::iter_pairwise(3, 15)),
        ("NSEQ1(3)", patterns::nseq1(0.1, 0.05, 15)),
        ("SEQ(4)", patterns::seq_n(4, 0.1, 15)),
        ("SEQ7(3)", patterns::seq7(0.1, 15)),
        ("ITER4_4(1)", patterns::iter4(0.1, 15)),
    ]
}

/// Empty per-type sources: enough for the physical planner, free to build.
fn empty_sources() -> HashMap<EventType, Vec<Event>> {
    [Q, V, PM10, PM25, TEMP, HUM]
        .into_iter()
        .map(|t| (t, Vec::new()))
        .collect()
}

/// Statically validate every (pattern, options) pair the experiments run.
///
/// Returns `Err` with a human-readable report naming the pattern, the
/// option variant, and every diagnostic, if any pair fails plan linting or
/// graph validation. Translation failures for unsupported combinations
/// (e.g. Kleene+ without O2) are not errors — the experiments skip those
/// combinations too.
pub fn check() -> Result<(), String> {
    let sources = empty_sources();
    let phys = PhysicalConfig::default();
    let mut problems = Vec::new();
    for (pname, pattern) in pattern_suite() {
        for (oname, opts) in option_variants() {
            let plan = match translate(&pattern, &opts) {
                Ok(p) => p,
                Err(_) => continue, // unsupported combination; skipped by experiments too
            };
            let lints = lint_plan(&plan);
            if !lints.is_empty() {
                for l in &lints {
                    problems.push(format!("{pname} [{oname}]: {l}"));
                }
                continue;
            }
            match build_pipeline(&plan, &sources, &phys) {
                Ok((graph, _sink)) => {
                    if let Err(diags) = asp::validate::validate(&graph) {
                        for d in &diags {
                            problems.push(format!("{pname} [{oname}]: {d}"));
                        }
                    }
                }
                Err(e) => problems.push(format!("{pname} [{oname}]: build failed: {e}")),
            }
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_benchmark_suite_passes_preflight() {
        if let Err(report) = check() {
            panic!("pre-flight validation failed:\n{report}");
        }
    }
}
