//! Result records: one row per (experiment, system, parameter point),
//! printed as aligned console tables and persisted as JSON lines under
//! `results/` so EXPERIMENTS.md can reference stable artifacts.

use std::collections::BTreeMap;
use std::fs::{create_dir_all, File};
use std::io::{BufWriter, Write};
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

/// One measured data point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResultRow {
    /// Experiment id, e.g. "fig3b".
    pub experiment: String,
    /// System label, e.g. "FCEP", "FASP-O1+O3".
    pub system: String,
    /// Sweep parameters, e.g. {"selectivity_pct": "1.0"}.
    pub params: BTreeMap<String, String>,
    /// Total source events ingested.
    pub events: u64,
    /// Matches emitted (including duplicates for sliding windows).
    pub matches: u64,
    /// Measured output selectivity σₒ = matches / events, in percent.
    pub selectivity_pct: f64,
    /// Sustainable throughput in events/second.
    pub throughput_tps: f64,
    /// Mean detection latency in ms (None if no matches reached the sink).
    pub latency_mean_ms: Option<f64>,
    /// p99 detection latency in ms.
    pub latency_p99_ms: Option<f64>,
    /// Peak total operator state in MiB.
    pub peak_state_mib: f64,
    /// Wall-clock run duration in seconds.
    pub duration_s: f64,
    /// Populated instead of measurements when the run failed (e.g. the
    /// paper's FCEP memory-exhaustion failure).
    pub failed: Option<String>,
    /// Resource time series for Figure 5: (elapsed_ms, state_bytes, cpu%).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub samples: Vec<(u64, usize, f64)>,
}

impl ResultRow {
    /// A row for a failed run.
    pub fn failure(
        experiment: &str,
        system: &str,
        params: BTreeMap<String, String>,
        why: String,
    ) -> Self {
        ResultRow {
            experiment: experiment.into(),
            system: system.into(),
            params,
            events: 0,
            matches: 0,
            selectivity_pct: 0.0,
            throughput_tps: 0.0,
            latency_mean_ms: None,
            latency_p99_ms: None,
            peak_state_mib: 0.0,
            duration_s: 0.0,
            failed: Some(why),
            samples: Vec::new(),
        }
    }
}

/// Collects rows, prints them, and writes `results/<experiment>.jsonl`.
pub struct ResultSink {
    out_dir: PathBuf,
    rows: Vec<ResultRow>,
}

impl ResultSink {
    pub fn new(out_dir: impl Into<PathBuf>) -> Self {
        ResultSink {
            out_dir: out_dir.into(),
            rows: Vec::new(),
        }
    }

    pub fn push(&mut self, row: ResultRow) {
        print_row(&row);
        self.rows.push(row);
    }

    pub fn rows(&self) -> &[ResultRow] {
        &self.rows
    }

    /// Write all rows of an experiment to `results/<experiment>.jsonl`.
    pub fn flush(&self) -> std::io::Result<()> {
        create_dir_all(&self.out_dir)?;
        let mut by_exp: BTreeMap<&str, Vec<&ResultRow>> = BTreeMap::new();
        for r in &self.rows {
            by_exp.entry(&r.experiment).or_default().push(r);
        }
        for (exp, rows) in by_exp {
            let path = self.out_dir.join(format!("{exp}.jsonl"));
            let mut w = BufWriter::new(File::create(path)?);
            for r in rows {
                serde_json::to_writer(&mut w, r)?;
                writeln!(w)?;
            }
        }
        Ok(())
    }

    /// Print grouped bar charts of the collected rows (throughput always;
    /// latency and state when present).
    pub fn print_charts(&self, title: &str, group_params: &[&str]) {
        use crate::chart::{render, Metric};
        if self.rows.is_empty() {
            return;
        }
        println!("\n── {title}: {} ──", Metric::Throughput.title());
        print!("{}", render(&self.rows, Metric::Throughput, group_params));
        if self.rows.iter().any(|r| r.latency_mean_ms.is_some()) {
            println!("── {title}: {} ──", Metric::LatencyMeanMs.title());
            print!(
                "{}",
                render(&self.rows, Metric::LatencyMeanMs, group_params)
            );
        }
        if self.rows.iter().any(|r| r.peak_state_mib > 0.05) {
            println!("── {title}: {} ──", Metric::PeakStateMib.title());
            print!("{}", render(&self.rows, Metric::PeakStateMib, group_params));
        }
        // Figure-5-style state sparklines where time series were sampled.
        if self.rows.iter().any(|r| !r.samples.is_empty()) {
            println!("── {title}: state over time ──");
            for r in &self.rows {
                if r.samples.is_empty() {
                    continue;
                }
                let params: Vec<String> =
                    r.params.iter().map(|(k, v)| format!("{k}={v}")).collect();
                println!(
                    "  {:<14} {:<24} {}",
                    r.system,
                    params.join(" "),
                    crate::chart::sparkline(&r.samples, 48)
                );
            }
        }
    }

    /// Print a summary table of the collected rows.
    pub fn print_table(&self, title: &str) {
        println!("\n== {title} ==");
        println!(
            "{:<14} {:<26} {:>12} {:>10} {:>12} {:>10} {:>10}",
            "system", "params", "throughput", "σₒ %", "latency ms", "state MiB", "matches"
        );
        for r in &self.rows {
            let params: Vec<String> = r.params.iter().map(|(k, v)| format!("{k}={v}")).collect();
            if let Some(why) = &r.failed {
                println!(
                    "{:<14} {:<26} {:>12}   -- FAILED: {}",
                    r.system,
                    params.join(" "),
                    "-",
                    why
                );
            } else {
                println!(
                    "{:<14} {:<26} {:>12} {:>10.4} {:>12} {:>10.1} {:>10}",
                    r.system,
                    params.join(" "),
                    human_tps(r.throughput_tps),
                    r.selectivity_pct,
                    r.latency_mean_ms
                        .map(|l| format!("{l:.1}"))
                        .unwrap_or_else(|| "-".into()),
                    r.peak_state_mib,
                    r.matches,
                );
            }
        }
    }
}

fn print_row(r: &ResultRow) {
    let params: Vec<String> = r.params.iter().map(|(k, v)| format!("{k}={v}")).collect();
    match &r.failed {
        Some(why) => eprintln!(
            "  [{:<7}] {:<14} {:<24} FAILED: {why}",
            r.experiment,
            r.system,
            params.join(" ")
        ),
        None => eprintln!(
            "  [{:<7}] {:<14} {:<24} {:>10} tpl/s  σₒ={:.4}%  {} matches",
            r.experiment,
            r.system,
            params.join(" "),
            human_tps(r.throughput_tps),
            r.selectivity_pct,
            r.matches,
        ),
    }
}

/// Format throughput like the paper's axes (k tpl/s, M tpl/s).
pub fn human_tps(tps: f64) -> String {
    if tps >= 1e6 {
        format!("{:.2}M", tps / 1e6)
    } else if tps >= 1e3 {
        format!("{:.0}k", tps / 1e3)
    } else {
        format!("{tps:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(exp: &str, sys: &str, tps: f64) -> ResultRow {
        ResultRow {
            experiment: exp.into(),
            system: sys.into(),
            params: BTreeMap::new(),
            events: 100,
            matches: 5,
            selectivity_pct: 5.0,
            throughput_tps: tps,
            latency_mean_ms: Some(1.0),
            latency_p99_ms: Some(2.0),
            peak_state_mib: 0.5,
            duration_s: 0.1,
            failed: None,
            samples: vec![],
        }
    }

    #[test]
    fn human_tps_formats_like_paper_axes() {
        assert_eq!(human_tps(500.0), "500");
        assert_eq!(human_tps(145_000.0), "145k");
        assert_eq!(human_tps(6_800_000.0), "6.80M");
    }

    #[test]
    fn sink_round_trips_jsonl() {
        let dir = std::env::temp_dir().join("cep2asp_results_test");
        let mut sink = ResultSink::new(&dir);
        sink.push(row("figX", "FASP", 1000.0));
        sink.push(row("figX", "FCEP", 100.0));
        sink.flush().unwrap();
        let content = std::fs::read_to_string(dir.join("figX.jsonl")).unwrap();
        let rows: Vec<ResultRow> = content
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].system, "FASP");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn failure_rows_serialize() {
        let r = ResultRow::failure("fig4", "FCEP", BTreeMap::new(), "memory".into());
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("memory"));
    }
}
