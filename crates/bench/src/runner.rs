//! Measurement runners: execute one (system, pattern, workload) cell and
//! produce a [`ResultRow`].

use std::collections::{BTreeMap, HashMap};

use asp::event::{Event, EventType};
use asp::runtime::{Executor, ExecutorConfig};
use cep::{BaselineConfig, SelectionPolicy};
use cep2asp::{MapperOptions, PhysicalConfig};
use sea::pattern::Pattern;

use crate::report::ResultRow;

/// Shared measurement knobs for one experiment cell.
#[derive(Debug, Clone)]
pub struct MeasureConfig {
    /// Task slots for keyed stateful operators (paper: 16 per worker).
    pub parallelism: usize,
    /// Per-stateful-operator state budget; `None` = unlimited. Both
    /// systems get the same budget — the paper's FCEP fails here first.
    pub memory_limit: Option<usize>,
    /// Sample state/CPU for the Figure 5 series.
    pub sample_resources: bool,
    /// Punctuated watermark interval in events.
    pub watermark_every: usize,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            parallelism: 1,
            memory_limit: None,
            sample_resources: false,
            watermark_every: 256,
        }
    }
}

fn exec_config(cfg: &MeasureConfig) -> ExecutorConfig {
    ExecutorConfig {
        channel_capacity: 1024,
        sample_interval: cfg
            .sample_resources
            .then(|| std::time::Duration::from_millis(50)),
        latency_stride: 64,
        operator_chaining: true,
        drop_late: true,
        // Default micro-batch knobs (64-tuple batches, 5 ms idle flush).
        ..ExecutorConfig::default()
    }
}

fn fill_row(
    experiment: &str,
    system: &str,
    params: BTreeMap<String, String>,
    report: &asp::runtime::RunReport,
    dataset_events: u64,
    matches: u64,
    latency: asp::runtime::LatencyStats,
) -> ResultRow {
    // Throughput is measured against the *dataset* size (sum of distinct
    // input streams), not raw source emissions: a self-join plan reads the
    // same stream several times, which must not inflate its number.
    let events = dataset_events;
    ResultRow {
        experiment: experiment.into(),
        system: system.into(),
        params,
        events,
        matches,
        selectivity_pct: if events > 0 {
            matches as f64 / events as f64 * 100.0
        } else {
            0.0
        },
        throughput_tps: events as f64 / report.duration.as_secs_f64().max(1e-9),
        latency_mean_ms: (latency.samples > 0).then_some(latency.mean_ms),
        latency_p99_ms: (latency.samples > 0).then_some(latency.p99_ms),
        peak_state_mib: report.peak_state_bytes() as f64 / (1024.0 * 1024.0),
        duration_s: report.duration.as_secs_f64(),
        failed: None,
        samples: report
            .samples
            .iter()
            .map(|s| (s.elapsed_ms, s.state_bytes, s.cpu_pct))
            .collect(),
    }
}

/// Total distinct input events a pattern consumes from `sources`.
fn dataset_events(pattern: &Pattern, sources: &HashMap<EventType, Vec<Event>>) -> u64 {
    let mut seen: Vec<EventType> = Vec::new();
    for t in pattern.expr.input_types() {
        if !seen.contains(&t) {
            seen.push(t);
        }
    }
    seen.iter()
        .map(|t| sources.get(t).map_or(0, |v| v.len() as u64))
        .sum()
}

/// Run the NFA baseline on a workload cell.
pub fn measure_fcep(
    experiment: &str,
    pattern: &Pattern,
    sources: &HashMap<EventType, Vec<Event>>,
    keyed: bool,
    cfg: &MeasureConfig,
    params: BTreeMap<String, String>,
) -> ResultRow {
    let bl = BaselineConfig {
        parallelism: cfg.parallelism,
        keyed,
        policy: SelectionPolicy::SkipTillAnyMatch,
        after_match: cep::AfterMatchSkip::NoSkip,
        memory_limit: cfg.memory_limit,
        source_rate: None,
        watermark_every: cfg.watermark_every,
        watermark_lag: asp::time::Duration::ZERO,
        collect_output: false,
    };
    let (g, sink) = match cep::build_baseline(pattern, sources, &bl) {
        Ok(x) => x,
        Err(e) => return ResultRow::failure(experiment, "FCEP", params, e.to_string()),
    };
    let dataset = dataset_events(pattern, sources);
    match Executor::new(exec_config(cfg)).run(g) {
        Ok(report) => {
            let matches = report.sink_count(sink);
            let latency = report.latency(sink);
            fill_row(
                experiment, "FCEP", params, &report, dataset, matches, latency,
            )
        }
        Err(e) => ResultRow::failure(experiment, "FCEP", params, e.to_string()),
    }
}

/// Run the mapping under the given optimization set on a workload cell.
pub fn measure_fasp(
    experiment: &str,
    system: &str,
    pattern: &Pattern,
    opts: &MapperOptions,
    sources: &HashMap<EventType, Vec<Event>>,
    cfg: &MeasureConfig,
    params: BTreeMap<String, String>,
) -> ResultRow {
    let phys = PhysicalConfig {
        parallelism: cfg.parallelism,
        memory_limit: cfg.memory_limit,
        source_rate: None,
        watermark_every: cfg.watermark_every,
        watermark_lag: asp::time::Duration::ZERO,
        collect_output: false,
        dedup_output: false,
        // Benchmarks measure the mapping, not the checker; keep whatever
        // the build's feature set selects (off unless schema-conformance).
        ..PhysicalConfig::default()
    };
    let dataset = dataset_events(pattern, sources);
    match cep2asp::run_pattern(pattern, opts, sources, &phys, &exec_config(cfg)) {
        Ok(run) => {
            let matches = run.raw_count();
            let latency = run.report.latency(run.sink);
            fill_row(
                experiment,
                system,
                params,
                &run.report,
                dataset,
                matches,
                latency,
            )
        }
        Err(e) => ResultRow::failure(experiment, system, params, e.to_string()),
    }
}

/// Helper: build the params map from key-value string pairs.
pub fn params(pairs: &[(&str, String)]) -> BTreeMap<String, String> {
    pairs
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::seq1;
    use cep2asp::split_by_type;
    use workloads::{generate_qnv, QnvConfig, ValueModel};

    #[test]
    fn both_runners_produce_comparable_rows() {
        let w = generate_qnv(&QnvConfig {
            sensors: 2,
            minutes: 60,
            seed: 3,
            value_model: ValueModel::Uniform,
        });
        let sources = split_by_type(&w.merged());
        let pattern = seq1(0.5, 4);
        let cfg = MeasureConfig::default();
        let fcep = measure_fcep("t", &pattern, &sources, false, &cfg, BTreeMap::new());
        let fasp = measure_fasp(
            "t",
            "FASP",
            &pattern,
            &MapperOptions::plain(),
            &sources,
            &cfg,
            BTreeMap::new(),
        );
        assert!(fcep.failed.is_none(), "{:?}", fcep.failed);
        assert!(fasp.failed.is_none(), "{:?}", fasp.failed);
        assert_eq!(fcep.events, fasp.events);
        assert!(fcep.matches > 0);
        // Sliding windows duplicate matches; deduped sets are equal (see
        // tests/equivalence.rs), so FASP raw ≥ FCEP.
        assert!(fasp.matches >= fcep.matches);
        assert!(fcep.throughput_tps > 0.0 && fasp.throughput_tps > 0.0);
    }

    #[test]
    fn memory_budget_failure_is_reported_as_row() {
        let w = generate_qnv(&QnvConfig {
            sensors: 4,
            minutes: 300,
            seed: 5,
            value_model: ValueModel::Uniform,
        });
        let sources = split_by_type(&w.merged());
        let pattern = seq1(1.0, 100); // no filtering, huge window
        let cfg = MeasureConfig {
            memory_limit: Some(64 * 1024),
            ..Default::default()
        };
        let row = measure_fcep("t", &pattern, &sources, false, &cfg, BTreeMap::new());
        assert!(row.failed.is_some(), "tiny budget must fail");
        assert!(row.failed.unwrap().contains("memory"));
    }
}

/// Simulated scale-out for keyed workloads on constrained hardware.
///
/// The evaluation host may expose a single CPU, so thread-level "task
/// slots" cannot show genuine parallel speedup. Keyed CEP/ASP workloads
/// are embarrassingly parallel across hash partitions (that is the entire
/// point of keyBy / O3), so we *simulate* an N-slot cluster: partition
/// every source stream with the runtime's hash function, run each slot's
/// single-threaded sub-pipeline in isolation, and report
/// `total events / max(slot wall time)` — the throughput a cluster whose
/// slowest slot is the critical path would sustain. Matches and peak state
/// are summed across slots. See DESIGN.md ("substitutions").
pub mod scaleout {
    use super::*;
    use asp::runtime::key_partition;

    fn partition_sources(
        sources: &HashMap<EventType, Vec<Event>>,
        slots: usize,
        slot: usize,
    ) -> HashMap<EventType, Vec<Event>> {
        sources
            .iter()
            .map(|(t, evs)| {
                let subset: Vec<Event> = evs
                    .iter()
                    .filter(|e| key_partition(e.id as u64, slots) == slot)
                    .copied()
                    .collect();
                (*t, subset)
            })
            .collect()
    }

    fn combine(
        experiment: &str,
        system: &str,
        params: BTreeMap<String, String>,
        slots: usize,
        rows: Vec<ResultRow>,
    ) -> ResultRow {
        if let Some(fail) = rows.iter().find(|r| r.failed.is_some()) {
            let mut params = params;
            params.insert("slots".into(), slots.to_string());
            return ResultRow::failure(
                experiment,
                system,
                params,
                fail.failed.clone().unwrap_or_default(),
            );
        }
        let events: u64 = rows.iter().map(|r| r.events).sum();
        let matches: u64 = rows.iter().map(|r| r.matches).sum();
        let critical = rows.iter().map(|r| r.duration_s).fold(0.0, f64::max);
        let mut params = params;
        params.insert("slots".into(), slots.to_string());
        ResultRow {
            experiment: experiment.into(),
            system: system.into(),
            params,
            events,
            matches,
            selectivity_pct: if events > 0 {
                matches as f64 / events as f64 * 100.0
            } else {
                0.0
            },
            throughput_tps: events as f64 / critical.max(1e-9),
            latency_mean_ms: rows
                .iter()
                .filter_map(|r| r.latency_mean_ms)
                .fold(None, |a, l| Some(a.map_or(l, |x: f64| x.max(l)))),
            latency_p99_ms: rows
                .iter()
                .filter_map(|r| r.latency_p99_ms)
                .fold(None, |a, l| Some(a.map_or(l, |x: f64| x.max(l)))),
            peak_state_mib: rows.iter().map(|r| r.peak_state_mib).sum(),
            duration_s: critical,
            failed: None,
            samples: Vec::new(),
        }
    }

    /// FCEP with keyBy(id) over `slots` simulated task slots.
    pub fn measure_fcep(
        experiment: &str,
        pattern: &Pattern,
        sources: &HashMap<EventType, Vec<Event>>,
        slots: usize,
        cfg: &MeasureConfig,
        params: BTreeMap<String, String>,
    ) -> ResultRow {
        let mut rows = Vec::with_capacity(slots);
        let slot_cfg = MeasureConfig {
            parallelism: 1,
            ..cfg.clone()
        };
        for slot in 0..slots {
            let part = partition_sources(sources, slots, slot);
            rows.push(super::measure_fcep(
                experiment,
                pattern,
                &part,
                true,
                &slot_cfg,
                BTreeMap::new(),
            ));
        }
        combine(experiment, "FCEP", params, slots, rows)
    }

    /// A FASP variant over `slots` simulated task slots.
    #[allow(clippy::too_many_arguments)]
    pub fn measure_fasp(
        experiment: &str,
        system: &str,
        pattern: &Pattern,
        opts: &MapperOptions,
        sources: &HashMap<EventType, Vec<Event>>,
        slots: usize,
        cfg: &MeasureConfig,
        params: BTreeMap<String, String>,
    ) -> ResultRow {
        let mut rows = Vec::with_capacity(slots);
        let slot_cfg = MeasureConfig {
            parallelism: 1,
            ..cfg.clone()
        };
        for slot in 0..slots {
            let part = partition_sources(sources, slots, slot);
            rows.push(super::measure_fasp(
                experiment,
                system,
                pattern,
                opts,
                &part,
                &slot_cfg,
                BTreeMap::new(),
            ));
        }
        combine(experiment, system, params, slots, rows)
    }
}
