//! The NFA runtime: partial-match state, selection policies, retrospective
//! negation, and the stateful-model memory profile the paper attributes to
//! FlinkCEP.
//!
//! Events must be fed in timestamp order (the unary CEP operator sorts its
//! unioned input by watermark first — see [`crate::operator::CepOp`]).
//! Every partial match ("run") stores its bound events; under
//! skip-till-any-match runs are *cloned* on every acceptance, which is the
//! combinatorial state growth that causes FlinkCEP's throughput collapse
//! and memory exhaustion in the paper's Sections 5.2.2–5.2.4.

use asp::event::Event;
use asp::time::Timestamp;

use crate::nfa::{AfterMatchSkip, Nfa, SelectionPolicy};

/// A partial match: the events bound to the first `events.len()` stages.
#[derive(Debug, Clone)]
struct Run {
    events: Vec<Event>,
    first_ts: Timestamp,
}

impl Run {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Run>() + self.events.capacity() * std::mem::size_of::<Event>()
    }
}

/// A completed match in stage order.
pub type NfaMatch = Vec<Event>;

/// Single-partition NFA state machine.
pub struct NfaEngine {
    nfa: Nfa,
    policy: SelectionPolicy,
    after_match: AfterMatchSkip,
    runs: Vec<Run>,
    /// Timestamps of accepted forbidden (negated) events, in ts order.
    forbidden_ts: Vec<Timestamp>,
    state_bytes: usize,
    matches_emitted: u64,
    events_processed: u64,
    last_ts: Timestamp,
}

impl NfaEngine {
    pub fn new(nfa: Nfa, policy: SelectionPolicy) -> Self {
        NfaEngine {
            nfa,
            policy,
            after_match: AfterMatchSkip::NoSkip,
            runs: Vec::new(),
            forbidden_ts: Vec::new(),
            state_bytes: 0,
            matches_emitted: 0,
            events_processed: 0,
            last_ts: Timestamp::MIN,
        }
    }

    /// Select the after-match skip strategy (default: no skip).
    pub fn with_after_match(mut self, s: AfterMatchSkip) -> Self {
        self.after_match = s;
        self
    }

    /// Discard partial matches according to the after-match strategy,
    /// given the matches just emitted for one event.
    fn apply_after_match(&mut self, emitted: &[NfaMatch]) {
        if emitted.is_empty() || self.after_match == AfterMatchSkip::NoSkip {
            return;
        }
        let mut freed = 0usize;
        match self.after_match {
            AfterMatchSkip::NoSkip => {}
            AfterMatchSkip::SkipToNext => {
                self.runs.retain(|r| {
                    let dead = emitted.iter().any(|m| m.first() == r.events.first());
                    if dead {
                        freed += r.mem_bytes();
                    }
                    !dead
                });
            }
            AfterMatchSkip::SkipPastLastEvent => {
                let last = emitted.iter().filter_map(|m| m.last().map(|e| e.ts)).max();
                if let Some(last) = last {
                    self.runs.retain(|r| {
                        let dead = r.first_ts <= last;
                        if dead {
                            freed += r.mem_bytes();
                        }
                        !dead
                    });
                }
            }
        }
        self.state_bytes = self.state_bytes.saturating_sub(freed);
    }

    /// Current buffered footprint (runs + negation buffer).
    pub fn state_bytes(&self) -> usize {
        self.state_bytes + self.forbidden_ts.len() * std::mem::size_of::<Timestamp>()
    }

    /// Number of live partial matches.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    pub fn matches_emitted(&self) -> u64 {
        self.matches_emitted
    }

    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Feed one event (must be ≥ all previously fed timestamps) and append
    /// completed matches to `out`.
    pub fn process(&mut self, e: &Event, out: &mut Vec<NfaMatch>) {
        debug_assert!(e.ts >= self.last_ts, "events must arrive in ts order");
        self.last_ts = e.ts;
        self.events_processed += 1;

        // Track forbidden events for retrospective negation.
        if let Some((_, leaf)) = &self.nfa.forbidden {
            if leaf.accepts(e) {
                self.forbidden_ts.push(e.ts);
            }
        }

        let before = out.len();
        match self.policy {
            SelectionPolicy::SkipTillAnyMatch => self.process_stam(e, out),
            SelectionPolicy::SkipTillNextMatch => self.process_stnm(e, out),
            SelectionPolicy::StrictContiguity => self.process_strict(e, out),
        }
        if out.len() > before {
            let emitted = out[before..].to_vec();
            self.apply_after_match(&emitted);
        }
    }

    /// Evict runs that can no longer complete (window expired) and old
    /// negation buffer entries. Called by the operator on watermark —
    /// FlinkCEP's pruning is likewise tied to event-time progress, which is
    /// exactly why its state grows between watermarks under load.
    pub fn prune(&mut self, wm: Timestamp) {
        let w = asp::time::Duration(self.nfa.window_ms);
        let mut freed = 0;
        self.runs.retain(|r| {
            // A run can still complete iff a future event (ts ≥ wm) could
            // land within the window of its first event.
            let alive = r.first_ts.saturating_add(w) > wm;
            if !alive {
                freed += r.mem_bytes();
            }
            alive
        });
        self.state_bytes = self.state_bytes.saturating_sub(freed);
        // A forbidden timestamp only matters while some run's gap can still
        // straddle it; anything older than wm − W is dead.
        let cutoff = wm.saturating_sub(w);
        let keep_from = self.forbidden_ts.partition_point(|t| *t <= cutoff);
        if keep_from > 0 {
            self.forbidden_ts.drain(..keep_from);
        }
    }

    /// Flush: drop all state (end of stream).
    pub fn finish(&mut self) {
        self.runs.clear();
        self.forbidden_ts.clear();
        self.state_bytes = 0;
    }

    fn stage_accepts(&self, stage_idx: usize, run_events: &[Event], e: &Event) -> bool {
        let stage = &self.nfa.stages[stage_idx];
        if !stage.leaf.accepts(e) {
            return false;
        }
        // Strictly increasing timestamps along the run (Eq. 10/12).
        if let Some(last) = run_events.last() {
            if e.ts <= last.ts {
                return false;
            }
            // Window: all events within < W of the first.
            if (e.ts - run_events[0].ts).millis() >= self.nfa.window_ms {
                return false;
            }
        }
        // Incremental predicate check: build the candidate binding.
        if stage.preds.is_empty() {
            return true;
        }
        let mut binding: Vec<Event> = Vec::with_capacity(run_events.len() + 1);
        binding.extend_from_slice(run_events);
        binding.push(*e);
        stage.preds.iter().all(|p| p.eval_partial(&binding))
    }

    fn complete(&mut self, events: Vec<Event>, out: &mut Vec<NfaMatch>) {
        // Retrospective negation (the FlinkCEP evaluation order the paper
        // describes for NSEQ): check the forbidden buffer against the gap.
        if let Some((gap, _)) = &self.nfa.forbidden {
            let lo = events[*gap].ts;
            let hi = events[*gap + 1].ts;
            // Any forbidden ts strictly inside (lo, hi)?
            let i = self.forbidden_ts.partition_point(|t| *t <= lo);
            if i < self.forbidden_ts.len() && self.forbidden_ts[i] < hi {
                return;
            }
        }
        self.matches_emitted += 1;
        out.push(events);
    }

    fn process_stam(&mut self, e: &Event, out: &mut Vec<NfaMatch>) {
        let n = self.nfa.len();
        let mut spawned: Vec<Run> = Vec::new();
        let mut completed: Vec<Vec<Event>> = Vec::new();
        for run in &self.runs {
            let k = run.events.len();
            if k < n && self.stage_accepts(k, &run.events, e) {
                let mut events = Vec::with_capacity(k + 1);
                events.extend_from_slice(&run.events);
                events.push(*e);
                if k + 1 == n {
                    completed.push(events);
                } else {
                    spawned.push(Run {
                        events,
                        first_ts: run.first_ts,
                    });
                }
            }
        }
        // A fresh run may start at this event.
        if self.stage_accepts(0, &[], e) {
            let run = Run {
                events: vec![*e],
                first_ts: e.ts,
            };
            if n == 1 {
                completed.push(run.events);
            } else {
                spawned.push(run);
            }
        }
        for r in spawned {
            self.state_bytes += r.mem_bytes();
            self.runs.push(r);
        }
        for c in completed {
            self.complete(c, out);
        }
    }

    fn process_stnm(&mut self, e: &Event, out: &mut Vec<NfaMatch>) {
        let n = self.nfa.len();
        let mut completed: Vec<Vec<Event>> = Vec::new();
        let mut freed = 0usize;
        let mut added = 0usize;
        // Advance in place: each run extends with the next relevant event.
        let mut i = 0;
        while i < self.runs.len() {
            let k = self.runs[i].events.len();
            if k < n && self.stage_accepts(k, &self.runs[i].events, e) {
                freed += self.runs[i].mem_bytes();
                if k + 1 == n {
                    let run = self.runs.swap_remove(i);
                    let mut events = run.events;
                    events.push(*e);
                    completed.push(events);
                    continue; // don't advance i (swap_remove)
                } else {
                    self.runs[i].events.push(*e);
                    added += self.runs[i].mem_bytes();
                }
            }
            i += 1;
        }
        self.state_bytes = self.state_bytes.saturating_sub(freed) + added;
        if self.stage_accepts(0, &[], e) {
            let run = Run {
                events: vec![*e],
                first_ts: e.ts,
            };
            if n == 1 {
                completed.push(run.events);
            } else {
                self.state_bytes += run.mem_bytes();
                self.runs.push(run);
            }
        }
        for c in completed {
            self.complete(c, out);
        }
    }

    fn process_strict(&mut self, e: &Event, out: &mut Vec<NfaMatch>) {
        let n = self.nfa.len();
        let mut completed: Vec<Vec<Event>> = Vec::new();
        let mut freed = 0usize;
        let mut added = 0usize;
        // Every run must accept this event or die (no gaps allowed).
        let mut survivors: Vec<Run> = Vec::with_capacity(self.runs.len());
        for mut run in std::mem::take(&mut self.runs) {
            let k = run.events.len();
            if k < n && self.stage_accepts(k, &run.events, e) {
                freed += run.mem_bytes();
                run.events.push(*e);
                if k + 1 == n {
                    completed.push(run.events);
                } else {
                    added += run.mem_bytes();
                    survivors.push(run);
                }
            } else {
                freed += run.mem_bytes();
            }
        }
        self.runs = survivors;
        self.state_bytes = self.state_bytes.saturating_sub(freed) + added;
        if self.stage_accepts(0, &[], e) {
            let run = Run {
                events: vec![*e],
                first_ts: e.ts,
            };
            if n == 1 {
                completed.push(run.events);
            } else {
                self.state_bytes += run.mem_bytes();
                self.runs.push(run);
            }
        }
        for c in completed {
            self.complete(c, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asp::event::{Attr, EventType};
    use sea::pattern::{builders, Leaf, WindowSpec};
    use sea::predicate::{CmpOp, Predicate};

    const Q: EventType = EventType(0);
    const V: EventType = EventType(1);
    const PM: EventType = EventType(2);

    fn ev(t: EventType, min: i64, v: f64) -> Event {
        Event::new(t, 1, Timestamp::from_minutes(min), v)
    }

    fn run_engine(
        pattern: &sea::Pattern,
        policy: SelectionPolicy,
        stream: &[Event],
    ) -> Vec<NfaMatch> {
        let nfa = Nfa::compile(pattern).unwrap();
        let mut engine = NfaEngine::new(nfa, policy);
        let mut out = Vec::new();
        for e in stream {
            engine.process(e, &mut out);
        }
        out
    }

    #[test]
    fn stam_finds_all_combinations() {
        let p = builders::seq(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(10), vec![]);
        let stream = [ev(Q, 0, 1.0), ev(Q, 1, 2.0), ev(V, 2, 3.0), ev(V, 3, 4.0)];
        let out = run_engine(&p, SelectionPolicy::SkipTillAnyMatch, &stream);
        assert_eq!(out.len(), 4, "2 Q × 2 V combinations");
    }

    #[test]
    fn stnm_extends_with_next_relevant_only() {
        let p = builders::seq(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(10), vec![]);
        let stream = [ev(Q, 0, 1.0), ev(V, 2, 3.0), ev(V, 3, 4.0)];
        let out = run_engine(&p, SelectionPolicy::SkipTillNextMatch, &stream);
        // The Q run completes with the first V and is consumed.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][1].ts, Timestamp::from_minutes(2));
    }

    #[test]
    fn strict_contiguity_dies_on_gaps() {
        let p = builders::seq(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(10), vec![]);
        // Q, then an intervening Q, then V: the first run dies at event 2.
        let stream = [ev(Q, 0, 1.0), ev(Q, 1, 2.0), ev(V, 2, 3.0)];
        let out = run_engine(&p, SelectionPolicy::StrictContiguity, &stream);
        assert_eq!(out.len(), 1, "only the adjacent (Q@1, V@2) matches");
        assert_eq!(out[0][0].ts, Timestamp::from_minutes(1));
    }

    #[test]
    fn stam_is_superset_of_other_policies() {
        let p = builders::seq(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(10), vec![]);
        let stream = [
            ev(Q, 0, 1.0),
            ev(V, 1, 2.0),
            ev(Q, 2, 3.0),
            ev(V, 3, 4.0),
            ev(Q, 4, 5.0),
            ev(V, 5, 6.0),
        ];
        let stam = run_engine(&p, SelectionPolicy::SkipTillAnyMatch, &stream);
        for policy in [
            SelectionPolicy::SkipTillNextMatch,
            SelectionPolicy::StrictContiguity,
        ] {
            let other = run_engine(&p, policy, &stream);
            for m in &other {
                assert!(stam.contains(m), "{policy}: match {m:?} missing from stam");
            }
        }
    }

    #[test]
    fn window_constraint_is_strict() {
        let p = builders::seq(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(4), vec![]);
        // Exactly W apart → no match; W-1 → match.
        let out = run_engine(
            &p,
            SelectionPolicy::SkipTillAnyMatch,
            &[ev(Q, 0, 1.0), ev(V, 4, 2.0)],
        );
        assert!(out.is_empty());
        let out = run_engine(
            &p,
            SelectionPolicy::SkipTillAnyMatch,
            &[ev(Q, 0, 1.0), ev(V, 3, 2.0)],
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn predicates_checked_incrementally() {
        let p = builders::seq(
            &[(Q, "Q"), (V, "V")],
            WindowSpec::minutes(10),
            vec![Predicate::cross(0, Attr::Value, CmpOp::Le, 1, Attr::Value)],
        );
        let stream = [ev(Q, 0, 5.0), ev(V, 1, 3.0), ev(V, 2, 7.0)];
        let out = run_engine(&p, SelectionPolicy::SkipTillAnyMatch, &stream);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][1].value, 7.0);
    }

    #[test]
    fn nseq_retrospective_negation() {
        let p = builders::nseq(
            (Q, "Q"),
            Leaf::new(V, "V", "n"),
            (PM, "PM"),
            WindowSpec::minutes(10),
            vec![],
        );
        // V strictly between blocks.
        let out = run_engine(
            &p,
            SelectionPolicy::SkipTillAnyMatch,
            &[ev(Q, 0, 1.0), ev(V, 1, 2.0), ev(PM, 2, 3.0)],
        );
        assert!(out.is_empty());
        // V at PM's ts does not block (open interval).
        let out = run_engine(
            &p,
            SelectionPolicy::SkipTillAnyMatch,
            &[ev(Q, 0, 1.0), ev(V, 2, 2.0), ev(PM, 2, 3.0)],
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn iter_nfa_matches_combinations() {
        let p = builders::iter(
            V,
            "V",
            3,
            WindowSpec::minutes(15),
            vec![
                Predicate::cross(0, Attr::Value, CmpOp::Lt, 1, Attr::Value),
                Predicate::cross(1, Attr::Value, CmpOp::Lt, 2, Attr::Value),
            ],
        );
        let stream = [ev(V, 0, 1.0), ev(V, 1, 2.0), ev(V, 2, 3.0), ev(V, 3, 2.5)];
        let out = run_engine(&p, SelectionPolicy::SkipTillAnyMatch, &stream);
        // Increasing-value triples: (1,2,3), (1,2,2.5).
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn state_grows_combinatorially_under_stam() {
        let p = builders::seq(
            &[(Q, "Q"), (V, "V"), (PM, "PM")],
            WindowSpec::minutes(100),
            vec![],
        );
        let nfa = Nfa::compile(&p).unwrap();
        let mut engine = NfaEngine::new(nfa, SelectionPolicy::SkipTillAnyMatch);
        let mut out = Vec::new();
        for m in 0..20 {
            engine.process(&ev(Q, 2 * m, 1.0), &mut out);
            engine.process(&ev(V, 2 * m + 1, 2.0), &mut out);
        }
        // 20 Q runs + 20×(growing) QV runs → hundreds of partial matches.
        assert!(engine.run_count() > 200, "runs: {}", engine.run_count());
        assert!(engine.state_bytes() > 10_000);
    }

    #[test]
    fn prune_reclaims_expired_runs() {
        let p = builders::seq(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(5), vec![]);
        let nfa = Nfa::compile(&p).unwrap();
        let mut engine = NfaEngine::new(nfa, SelectionPolicy::SkipTillAnyMatch);
        let mut out = Vec::new();
        for m in 0..50 {
            engine.process(&ev(Q, m, 1.0), &mut out);
        }
        assert_eq!(engine.run_count(), 50);
        engine.prune(Timestamp::from_minutes(49));
        // Runs started before minute 45 are expired (45 + 5 ≤ 49... strictly:
        // first_ts + W > wm keeps them); runs from 45..50 survive.
        assert_eq!(engine.run_count(), 5, "runs: {}", engine.run_count());
        engine.finish();
        assert_eq!(engine.state_bytes(), 0);
    }

    #[test]
    fn equal_timestamps_do_not_chain() {
        let p = builders::seq(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(5), vec![]);
        let out = run_engine(
            &p,
            SelectionPolicy::SkipTillAnyMatch,
            &[ev(Q, 1, 1.0), ev(V, 1, 2.0)],
        );
        assert!(out.is_empty(), "strict e1.ts < e2.ts");
    }
}

#[cfg(test)]
mod after_match_tests {
    use super::*;
    use crate::nfa::AfterMatchSkip;
    use asp::event::EventType;
    use sea::pattern::{builders, WindowSpec};

    const Q: EventType = EventType(0);
    const V: EventType = EventType(1);

    fn ev(t: EventType, min: i64, v: f64) -> Event {
        Event::new(t, 1, Timestamp::from_minutes(min), v)
    }

    fn run_with(skip: AfterMatchSkip, stream: &[Event]) -> Vec<NfaMatch> {
        let p = builders::seq(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(10), vec![]);
        let nfa = crate::nfa::Nfa::compile(&p).unwrap();
        let mut engine =
            NfaEngine::new(nfa, SelectionPolicy::SkipTillAnyMatch).with_after_match(skip);
        let mut out = Vec::new();
        for e in stream {
            engine.process(e, &mut out);
        }
        out
    }

    // Two Q, two V: no-skip finds all 4 combinations.
    fn stream() -> Vec<Event> {
        vec![ev(Q, 0, 1.0), ev(Q, 1, 2.0), ev(V, 2, 3.0), ev(V, 3, 4.0)]
    }

    #[test]
    fn no_skip_keeps_all_combinations() {
        assert_eq!(run_with(AfterMatchSkip::NoSkip, &stream()).len(), 4);
    }

    #[test]
    fn skip_past_last_event_discards_started_runs() {
        // At V@2, both (Q@0,V@2) and (Q@1,V@2) are emitted, then every run
        // started at ts ≤ 2 dies → V@3 finds nothing.
        let got = run_with(AfterMatchSkip::SkipPastLastEvent, &stream());
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|m| m[1].ts == Timestamp::from_minutes(2)));
    }

    #[test]
    fn skip_to_next_discards_same_start_runs() {
        // Runs starting at Q@0/Q@1 both complete at V@2 and are discarded;
        // V@3 finds no live runs → 2 matches.
        let got = run_with(AfterMatchSkip::SkipToNext, &stream());
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn skip_strategies_yield_subsets_of_no_skip() {
        let all: Vec<NfaMatch> = run_with(AfterMatchSkip::NoSkip, &stream());
        for skip in [
            AfterMatchSkip::SkipToNext,
            AfterMatchSkip::SkipPastLastEvent,
        ] {
            for m in run_with(skip, &stream()) {
                assert!(all.contains(&m), "{skip}: {m:?} not in no-skip output");
            }
        }
    }

    #[test]
    fn skip_reduces_state() {
        let p = builders::seq(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(100), vec![]);
        let nfa = crate::nfa::Nfa::compile(&p).unwrap();
        let mut noskip = NfaEngine::new(nfa.clone(), SelectionPolicy::SkipTillAnyMatch);
        let mut skipper = NfaEngine::new(nfa, SelectionPolicy::SkipTillAnyMatch)
            .with_after_match(AfterMatchSkip::SkipPastLastEvent);
        let mut out = Vec::new();
        for m in 0..50 {
            let t = if m % 2 == 0 { Q } else { V };
            let e = ev(t, m, 1.0);
            noskip.process(&e, &mut out);
            skipper.process(&e, &mut out);
        }
        assert!(skipper.run_count() < noskip.run_count());
        assert!(skipper.state_bytes() < noskip.state_bytes());
    }
}
