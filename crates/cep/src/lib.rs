//! # cep — an NFA-based complex event processing engine
//!
//! The baseline of the reproduction: a FlinkCEP-style order-based CEP
//! engine (*Bridging the Gap*, Ziehn et al., EDBT 2024 — Sections 2, 5.1.2)
//! implemented as
//!
//! * [`nfa`] — compilation of SEA patterns into linear NFAs (stages =
//!   pattern prefixes) with the FlinkCEP operator subset: `SEQ`, `ITER_m`,
//!   `NSEQ`; `AND`/`OR`/Kleene+ are rejected exactly as Table 2 records;
//! * [`engine`] — the partial-match runtime with all three selection
//!   policies (skip-till-any-match, skip-till-next-match, strict
//!   contiguity), incremental predicate evaluation, retrospective negation,
//!   and event-time pruning;
//! * [`operator`] — the unary hybrid-system operator: union-everything,
//!   buffer-and-sort by watermark, run the NFA — including the memory
//!   budget that reproduces the paper's FlinkCEP failure under high
//!   ingestion rates.

pub mod engine;
pub mod nfa;
pub mod operator;
pub mod pipeline;

pub use engine::{NfaEngine, NfaMatch};
pub use nfa::{AfterMatchSkip, Nfa, SelectionPolicy, Stage, UnsupportedPattern};
pub use operator::CepOp;
pub use pipeline::{build_baseline, BaselineConfig};
