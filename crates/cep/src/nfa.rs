//! NFA compilation (paper Section 2, processing model of CEP systems).
//!
//! Order-based CEP engines compile a pattern into a nondeterministic finite
//! automaton whose states are pattern *prefixes*; FlinkCEP is the
//! representative the paper benchmarks. Like FlinkCEP, this baseline only
//! supports the order-based SEA subset — `SEQ`, `ITER_m`, and `NSEQ`
//! (Table 2) — and rejects `AND`, `OR`, and Kleene+ patterns.

use std::fmt;

use sea::pattern::{Leaf, Pattern, PatternExpr};
use sea::predicate::{Predicate, VarId};

/// Selection policies (Section 3.1.4). FlinkCEP exposes all three for its
/// sequence operator: `.followedByAny()` (stam), `.followedBy()` (stnm),
/// `.next()` (strict contiguity). The ASP mapping supports only
/// skip-till-any-match, whose match set is a superset of the others.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionPolicy {
    /// Skip-till-any-match: any combination of relevant events, regardless
    /// of irrelevant events in between (worst-case exponential state).
    #[default]
    SkipTillAnyMatch,
    /// Skip-till-next-match: each partial match extends with the *next*
    /// relevant event only.
    SkipTillNextMatch,
    /// Strict contiguity: participating events must be adjacent in the
    /// (unioned, ts-ordered) stream.
    StrictContiguity,
}

impl fmt::Display for SelectionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SelectionPolicy::SkipTillAnyMatch => "skip-till-any-match",
            SelectionPolicy::SkipTillNextMatch => "skip-till-next-match",
            SelectionPolicy::StrictContiguity => "strict-contiguity",
        })
    }
}

/// After-match skip strategies (FlinkCEP's `AfterMatchSkipStrategy`):
/// what happens to the partial-match state once a match is emitted.
/// Orthogonal to the selection policy, which governs how runs *extend*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AfterMatchSkip {
    /// Keep everything (the default; what the paper's comparison uses).
    #[default]
    NoSkip,
    /// Discard every partial match that begins with the same first event
    /// as an emitted match.
    SkipToNext,
    /// Discard every partial match that started before an emitted match's
    /// last event.
    SkipPastLastEvent,
}

impl fmt::Display for AfterMatchSkip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AfterMatchSkip::NoSkip => "no-skip",
            AfterMatchSkip::SkipToNext => "skip-to-next",
            AfterMatchSkip::SkipPastLastEvent => "skip-past-last-event",
        })
    }
}

/// Why a pattern cannot run on the NFA baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnsupportedPattern {
    /// Conjunction has no NFA representation in FlinkCEP (Table 2).
    Conjunction,
    /// Disjunction has no NFA representation in FlinkCEP (Table 2).
    Disjunction,
    /// Kleene+ with combination semantics is not exposed for `≥ m`.
    KleenePlus,
    /// Negation somewhere other than the ternary NSEQ position.
    NonTernaryNegation,
}

impl fmt::Display for UnsupportedPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnsupportedPattern::Conjunction => {
                write!(f, "AND is not supported by the NFA baseline")
            }
            UnsupportedPattern::Disjunction => write!(f, "OR is not supported by the NFA baseline"),
            UnsupportedPattern::KleenePlus => {
                write!(f, "Kleene+ (ITER m+) is not supported by the NFA baseline")
            }
            UnsupportedPattern::NonTernaryNegation => {
                write!(f, "negation must be the middle element of a ternary SEQ")
            }
        }
    }
}

impl std::error::Error for UnsupportedPattern {}

/// One NFA state transition: the event type + filters to accept and the
/// predicates that become fully checkable once this stage binds.
#[derive(Debug, Clone)]
pub struct Stage {
    pub leaf: Leaf,
    /// Output position this stage binds.
    pub var: VarId,
    /// `WHERE` predicates whose highest variable is `var` — checked at
    /// bind time (incremental predicate evaluation).
    pub preds: Vec<Predicate>,
}

/// A compiled linear NFA: `stages[0] … stages[n-1]` with an optional
/// forbidden (negated) leaf between two adjacent stages.
#[derive(Debug, Clone)]
pub struct Nfa {
    pub stages: Vec<Stage>,
    /// `(gap_index, leaf)`: no accepted `leaf` event may occur strictly
    /// between the events bound by `stages[gap_index]` and
    /// `stages[gap_index + 1]` (the NSEQ constraint, Eq. 14).
    pub forbidden: Option<(usize, Leaf)>,
    /// Window size in ms: all bound events within `< W` of the first.
    pub window_ms: i64,
}

impl Nfa {
    /// Compile a pattern; fails for the SEA operators FlinkCEP lacks.
    pub fn compile(pattern: &Pattern) -> Result<Nfa, UnsupportedPattern> {
        let mut stages = Vec::new();
        let mut forbidden = None;
        collect(&pattern.expr, &mut stages, &mut forbidden)?;
        // Attach each WHERE predicate at the first stage where it is fully
        // bound (its max variable).
        let mut nfa_stages: Vec<Stage> = stages
            .into_iter()
            .map(|(leaf, var)| Stage {
                leaf,
                var,
                preds: Vec::new(),
            })
            .collect();
        for p in &pattern.predicates {
            let Some(mv) = p.max_var() else { continue };
            if let Some(stage) = nfa_stages.iter_mut().find(|s| s.var == mv) {
                stage.preds.push(*p);
            }
        }
        Ok(Nfa {
            stages: nfa_stages,
            forbidden,
            window_ms: pattern.window.size.millis(),
        })
    }

    pub fn len(&self) -> usize {
        self.stages.len()
    }

    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

type RawStage = (Leaf, VarId);

fn collect(
    expr: &PatternExpr,
    stages: &mut Vec<RawStage>,
    forbidden: &mut Option<(usize, Leaf)>,
) -> Result<(), UnsupportedPattern> {
    match expr {
        PatternExpr::Leaf(l) => {
            stages.push((l.clone(), l.var));
            Ok(())
        }
        PatternExpr::Seq(parts) => {
            for p in parts {
                collect(p, stages, forbidden)?;
            }
            Ok(())
        }
        PatternExpr::And(_) => Err(UnsupportedPattern::Conjunction),
        PatternExpr::Or(_) => Err(UnsupportedPattern::Disjunction),
        PatternExpr::Iter { leaf, m, at_least } => {
            if *at_least {
                return Err(UnsupportedPattern::KleenePlus);
            }
            for i in 0..*m {
                stages.push((leaf.clone(), leaf.var + i));
            }
            Ok(())
        }
        PatternExpr::NegSeq {
            first,
            absent,
            last,
        } => {
            if forbidden.is_some() {
                return Err(UnsupportedPattern::NonTernaryNegation);
            }
            stages.push((first.clone(), first.var));
            *forbidden = Some((stages.len() - 1, absent.clone()));
            stages.push((last.clone(), last.var));
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asp::event::{Attr, EventType};
    use sea::pattern::{builders, WindowSpec};
    use sea::predicate::CmpOp;

    const Q: EventType = EventType(0);
    const V: EventType = EventType(1);
    const PM: EventType = EventType(2);

    #[test]
    fn seq_compiles_to_linear_stages() {
        let p = builders::seq(
            &[(Q, "Q"), (V, "V"), (PM, "PM")],
            WindowSpec::minutes(15),
            vec![Predicate::cross(0, Attr::Value, CmpOp::Le, 1, Attr::Value)],
        );
        let nfa = Nfa::compile(&p).unwrap();
        assert_eq!(nfa.len(), 3);
        assert!(nfa.forbidden.is_none());
        assert!(nfa.stages[0].preds.is_empty());
        assert_eq!(
            nfa.stages[1].preds.len(),
            1,
            "a–b predicate binds at stage 1"
        );
        assert_eq!(nfa.window_ms, 15 * asp::time::MINUTE_MS);
    }

    #[test]
    fn iter_expands_to_m_stages_with_pairwise_preds() {
        let preds = vec![
            Predicate::cross(0, Attr::Value, CmpOp::Lt, 1, Attr::Value),
            Predicate::cross(1, Attr::Value, CmpOp::Lt, 2, Attr::Value),
        ];
        let p = builders::iter(V, "V", 3, WindowSpec::minutes(15), preds);
        let nfa = Nfa::compile(&p).unwrap();
        assert_eq!(nfa.len(), 3);
        assert!(nfa.stages.iter().all(|s| s.leaf.etype == V));
        assert_eq!(nfa.stages[1].preds.len(), 1);
        assert_eq!(nfa.stages[2].preds.len(), 1);
    }

    #[test]
    fn nseq_records_forbidden_gap() {
        let p = builders::nseq(
            (Q, "Q"),
            Leaf::new(V, "V", "n"),
            (PM, "PM"),
            WindowSpec::minutes(15),
            vec![],
        );
        let nfa = Nfa::compile(&p).unwrap();
        assert_eq!(nfa.len(), 2);
        let (gap, leaf) = nfa.forbidden.as_ref().unwrap();
        assert_eq!(*gap, 0);
        assert_eq!(leaf.etype, V);
    }

    #[test]
    fn unsupported_operators_are_rejected() {
        let and = builders::and(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(5), vec![]);
        assert_eq!(
            Nfa::compile(&and).unwrap_err(),
            UnsupportedPattern::Conjunction
        );
        let or = builders::or(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(5));
        assert_eq!(
            Nfa::compile(&or).unwrap_err(),
            UnsupportedPattern::Disjunction
        );
        let kp = builders::kleene_plus(V, "V", 3, WindowSpec::minutes(5));
        assert_eq!(
            Nfa::compile(&kp).unwrap_err(),
            UnsupportedPattern::KleenePlus
        );
    }

    #[test]
    fn seq_of_iter_flattens() {
        use sea::pattern::{Pattern, PatternExpr};
        let expr = PatternExpr::Seq(vec![
            PatternExpr::Leaf(Leaf::new(Q, "Q", "a")),
            PatternExpr::Iter {
                leaf: Leaf::new(V, "V", "v"),
                m: 2,
                at_least: false,
            },
        ]);
        let p = Pattern::new("sx", expr, WindowSpec::minutes(15), vec![]).unwrap();
        let nfa = Nfa::compile(&p).unwrap();
        assert_eq!(nfa.len(), 3);
        assert_eq!(nfa.stages[0].leaf.etype, Q);
        assert_eq!(nfa.stages[1].var, 1);
        assert_eq!(nfa.stages[2].var, 2);
    }
}
