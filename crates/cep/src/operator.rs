//! The unary CEP operator — the hybrid-system integration style of
//! FlinkCEP (paper Sections 1 and 5.1.2).
//!
//! The whole pattern workload is composed into *one* stateful dataflow
//! operator: all input streams must be unioned in front of it, events are
//! buffered and sorted by event time (watermark-driven), and the NFA with
//! its partial-match state runs inside. This is precisely the design whose
//! limitations the paper's mapping removes: no pipeline parallelism, a
//! union ahead of the operator, and implicit (predicate-based) windowing
//! whose partial-match maintenance exhausts memory under load.
//!
//! Parallelization mirrors FlinkCEP: with a keyed pattern the operator can
//! be hash-partitioned (one NFA per key); otherwise it runs single-slot.

use std::collections::{BTreeMap, HashMap};

use asp::error::OpError;
use asp::operator::{Collector, Operator};
use asp::time::Timestamp;
use asp::tuple::{Key, Tuple};

use sea::pattern::Pattern;

use crate::engine::NfaEngine;
use crate::nfa::{AfterMatchSkip, Nfa, SelectionPolicy, UnsupportedPattern};

/// The unary NFA pattern operator.
pub struct CepOp {
    name: String,
    nfa: Nfa,
    policy: SelectionPolicy,
    after_match: AfterMatchSkip,
    /// One NFA per key when the pattern is keyed; a single global NFA
    /// (key 0) otherwise.
    keyed: bool,
    engines: HashMap<Key, NfaEngine>,
    /// Event-time sort buffer: events wait here until the watermark proves
    /// no earlier event can arrive.
    buffer: BTreeMap<(Timestamp, u64), Tuple>,
    buffer_bytes: usize,
    seq: u64,
    memory_limit: Option<usize>,
    emitted: u64,
}

impl CepOp {
    /// Build the operator for a pattern; fails for SEA operators the NFA
    /// baseline does not support (Table 2).
    pub fn new(
        name: impl Into<String>,
        pattern: &Pattern,
        policy: SelectionPolicy,
        keyed: bool,
    ) -> Result<Self, UnsupportedPattern> {
        Ok(CepOp {
            name: name.into(),
            nfa: Nfa::compile(pattern)?,
            policy,
            after_match: AfterMatchSkip::NoSkip,
            keyed,
            engines: HashMap::new(),
            buffer: BTreeMap::new(),
            buffer_bytes: 0,
            seq: 0,
            memory_limit: None,
            emitted: 0,
        })
    }

    /// Install a state budget in bytes; exceeding it fails the run (the
    /// paper's observed FlinkCEP failure mode at high ingestion rates).
    pub fn with_memory_limit(mut self, bytes: usize) -> Self {
        self.memory_limit = Some(bytes);
        self
    }

    /// Select the after-match skip strategy for all NFA partitions.
    pub fn with_after_match(mut self, s: AfterMatchSkip) -> Self {
        self.after_match = s;
        self
    }

    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    fn engine_for(&mut self, key: Key) -> &mut NfaEngine {
        let k = if self.keyed { key } else { 0 };
        let (nfa, policy, am) = (&self.nfa, self.policy, self.after_match);
        self.engines
            .entry(k)
            .or_insert_with(|| NfaEngine::new(nfa.clone(), policy).with_after_match(am))
    }

    /// Drain buffered events with `ts < upto` into the NFA in ts order.
    fn advance(&mut self, upto: Timestamp, out: &mut dyn Collector) {
        let mut matches = Vec::new();
        while let Some((&(ts, seq), _)) = self.buffer.first_key_value() {
            if ts >= upto {
                break;
            }
            let tuple = self.buffer.remove(&(ts, seq)).expect("entry exists");
            self.buffer_bytes = self.buffer_bytes.saturating_sub(tuple.mem_bytes());
            let event = tuple.events[0];
            let key = tuple.key;
            let wall = tuple.wall;
            matches.clear();
            self.engine_for(key).process(&event, &mut matches);
            for m in matches.drain(..) {
                let ts = m.iter().map(|e| e.ts).max().unwrap_or(event.ts);
                self.emitted += 1;
                out.emit(Tuple {
                    key,
                    ts,
                    // The match completes when its last event is processed.
                    wall,
                    events: std::sync::Arc::new(m),
                    ats: None,
                    agg: None,
                });
            }
        }
        // Event-time pruning of expired partial matches.
        if upto > Timestamp::MIN {
            for engine in self.engines.values_mut() {
                engine.prune(upto);
            }
        }
    }

    fn total_state(&self) -> usize {
        self.buffer_bytes
            + self
                .engines
                .values()
                .map(NfaEngine::state_bytes)
                .sum::<usize>()
    }
}

impl Operator for CepOp {
    fn process(
        &mut self,
        _input: usize,
        tuple: Tuple,
        _out: &mut dyn Collector,
    ) -> Result<(), OpError> {
        self.seq += 1;
        self.buffer_bytes += tuple.mem_bytes();
        self.buffer.insert((tuple.ts, self.seq), tuple);
        if let Some(limit) = self.memory_limit {
            let used = self.total_state();
            if used > limit {
                return Err(OpError::MemoryExhausted {
                    operator: self.name.clone(),
                    state_bytes: used,
                    limit_bytes: limit,
                });
            }
        }
        Ok(())
    }

    fn on_watermark(
        &mut self,
        wm: Timestamp,
        out: &mut dyn Collector,
    ) -> Result<Timestamp, OpError> {
        self.advance(wm, out);
        if let Some(limit) = self.memory_limit {
            let used = self.total_state();
            if used > limit {
                return Err(OpError::MemoryExhausted {
                    operator: self.name.clone(),
                    state_bytes: used,
                    limit_bytes: limit,
                });
            }
        }
        Ok(wm)
    }

    fn on_finish(&mut self, out: &mut dyn Collector) -> Result<(), OpError> {
        self.advance(Timestamp::MAX, out);
        for engine in self.engines.values_mut() {
            engine.finish();
        }
        Ok(())
    }

    fn state_bytes(&self) -> usize {
        self.total_state()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asp::event::{Event, EventType};
    use asp::operator::VecCollector;
    use sea::pattern::{builders, WindowSpec};

    const Q: EventType = EventType(0);
    const V: EventType = EventType(1);

    fn tup(t: EventType, id: u32, min: i64, v: f64) -> Tuple {
        Tuple::from_event(Event::new(t, id, Timestamp::from_minutes(min), v))
    }

    fn seq_qv(w: i64) -> Pattern {
        builders::seq(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(w), vec![])
    }

    use sea::pattern::Pattern;

    #[test]
    fn sorts_out_of_order_union_input() {
        // The unioned stream interleaves types out of ts order across
        // sources; the watermark-driven sort must restore order.
        let mut op = CepOp::new(
            "fcep",
            &seq_qv(10),
            SelectionPolicy::SkipTillAnyMatch,
            false,
        )
        .unwrap();
        let mut col = VecCollector::default();
        op.process(0, tup(V, 1, 5, 2.0), &mut col).unwrap();
        op.process(0, tup(Q, 1, 3, 1.0), &mut col).unwrap();
        op.on_watermark(Timestamp::from_minutes(6), &mut col)
            .unwrap();
        assert_eq!(col.out.len(), 1, "Q@3 → V@5 found despite arrival order");
        assert_eq!(col.out[0].ts, Timestamp::from_minutes(5), "match ts = max");
    }

    #[test]
    fn buffer_holds_events_until_watermark() {
        let mut op = CepOp::new(
            "fcep",
            &seq_qv(10),
            SelectionPolicy::SkipTillAnyMatch,
            false,
        )
        .unwrap();
        let mut col = VecCollector::default();
        op.process(0, tup(Q, 1, 1, 1.0), &mut col).unwrap();
        op.process(0, tup(V, 1, 2, 2.0), &mut col).unwrap();
        assert!(col.out.is_empty(), "nothing emitted before watermark");
        assert!(op.state_bytes() > 0);
        op.on_watermark(Timestamp::from_minutes(3), &mut col)
            .unwrap();
        assert_eq!(col.out.len(), 1);
    }

    #[test]
    fn keyed_mode_separates_partitions() {
        let mut op =
            CepOp::new("fcep", &seq_qv(10), SelectionPolicy::SkipTillAnyMatch, true).unwrap();
        let mut col = VecCollector::default();
        // Q from sensor 1, V from sensor 2: different keys → no match.
        op.process(0, tup(Q, 1, 1, 1.0), &mut col).unwrap();
        op.process(0, tup(V, 2, 2, 2.0), &mut col).unwrap();
        op.on_finish(&mut col).unwrap();
        assert!(col.out.is_empty());

        let mut op = CepOp::new(
            "fcep",
            &seq_qv(10),
            SelectionPolicy::SkipTillAnyMatch,
            false,
        )
        .unwrap();
        let mut col = VecCollector::default();
        op.process(0, tup(Q, 1, 1, 1.0), &mut col).unwrap();
        op.process(0, tup(V, 2, 2, 2.0), &mut col).unwrap();
        op.on_finish(&mut col).unwrap();
        assert_eq!(col.out.len(), 1, "global mode matches across sensors");
    }

    #[test]
    fn memory_limit_reproduces_fcep_failure() {
        let p = builders::seq(
            &[(Q, "Q"), (V, "V"), (EventType(2), "PM")],
            WindowSpec::minutes(1000),
            vec![],
        );
        let mut op = CepOp::new("fcep", &p, SelectionPolicy::SkipTillAnyMatch, false)
            .unwrap()
            .with_memory_limit(32 * 1024);
        let mut col = VecCollector::default();
        let mut failed = false;
        for m in 0..2000 {
            let t = if m % 2 == 0 { Q } else { V };
            if op.process(0, tup(t, 1, m, 1.0), &mut col).is_err()
                || op
                    .on_watermark(Timestamp::from_minutes(m), &mut col)
                    .is_err()
            {
                failed = true;
                break;
            }
        }
        assert!(failed, "partial-match state must blow the budget");
    }

    #[test]
    fn finish_flushes_remaining_buffer() {
        let mut op = CepOp::new(
            "fcep",
            &seq_qv(10),
            SelectionPolicy::SkipTillAnyMatch,
            false,
        )
        .unwrap();
        let mut col = VecCollector::default();
        op.process(0, tup(Q, 1, 1, 1.0), &mut col).unwrap();
        op.process(0, tup(V, 1, 2, 2.0), &mut col).unwrap();
        op.on_finish(&mut col).unwrap();
        assert_eq!(col.out.len(), 1);
        assert_eq!(op.state_bytes(), 0);
        assert_eq!(op.emitted(), 1);
    }

    #[test]
    fn wall_stamp_comes_from_completing_event() {
        let mut op = CepOp::new(
            "fcep",
            &seq_qv(10),
            SelectionPolicy::SkipTillAnyMatch,
            false,
        )
        .unwrap();
        let mut col = VecCollector::default();
        let mut a = tup(Q, 1, 1, 1.0);
        a.wall = 100;
        let mut b = tup(V, 1, 2, 2.0);
        b.wall = 250;
        op.process(0, a, &mut col).unwrap();
        op.process(0, b, &mut col).unwrap();
        op.on_finish(&mut col).unwrap();
        assert_eq!(col.out[0].wall, 250);
    }
}
