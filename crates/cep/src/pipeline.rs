//! Assembles the FlinkCEP-style execution pipeline: union all input
//! streams in front of one unary CEP operator (paper Section 5.1.2).
//!
//! This is the hybrid-system baseline the mapping is evaluated against:
//! every source stream is merged into a single stream (the union the paper
//! identifies as a structural overhead of the approach), the NFA operator
//! runs either globally on one slot or hash-partitioned by sensor id, and
//! a sink collects or counts the matches.

use std::collections::HashMap;

use asp::event::{Event, EventType};
use asp::graph::{Exchange, GraphBuilder, SinkId, SinkMode, SourceConfig};
use asp::operator::UnionOp;

use sea::pattern::Pattern;

use crate::nfa::{AfterMatchSkip, SelectionPolicy, UnsupportedPattern};
use crate::operator::CepOp;

/// Baseline execution knobs (mirrors `cep2asp::PhysicalConfig`).
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Task slots for the CEP operator when `keyed` (FlinkCEP keyBy);
    /// a pattern without a key constraint runs on one slot.
    pub parallelism: usize,
    /// Partition the NFA by sensor id (requires the pattern to constrain
    /// all events to the same id, or matches would be lost).
    pub keyed: bool,
    /// Selection policy for the NFA (the mapping comparison uses
    /// skip-till-any-match).
    pub policy: SelectionPolicy,
    /// After-match skip strategy (default: no skip, as in the paper).
    pub after_match: AfterMatchSkip,
    /// State budget in bytes for the CEP operator.
    pub memory_limit: Option<usize>,
    /// Source pacing (events/second per source instance).
    pub source_rate: Option<f64>,
    /// Punctuated watermark interval (events).
    pub watermark_every: usize,
    /// Bounded out-of-orderness tolerated in the source streams.
    pub watermark_lag: asp::time::Duration,
    /// Collect matches or count only.
    pub collect_output: bool,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            parallelism: 1,
            keyed: false,
            policy: SelectionPolicy::SkipTillAnyMatch,
            after_match: AfterMatchSkip::NoSkip,
            memory_limit: None,
            source_rate: None,
            watermark_every: 256,
            watermark_lag: asp::time::Duration::ZERO,
            collect_output: true,
        }
    }
}

/// Build the union → CEP-operator → sink pipeline for a pattern.
///
/// `sources` maps each of the pattern's input event types to its stream;
/// types appearing more than once in the pattern still contribute one
/// source (the NFA consumes the same stream at every stage).
pub fn build_baseline(
    pattern: &Pattern,
    sources: &HashMap<EventType, Vec<Event>>,
    cfg: &BaselineConfig,
) -> Result<(GraphBuilder, SinkId), UnsupportedPattern> {
    // Verify the pattern compiles before constructing the graph.
    CepOp::new("probe", pattern, cfg.policy, cfg.keyed)?;

    let mut g = GraphBuilder::new();
    // One source per distinct input type, in first-appearance order.
    let mut seen: Vec<EventType> = Vec::new();
    for t in pattern.expr.input_types() {
        if !seen.contains(&t) {
            seen.push(t);
        }
    }
    let mut src_nodes = Vec::with_capacity(seen.len());
    for t in &seen {
        let events = sources.get(t).cloned().unwrap_or_default();
        let mut sc = SourceConfig::new(events)
            .with_watermark_every(cfg.watermark_every)
            .with_watermark_lag(cfg.watermark_lag);
        if let Some(rate) = cfg.source_rate {
            sc = sc.with_rate(rate);
        }
        src_nodes.push(g.source_with(format!("src:{t}"), sc, 1));
    }

    // The structural union in front of the unary operator.
    let unioned = if src_nodes.len() == 1 {
        src_nodes[0]
    } else {
        let ports = src_nodes.len();
        let edges: Vec<_> = src_nodes.iter().map(|n| (*n, Exchange::Forward)).collect();
        let u = g.nary(
            &edges,
            1,
            Box::new(move |_| Box::new(UnionOp::new("∪", ports))),
        );
        g.name_last("union");
        u
    };

    // The single stateful CEP operator.
    let par = if cfg.keyed { cfg.parallelism } else { 1 };
    let exchange = if cfg.keyed {
        Exchange::Hash
    } else {
        Exchange::Rebalance
    };
    let pattern = pattern.clone();
    let (policy, keyed, limit, am) = (cfg.policy, cfg.keyed, cfg.memory_limit, cfg.after_match);
    let cep = g.unary(
        unioned,
        exchange,
        par,
        Box::new(move |_| {
            let mut op = CepOp::new("FCEP", &pattern, policy, keyed)
                .expect("pattern validated above")
                .with_after_match(am);
            if let Some(l) = limit {
                op = op.with_memory_limit(l);
            }
            Box::new(op)
        }),
    );
    g.name_last("FCEP");

    let mode = if cfg.collect_output {
        SinkMode::Collect
    } else {
        SinkMode::CountOnly
    };
    let sink = g.sink_with_mode(cep, Exchange::Rebalance, mode);
    Ok((g, sink))
}

#[cfg(test)]
mod tests {
    use super::*;
    use asp::runtime::{Executor, ExecutorConfig};
    use asp::time::Timestamp;
    use sea::pattern::{builders, WindowSpec};

    const Q: EventType = EventType(0);
    const V: EventType = EventType(1);

    fn ev(t: EventType, id: u32, min: i64, v: f64) -> Event {
        Event::new(t, id, Timestamp::from_minutes(min), v)
    }

    #[test]
    fn baseline_pipeline_end_to_end() {
        let p = builders::seq(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(4), vec![]);
        let sources = HashMap::from([
            (Q, vec![ev(Q, 1, 0, 1.0), ev(Q, 1, 10, 2.0)]),
            (V, vec![ev(V, 2, 2, 3.0), ev(V, 2, 20, 4.0)]),
        ]);
        let (g, sink) = build_baseline(&p, &sources, &BaselineConfig::default()).unwrap();
        let report = Executor::new(ExecutorConfig::default()).run(g).unwrap();
        assert_eq!(report.sink_count(sink), 1, "only (Q@0, V@2) within 4 min");
        let m = &report.sink(sink)[0];
        assert_eq!(m.events.len(), 2);
        assert_eq!(m.ts, Timestamp::from_minutes(2));
    }

    #[test]
    fn unsupported_pattern_is_rejected_at_build() {
        let p = builders::and(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(4), vec![]);
        assert!(build_baseline(&p, &HashMap::new(), &BaselineConfig::default()).is_err());
    }

    #[test]
    fn keyed_baseline_partitions_by_sensor() {
        let p = builders::seq(
            &[(Q, "Q"), (V, "V")],
            WindowSpec::minutes(4),
            vec![sea::predicate::Predicate::same_id(0, 1)],
        );
        let sources = HashMap::from([
            (Q, vec![ev(Q, 1, 0, 1.0), ev(Q, 2, 0, 1.5)]),
            (V, vec![ev(V, 1, 2, 3.0), ev(V, 3, 2, 3.5)]),
        ]);
        let cfg = BaselineConfig {
            keyed: true,
            parallelism: 4,
            ..Default::default()
        };
        let (g, sink) = build_baseline(&p, &sources, &cfg).unwrap();
        let report = Executor::new(ExecutorConfig::default()).run(g).unwrap();
        assert_eq!(report.sink_count(sink), 1, "only sensor 1 has both events");
    }
}
