//! Static cost & state-bound analysis over logical plans.
//!
//! [`analyze`] propagates per-node **output-rate**, **per-window
//! cardinality**, and **worst-case state** estimates bottom-up from
//! [`Annotations`] (source rates, selectivities, per-window peaks — either
//! pattern-derived defaults or measured from streams), and emits
//! `A`-coded diagnostics for the plan shapes the paper's evaluation shows
//! degenerating (Sections 5.2.1–5.2.4): state super-linear in the window
//! size, join output amplification, Kleene/skip-till-any combinatorial
//! growth, unpartitionable global joins, and sliding-window duplication.
//!
//! | code | pathology |
//! |------|-----------|
//! | A001 | worst-case state super-linear in the window size `W` |
//! | A002 | join output rate exceeds its combined input rate by a factor |
//! | A003 | per-window worst-case cardinality is combinatorial |
//! | A004 | global (unpartitioned) join above the parallelism rate limit |
//! | A005 | sliding-window duplication factor `⌈W/s⌉` at or above limit |
//! | A006 | aggregate count threshold unreachable (can never fire) |
//!
//! Three consumers close the loop: the `plan-explain` driver renders the
//! estimates as an `EXPLAIN` tree ([`crate::explain`]), the optimizer
//! orders joins by the same cost formulas
//! ([`crate::optimizer::auto_options`]), and [`runtime_bounds`] turns
//! measured streams into hard [`StaticBounds`] that
//! `asp::runtime::RunReport::check_bounds` verifies against the observed
//! telemetry after every debug-mode run (see `crate::exec::run_pattern`) —
//! a cost model that is wrong by more than its stated margins fails CI.

use std::collections::HashMap;
use std::fmt;

use asp::event::{Event, EventType};
use asp::obs::StaticBounds;
use asp::tuple::Tuple;
use asp::validate::Severity;

use sea::annotations::{max_interval_count, Annotations};
use sea::pattern::{Pattern, WindowSpec};

use crate::diag::{Diag, DiagCode};
use crate::physical::PhysicalConfig;
use crate::plan::{JoinWindowing, LogicalPlan, Partitioning, PlanNode};

/// Thresholds for the pathology diagnostics (all configurable so the
/// severity of "pathological" can track the deployment's capacity).
#[derive(Debug, Clone)]
pub struct AnalyzeConfig {
    /// A002: flag a join whose estimated output rate exceeds this factor
    /// times its combined input rate.
    pub amplification_factor: f64,
    /// A003: flag a node whose worst-case per-window cardinality exceeds
    /// this count.
    pub combinatorial_limit: f64,
    /// A004: flag a global (unpartitioned) join whose combined input rate
    /// exceeds this many tuples/minute.
    pub global_rate_limit: f64,
    /// A005: flag a sliding join whose duplication factor `⌈W/s⌉` reaches
    /// this value.
    pub duplication_limit: f64,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        AnalyzeConfig {
            amplification_factor: 4.0,
            combinatorial_limit: 10_000.0,
            global_rate_limit: 600.0,
            duplication_limit: 8.0,
        }
    }
}

/// Stable identifier of a plan pathology detected by [`analyze`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnalyzeCode {
    /// A001: a node's worst-case state grows super-linearly with the
    /// window size (stacked window-dependent inputs, paper §5.2.2).
    StateSuperLinear,
    /// A002: a join's output rate exceeds its combined input rate by more
    /// than the configured amplification factor (§5.2.1 selectivity
    /// collapse).
    JoinAmplification,
    /// A003: worst-case per-window cardinality is combinatorial
    /// (Kleene/skip-till-any self-join chains, §5.2.2).
    CombinatorialState,
    /// A004: a global join above the rate limit — no parallelization
    /// potential (the Cartesian-product workaround of §4.2.1 / §5.2.3).
    GlobalHighRateJoin,
    /// A005: sliding-window duplication factor `⌈W/s⌉` at or above the
    /// limit; the O1 interval rewrite removes it (§4.3.1).
    WindowDuplication,
    /// A006: an aggregate whose count threshold exceeds the worst-case
    /// per-window input — the plan can never emit.
    DeadAggregate,
}

impl AnalyzeCode {
    /// Every analyzer code, for doc-sync tests and exhaustive rendering.
    pub const ALL: &'static [AnalyzeCode] = &[
        AnalyzeCode::StateSuperLinear,
        AnalyzeCode::JoinAmplification,
        AnalyzeCode::CombinatorialState,
        AnalyzeCode::GlobalHighRateJoin,
        AnalyzeCode::WindowDuplication,
        AnalyzeCode::DeadAggregate,
    ];

    /// The stable `Axxx` string for this code.
    pub fn as_str(&self) -> &'static str {
        match self {
            AnalyzeCode::StateSuperLinear => "A001",
            AnalyzeCode::JoinAmplification => "A002",
            AnalyzeCode::CombinatorialState => "A003",
            AnalyzeCode::GlobalHighRateJoin => "A004",
            AnalyzeCode::WindowDuplication => "A005",
            AnalyzeCode::DeadAggregate => "A006",
        }
    }
}

impl fmt::Display for AnalyzeCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl DiagCode for AnalyzeCode {
    fn as_str(&self) -> &'static str {
        AnalyzeCode::as_str(self)
    }
}

/// One detected pathology, anchored at a plan node. All analyzer findings
/// are warnings (the plan runs, expensively); the shared [`Diag`] carrier
/// keeps rendering uniform with the G/P/S families.
pub type AnalyzeDiagnostic = Diag<AnalyzeCode>;

/// Per-node estimates propagated bottom-up by [`analyze`].
#[derive(Debug, Clone)]
pub struct NodeEstimate {
    /// Expected emission rate, tuples/minute (sliding joins include the
    /// duplicate detections of overlapping windows).
    pub out_rate: f64,
    /// Expected matches among one window instance's content.
    pub per_window: f64,
    /// Worst-case matches per window (combinatorial; predicates ignored —
    /// they only reduce). This is the soundness bound the proptests hold
    /// against the oracle.
    pub window_bound: f64,
    /// Expected retained tuples (steady state).
    pub state_tuples: f64,
    /// Worst-case retained bytes under the annotations' per-window peaks.
    pub state_bytes: f64,
    /// Constituent events per output tuple.
    pub arity: usize,
    /// Polynomial degree of the per-window cardinality in the window size
    /// `W` (a scan is degree 1: `n = rate × W`).
    pub card_degree: u32,
    /// Polynomial degree of the worst-case state in `W`; degree ≥ 2 is
    /// the A001 pathology.
    pub state_degree: u32,
}

/// One analyzed plan node: label, estimates, children.
#[derive(Debug, Clone)]
pub struct AnalyzedNode {
    /// Rendered operator label (mirrors the plan's `EXPLAIN` line).
    pub label: String,
    /// The bottom-up estimates for this node.
    pub estimate: NodeEstimate,
    /// Analyzed children, in plan order.
    pub children: Vec<AnalyzedNode>,
}

/// The result of analyzing a plan: the estimate tree plus diagnostics.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Root of the per-node estimate tree (parallel to the plan tree).
    pub root: AnalyzedNode,
    /// Detected pathologies, in plan walk order.
    pub diagnostics: Vec<AnalyzeDiagnostic>,
    /// Sum of worst-case state bytes across all nodes.
    pub total_state_bytes: f64,
}

/// Conservative per-tuple state cost: the tuple header, the constituent
/// event storage with 2× capacity headroom, plus a map/ordering-structure
/// entry allowance.
pub fn tuple_state_bytes(arity: usize) -> f64 {
    (std::mem::size_of::<Tuple>() + 2 * arity.max(1) * std::mem::size_of::<Event>() + 64) as f64
}

/// Analyze a plan bottom-up under the given annotations.
pub fn analyze(plan: &LogicalPlan, ann: &Annotations, cfg: &AnalyzeConfig) -> Analysis {
    let mut diagnostics = Vec::new();
    let root = analyze_node(&plan.root, plan.window, ann, cfg, &mut diagnostics);
    let total_state_bytes = sum_state(&root);
    Analysis {
        root,
        diagnostics,
        total_state_bytes,
    }
}

fn sum_state(n: &AnalyzedNode) -> f64 {
    n.estimate.state_bytes + n.children.iter().map(sum_state).sum::<f64>()
}

fn analyze_node(
    node: &PlanNode,
    w: WindowSpec,
    ann: &Annotations,
    cfg: &AnalyzeConfig,
    diags: &mut Vec<AnalyzeDiagnostic>,
) -> AnalyzedNode {
    let w_min = w.size_minutes();
    match node {
        PlanNode::Scan {
            type_name,
            leaf,
            var,
            ..
        } => {
            let rate = ann.rate(leaf.etype) * ann.selectivity(*var);
            AnalyzedNode {
                label: format!("Scan {type_name} [e{}]", var + 1),
                estimate: NodeEstimate {
                    out_rate: rate,
                    per_window: rate * w_min,
                    window_bound: ann.max_per_window(leaf.etype),
                    state_tuples: 0.0,
                    state_bytes: 0.0,
                    arity: 1,
                    card_degree: 1,
                    state_degree: 0,
                },
                children: Vec::new(),
            }
        }
        PlanNode::Join {
            left,
            right,
            windowing,
            partitioning,
            order_pairs,
            predicates,
            ..
        } => {
            let l = analyze_node(left, w, ann, cfg, diags);
            let r = analyze_node(right, w, ann, cfg, diags);
            let label = format!("Join {windowing} [{partitioning}]");
            let le = &l.estimate;
            let re = &r.estimate;

            // Ordering constraints halve the candidate space each; an
            // interval join with a non-negative lower bound already
            // encodes the primary SEQ order, so one pair comes for free.
            let implied = match windowing {
                JoinWindowing::Interval { lower, .. }
                    if lower.millis() >= 0 && !order_pairs.is_empty() =>
                {
                    1
                }
                _ => 0,
            };
            let sel = ann.cross_selectivity.powi(predicates.len() as i32)
                * 0.5f64.powi((order_pairs.len() - implied) as i32);

            let (out_rate, per_window, state_tuples) = match windowing {
                JoinWindowing::Sliding { size, slide } => {
                    let per_window = le.per_window * re.per_window * sel;
                    let slide_min = slide.millis().max(1) as f64 / 60_000.0;
                    let retention_min = (size.millis() + slide.millis()) as f64 / 60_000.0;
                    (
                        per_window / slide_min,
                        per_window,
                        (le.out_rate + re.out_rate) * retention_min,
                    )
                }
                JoinWindowing::Interval { lower, upper } => {
                    let reach_min = (upper.millis() - lower.millis()).max(0) as f64 / 60_000.0;
                    let out_rate = le.out_rate * re.out_rate * reach_min * sel;
                    let per_window = le.per_window
                        * re.per_window
                        * (reach_min / w_min.max(1e-9)).min(1.0)
                        * sel;
                    let l_hold = upper.millis().max(0) as f64 / 60_000.0;
                    let r_hold = (-lower.millis()).max(0) as f64 / 60_000.0;
                    (
                        out_rate,
                        per_window,
                        le.out_rate * l_hold + re.out_rate * r_hold,
                    )
                }
            };
            let window_bound = le.window_bound * re.window_bound;
            // Worst case both sides hold ~two windows' worth of peak input.
            let state_bytes = 2.0
                * (le.window_bound * tuple_state_bytes(le.arity)
                    + re.window_bound * tuple_state_bytes(re.arity));
            let card_degree = le.card_degree + re.card_degree;
            let state_degree = le
                .state_degree
                .max(re.state_degree)
                .max(le.card_degree)
                .max(re.card_degree);

            if state_degree >= 2 {
                diags.push(AnalyzeDiagnostic {
                    code: AnalyzeCode::StateSuperLinear,
                    severity: Severity::Warning,
                    node: label.clone(),
                    message: format!(
                        "retained input grows ~W^{state_degree} with the window size \
                         (worst case {} at the annotated peaks); reorder or pre-filter \
                         the window-dependent side",
                        human_bytes(state_bytes)
                    ),
                });
            }
            let in_rate = le.out_rate + re.out_rate;
            if in_rate > 0.0 && out_rate > cfg.amplification_factor * in_rate {
                diags.push(AnalyzeDiagnostic {
                    code: AnalyzeCode::JoinAmplification,
                    severity: Severity::Warning,
                    node: label.clone(),
                    message: format!(
                        "estimated output {out_rate:.1}/min exceeds {:.0}× the combined \
                         input rate {in_rate:.1}/min; tighten predicates or join the \
                         rarer streams first",
                        cfg.amplification_factor
                    ),
                });
            }
            if window_bound > cfg.combinatorial_limit {
                diags.push(AnalyzeDiagnostic {
                    code: AnalyzeCode::CombinatorialState,
                    severity: Severity::Warning,
                    node: label.clone(),
                    message: format!(
                        "worst-case per-window cardinality {window_bound:.0} exceeds \
                         {:.0} (skip-till-any combinatorial growth)",
                        cfg.combinatorial_limit
                    ),
                });
            }
            if matches!(partitioning, Partitioning::Global) && in_rate > cfg.global_rate_limit {
                diags.push(AnalyzeDiagnostic {
                    code: AnalyzeCode::GlobalHighRateJoin,
                    severity: Severity::Warning,
                    node: label.clone(),
                    message: format!(
                        "global join at {in_rate:.0} tuples/min has no parallelization \
                         potential; provide an equi-key (O3) if the pattern allows"
                    ),
                });
            }
            if let JoinWindowing::Sliding { size, slide } = windowing {
                let dup = WindowSpec {
                    size: *size,
                    slide: *slide,
                }
                .duplication_factor();
                if dup >= cfg.duplication_limit {
                    diags.push(AnalyzeDiagnostic {
                        code: AnalyzeCode::WindowDuplication,
                        severity: Severity::Warning,
                        node: label.clone(),
                        message: format!(
                            "each match is re-emitted in up to ⌈W/s⌉ = {dup:.0} \
                             overlapping windows; the O1 interval rewrite is \
                             duplicate-free"
                        ),
                    });
                }
            }

            AnalyzedNode {
                label,
                estimate: NodeEstimate {
                    out_rate,
                    per_window,
                    window_bound,
                    state_tuples,
                    state_bytes,
                    arity: le.arity + re.arity,
                    card_degree,
                    state_degree,
                },
                children: vec![l, r],
            }
        }
        PlanNode::Union { inputs } => {
            let children: Vec<AnalyzedNode> = inputs
                .iter()
                .map(|i| analyze_node(i, w, ann, cfg, diags))
                .collect();
            let est = NodeEstimate {
                out_rate: children.iter().map(|c| c.estimate.out_rate).sum(),
                per_window: children.iter().map(|c| c.estimate.per_window).sum(),
                window_bound: children.iter().map(|c| c.estimate.window_bound).sum(),
                state_tuples: 0.0,
                state_bytes: 0.0,
                arity: children.iter().map(|c| c.estimate.arity).max().unwrap_or(1),
                card_degree: children
                    .iter()
                    .map(|c| c.estimate.card_degree)
                    .max()
                    .unwrap_or(0),
                state_degree: children
                    .iter()
                    .map(|c| c.estimate.state_degree)
                    .max()
                    .unwrap_or(0),
            };
            AnalyzedNode {
                label: "Union".to_string(),
                estimate: est,
                children,
            }
        }
        PlanNode::Aggregate {
            input,
            m,
            window,
            partitioning,
        } => {
            let c = analyze_node(input, w, ann, cfg, diags);
            let label = format!("Aggregate count ≥ {m} [{partitioning}]");
            let ce = &c.estimate;
            let keys = match partitioning {
                Partitioning::ByKey => ann.key_fanout.max(1.0),
                Partitioning::Global => 1.0,
            };
            let lambda = ce.per_window;
            let qualify = ((lambda / keys) / (*m as f64).max(1.0)).min(1.0);
            let per_window = (keys * qualify).min(lambda.max(keys.min(1.0)));
            let dup = window.duplication_factor();
            let window_bound = if ce.window_bound < *m as f64 {
                0.0
            } else {
                match partitioning {
                    Partitioning::ByKey => keys.min(ce.window_bound),
                    Partitioning::Global => 1.0,
                }
            };
            if ce.window_bound < *m as f64 {
                diags.push(AnalyzeDiagnostic {
                    code: AnalyzeCode::DeadAggregate,
                    severity: Severity::Warning,
                    node: label.clone(),
                    message: format!(
                        "count threshold {m} exceeds the worst-case per-window input \
                         {:.0}; the aggregate can never fire",
                        ce.window_bound
                    ),
                });
            }
            // One accumulator per open (pane, key); worst case every
            // per-window input is a distinct key.
            let state_bytes = dup * ce.window_bound.max(keys) * 512.0;
            AnalyzedNode {
                label,
                estimate: NodeEstimate {
                    out_rate: per_window * window.windows_per_minute(),
                    per_window,
                    window_bound,
                    state_tuples: dup * keys,
                    state_bytes,
                    arity: 1,
                    card_degree: 0,
                    state_degree: ce.card_degree.max(ce.state_degree).max(1),
                },
                children: vec![c],
            }
        }
        PlanNode::NextOccurrence {
            trigger,
            marker,
            w: hold,
        } => {
            let c = analyze_node(trigger, w, ann, cfg, diags);
            let label = format!("NextOccurrence(¬{})", marker.type_name);
            let ce = &c.estimate;
            let hold_min = hold.millis().max(0) as f64 / 60_000.0;
            let marker_rate = ann.rate(marker.etype);
            let state_bytes = 2.0
                * (ce.window_bound * tuple_state_bytes(ce.arity)
                    + ann.max_per_window(marker.etype) * 48.0);
            AnalyzedNode {
                label,
                estimate: NodeEstimate {
                    out_rate: ce.out_rate,
                    per_window: ce.per_window,
                    window_bound: ce.window_bound,
                    state_tuples: (ce.out_rate + marker_rate) * hold_min,
                    state_bytes,
                    arity: ce.arity,
                    card_degree: ce.card_degree,
                    state_degree: ce.state_degree.max(ce.card_degree).max(1),
                },
                children: vec![c],
            }
        }
        PlanNode::Project { input, layout } => {
            // A pure stateless reorder: every estimate passes through.
            let c = analyze_node(input, w, ann, cfg, diags);
            let cols: Vec<String> = layout.iter().map(|v| format!("e{}", v + 1)).collect();
            AnalyzedNode {
                label: format!("Project [{}]", cols.join(", ")),
                estimate: NodeEstimate {
                    state_tuples: 0.0,
                    state_bytes: 0.0,
                    ..c.estimate.clone()
                },
                children: vec![c],
            }
        }
    }
}

/// Render a byte count compactly (`1.5 KiB`, `3.2 MiB`, …).
pub fn human_bytes(b: f64) -> String {
    if b >= 1024.0 * 1024.0 * 1024.0 {
        format!("{:.1} GiB", b / (1024.0 * 1024.0 * 1024.0))
    } else if b >= 1024.0 * 1024.0 {
        format!("{:.1} MiB", b / (1024.0 * 1024.0))
    } else if b >= 1024.0 {
        format!("{:.1} KiB", b / 1024.0)
    } else {
        format!("{b:.0} B")
    }
}

// ---------------------------------------------------------------------------
// Hard runtime bounds from concrete streams (the falsifiability loop)
// ---------------------------------------------------------------------------

/// Fixed state allowance added once per run: operator scratch, per-window
/// bookkeeping, and watermark-skew slack the per-tuple terms don't model.
const STATE_ALLOWANCE_BYTES: f64 = 64.0 * 1024.0;

/// Compute hard per-run bounds — total sink emissions and total peak
/// operator state — for executing `plan` over exactly these streams.
///
/// Unlike the [`analyze`] estimates (expectations under annotations),
/// these are worst-case counts over the *actual* events: every emitted
/// match spans `< W` (the span guard), sliding joins re-emit at most
/// `⌈W/s⌉` times per containing window, and each operator retains at most
/// ~two windows' worth of peak input (a documented 2× margin absorbs
/// watermark/batch skew). `RunReport::check_bounds` compares them against
/// the observed telemetry; a violation falsifies the cost model.
pub fn runtime_bounds(
    plan: &LogicalPlan,
    _pattern: &Pattern,
    sources: &HashMap<EventType, Vec<Event>>,
    phys: &PhysicalConfig,
) -> StaticBounds {
    let mut ts_by_type: HashMap<EventType, Vec<i64>> = HashMap::new();
    let mut ts_by_id: HashMap<EventType, HashMap<u32, Vec<i64>>> = HashMap::new();
    for (t, evs) in sources {
        let mut ts: Vec<i64> = evs.iter().map(|e| e.ts.millis()).collect();
        ts.sort_unstable();
        ts_by_type.insert(*t, ts);
        let per_id = ts_by_id.entry(*t).or_default();
        for e in evs {
            per_id.entry(e.id).or_default().push(e.ts.millis());
        }
        for ts in per_id.values_mut() {
            ts.sort_unstable();
        }
    }
    let w_ms = plan.window.size.millis().max(1);
    let s_ms = plan.window.slide.millis().max(1);
    let ctx = BoundCtx {
        ts: &ts_by_type,
        ts_by_id: &ts_by_id,
        w_ms,
        s_ms,
    };
    let mut sink = total_bound(&plan.root, &ctx);
    if phys.dedup_output {
        // Output dedup only ever reduces emissions; the state term below
        // accounts for its table.
        sink = sink.min(f64::MAX);
    }
    let mut state = STATE_ALLOWANCE_BYTES;
    state_bound(&plan.root, &ctx, &mut state);
    if phys.dedup_output {
        let arity = plan.root.layout().len().max(1);
        state += total_bound(&plan.root, &ctx) * dedup_entry_bytes(arity);
    }
    StaticBounds {
        max_sink_tuples: Some(ceil_u64(sink)),
        max_total_state_bytes: Some(ceil_u64(state)),
        max_keyed_run: Some(ceil_u64(keyed_run_bound(&plan.root, &ctx))),
        origin: "cep2asp::analyze::runtime_bounds".to_string(),
    }
}

fn ceil_u64(x: f64) -> u64 {
    if x >= u64::MAX as f64 {
        u64::MAX
    } else {
        x.max(0.0).ceil() as u64
    }
}

struct BoundCtx<'a> {
    ts: &'a HashMap<EventType, Vec<i64>>,
    /// Timestamps split by producer id within each type — the granularity
    /// of O3 key partitioning ([`keyed_run_bound`]).
    ts_by_id: &'a HashMap<EventType, HashMap<u32, Vec<i64>>>,
    w_ms: i64,
    s_ms: i64,
}

impl BoundCtx<'_> {
    fn count(&self, t: EventType) -> f64 {
        self.ts.get(&t).map_or(0.0, |v| v.len() as f64)
    }

    /// Events of `t` strictly inside `(center − W, center + W)` — where
    /// every other constituent of a match anchored at `center` must lie
    /// (the span guard enforces `span < W`).
    fn near(&self, t: EventType, center: i64) -> f64 {
        let Some(ts) = self.ts.get(&t) else {
            return 0.0;
        };
        let lo = ts.partition_point(|x| *x <= center - self.w_ms);
        let hi = ts.partition_point(|x| *x < center + self.w_ms);
        (hi - lo) as f64
    }

    /// Peak events of the given types in any interval of ~two windows —
    /// bounds what one operator side can retain at once.
    fn peak_two_windows(&self, types: &[EventType]) -> f64 {
        let mut merged: Vec<i64> = Vec::new();
        for t in types {
            if let Some(ts) = self.ts.get(t) {
                merged.extend_from_slice(ts);
            }
        }
        merged.sort_unstable();
        max_interval_count(&merged, 2 * self.w_ms + self.s_ms) as f64
    }

    /// Total events of type `t` carrying the most frequent producer id —
    /// the hard ceiling on one key's run under O3 partitioning.
    fn max_count_per_id(&self, t: EventType) -> f64 {
        self.ts_by_id.get(&t).map_or(0.0, |per_id| {
            per_id
                .values()
                .map(|ts| ts.len() as f64)
                .fold(0.0, f64::max)
        })
    }
}

fn dedup_entry_bytes(arity: usize) -> f64 {
    (64 + arity * std::mem::size_of::<Event>()) as f64
}

/// Product of the sliding duplication factors of every sliding join in the
/// subtree — the worst-case re-emission multiplicity of one distinct match.
fn dup_product(node: &PlanNode) -> f64 {
    match node {
        PlanNode::Scan { .. } => 1.0,
        PlanNode::Join {
            left,
            right,
            windowing,
            ..
        } => {
            let own = match windowing {
                JoinWindowing::Sliding { size, slide } => WindowSpec {
                    size: *size,
                    slide: *slide,
                }
                .duplication_factor(),
                JoinWindowing::Interval { .. } => 1.0,
            };
            own * dup_product(left) * dup_product(right)
        }
        PlanNode::Union { inputs } => inputs.iter().map(dup_product).fold(1.0, f64::max),
        PlanNode::Aggregate { input, .. } => dup_product(input),
        PlanNode::NextOccurrence { trigger, .. } => dup_product(trigger),
        PlanNode::Project { input, .. } => dup_product(input),
    }
}

/// Does the subtree consist only of scans, joins, and next-occurrence
/// nodes (the shapes the anchor formula covers)?
fn anchorable(node: &PlanNode) -> bool {
    match node {
        PlanNode::Scan { .. } => true,
        PlanNode::Join { left, right, .. } => anchorable(left) && anchorable(right),
        PlanNode::NextOccurrence { trigger, .. } => anchorable(trigger),
        PlanNode::Project { input, .. } => anchorable(input),
        PlanNode::Union { .. } | PlanNode::Aggregate { .. } => false,
    }
}

/// Upper bound on total tuples the node emits over the whole run.
fn total_bound(node: &PlanNode, ctx: &BoundCtx<'_>) -> f64 {
    match node {
        PlanNode::Scan { etype, .. } => ctx.count(*etype),
        PlanNode::Union { inputs } => inputs.iter().map(|i| total_bound(i, ctx)).sum(),
        PlanNode::Aggregate { input, window, .. } => {
            // ≤ one emission per (window, key) with ≥ 1 qualifying input:
            // Σ_w keys_w ≤ Σ_w inputs_w = total_inputs × ⌈W/s⌉.
            total_bound(input, ctx) * window.duplication_factor()
        }
        PlanNode::NextOccurrence { trigger, .. } => total_bound(trigger, ctx),
        PlanNode::Project { input, .. } => total_bound(input, ctx),
        PlanNode::Join { left, right, .. } => {
            if anchorable(node) {
                anchor_bound(node, ctx) * dup_product(node)
            } else {
                // Exotic shape (union/aggregate under a join): loose but
                // sound product of child totals.
                total_bound(left, ctx) * total_bound(right, ctx) * dup_product(node)
            }
        }
    }
}

/// Distinct-combination bound for a pure join subtree: anchor on each
/// event of the rarest scanned type; all other constituents must fall
/// strictly within `±W` of it.
fn anchor_bound(node: &PlanNode, ctx: &BoundCtx<'_>) -> f64 {
    let scans = node.scans();
    let mut types: Vec<EventType> = Vec::new();
    for s in &scans {
        if let PlanNode::Scan { etype, .. } = s {
            types.push(*etype);
        }
    }
    if types.is_empty() {
        return 0.0;
    }
    let anchor = types
        .iter()
        .enumerate()
        .min_by(|a, b| ctx.count(*a.1).total_cmp(&ctx.count(*b.1)))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let Some(anchor_ts) = ctx.ts.get(&types[anchor]) else {
        return 0.0;
    };
    let mut total = 0.0;
    for &e in anchor_ts {
        let mut combos = 1.0;
        for (i, t) in types.iter().enumerate() {
            if i == anchor {
                continue;
            }
            combos *= ctx.near(*t, e);
        }
        total += combos;
    }
    total
}

/// Upper bound on tuples a downstream operator can hold from this input
/// at once. Scans retain at most ~two windows' worth of raw events before
/// eviction; anything deeper (a sub-join's pair stream, an aggregate's
/// qualifier stream) is bounded by its total emissions over the whole run
/// — loose, but sound for arbitrary rates and watermark skew.
fn retained_bound(node: &PlanNode, ctx: &BoundCtx<'_>) -> f64 {
    match node {
        PlanNode::Scan { etype, .. } => ctx.peak_two_windows(&[*etype]),
        PlanNode::Union { inputs } => inputs.iter().map(|i| retained_bound(i, ctx)).sum(),
        PlanNode::Project { input, .. } => retained_bound(input, ctx),
        _ => total_bound(node, ctx),
    }
}

/// Upper bound on the longest per-key run (`asp`'s `KeyedSide`: the tuples
/// buffered under one partition key on one side of one join instance) any
/// join in the subtree can build.
///
/// A [`Partitioning::ByKey`] join over a raw scan is re-keyed on the event
/// id (O3), so one run holds only one producer's events and is ceiled by
/// the busiest id's total count; a [`Partitioning::Global`] join runs
/// under a single uniform key, so the run *is* the whole side. Deeper
/// inputs (sub-joins, unions) carry keys this model doesn't track and are
/// ceiled by their total emissions.
///
/// Unlike the byte model, no windowed ("~two panes' worth") tightening is
/// applied: eviction only runs on watermarks, and the merged watermark of
/// a binary join is the *minimum* over its input channels — with
/// cross-source startup skew one side can buffer its entire stream before
/// the other channel's first punctuation arrives, so any timing-based run
/// bound is falsified by small inputs. Only the count ceilings are hard.
fn keyed_run_bound(node: &PlanNode, ctx: &BoundCtx<'_>) -> f64 {
    match node {
        PlanNode::Scan { .. } => 0.0,
        PlanNode::Union { inputs } => inputs
            .iter()
            .map(|i| keyed_run_bound(i, ctx))
            .fold(0.0, f64::max),
        PlanNode::Aggregate { input, .. } => keyed_run_bound(input, ctx),
        PlanNode::NextOccurrence { trigger, .. } => keyed_run_bound(trigger, ctx),
        PlanNode::Project { input, .. } => keyed_run_bound(input, ctx),
        PlanNode::Join {
            left,
            right,
            partitioning,
            ..
        } => {
            let mut worst = 0.0f64;
            for side in [left.as_ref(), right.as_ref()] {
                let run = match (partitioning, side) {
                    (Partitioning::ByKey, PlanNode::Scan { etype, .. }) => {
                        ctx.max_count_per_id(*etype)
                    }
                    (Partitioning::Global, PlanNode::Scan { etype, .. }) => ctx.count(*etype),
                    _ => total_bound(side, ctx),
                };
                worst = worst.max(run).max(keyed_run_bound(side, ctx));
            }
            worst
        }
    }
}

/// Accumulate the worst-case peak state (bytes) of every stateful operator
/// the physical planner derives from this subtree.
fn state_bound(node: &PlanNode, ctx: &BoundCtx<'_>, acc: &mut f64) {
    match node {
        PlanNode::Scan { .. } => {}
        PlanNode::Project { input, .. } => state_bound(input, ctx, acc),
        PlanNode::Union { inputs } => inputs.iter().for_each(|i| state_bound(i, ctx, acc)),
        PlanNode::Join { left, right, .. } => {
            for side in [left.as_ref(), right.as_ref()] {
                let arity = side.layout().len().max(1);
                // 2× margin over the retained-input peak absorbs
                // watermark and batch skew.
                *acc += 2.0 * retained_bound(side, ctx) * tuple_state_bytes(arity);
                // An intermediate dedup is spliced in front of a further
                // join when the side is itself a sliding join; its table
                // holds at most every distinct emission.
                if matches!(
                    side,
                    PlanNode::Join {
                        windowing: JoinWindowing::Sliding { .. },
                        ..
                    }
                ) {
                    *acc += total_bound(side, ctx) * dedup_entry_bytes(arity);
                }
                state_bound(side, ctx, acc);
            }
            // Per-open-window bookkeeping.
            *acc += dup_product(node) * 256.0;
        }
        PlanNode::Aggregate { input, window, .. } => {
            // One accumulator per open (pane, key); keys ≤ inputs.
            *acc += window.duplication_factor() * retained_bound(input, ctx) * 512.0;
            state_bound(input, ctx, acc);
        }
        PlanNode::NextOccurrence {
            trigger, marker, ..
        } => {
            let arity = trigger.layout().len().max(1);
            *acc += 2.0
                * (retained_bound(trigger, ctx) * tuple_state_bytes(arity)
                    + ctx.peak_two_windows(&[marker.etype]) * 48.0);
            state_bound(trigger, ctx, acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::{translate, MapperOptions};
    use asp::event::Attr;
    use asp::time::Timestamp;
    use sea::pattern::{builders, WindowSpec};
    use sea::predicate::{CmpOp, Predicate};

    const Q: EventType = EventType(0);
    const V: EventType = EventType(1);
    const PM: EventType = EventType(2);

    fn codes(d: &[AnalyzeDiagnostic]) -> Vec<AnalyzeCode> {
        d.iter().map(|x| x.code).collect()
    }

    fn seqn(n: usize, w: i64) -> Pattern {
        let types = [(Q, "Q"), (V, "V"), (PM, "PM"), (EventType(3), "T3")];
        builders::seq(&types[..n], WindowSpec::minutes(w), vec![])
    }

    #[test]
    fn scan_estimates_fold_rate_and_selectivity() {
        let p = builders::seq(
            &[(Q, "Q"), (V, "V")],
            WindowSpec::minutes(4),
            vec![Predicate::threshold(0, Attr::Value, CmpOp::Le, 50.0)],
        );
        let plan = translate(&p, &MapperOptions::o1()).expect("plan");
        let ann = Annotations::for_pattern(&p).with_rate(Q, 10.0);
        let a = analyze(&plan, &ann, &AnalyzeConfig::default());
        let scan_q = &a.root.children[0];
        assert!(scan_q.label.contains("Scan Q"), "{}", scan_q.label);
        // rate 10 × default 0.5 selectivity (one threshold term).
        assert!((scan_q.estimate.out_rate - 5.0).abs() < 1e-9);
        assert!((scan_q.estimate.per_window - 20.0).abs() < 1e-9);
    }

    #[test]
    fn binary_join_state_is_linear_no_a001() {
        let p = seqn(2, 5);
        let plan = translate(&p, &MapperOptions::o1()).expect("plan");
        let ann = Annotations::for_pattern(&p);
        let a = analyze(&plan, &ann, &AnalyzeConfig::default());
        assert_eq!(a.root.estimate.state_degree, 1);
        assert!(!codes(&a.diagnostics).contains(&AnalyzeCode::StateSuperLinear));
    }

    #[test]
    fn stacked_joins_trip_a001_super_linear_state() {
        let p = seqn(3, 5);
        let plan = translate(&p, &MapperOptions::o1()).expect("plan");
        let ann = Annotations::for_pattern(&p);
        let a = analyze(&plan, &ann, &AnalyzeConfig::default());
        assert!(
            codes(&a.diagnostics).contains(&AnalyzeCode::StateSuperLinear),
            "{:?}",
            a.diagnostics
        );
    }

    #[test]
    fn high_rates_trip_a002_amplification() {
        let p = seqn(2, 5);
        let plan = translate(&p, &MapperOptions::o1()).expect("plan");
        let ann = Annotations::for_pattern(&p)
            .with_rate(Q, 100.0)
            .with_rate(V, 100.0);
        let a = analyze(&plan, &ann, &AnalyzeConfig::default());
        // 100 × 100 × 5 = 50 000/min out vs 200/min in.
        assert!(
            codes(&a.diagnostics).contains(&AnalyzeCode::JoinAmplification),
            "{:?}",
            a.diagnostics
        );
    }

    #[test]
    fn kleene_chain_trips_a003_combinatorial() {
        let p = builders::iter(V, "V", 4, WindowSpec::minutes(5), vec![]);
        let plan = translate(&p, &MapperOptions::plain()).expect("plan");
        let ann = Annotations::for_pattern(&p).with_rate(V, 60.0);
        let a = analyze(&plan, &ann, &AnalyzeConfig::default());
        assert!(
            codes(&a.diagnostics).contains(&AnalyzeCode::CombinatorialState),
            "{:?}",
            a.diagnostics
        );
    }

    #[test]
    fn sliding_mapping_trips_a005_duplication() {
        let p = seqn(2, 10); // slide 1min → dup factor 10
        let plan = translate(&p, &MapperOptions::plain()).expect("plan");
        let ann = Annotations::for_pattern(&p);
        let a = analyze(&plan, &ann, &AnalyzeConfig::default());
        assert!(
            codes(&a.diagnostics).contains(&AnalyzeCode::WindowDuplication),
            "{:?}",
            a.diagnostics
        );
        // The O1 plan is duplicate-free: no A005.
        let plan = translate(&p, &MapperOptions::o1()).expect("plan");
        let a = analyze(&plan, &ann, &AnalyzeConfig::default());
        assert!(!codes(&a.diagnostics).contains(&AnalyzeCode::WindowDuplication));
    }

    #[test]
    fn unreachable_aggregate_trips_a006() {
        let p = builders::kleene_plus(V, "V", 50, WindowSpec::minutes(4));
        let plan = translate(&p, &MapperOptions::o2()).expect("plan");
        // Peak 2 × 1/min × 4min = 8 < 50.
        let ann = Annotations::for_pattern(&p);
        let a = analyze(&plan, &ann, &AnalyzeConfig::default());
        assert!(
            codes(&a.diagnostics).contains(&AnalyzeCode::DeadAggregate),
            "{:?}",
            a.diagnostics
        );
        assert_eq!(a.root.estimate.window_bound, 0.0);
    }

    #[test]
    fn runtime_bounds_cover_a_concrete_run() {
        let p = seqn(2, 4);
        let plan = translate(&p, &MapperOptions::o1()).expect("plan");
        let mut sources: HashMap<EventType, Vec<Event>> = HashMap::new();
        for t in [Q, V] {
            sources.insert(
                t,
                (0..30)
                    .map(|i| Event::new(t, 1, Timestamp(i * 60_000), 10.0))
                    .collect(),
            );
        }
        let b = runtime_bounds(&plan, &p, &sources, &PhysicalConfig::default());
        let sink = b.max_sink_tuples.expect("sink bound");
        // Each Q pairs with V's strictly within ±4min: at most 7 each →
        // bound ≥ actual matches (3 per Q interiorly) and finite.
        assert!(sink >= 30 * 3, "sink bound {sink}");
        assert!(
            sink <= 30 * 8,
            "sink bound should stay near 7/anchor, got {sink}"
        );
        assert!(b.max_total_state_bytes.expect("state") > 0);
    }

    #[test]
    fn codes_render_stably() {
        let strs: Vec<&str> = AnalyzeCode::ALL.iter().map(|c| c.as_str()).collect();
        assert_eq!(strs, ["A001", "A002", "A003", "A004", "A005", "A006"]);
    }
}
