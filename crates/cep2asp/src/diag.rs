//! One diagnostic-reporting path for every static-analysis family.
//!
//! The workspace carries five families of coded diagnostics — `G` (graph
//! validation, `asp::validate`), `P` (plan lints, [`crate::lint`]), `A`
//! (cost pathologies, [`mod@crate::analyze`]), `S` (schema/partition
//! safety, [`mod@crate::typecheck`]), and `M` (migration safety,
//! [`mod@crate::migrate`]). They used to render through per-family
//! ad-hoc `Display` impls; [`Diag`] is the single carrier — code,
//! severity, anchoring node, message — with one `Display` impl, so every
//! family prints identically:
//!
//! ```text
//! P012 error at Join: span guard differs
//! ```
//!
//! (`asp::validate::Diagnostic` lives below this crate and keeps its own
//! struct, but its format string is the same and its `Code` implements
//! [`DiagCode`] here so callers can render mixed findings uniformly.)

use std::fmt;

use asp::validate::Severity;

/// A stable diagnostic code: renders as a short family-prefixed
/// identifier (`G005`, `P004`, `A001`, `S003`, …).
pub trait DiagCode {
    /// The stable code string.
    fn as_str(&self) -> &'static str;
}

impl DiagCode for asp::validate::Code {
    fn as_str(&self) -> &'static str {
        asp::validate::Code::as_str(self)
    }
}

/// One coded finding, anchored at a node, across all analysis families.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag<C> {
    /// Stable identifier of the violated rule.
    pub code: C,
    /// Error (the plan/graph is wrong) or warning (it runs, expensively).
    pub severity: Severity,
    /// The node kind or label the finding is anchored at.
    pub node: String,
    /// Human-readable explanation.
    pub message: String,
}

impl<C> Diag<C> {
    /// A new diagnostic with explicit severity.
    pub fn new(
        code: C,
        severity: Severity,
        node: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diag {
            code,
            severity,
            node: node.into(),
            message: message.into(),
        }
    }

    /// An error-severity diagnostic.
    pub fn error(code: C, node: impl Into<String>, message: impl Into<String>) -> Self {
        Diag::new(code, Severity::Error, node, message)
    }

    /// A warning-severity diagnostic.
    pub fn warning(code: C, node: impl Into<String>, message: impl Into<String>) -> Self {
        Diag::new(code, Severity::Warning, node, message)
    }
}

impl<C: DiagCode> fmt::Display for Diag<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} at {}: {}",
            self.code.as_str(),
            self.severity,
            self.node,
            self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::AnalyzeCode;
    use crate::lint::LintCode;
    use crate::typecheck::TypeCode;

    #[test]
    fn all_families_render_through_one_format() {
        let p = Diag::error(LintCode::SpanMismatch, "Join", "span guard differs");
        assert_eq!(p.to_string(), "P012 error at Join: span guard differs");
        let a = Diag::warning(AnalyzeCode::StateSuperLinear, "Join", "state grows as W^2");
        assert_eq!(a.to_string(), "A001 warning at Join: state grows as W^2");
        let s = Diag::error(TypeCode::JoinKeyNotCoPartitioned, "Join", "keys unrelated");
        assert_eq!(s.to_string(), "S005 error at Join: keys unrelated");
    }

    #[test]
    fn graph_codes_implement_diag_code() {
        // G diagnostics stay in `asp`, but their codes join the shared
        // vocabulary so mixed reports can render them identically.
        let code = *asp::validate::Code::ALL.first().expect("non-empty");
        assert!(DiagCode::as_str(&code).starts_with('G'));
    }
}
