//! One-call convenience layer: pattern in, matches out.
//!
//! Wraps translate → physical build → threaded execution and offers the
//! canonical deduplicated match view used for semantic-equivalence checks
//! (Section 4's equivalence is modulo the duplicates that overlapping
//! sliding windows produce).

use std::collections::HashMap;

use asp::event::{Event, EventType};
use asp::graph::SinkId;
use asp::runtime::{Executor, ExecutorConfig, RunReport};
use asp::tuple::{MatchKey, Tuple};

use sea::pattern::Pattern;

use crate::physical::{build_pipeline, BuildError, PhysicalConfig};
use crate::plan::LogicalPlan;
use crate::translate::{translate, MapperOptions, TranslateError};
use crate::typecheck::{typecheck, TypeDiagnostic};

/// Everything that can go wrong between a pattern and its results.
#[derive(Debug)]
pub enum ExecError {
    /// The pattern could not be mapped to a logical plan.
    Translate(TranslateError),
    /// The logical plan failed the static schema/partition-safety check
    /// (`S`-code diagnostics) before lowering.
    Typecheck(Vec<TypeDiagnostic>),
    /// The logical plan could not be lowered to a dataflow graph.
    Build(BuildError),
    /// The dataflow run itself failed (validation or execution).
    Pipeline(asp::PipelineError),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Translate(e) => write!(f, "{e}"),
            ExecError::Typecheck(ds) => {
                let msgs: Vec<String> = ds.iter().map(ToString::to_string).collect();
                write!(f, "plan failed schema typecheck: {}", msgs.join("; "))
            }
            ExecError::Build(e) => write!(f, "{e}"),
            ExecError::Pipeline(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<TranslateError> for ExecError {
    fn from(e: TranslateError) -> Self {
        ExecError::Translate(e)
    }
}

impl From<BuildError> for ExecError {
    fn from(e: BuildError) -> Self {
        ExecError::Build(e)
    }
}

impl From<asp::PipelineError> for ExecError {
    fn from(e: asp::PipelineError) -> Self {
        ExecError::Pipeline(e)
    }
}

/// The result of running a mapped pattern.
pub struct MappedRun {
    /// The logical plan that was executed (for `explain`).
    pub plan: LogicalPlan,
    /// Full runtime report (throughput, latency, state, per-node stats).
    pub report: RunReport,
    /// The sink holding the matches.
    pub sink: SinkId,
}

impl MappedRun {
    /// Raw emitted matches (may contain duplicates under sliding windows).
    pub fn raw_matches(&self) -> &[Tuple] {
        self.report.sink(self.sink)
    }

    /// Number of emitted matches including duplicates.
    pub fn raw_count(&self) -> u64 {
        self.report.sink_count(self.sink)
    }

    /// Canonical deduplicated, sorted match keys — the semantic-equivalence
    /// view to compare against the oracle or another engine.
    pub fn dedup_matches(&self) -> Vec<MatchKey> {
        dedup_sorted(self.raw_matches())
    }
}

/// Deduplicate and sort tuples into canonical match keys.
pub fn dedup_sorted(tuples: &[Tuple]) -> Vec<MatchKey> {
    let mut keys: Vec<MatchKey> = tuples.iter().map(Tuple::match_key).collect();
    keys.sort();
    keys.dedup();
    keys
}

/// Translate, build, and run a pattern over the given per-type streams.
///
/// A pattern input type with no registered stream is treated as an empty
/// stream (it simply produces no matches), mirroring the baseline's
/// behaviour.
pub fn run_pattern(
    pattern: &Pattern,
    opts: &MapperOptions,
    sources: &HashMap<EventType, Vec<Event>>,
    phys: &PhysicalConfig,
    exec: &ExecutorConfig,
) -> Result<MappedRun, ExecError> {
    let plan = translate(pattern, opts)?;
    // Pre-run schema/key check: a plan with inconsistent layouts or a
    // mis-keyed join would run and silently produce wrong answers; fail
    // it here with coded diagnostics instead.
    let tc = typecheck(&plan);
    if !tc.is_clean() {
        return Err(ExecError::Typecheck(tc.diagnostics));
    }
    // Default missing input types to empty streams without copying the
    // (potentially multi-GB) event vectors when nothing is missing.
    let missing: Vec<EventType> = pattern
        .expr
        .input_types()
        .into_iter()
        .filter(|t| !sources.contains_key(t))
        .collect();
    let augmented;
    let sources = if missing.is_empty() {
        sources
    } else {
        let mut m = sources.clone();
        for t in missing {
            m.entry(t).or_default();
        }
        augmented = m;
        &augmented
    };
    let (graph, sink) = build_pipeline(&plan, sources, phys)?;
    let report = Executor::new(exec.clone()).run(graph)?;
    // Debug builds cross-check the observed telemetry against the static
    // cost model's hard bounds — the falsifiability loop of the analyzer.
    // A violation here is a cost-model bug or a runtime state leak, never
    // an input problem, so it should fail loudly in tests.
    #[cfg(debug_assertions)]
    {
        let bounds = crate::analyze::runtime_bounds(&plan, pattern, sources, phys);
        let violations = report.check_bounds(&bounds);
        debug_assert!(
            violations.is_empty(),
            "static bounds falsified for pattern {}: {}",
            pattern.name,
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ")
        );
    }
    Ok(MappedRun { plan, report, sink })
}

/// Shortcut with default physical/executor configuration.
pub fn run_pattern_simple(
    pattern: &Pattern,
    opts: &MapperOptions,
    sources: &HashMap<EventType, Vec<Event>>,
) -> Result<MappedRun, ExecError> {
    run_pattern(
        pattern,
        opts,
        sources,
        &PhysicalConfig::default(),
        &ExecutorConfig::default(),
    )
}

/// Group a flat event vector into per-type source streams (each sorted by
/// ts, as the engine's sources require).
pub fn split_by_type(events: &[Event]) -> HashMap<EventType, Vec<Event>> {
    let mut map: HashMap<EventType, Vec<Event>> = HashMap::new();
    for e in events {
        map.entry(e.etype).or_default().push(*e);
    }
    for v in map.values_mut() {
        v.sort_by_key(|e| e.ts);
    }
    map
}
