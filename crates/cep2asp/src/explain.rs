//! `EXPLAIN`-style rendering of [`crate::analyze::Analysis`] trees.
//!
//! Produces the human-readable plan report printed by the `plan-explain`
//! driver and attached as a CI artifact: one line per node with the
//! analyzer's output-rate / per-window / state estimates, followed by a
//! diagnostics footer listing every `A`-code finding (or `none`).

use std::fmt::Write as _;

use sea::annotations::Annotations;
use sea::pattern::Pattern;

use crate::analyze::{analyze, human_bytes, Analysis, AnalyzeConfig, AnalyzedNode};
use crate::plan::LogicalPlan;
use crate::typecheck::TypedNode;

/// Render an analysis as an indented `EXPLAIN` tree plus diagnostics.
pub fn render_analysis(analysis: &Analysis) -> String {
    render_analysis_typed(analysis, None)
}

/// Like [`render_analysis`], but when the plan's typed tree (from
/// [`crate::typecheck::typecheck`]) is supplied, each node line also shows
/// how its output edge is keyed and the node's partition-safety verdict —
/// the analyzer and typechecker build their trees in the same plan order,
/// so the two are walked in lockstep.
pub fn render_analysis_typed(analysis: &Analysis, typed: Option<&TypedNode>) -> String {
    let mut out = String::new();
    render_node(&analysis.root, typed, 0, &mut out);
    let _ = writeln!(
        out,
        "-- total worst-case state ≤ {}",
        human_bytes(analysis.total_state_bytes)
    );
    if analysis.diagnostics.is_empty() {
        out.push_str("-- diagnostics: none\n");
    } else {
        let _ = writeln!(out, "-- diagnostics ({}):", analysis.diagnostics.len());
        for d in &analysis.diagnostics {
            let _ = writeln!(out, "   {d}");
        }
    }
    out
}

fn render_node(node: &AnalyzedNode, typed: Option<&TypedNode>, depth: usize, out: &mut String) {
    let e = &node.estimate;
    let _ = write!(
        out,
        "{:indent$}{label}  rate≈{rate}/min  win≈{win} (≤{bound})  state≤{state}",
        "",
        indent = depth * 2,
        label = node.label,
        rate = fmt_num(e.out_rate),
        win = fmt_num(e.per_window),
        bound = fmt_num(e.window_bound),
        state = human_bytes(e.state_bytes),
    );
    if let Some(t) = typed {
        let _ = write!(out, "  key={}  [{}]", t.schema.key, t.safety);
    }
    out.push('\n');
    for (i, c) in node.children.iter().enumerate() {
        render_node(c, typed.and_then(|t| t.children.get(i)), depth + 1, out);
    }
}

/// Format an estimate compactly: integers below 1000 stay exact, larger
/// or fractional values get a short decimal form.
fn fmt_num(x: f64) -> String {
    if x >= 1_000_000.0 {
        format!("{:.2}M", x / 1_000_000.0)
    } else if x >= 10_000.0 {
        format!("{:.1}k", x / 1_000.0)
    } else if x.fract() == 0.0 {
        format!("{x:.0}")
    } else if x >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

/// Analyze `plan` under `ann` and render the result in one step.
///
/// The `pattern` argument is reserved for headers (name and window) so the
/// report is self-describing.
pub fn explain_analyzed(
    plan: &LogicalPlan,
    pattern: &Pattern,
    ann: &Annotations,
    cfg: &AnalyzeConfig,
) -> String {
    let analysis = analyze(plan, ann, cfg);
    let typed = crate::typecheck::typecheck(plan);
    let mut out = format!(
        "-- pattern {} | window W={} s={} | joins={}\n",
        pattern.name,
        pattern.window.size,
        pattern.window.slide,
        plan.root.join_count(),
    );
    out.push_str(&render_analysis_typed(&analysis, Some(&typed.root)));
    if !typed.is_clean() {
        let _ = writeln!(out, "-- schema diagnostics ({}):", typed.diagnostics.len());
        for d in &typed.diagnostics {
            let _ = writeln!(out, "   {d}");
        }
    }
    // Migration safety under the default (single-shard) deployment: only
    // the config-independent capability findings (M001) can fire here;
    // `plan-explain --schema` re-runs the pass under a sharded config.
    let mig =
        crate::migrate::migration_safety(plan, &typed, &crate::migrate::MigrateConfig::default());
    if !mig.is_empty() {
        let _ = writeln!(out, "-- migration safety ({}):", mig.len());
        for d in &mig {
            let _ = writeln!(out, "   {d}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::{translate, MapperOptions};
    use asp::event::EventType;
    use sea::pattern::{builders, WindowSpec};

    #[test]
    fn renders_tree_and_diagnostics_footer() {
        let p = builders::seq(
            &[
                (EventType(0), "Q"),
                (EventType(1), "V"),
                (EventType(2), "PM"),
            ],
            WindowSpec::minutes(5),
            vec![],
        );
        let plan = translate(&p, &MapperOptions::o1()).expect("plan");
        let ann = Annotations::for_pattern(&p);
        let text = explain_analyzed(&plan, &p, &ann, &AnalyzeConfig::default());
        assert!(text.contains("Scan Q"), "{text}");
        assert!(text.contains("rate≈"), "{text}");
        assert!(text.contains("-- diagnostics"), "{text}");
        // Three-leaf SEQ stacks window-dependent joins → A001 present.
        assert!(text.contains("A001"), "{text}");
        // The key/safety column from the typechecker rides along: scans
        // are id-keyed and stateless, the keyless joins run globally.
        assert!(text.contains("key=id(e1)"), "{text}");
        assert!(text.contains("[stateless]"), "{text}");
        assert!(text.contains("key=uniform"), "{text}");
        assert!(text.contains("[global-only]"), "{text}");
    }

    #[test]
    fn healthy_plan_reports_no_diagnostics() {
        let p = builders::seq(
            &[(EventType(0), "Q"), (EventType(1), "V")],
            WindowSpec::minutes(4),
            vec![],
        );
        let plan = translate(&p, &MapperOptions::o1()).expect("plan");
        let ann = Annotations::for_pattern(&p);
        let text = explain_analyzed(&plan, &p, &ann, &AnalyzeConfig::default());
        assert!(text.contains("-- diagnostics: none"), "{text}");
    }
}
