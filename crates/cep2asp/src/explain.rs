//! `EXPLAIN`-style rendering of [`crate::analyze::Analysis`] trees.
//!
//! Produces the human-readable plan report printed by the `plan-explain`
//! driver and attached as a CI artifact: one line per node with the
//! analyzer's output-rate / per-window / state estimates, followed by a
//! diagnostics footer listing every `A`-code finding (or `none`).

use std::fmt::Write as _;

use sea::annotations::Annotations;
use sea::pattern::Pattern;

use crate::analyze::{analyze, human_bytes, Analysis, AnalyzeConfig, AnalyzedNode};
use crate::plan::LogicalPlan;

/// Render an analysis as an indented `EXPLAIN` tree plus diagnostics.
pub fn render_analysis(analysis: &Analysis) -> String {
    let mut out = String::new();
    render_node(&analysis.root, 0, &mut out);
    let _ = writeln!(
        out,
        "-- total worst-case state ≤ {}",
        human_bytes(analysis.total_state_bytes)
    );
    if analysis.diagnostics.is_empty() {
        out.push_str("-- diagnostics: none\n");
    } else {
        let _ = writeln!(out, "-- diagnostics ({}):", analysis.diagnostics.len());
        for d in &analysis.diagnostics {
            let _ = writeln!(out, "   {d}");
        }
    }
    out
}

fn render_node(node: &AnalyzedNode, depth: usize, out: &mut String) {
    let e = &node.estimate;
    let _ = writeln!(
        out,
        "{:indent$}{label}  rate≈{rate}/min  win≈{win} (≤{bound})  state≤{state}",
        "",
        indent = depth * 2,
        label = node.label,
        rate = fmt_num(e.out_rate),
        win = fmt_num(e.per_window),
        bound = fmt_num(e.window_bound),
        state = human_bytes(e.state_bytes),
    );
    for c in &node.children {
        render_node(c, depth + 1, out);
    }
}

/// Format an estimate compactly: integers below 1000 stay exact, larger
/// or fractional values get a short decimal form.
fn fmt_num(x: f64) -> String {
    if x >= 1_000_000.0 {
        format!("{:.2}M", x / 1_000_000.0)
    } else if x >= 10_000.0 {
        format!("{:.1}k", x / 1_000.0)
    } else if x.fract() == 0.0 {
        format!("{x:.0}")
    } else if x >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

/// Analyze `plan` under `ann` and render the result in one step.
///
/// The `pattern` argument is reserved for headers (name and window) so the
/// report is self-describing.
pub fn explain_analyzed(
    plan: &LogicalPlan,
    pattern: &Pattern,
    ann: &Annotations,
    cfg: &AnalyzeConfig,
) -> String {
    let analysis = analyze(plan, ann, cfg);
    let mut out = format!(
        "-- pattern {} | window W={} s={} | joins={}\n",
        pattern.name,
        pattern.window.size,
        pattern.window.slide,
        plan.root.join_count(),
    );
    out.push_str(&render_analysis(&analysis));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::{translate, MapperOptions};
    use asp::event::EventType;
    use sea::pattern::{builders, WindowSpec};

    #[test]
    fn renders_tree_and_diagnostics_footer() {
        let p = builders::seq(
            &[
                (EventType(0), "Q"),
                (EventType(1), "V"),
                (EventType(2), "PM"),
            ],
            WindowSpec::minutes(5),
            vec![],
        );
        let plan = translate(&p, &MapperOptions::o1()).expect("plan");
        let ann = Annotations::for_pattern(&p);
        let text = explain_analyzed(&plan, &p, &ann, &AnalyzeConfig::default());
        assert!(text.contains("Scan Q"), "{text}");
        assert!(text.contains("rate≈"), "{text}");
        assert!(text.contains("-- diagnostics"), "{text}");
        // Three-leaf SEQ stacks window-dependent joins → A001 present.
        assert!(text.contains("A001"), "{text}");
    }

    #[test]
    fn healthy_plan_reports_no_diagnostics() {
        let p = builders::seq(
            &[(EventType(0), "Q"), (EventType(1), "V")],
            WindowSpec::minutes(4),
            vec![],
        );
        let plan = translate(&p, &MapperOptions::o1()).expect("plan");
        let ann = Annotations::for_pattern(&p);
        let text = explain_analyzed(&plan, &p, &ann, &AnalyzeConfig::default());
        assert!(text.contains("-- diagnostics: none"), "{text}");
    }
}
