//! Full-functionality Kleene+ via a UDF window function — the extension
//! the paper sketches for O2 (Section 4.3.2): "some ASPSs allow users to
//! implement UDF aggregation functions, which can return multiple output
//! tuples per window and sort the window content to support conditions
//! between the contributing events, such as `e_i.a_n < e_{i+1}.a_n`".
//!
//! The plain O2 count-aggregation ignores constraints *between*
//! contributing events. This module's UDF sorts each window's relevant
//! events by timestamp and searches for a chain of ≥ m events whose
//! consecutive members satisfy a user-provided pairwise condition (the
//! longest such chain, computed LIS-style in O(k²) per window). One tuple
//! per qualifying window is emitted, carrying the chain events as its
//! constituents and the chain length in `agg` — a summary like O2's, but
//! constraint-aware.

use std::collections::HashMap;
use std::sync::Arc;

use asp::event::{Event, EventType};
use asp::graph::{Exchange, GraphBuilder, SinkId, SinkMode, SourceConfig};
use asp::operator::{FilterOp, MapOp, UnaryPredicate, WindowFn, WindowUdfOp};
use asp::tuple::Tuple;
use asp::window::SlidingWindows;

use sea::pattern::WindowSpec;

/// A pairwise condition between consecutive chain members.
pub type PairwiseFn = Arc<dyn Fn(&Event, &Event) -> bool + Send + Sync>;

/// Configuration of the constraint-aware Kleene+ window UDF.
pub struct KleeneUdf {
    /// The iterated event type.
    pub etype: EventType,
    /// Per-event filter (relevance).
    pub filter: UnaryPredicate,
    /// Condition between consecutive chain members (e.g. strictly rising
    /// values). `None` falls back to plain count semantics.
    pub pairwise: Option<PairwiseFn>,
    /// Minimum chain length m (Kleene+: ≥ m occurrences).
    pub m: usize,
    /// The pattern window.
    pub window: WindowSpec,
}

/// Longest chain (by the pairwise condition) through `events`, which must
/// be in timestamp order; ties on ts cannot chain (strict sequence
/// semantics). Returns the chain's member indices.
pub fn longest_chain(events: &[Event], pairwise: Option<&PairwiseFn>) -> Vec<usize> {
    let n = events.len();
    if n == 0 {
        return Vec::new();
    }
    // LIS-style DP: best[i] = longest chain ending at i.
    let mut best = vec![1usize; n];
    let mut prev = vec![usize::MAX; n];
    for i in 0..n {
        for j in 0..i {
            if events[j].ts >= events[i].ts {
                continue; // strict ts order along the chain
            }
            let ok = match pairwise {
                Some(f) => f(&events[j], &events[i]),
                None => true,
            };
            if ok && best[j] + 1 > best[i] {
                best[i] = best[j] + 1;
                prev[i] = j;
            }
        }
    }
    let (mut at, _) = best
        .iter()
        .enumerate()
        .max_by_key(|(_, l)| **l)
        .expect("non-empty");
    let mut chain = Vec::new();
    while at != usize::MAX {
        chain.push(at);
        at = prev[at];
    }
    chain.reverse();
    chain
}

/// Build a source → filter → window-UDF → sink pipeline for the UDF
/// Kleene+ over one stream.
pub fn build_pipeline(
    cfg: &KleeneUdf,
    sources: &HashMap<EventType, Vec<Event>>,
) -> (GraphBuilder, SinkId) {
    let mut g = GraphBuilder::new();
    let events = sources.get(&cfg.etype).cloned().unwrap_or_default();
    let src = g.source_with("src", SourceConfig::new(events), 1);
    let filter = cfg.filter.clone();
    let filt = g.unary(
        src,
        Exchange::Forward,
        1,
        Box::new(move |_| Box::new(FilterOp::new("σ:relevant", filter.clone()))),
    );
    // The UDF runs per window over a single global partition.
    let keyed = g.unary(
        filt,
        Exchange::Rebalance,
        1,
        Box::new(|_| Box::new(MapOp::uniform_key("Π:key←0", 0))),
    );
    let windows = SlidingWindows::new(cfg.window.size, cfg.window.slide);
    let m = cfg.m;
    let pairwise = cfg.pairwise.clone();
    let udf: WindowFn = Arc::new(move |_wid, content, out| {
        // Content arrives ts-sorted (WindowUdfOp contract).
        let events: Vec<Event> = content.iter().map(|t| t.events[0]).collect();
        let chain = longest_chain(&events, pairwise.as_ref());
        if chain.len() >= m {
            let constituents: Vec<Event> = chain.iter().map(|&i| events[i]).collect();
            let wall = chain.iter().map(|&i| content[i].wall).max().unwrap_or(0);
            let mut t = Tuple::from_event(*constituents.last().expect("m ≥ 1"));
            t.set_events(constituents);
            t.ts = t.ts_end();
            t.wall = wall;
            t.agg = Some(chain.len() as f64);
            out.emit(t);
        }
    });
    let w = g.unary(
        keyed,
        Exchange::Hash,
        1,
        Box::new(move |_| Box::new(WindowUdfOp::new("udf:kleene+", windows, udf.clone()))),
    );
    let sink = g.sink_with_mode(w, Exchange::Forward, SinkMode::Collect);
    (g, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asp::runtime::{Executor, ExecutorConfig};
    use asp::time::Timestamp;

    const V: EventType = EventType(1);

    fn ev(min: i64, val: f64) -> Event {
        Event::new(V, 1, Timestamp::from_minutes(min), val)
    }

    fn rising() -> PairwiseFn {
        Arc::new(|a: &Event, b: &Event| a.value < b.value)
    }

    #[test]
    fn longest_chain_finds_rising_subsequence() {
        let events = vec![ev(0, 3.0), ev(1, 1.0), ev(2, 2.0), ev(3, 5.0), ev(4, 4.0)];
        let p = rising();
        let chain = longest_chain(&events, Some(&p));
        // 1 → 2 → 5 or 1 → 2 → 4: length 3.
        assert_eq!(chain.len(), 3);
        let vals: Vec<f64> = chain.iter().map(|&i| events[i].value).collect();
        assert!(vals.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn longest_chain_without_condition_counts_distinct_ts() {
        let events = vec![ev(0, 9.0), ev(0, 8.0), ev(1, 7.0), ev(2, 6.0)];
        let chain = longest_chain(&events, None);
        assert_eq!(chain.len(), 3, "equal-ts events cannot chain");
    }

    #[test]
    fn pipeline_emits_only_qualifying_windows() {
        // Tumbling 5-minute windows; rising chains of length ≥ 3.
        let events = vec![
            // Window [0,5): 1 < 2 < 3 — qualifies.
            ev(0, 1.0),
            ev(1, 2.0),
            ev(2, 3.0),
            // Window [5,10): falling — no chain ≥ 3.
            ev(5, 9.0),
            ev(6, 5.0),
            ev(7, 1.0),
        ];
        let cfg = KleeneUdf {
            etype: V,
            filter: asp::operator::always_true(),
            pairwise: Some(rising()),
            m: 3,
            window: WindowSpec::minutes(5).with_slide(asp::time::Duration::from_minutes(5)),
        };
        let sources = HashMap::from([(V, events)]);
        let (g, sink) = build_pipeline(&cfg, &sources);
        let mut report = Executor::new(ExecutorConfig::default()).run(g).unwrap();
        let out = report.take_sink(sink);
        assert_eq!(out.len(), 1, "only the rising window qualifies");
        assert_eq!(out[0].agg, Some(3.0));
        assert_eq!(out[0].events.len(), 3);
        let vals: Vec<f64> = out[0].events.iter().map(|e| e.value).collect();
        assert!(vals.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn plain_count_mode_matches_o2_semantics() {
        let events = vec![ev(0, 9.0), ev(1, 5.0), ev(2, 1.0)]; // falling
        let cfg = KleeneUdf {
            etype: V,
            filter: asp::operator::always_true(),
            pairwise: None, // count only, like O2
            m: 3,
            window: WindowSpec::minutes(5).with_slide(asp::time::Duration::from_minutes(5)),
        };
        let sources = HashMap::from([(V, events)]);
        let (g, sink) = build_pipeline(&cfg, &sources);
        let report = Executor::new(ExecutorConfig::default()).run(g).unwrap();
        assert_eq!(
            report.sink_count(sink),
            1,
            "3 events suffice without pairwise"
        );
    }
}
