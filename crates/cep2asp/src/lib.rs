//! # cep2asp — the CEP-to-ASP operator mapping
//!
//! The primary contribution of *Bridging the Gap: Complex Event Processing
//! on Stream Processing Systems* (Ziehn, Grulich, Zeuch, Markl — EDBT
//! 2024): a general mapping that translates CEP patterns (Simple Event
//! Algebra) into analytical-stream-processing query plans, decomposing the
//! pattern workload into multiple dataflow operators instead of one
//! monolithic NFA operator.
//!
//! * [`mod@translate`] — pattern → logical plan (Table 1), with the three
//!   optimizations O1 (interval joins), O2 (aggregation for iterations),
//!   and O3 (equi-join key partitioning), plus join-order hints and
//!   disjunction distribution;
//! * [`plan`] — the logical plan model with `EXPLAIN` output;
//! * [`physical`] — logical plan → threaded `asp` dataflow pipeline;
//! * [`exec`] — pattern-in/matches-out convenience and the canonical
//!   deduplicated match view for semantic-equivalence testing.
//!
//! ```
//! use asp::event::{Event, EventType};
//! use asp::time::Timestamp;
//! use cep2asp::exec::{run_pattern_simple, split_by_type};
//! use cep2asp::translate::MapperOptions;
//! use sea::pattern::{builders, WindowSpec};
//!
//! const Q: EventType = EventType(0);
//! const V: EventType = EventType(1);
//! let pattern = builders::seq(&[(Q, "Q"), (V, "V")], WindowSpec::minutes(4), vec![]);
//! let events = vec![
//!     Event::new(Q, 1, Timestamp::from_minutes(0), 10.0),
//!     Event::new(V, 1, Timestamp::from_minutes(2), 80.0),
//! ];
//! let run = run_pattern_simple(&pattern, &MapperOptions::plain(), &split_by_type(&events))
//!     .unwrap();
//! assert_eq!(run.dedup_matches().len(), 1);
//! ```

// Unit tests may unwrap freely; production code must not (workspace lint).
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod analyze;
pub mod diag;
pub mod exec;
pub mod explain;
pub mod kleene_udf;
pub mod lint;
pub mod migrate;
pub mod multi;
pub mod optimizer;
pub mod physical;
pub mod plan;
pub mod share;
pub mod sql;
pub mod translate;
pub mod typecheck;

pub use analyze::{
    analyze, runtime_bounds, Analysis, AnalyzeCode, AnalyzeConfig, AnalyzeDiagnostic, AnalyzedNode,
    NodeEstimate,
};
pub use diag::{Diag, DiagCode};
pub use exec::{
    dedup_sorted, run_pattern, run_pattern_simple, split_by_type, ExecError, MappedRun,
};
pub use explain::{explain_analyzed, render_analysis, render_analysis_typed};
pub use lint::{lint_plan, LintCode, LintDiagnostic};
pub use migrate::{
    migration_json, migration_safety, MigrateCode, MigrateConfig, MigrateDiagnostic,
};
pub use multi::{
    run_patterns, run_patterns_with, shared_catalog, MultiOptions, MultiRun, PatternJob,
};
pub use optimizer::{
    annotations_from_stats, auto_options, auto_options_with, explain_with_stats, OrderingStrategy,
    StreamStats,
};
pub use physical::{
    build_multi_pipeline, build_pipeline, BuildError, MultiBuild, PhysicalConfig, SourceCatalog,
};
pub use plan::{JoinWindowing, LogicalPlan, Partitioning, PlanNode};
pub use share::{canonical_key, render_multi, share_summary, ShareReport, SharedNode};
pub use sql::to_query_text;
pub use translate::{translate, JoinOrder, MapperOptions, TranslateError};
pub use typecheck::{
    typecheck, typecheck_with, Column, EdgeSchema, KeyProvenance, RowSchema, ShardSafety, TypeCode,
    TypeDiagnostic, TypecheckResult, TypedNode,
};
